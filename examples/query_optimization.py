"""Equational query optimization on or-set data (Section 7).

Run:  python examples/query_optimization.py

The conclusion of the paper notes that the monad equations plus the
coherence-diagram equations of Theorem 4.2 "can lead to useful
optimizations".  This example builds a deliberately naive conceptual
query over a parts catalogue —

    raise every price by 10, in every candidate configuration:
        ormap(map(price_bump)) o alpha

— and lets the optimizer rewrite it into the equivalent

        alpha o map(ormap(price_bump))

which bumps each price once *before* the exponential choice expansion
instead of once per configuration.  The two plans are timed on growing
catalogues and their outputs compared.
"""

import time

from repro.engine import Engine
from repro.lang.morphisms import Compose, Const, Id, PairOf, Bang
from repro.lang.optimize import cost, equations_applied, optimize
from repro.lang.orset_ops import Alpha, OrMap
from repro.lang.primitives import plus
from repro.lang.set_ops import SetMap
from repro.values.values import format_value, vorset, vset

# price_bump : int -> int, adds 10.
PRICE_BUMP = Compose(plus(), PairOf(Id(), Compose(Const(10), Bang())))

# The naive conceptual query: expand the catalogue into all candidate
# configurations first, then bump every price inside every configuration.
NAIVE = Compose(OrMap(SetMap(PRICE_BUMP)), Alpha())
OPTIMIZED = optimize(NAIVE)

# The engine performs the same rewrite internally: engine.run(NAIVE, x)
# optimizes, compiles to a plan, and executes — so callers never need to
# invoke the optimizer by hand.
ENGINE = Engine()


def catalogue(k: int):
    """k parts, each with two candidate prices (2^k configurations)."""
    return vset(*(vorset(10 * i, 10 * i + 5) for i in range(1, k + 1)))


def timed(run, x, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        run(x)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    print("naive query    :", NAIVE.describe())
    print("optimized query:", OPTIMIZED.describe())
    print("equations fired:", ", ".join(equations_applied(NAIVE)))
    print(f"static cost    : {cost(NAIVE)} -> {cost(OPTIMIZED)} operators\n")

    small = catalogue(2)
    out_naive = NAIVE.apply(small)
    out_opt = OPTIMIZED.apply(small)
    assert out_naive == out_opt
    print("on", format_value(small))
    print("both plans give", format_value(out_naive), "\n")

    print(f"{'parts':>5} {'configs':>8} {'naive (ms)':>12} {'optimized (ms)':>15} {'speedup':>8}")
    for k in (6, 8, 10, 12):
        x = catalogue(k)
        # Direct interpretation of the naive tree versus the engine's
        # optimized + compiled execution of the very same program.
        t_naive = timed(NAIVE.apply, x)
        t_opt = timed(lambda v: ENGINE.run(NAIVE, v, intern=False), x)
        assert NAIVE.apply(x) == ENGINE.run(NAIVE, x)
        print(
            f"{k:>5} {2**k:>8} {t_naive * 1000:>12.2f} {t_opt * 1000:>15.2f}"
            f" {t_naive / t_opt:>7.1f}x"
        )

    print("\nThe win grows with the catalogue: the naive plan applies the")
    print("price bump k * 2^k times, the optimized plan only 2k times.")


if __name__ == "__main__":
    main()
