"""Quickstart: or-sets, structural vs conceptual queries, normalization.

Run:  python examples/quickstart.py

Walks through the paper's core ideas on a five-minute scale:
1. build complex objects mixing tuples, sets and or-sets;
2. query them *structurally* with or-NRA;
3. normalize to pass to the *conceptual* level (or-NRA+);
4. ask existential questions lazily;
5. run queries through the compile-and-run engine.
"""

from repro import (
    engine,
    format_value,
    normalize,
    parse_type,
    possibilities,
    vorset,
    vpair,
    vset,
)
from repro.core import conceptual_eq, exists_query, witness
from repro.lang import ormap, or_select, parse_morphism, predicate
from repro.types import INT, nf_type, format_type


def main() -> None:
    # ----------------------------------------------------------------- 1.
    # An object of type {<int>} * <int>: a set of alternatives plus one
    # more independent choice (the paper's Section 4 example).
    design = vpair(vset(vorset(1, 2), vorset(3)), vorset(1, 2))
    t = parse_type("{<int>} * <int>")
    print("object     :", format_value(design))
    print("type       :", format_type(t))

    # ----------------------------------------------------------------- 2.
    # Structural query: how many alternatives does each component offer?
    # (Queries see the or-sets themselves.)  Evaluation goes through the
    # engine: the query is optimized, compiled to a plan and executed.
    first_choices = parse_morphism("map(ortoset) o pi_1")
    print("choices    :", format_value(engine.run(first_choices, design)))

    # ----------------------------------------------------------------- 3.
    # Conceptual level: normalize lists every completed possibility.
    normal = normalize(design, t)
    print("nf type    :", format_type(nf_type(t)))
    print("normalized :", format_value(normal))

    # <<1>> and <1> denote the same number:
    print("<<1>> == <1> conceptually:", conceptual_eq(vorset(vorset(1)), vorset(1)))

    # ----------------------------------------------------------------- 4.
    # The intro's query shape: keep only cheap alternatives.
    ischeap = predicate("ischeap", lambda v: v.value <= 1, INT)
    cheap_only = or_select(ischeap)
    print("cheap      :", format_value(cheap_only(vorset(1, 2, 3))))

    # Existential query with lazy normalization: is there a possibility
    # whose components sum below 6?  (Stops at the first witness.)
    def small(world) -> bool:
        total = sum(e.value for e in world.fst.elems) + world.snd.value
        return total < 6

    print("exists sum<6:", exists_query(small, design, t))
    found = witness(small, design, t)
    print("witness    :", format_value(found) if found else None)

    # possibilities() is the tuple behind all of this:
    print("count      :", len(possibilities(design, t)))

    # ----------------------------------------------------------------- 5.
    # engine.run is the single entry point behind the REPL, the I/O
    # helpers and the benchmarks: pass-based optimization, plan
    # compilation, interned values, and a choice of backends.
    query = parse_morphism("ormap(map(eta)) o alpha o pi_1")
    print("engine     :", format_value(engine.run(query, design)))
    print("streaming  :", format_value(engine.run(query, design, backend="streaming")))
    print("plan       :")
    print(engine.explain(query, t))


if __name__ == "__main__":
    main()
