"""Planning with constraints = SAT as an existential query (Section 6).

Run:  python examples/exam_scheduling.py

A scheduling office must place exams into one of two days.  Constraints
("these two courses share students, keep them apart", "Prof. X is away on
Tuesday") compile to CNF clauses; the CNF encodes — exactly as in the
paper's hardness proof — into an object of type {<var * bool>}, where each
clause is an or-set of (variable, polarity) literals.  A schedule exists
iff some element of the normal form satisfies the functional dependency
``var -> polarity``.

The demo compares three routes to the answer:
* eager normalization (materialize the full normal form);
* lazy stream normalization (Section 7 — stops at the first witness);
* the DPLL baseline.
"""

import time

from repro.core.costs import m_value
from repro.sat.cnf import CNF, encode_cnf, encoded_type
from repro.sat.dpll import dpll_sat
from repro.sat.via_normalization import sat_eager, sat_lazy, sat_witness
from repro.values.values import format_value

# Variables: x_i = "exam i is on Monday" (False = Tuesday).
COURSES = ["algebra", "databases", "logic", "networks", "compilers"]
VAR = {name: i + 1 for i, name in enumerate(COURSES)}


def apart(a: str, b: str) -> list[frozenset[int]]:
    """Courses a and b must be on different days: (a ∨ b) ∧ (¬a ∨ ¬b)."""
    return [frozenset({VAR[a], VAR[b]}), frozenset({-VAR[a], -VAR[b]})]


def on_monday(a: str) -> list[frozenset[int]]:
    return [frozenset({VAR[a]})]


def on_tuesday(a: str) -> list[frozenset[int]]:
    return [frozenset({-VAR[a]})]


def build(constraints: list[list[frozenset[int]]]) -> CNF:
    clauses = tuple(c for group in constraints for c in group)
    return CNF(len(COURSES), clauses)


def main() -> None:
    feasible = build(
        [
            apart("algebra", "databases"),
            apart("databases", "logic"),
            apart("networks", "compilers"),
            on_monday("algebra"),
            on_tuesday("compilers"),
        ]
    )
    encoded = encode_cnf(feasible)
    print("encoded constraints ({<var * bool>}):")
    for clause in encoded:
        print("  ", format_value(clause))
    print("normal-form size m(x):", m_value(encoded, encoded_type()))

    for name, solver in (
        ("lazy stream", sat_lazy),
        ("eager      ", sat_eager),
        ("dpll       ", dpll_sat),
    ):
        start = time.perf_counter()
        answer = solver(feasible)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"{name}: satisfiable={answer}  ({elapsed:.2f} ms)")

    schedule = sat_witness(feasible)
    assert schedule is not None
    print("\na feasible schedule:")
    for course in COURSES:
        day = "Monday" if schedule.get(VAR[course], False) else "Tuesday"
        print(f"  {course:<10} -> {day}")

    # Tighten the constraints into infeasibility: algebra and databases
    # must be apart, but both are pinned to Monday.
    infeasible = build(
        [
            apart("algebra", "databases"),
            on_monday("algebra"),
            on_monday("databases"),
        ]
    )
    print("\nover-constrained instance satisfiable:", sat_lazy(infeasible))
    assert sat_lazy(infeasible) == sat_eager(infeasible) == dpll_sat(infeasible)


if __name__ == "__main__":
    main()
