"""Approximate answers via sandwiches and or-sets (Sections 3 and 7).

Run:  python examples/approximate_answers.py

A flight-booking database knows some confirmed passengers (certain, from
below) and a list of candidate manifests (possible, from above).  That is
a *sandwich* in the sense of Buneman–Davidson–Watters [6]: the real
manifest S satisfies

    confirmed  ⊑♭  S        (Hoare: everything certain is aboard)
    candidates ⊑♯  S        (Smyth: S refines one of the possibilities)

The example builds sandwiches over a flat domain of passengers, checks
consistency, refines them as knowledge improves, and then uses the paper's
Section 7 observation — or-sets are the Smyth powerdomain — to render each
sandwich as a complex object ``({confirmed}, <candidates>)`` whose
Section 3 order *is* the sandwich order.  Finally a variant type models
the two possible outcomes of the booking process.
"""

from repro.orders.approx import (
    Mix,
    Sandwich,
    sandwich_le,
    sandwich_to_object,
)
from repro.orders.poset import flat_domain
from repro.orders.semantics import value_le
from repro.types.parse import parse_type
from repro.core.normalize import normalize
from repro.values.values import format_value, vinl, vinr, vorset

PASSENGERS = flat_domain(["ada", "bob", "cyd", "dan"])
ORDERS = {"d": PASSENGERS}


def show(tag: str, s: Sandwich) -> None:
    print(
        f"  {tag}: certain={sorted(s.lower)} possible={sorted(s.upper)}"
        f"  consistent={s.is_consistent()}  mix={s.is_mix()}"
    )


def main() -> None:
    print("sandwich refinement as knowledge improves:")
    # Early: nothing confirmed, anyone could be the passenger of record.
    early = Sandwich(["_bot"], ["ada", "bob", "cyd"], PASSENGERS)
    # Later: the null is resolved; fewer candidates remain.
    later = Sandwich(["ada"], ["ada", "bob"], PASSENGERS)
    # Final: fully resolved — a mix (the certain part is itself possible).
    final = Mix(["ada"], ["ada"], PASSENGERS)
    show("early", early)
    show("later", later)
    show("final", final)
    print("  early <= later <= final:",
          sandwich_le(early, later) and sandwich_le(later, final))

    # An inconsistent report: 'dan' is confirmed but not possible, and the
    # flat domain offers nothing above both.
    broken = Sandwich(["dan"], ["ada"], PASSENGERS)
    show("broken", broken)

    print("\nor-set representation (Libkin [22]):")
    objs = {name: sandwich_to_object(s) for name, s in
            [("early", early), ("later", later), ("final", final)]}
    for name, obj in objs.items():
        print(f"  {name}: {format_value(obj)}")
    print("  object order matches sandwich order:",
          all(
              value_le(objs[a], objs[b], ORDERS) == sandwich_le(sa, sb)
              for a, sa in [("early", early), ("later", later), ("final", final)]
              for b, sb in [("early", early), ("later", later), ("final", final)]
          ))

    print("\nbooking outcome as a variant type (Section 7 extension):")
    # The process ends either with a seat assignment (left) or a rebooking
    # voucher amount (right); the seat is still disjunctive.
    outcome_type = parse_type("<string> + int")
    seat = vinl(vorset("12A", "12B"))
    voucher = vinr(250)
    print("  seat outcome   :", format_value(seat), "~>",
          format_value(normalize(seat, outcome_type)))
    print("  voucher outcome:", format_value(voucher), "~>",
          format_value(normalize(voucher, outcome_type)))


if __name__ == "__main__":
    main()
