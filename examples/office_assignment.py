"""Section 3's partial-information story: nulls, refinement, theories.

Run:  python examples/office_assignment.py

The paper's example: a database of (name, office) records where names may
be unknown (a null in a flat domain).  Knowledge improves by

* *refining* a record — replacing [Name => null, Office => '515'] by
  [Name => 'Joe', Office => '515'] and [Name => 'Mary', Office => '515'];
* *adding* a record — [Name => 'Bill', Office => '212'].

This demo shows: the Hoare order capturing these updates (Proposition 3.1),
or-sets under the Smyth order (narrowing alternatives = more information),
antichain re-normalization, and the modal theories of Proposition 3.4.
"""

from repro.orders.poset import flat_domain
from repro.orders.semantics import antichain_normal, value_le
from repro.orders.theories import (
    Box,
    PairForm,
    PropAtom,
    TruthConst,
    formulas_for,
    satisfies,
)
from repro.orders.updates import hoare_reachable, smyth_reachable
from repro.types.kinds import BaseType, ProdType
from repro.values.values import Atom, format_value, vorset, vpair, vset

NAMES = flat_domain(["joe", "mary", "bill"])
ORDERS = {"name": NAMES}
NULL = Atom("name", "_bot")


def name(n: str) -> Atom:
    return Atom("name", n)


def record(who: Atom, office: str) -> "vpair":
    return vpair(who, Atom("office", office))


def main() -> None:
    # ------------------------------------------------------------ updates
    before = vset(record(NULL, "515"))
    after = vset(record(name("joe"), "515"), record(name("mary"), "515"),
                 record(name("bill"), "212"))
    print("before:", format_value(before))
    print("after :", format_value(after))
    print("refinement is an information gain (Hoare):",
          value_le(before, after, ORDERS))
    print("and not the other way around:",
          value_le(after, before, ORDERS))

    # Proposition 3.1 concretely: the updated database is reachable from
    # the original by elementary update steps.
    start = frozenset({"_bot"})
    reachable = hoare_reachable(NAMES, start)
    print("\n{joe, mary, bill} reachable from {null}:",
          frozenset({"joe", "mary", "bill"}) in reachable)

    # ------------------------------------------------------------ or-sets
    # "The new hire sits in 515 or 212, we are not sure which."
    uncertainty = vorset(Atom("office", "515"), Atom("office", "212"))
    narrowed = vorset(Atom("office", "515"))
    print("\nnarrowing alternatives is a gain (Smyth):",
          value_le(uncertainty, narrowed, {}))
    print("or-set update closure agrees:",
          frozenset({"515"}) in smyth_reachable(
              flat_domain(["515", "212"]), {"515", "212"}))

    # The empty or-set is inconsistency — comparable with nothing:
    print("<> comparable with <515>:",
          value_le(vorset(), narrowed, {}) or value_le(narrowed, vorset(), {}))

    # --------------------------------------------------- antichain shape
    # Keeping both a record and its refinement is redundant: the antichain
    # semantics keeps the maximal (most informative) records only.
    redundant = vset(record(NULL, "515"), record(name("joe"), "515"))
    print("\nredundant :", format_value(redundant))
    print("antichain :", format_value(antichain_normal(redundant, ORDERS)))

    # ------------------------------------------------------------ theories
    # Proposition 3.4: the order is exactly theory containment.  'Some
    # record names joe' is a diamond/box fact:
    rec_type = ProdType(BaseType("name"), BaseType("office"))
    # "every record's name could be joe" — a box over a pair formula.
    phi = Box(PairForm(PropAtom("name", "joe"), TruthConst()))
    db = vset(record(NULL, "515"))
    print("\nTh(db) contains 'every name could be joe':",
          satisfies(phi, db, ORDERS))
    refined = vset(record(name("mary"), "515"))
    print("after refinement to mary it does not:",
          satisfies(phi, refined, ORDERS))
    print("formula universe size for the record type:",
          len(formulas_for(rec_type, ORDERS, disj_width=1)))


if __name__ == "__main__":
    main()
