"""The paper's motivating scenario: querying an engineering design template.

Run:  python examples/design_template.py

"The template may indicate that component A can be built by either module
B or module C. ... A designer employing such a template should be allowed
to query the structure of the template ... On the other hand, the designer
should also be allowed to query about possible completed designs, for
example, by asking if there is a low-cost completed design."  (Section 1)

A template is a set of components; each component is a pair of a component
name and an or-set of candidate (module, cost) implementations:

    template : {component * <module * int>}

Structural queries inspect the or-sets; the conceptual query normalizes the
template into the or-set of *completed designs* (one module per component)
and searches it — both eagerly and with the lazy stream.
"""

from repro import format_value, normalize, parse_type, vorset, vpair, vset
from repro.core import exists_query, witness
from repro.core.costs import m_value
from repro.lang.comprehension import compile_comprehension, gen, setcomp, var
from repro.lang.morphisms import PairOf, Proj1, Proj2
from repro.lang.orset_ops import OrToSet
from repro.lang.set_ops import SetMap
from repro.values.values import Atom, SetValue, Value


def module(name: str, cost: int) -> Value:
    """A candidate implementation: (module name, cost)."""
    return vpair(Atom("module", name), cost)


def component(name: str, *candidates: Value) -> Value:
    """A template row: (component name, <candidate, ...>)."""
    return vpair(Atom("component", name), vorset(*candidates))


TEMPLATE = vset(
    component("cpu", module("m1", 120), module("m2", 95)),
    component("memory", module("dimm8", 40), module("dimm16", 70)),
    component("storage", module("ssd", 80), module("hdd", 35), module("nvme", 140)),
)
TEMPLATE_TYPE = parse_type("{component * <module * int>}")


def design_cost(design: Value) -> int:
    """Total cost of a completed design (a set of (component, (module, cost)))."""
    assert isinstance(design, SetValue)
    return sum(row.snd.snd.value for row in design)


def main() -> None:
    print("template:")
    for row in TEMPLATE:
        print("  ", format_value(row))

    # ---------------------------------------------------------- structural
    # "What are the choices for each component?" — a comprehension compiled
    # to pure or-NRA: {row | row <- template}, post-processed with
    # map((pi_1, ortoset o pi_2)) to expose each candidate or-set as a set.
    choices_query = compile_comprehension(
        setcomp(var("row"), [gen("row", var("template"))]),
        "template",
    )
    structure = choices_query(TEMPLATE)
    expose = SetMap(PairOf(Proj1(), OrToSet() @ Proj2()))
    print("\nstructural view (component, candidate set):")
    for row in expose(structure):
        print("  ", format_value(row))

    # ---------------------------------------------------------- conceptual
    print("\ncompleted designs:", m_value(TEMPLATE, TEMPLATE_TYPE), "(= 2*2*3)")
    completed = normalize(TEMPLATE, TEMPLATE_TYPE)
    print("three of them:")
    for design in completed.elems[:3]:
        print("  cost", design_cost(design), ":", format_value(design))

    # "Is there a low-cost completed design?" — the existential query,
    # answered without materializing the whole normal form.
    budget = 180
    print(f"\nexists design under {budget}:",
          exists_query(lambda d: design_cost(d) <= budget, TEMPLATE, TEMPLATE_TYPE))
    best = min(completed.elems, key=design_cost)
    print("cheapest design:", design_cost(best), format_value(best))
    cheap = witness(lambda d: design_cost(d) <= budget, TEMPLATE, TEMPLATE_TYPE)
    print("lazy witness   :", design_cost(cheap), format_value(cheap))

    # An inconsistent template (a component with no candidates) has no
    # completed designs at all:
    broken = vset(component("cpu"), *TEMPLATE.elems)
    print("\nbroken template normalizes to:",
          format_value(normalize(broken, TEMPLATE_TYPE)))


if __name__ == "__main__":
    main()
