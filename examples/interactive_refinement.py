"""Taming exponential normal forms by asking questions (Section 7, [16]).

Run:  python examples/interactive_refinement.py

Section 6 shows normal forms grow as 3^(n/3) and existential queries over
them encode SAT; Section 7 points at the fix of Imielinski, van der
Meyden and Vadaparty: "obtaining additional information about some of the
or-sets, thus reducing the size of the normal form".  This example plays
a product-configuration session: a catalogue of parts with alternatives
is too disjunctive to enumerate, so the planner picks the most valuable
questions, a simulated customer answers them, and the normal form shrinks
until eager querying is trivial.
"""

import random
import time

from repro.core.normalize import possibilities
from repro.core.refine import (
    GroundTruthOracle,
    plan_questions,
    predicted_possibilities,
    refine_to_budget,
    subvalue_at,
)
from repro.values.values import format_value, vorset, vpair, vset

CATALOGUE = vset(
    vpair("frame", vorset("steel", "alu", "carbon")),
    vpair("gears", vorset("8sp", "11sp", "14sp")),
    vpair("brakes", vorset("rim", "disc")),
    vpair("tires", vorset("slick", "gravel", "knobby")),
    vpair("saddle", vorset("sport", "touring")),
    vpair("bars", vorset("drop", "flat", "aero")),
)


def main() -> None:
    print("catalogue:")
    for row in CATALOGUE:
        print("  ", format_value(row))
    total = predicted_possibilities(CATALOGUE)
    print(f"\npossible configurations: {total} (= 3*3*2*3*2*3)")

    print("\nquestion plan toward a budget of 6 configurations:")
    for path in plan_questions(CATALOGUE, 6):
        print("   ask about", format_value(subvalue_at(CATALOGUE, path)))

    customer = GroundTruthOracle(random.Random(42))
    print("\nrefining (simulated customer answers consistently):")
    current = CATALOGUE
    for budget in (54, 6, 1):
        report = refine_to_budget(current, budget, customer)
        current = report.refined
        start = time.perf_counter()
        count = len(possibilities(current))
        elapsed = (time.perf_counter() - start) * 1000
        print(
            f"  budget {budget:>3}: asked {len(report.questions)} question(s),"
            f" {count} worlds remain, eager enumeration {elapsed:.2f} ms"
        )

    (final,) = possibilities(current)
    print("\nthe configuration the answers determine:")
    print("  ", format_value(final))


if __name__ == "__main__":
    main()
