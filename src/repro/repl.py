"""An OR-SML-flavoured interactive interpreter for or-NRA+ (Section 7).

The paper's implementation "provides an interface which includes the
operations of or-NRA+ ... creation and destruction of objects, input and
output facilities".  This module is that interface for the Python
reproduction: a small line-oriented interpreter over named objects and
named morphisms.

Commands::

    let x = <1, 2, 3>                 bind a value (paper notation)
    let x : <int> = <1, 2>            bind with a declared type
    def f = ormap(pi_1) o alpha       bind a morphism
    apply f x                         evaluate a named/inline morphism
    applymany f x y z                 batched evaluation (run_many)
    serve f x x y z                   micro-batched evaluation through the
                                      async serving front-end (dedupes)
    normalize x                       the conceptual value (or-NRA+)
    worlds x                          possible-worlds denotation
    count f x                         exact world count of f(x) (symbolic —
                                      no enumeration on supported plans)
    certain f x                       elements in every world of f(x)
    possible f x                      elements in some world of f(x)
    type x                            inferred type
    typeof f                          most general morphism type
    size x                            Section 6 size measure
    plan f                            compiled engine plan of a morphism
    backend parallel                  switch the execution backend
    show x          /  x              print a binding
    del x                             destroy a binding
    env                               list bindings
    help / quit

Use :func:`main` for the interactive loop; :class:`Repl` evaluates single
lines and is what the tests drive.

Example session::

    or-nra> let db = {<1, 2>, <3>}
    db = {<1, 2>, <3>} : {<int>}
    or-nra> normalize db
    <{1, 3}, {2, 3}> : <{int}>
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.core.worlds import worlds
from repro.engine import Engine
from repro.errors import OrNRAError
from repro.lang.morphisms import Morphism, infer_signature
from repro.lang.parser import parse_morphism, parse_value
from repro.types.kinds import Type
from repro.types.parse import format_type, parse_type
from repro.types.rewrite import nf_type
from repro.values.measure import size
from repro.values.values import Value, check_type, format_value, infer_type

__all__ = ["Repl", "main"]

_HELP = """commands:
  let NAME = VALUE            bind a value, e.g.  let db = {<1, 2>, <3>}
  let NAME : TYPE = VALUE     bind with a declared type
  def NAME = MORPHISM         bind a morphism, e.g.  def q = ormap(pi_1)
  apply MORPHISM NAME         run a morphism on a binding
  applymany MORPHISM NAMES..  run a morphism on several bindings at once
                              (compiled once, fanned out via run_many)
  serve MORPHISM NAMES..      run bindings as concurrent requests through
                              the async serving front-end (micro-batched,
                              structurally equal inputs deduplicated)
  normalize NAME              conceptual value (the or-NRA+ primitive)
  worlds NAME                 possible-worlds denotation
  count MORPHISM NAME         exact world count of the output — symbolic
                              (no enumeration) on supported plans
  certain MORPHISM NAME       elements present in every world of the output
  possible MORPHISM NAME      elements present in some world of the output
  type NAME | typeof NAME     type of a value / morphism binding
  size NAME                   Section 6 size measure
  plan MORPHISM               show the optimized, compiled engine plan
  backend [auto|eager|streaming|parallel|process|fused|symbolic]
                              show or select the execution backend
                              (auto picks per call from the cost model)
  show NAME (or just NAME)    print a binding
  del NAME                    remove a binding
  env | help | quit"""


class Repl:
    """A line interpreter over named values and morphisms."""

    def __init__(self) -> None:
        self.values: dict[str, tuple[Value, Type]] = {}
        self.morphisms: dict[str, Morphism] = {}
        # All evaluation routes through one compile-and-run engine, so
        # repeated queries share compiled plans and memoized normal forms.
        self.engine = Engine()
        self.backend = "auto"

    # ----- helpers ---------------------------------------------------------

    def _render(self, v: Value, t: Type | None = None) -> str:
        if t is None:
            t = infer_type(v)
        return f"{format_value(v)} : {format_type(t)}"

    def _lookup_value(self, name: str) -> tuple[Value, Type]:
        if name not in self.values:
            raise OrNRAError(f"unbound value {name!r}")
        return self.values[name]

    def _morphism(self, text: str) -> Morphism:
        text = text.strip()
        if text in self.morphisms:
            return self.morphisms[text]
        return parse_morphism(text, env=self.morphisms)

    # ----- command dispatch ------------------------------------------------

    def eval_line(self, line: str) -> str:
        """Evaluate one command line and return the printed output."""
        line = line.strip()
        if not line or line.startswith("--"):
            return ""
        try:
            return self._dispatch(line)
        except OrNRAError as exc:
            return f"error: {exc}"

    def _dispatch(self, line: str) -> str:
        head, _, rest = line.partition(" ")
        rest = rest.strip()
        if head == "help":
            return _HELP
        if head == "env":
            parts = [f"{n} = {self._render(v, t)}" for n, (v, t) in self.values.items()]
            parts += [f"{n} = {m.describe()}" for n, m in self.morphisms.items()]
            return "\n".join(parts) if parts else "(empty)"
        if head == "let":
            return self._cmd_let(rest)
        if head == "def":
            return self._cmd_def(rest)
        if head == "apply":
            return self._cmd_apply(rest)
        if head == "applymany":
            return self._cmd_applymany(rest)
        if head == "serve":
            return self._cmd_serve(rest)
        if head == "normalize":
            value, t = self._lookup_value(rest)
            result = self.engine.interner.normalize(value, t)
            return self._render(result, nf_type(t))
        if head == "plan":
            return self.engine.explain(self._morphism(rest))
        if head == "backend":
            if not rest:
                return f"backend = {self.backend}"
            if rest != "auto" and rest not in self.engine.backends:
                options = ", ".join(["auto", *sorted(self.engine.backends)])
                return f"error: unknown backend {rest!r} (have: {options})"
            self.backend = rest
            return f"backend = {rest}"
        if head == "worlds":
            value, _t = self._lookup_value(rest)
            rendered = sorted(format_value(w) for w in worlds(value))
            return "{" + ", ".join(rendered) + "}"
        if head == "count":
            m, value = self._morphism_and_value(rest, "count")
            return str(self.engine.count_worlds(m, value, backend=self.backend))
        if head == "certain":
            m, value = self._morphism_and_value(rest, "certain")
            return self._render(self.engine.certain(m, value, backend=self.backend))
        if head == "possible":
            m, value = self._morphism_and_value(rest, "possible")
            return self._render(self.engine.possible(m, value, backend=self.backend))
        if head == "type":
            value, t = self._lookup_value(rest)
            return format_type(t)
        if head == "typeof":
            if rest in self.morphisms:
                return format_type(infer_signature(self.morphisms[rest]))
            return format_type(infer_signature(self._morphism(rest)))
        if head == "size":
            value, _t = self._lookup_value(rest)
            return str(size(value))
        if head == "del":
            if rest in self.values:
                del self.values[rest]
                return f"deleted {rest}"
            if rest in self.morphisms:
                del self.morphisms[rest]
                return f"deleted {rest}"
            return f"error: unbound name {rest!r}"
        if head == "show":
            value, t = self._lookup_value(rest)
            return self._render(value, t)
        if line in self.values:
            value, t = self.values[line]
            return self._render(value, t)
        if line in self.morphisms:
            return self.morphisms[line].describe()
        return f"error: unknown command {head!r} (try: help)"

    def _cmd_let(self, rest: str) -> str:
        name, _, definition = rest.partition("=")
        name = name.strip()
        if not definition:
            return "error: expected  let NAME = VALUE"
        declared: Type | None = None
        if ":" in name:
            name, _, type_text = name.partition(":")
            name = name.strip()
            declared = parse_type(type_text.strip())
        if not name.isidentifier():
            return f"error: bad name {name!r}"
        value = parse_value(definition.strip())
        if declared is not None and not check_type(value, declared):
            return (
                f"error: {format_value(value)} does not inhabit "
                f"{format_type(declared)}"
            )
        t = declared if declared is not None else infer_type(value)
        self.values[name] = (value, t)
        return f"{name} = {self._render(value, t)}"

    def _cmd_def(self, rest: str) -> str:
        name, _, definition = rest.partition("=")
        name = name.strip()
        if not definition or not name.isidentifier():
            return "error: expected  def NAME = MORPHISM"
        m = parse_morphism(definition.strip(), env=self.morphisms)
        self.morphisms[name] = m
        return f"{name} = {m.describe()}"

    def _morphism_and_value(self, rest: str, cmd: str) -> tuple[Morphism, Value]:
        # `CMD MORPHISM NAME` — same shape as `apply`.
        morph_text, _, arg = rest.strip().rpartition(" ")
        if not morph_text:
            raise OrNRAError(f"expected  {cmd} MORPHISM NAME")
        if arg not in self.values:
            raise OrNRAError(f"unbound value {arg!r}")
        return self._morphism(morph_text), self.values[arg][0]

    def _cmd_apply(self, rest: str) -> str:
        # `apply MORPHISM NAME` — the argument is the trailing identifier.
        text = rest.strip()
        morph_text, _, arg = text.rpartition(" ")
        if not morph_text:
            return "error: expected  apply MORPHISM NAME"
        if arg not in self.values:
            return f"error: unbound value {arg!r}"
        m = self._morphism(morph_text)
        value, _t = self.values[arg]
        result = self.engine.run(m, value, backend=self.backend)
        return self._render(result)

    def _split_trailing_names(self, rest: str, usage: str) -> tuple[Morphism, list[str]]:
        # `CMD MORPHISM NAME...` — the arguments are the trailing run of
        # bound value names; everything before them is the morphism
        # text.  A bound name may shadow a morphism word (e.g. a value
        # called `alpha`), so of the candidate splits we take the
        # longest name suffix whose prefix actually parses.
        tokens = rest.split()
        longest = len(tokens)
        while longest > 1 and tokens[longest - 1] in self.values:
            longest -= 1
        if longest == len(tokens) or longest == 0:
            raise OrNRAError(usage)
        last_error: OrNRAError | None = None
        for split in range(longest, len(tokens)):
            try:
                m = self._morphism(" ".join(tokens[:split]))
            except OrNRAError as exc:
                last_error = exc
                continue
            return m, tokens[split:]
        raise last_error if last_error is not None else OrNRAError(usage)

    def _cmd_applymany(self, rest: str) -> str:
        m, names = self._split_trailing_names(
            rest, "expected  applymany MORPHISM NAME..."
        )
        results = self.engine.run_many(
            m,
            [self.values[name][0] for name in names],
            backend=self.backend,
        )
        return "\n".join(
            f"{name}: {self._render(result)}"
            for name, result in zip(names, results, strict=True)
        )

    def _cmd_serve(self, rest: str) -> str:
        # The serving-layer smoke command: each named binding becomes one
        # concurrent client request against an AsyncEngine, so the
        # output's trailing line shows micro-batching and dedupe at work.
        import asyncio

        from repro.io import value_from_json, value_to_json
        from repro.serve import AsyncEngine

        m, names = self._split_trailing_names(rest, "expected  serve MORPHISM NAME...")
        payloads = [value_to_json(self.values[name][0]) for name in names]

        async def drive():
            async with AsyncEngine(backend=self.backend) as server:
                results = await server.run_many(m, payloads)
                return results, server.stats()

        results, stats = asyncio.run(drive())
        lines = [
            f"{name}: {self._render(value_from_json(result))}"
            for name, result in zip(names, results, strict=True)
        ]
        lines.append(
            f"served {stats['requests']} request(s) in {stats['batches']} "
            f"batch(es): {stats['unique_inputs']} unique, "
            f"{stats['deduped_inputs']} deduplicated"
        )
        lines.append(
            f"robustness: shed {stats['shed']}, timeouts {stats['timeouts']}, "
            f"retries {stats['retries']}, degraded {stats['degraded']}, "
            f"breaker {'open' if stats['breaker_open'] else 'closed'}"
        )
        latency = stats.get("latency")
        if latency is not None:
            total = latency["total"]
            lines.append(
                "latency: p50 {p50:.2f}ms, p90 {p90:.2f}ms, p99 {p99:.2f}ms "
                "({rps:.0f} req/s)".format(
                    p50=(total["p50"] or 0.0) * 1000,
                    p90=(total["p90"] or 0.0) * 1000,
                    p99=(total["p99"] or 0.0) * 1000,
                    rps=latency["throughput_rps"],
                )
            )
        return "\n".join(lines)


def main(stdin: TextIO | None = None, stdout: TextIO | None = None) -> None:
    """The interactive loop (``python -m repro.repl``)."""
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    repl = Repl()
    print("or-NRA+ interpreter (type 'help'; 'quit' to exit)", file=stdout)
    while True:
        print("or-nra> ", end="", file=stdout, flush=True)
        line = stdin.readline()
        if not line or line.strip() in ("quit", "exit"):
            print("bye.", file=stdout)
            return
        output = repl.eval_line(line)
        if output:
            print(output, file=stdout)


if __name__ == "__main__":
    main()
