"""Input/output facilities (Section 7's OR-SML package features).

Values and types round-trip through two formats:

* the paper's *text* notation via :mod:`repro.lang.parser` and
  :func:`repro.values.format_value`;
* a plain-JSON structure for interchange with other tooling.

JSON encoding: atoms become ``{"atom": base, "value": v}``; pairs
``{"pair": [a, b]}``; sets ``{"set": [...]}``; or-sets ``{"orset": [...]}``;
bags ``{"bag": [...]}``; unit ``{"unit": true}``; variant injections
``{"inl": ...}`` / ``{"inr": ...}``.
"""

from __future__ import annotations

import json
from functools import lru_cache

from repro.errors import OrNRAValueError
from repro.types.kinds import Type
from repro.types.parse import format_type, parse_type
from repro.values.values import (
    UNIT_VALUE,
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
    format_value,
)

__all__ = [
    "value_to_json",
    "value_from_json",
    "dumps_value",
    "loads_value",
    "dumps_type",
    "loads_type",
    "value_to_text",
    "value_from_text",
    "parsed_morphism",
    "program_digest",
    "run_text",
    "run_json",
    "run_text_many",
    "run_json_many",
    "count_worlds_text",
    "count_worlds_json",
    "certain_text",
    "certain_json",
]


def value_to_json(v: Value) -> object:
    """Encode *v* as plain JSON-serializable data."""
    if isinstance(v, UnitValue):
        return {"unit": True}
    if isinstance(v, Atom):
        return {"atom": v.base, "value": v.value}
    if isinstance(v, Pair):
        return {"pair": [value_to_json(v.fst), value_to_json(v.snd)]}
    if isinstance(v, SetValue):
        return {"set": [value_to_json(e) for e in v.elems]}
    if isinstance(v, OrSetValue):
        return {"orset": [value_to_json(e) for e in v.elems]}
    if isinstance(v, BagValue):
        return {"bag": [value_to_json(e) for e in v.elems]}
    if isinstance(v, Variant):
        key = "inl" if v.side == 0 else "inr"
        return {key: value_to_json(v.payload)}
    raise OrNRAValueError(f"not a value: {v!r}")


def _json_elements(data: dict, key: str) -> list[Value]:
    elems = data[key]
    if not isinstance(elems, list):
        raise OrNRAValueError(
            f"malformed value JSON: {key!r} expects a list of elements, got {elems!r}"
        )
    return [value_from_json(e) for e in elems]


def value_from_json(data: object) -> Value:
    """Decode the JSON structure produced by :func:`value_to_json`.

    Every malformed fragment — a ``"pair"`` that is not a two-element
    list, a non-list ``"set"``/``"orset"``/``"bag"``, an ``"atom"``
    without a ``"value"`` — raises :class:`~repro.errors.OrNRAValueError`
    naming the offending fragment, never a bare ``ValueError`` or
    ``TypeError`` from the decoding plumbing.
    """
    if not isinstance(data, dict):
        raise OrNRAValueError(f"malformed value JSON: {data!r}")
    if "unit" in data:
        return UNIT_VALUE
    if "atom" in data:
        if "value" not in data:
            raise OrNRAValueError(f"malformed value JSON: atom without a value: {data!r}")
        payload = data["value"]
        if not isinstance(payload, (bool, int, float, str)):
            raise OrNRAValueError(
                f"malformed value JSON: atom value must be a scalar, got {payload!r}"
            )
        return Atom(str(data["atom"]), payload)
    if "pair" in data:
        sides = data["pair"]
        if not isinstance(sides, list) or len(sides) != 2:
            raise OrNRAValueError(
                f"malformed value JSON: 'pair' expects [left, right], got {sides!r}"
            )
        return Pair(value_from_json(sides[0]), value_from_json(sides[1]))
    if "set" in data:
        return SetValue(_json_elements(data, "set"))
    if "orset" in data:
        return OrSetValue(_json_elements(data, "orset"))
    if "bag" in data:
        return BagValue(_json_elements(data, "bag"))
    if "inl" in data:
        return Variant(0, value_from_json(data["inl"]))
    if "inr" in data:
        return Variant(1, value_from_json(data["inr"]))
    raise OrNRAValueError(f"malformed value JSON: {data!r}")


def dumps_value(v: Value) -> str:
    """Serialize *v* to a JSON string."""
    return json.dumps(value_to_json(v), sort_keys=True)


def loads_value(text: str) -> Value:
    """Deserialize a value from :func:`dumps_value` output."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise OrNRAValueError(f"malformed value JSON: {exc}") from exc
    return value_from_json(data)


def dumps_type(t: Type) -> str:
    """Serialize a type in the concrete syntax."""
    return format_type(t)


def loads_type(text: str) -> Type:
    """Parse a type from its concrete syntax."""
    return parse_type(text)


def value_to_text(v: Value) -> str:
    """The paper-notation rendering of *v* (parsable back)."""
    return format_value(v)


def value_from_text(text: str) -> Value:
    """Parse a value from the paper notation."""
    from repro.lang.parser import parse_value

    return parse_value(text)


@lru_cache(maxsize=512)
def _parse_morphism_cached(text: str):
    from repro.lang.parser import parse_morphism

    return parse_morphism(text)


def parsed_morphism(program):
    """Resolve *program* — surface-syntax text or a Morphism — to a Morphism.

    Parses are memoized (an LRU over the program text), which is what
    lets a serving loop re-submit the same query string thousands of
    times without re-parsing: the text maps to the *same* morphism
    object, so the engine's plan cache hits too.  Morphism instances
    pass through untouched — the hook the async front-end and the REPL
    use to serve pre-resolved (named) programs.
    """
    from repro.lang.morphisms import Morphism

    if isinstance(program, Morphism):
        return program
    return _parse_morphism_cached(program)


def program_digest(program) -> str:
    """A stable hex digest of a program's text — the cache-affinity key.

    The multi-process serving front-end (:mod:`repro.serve.net`) routes
    requests to workers by this digest, so every request for one program
    lands on the worker whose plan cache, parse memo and interner are
    already hot for it.  *program* is surface-syntax text or a
    pre-resolved :class:`~repro.lang.morphisms.Morphism` (digested by its
    canonical ``describe()`` rendering, so text and resolved forms of the
    same program agree).
    """
    import hashlib

    from repro.lang.morphisms import Morphism

    text = program.describe() if isinstance(program, Morphism) else str(program)
    return hashlib.sha1(text.encode("utf-8", "replace")).hexdigest()


def _deadline_scope(timeout: float | None):
    """A deadline context for the evaluation helpers.

    ``timeout=None`` (the default) inherits whatever deadline is already
    ambient — notably the serving layer's per-request deadline — so a
    nested helper call never silently *extends* a request's budget.
    """
    from repro.engine import Deadline, deadline_scope

    deadline = Deadline.after(timeout) if timeout is not None else None
    if deadline is None:
        from contextlib import nullcontext

        return nullcontext()
    return deadline_scope(deadline)


def run_text(
    morphism_text: str,
    value_text: str,
    backend: str = "eager",
    timeout: float | None = None,
) -> str:
    """Parse, compile and run a query; both sides in the paper notation.

    The batch-mode counterpart of the REPL's ``apply``: the program goes
    through the engine (optimizer passes, plan compilation), so repeated
    calls share compiled plans.  Values are *not* interned — these
    helpers serve arbitrary one-shot inputs, and the default engine's
    arena pins everything it interns for the process lifetime.
    *timeout* (seconds) bounds the evaluation: past it, the engine's
    cooperative checkpoints raise :class:`~repro.errors.DeadlineExceeded`.

    >>> run_text("ormap(map(pi_1)) o alpha", "{<(1, 2), (3, 4)>}")
    '<{1}, {3}>'
    """
    from repro.engine import run
    from repro.lang.parser import parse_value

    with _deadline_scope(timeout):
        result = run(
            parsed_morphism(morphism_text),
            parse_value(value_text),
            backend=backend,
            intern=False,
        )
    return format_value(result)


def run_json(
    morphism_text: str,
    value_json: object,
    backend: str = "eager",
    timeout: float | None = None,
) -> object:
    """Run a query over the JSON value encoding (interchange endpoint).

    The program is given in the surface syntax, the input and output in
    the :func:`value_to_json` structure.  *timeout* bounds the
    evaluation (see :func:`run_text`).
    """
    from repro.engine import run

    with _deadline_scope(timeout):
        result = run(
            parsed_morphism(morphism_text),
            value_from_json(value_json),
            backend=backend,
            intern=False,
        )
    return value_to_json(result)


def count_worlds_text(
    morphism_text: str, value_text: str, backend: str = "auto"
) -> int:
    """Exact world count of a query's output; input in the paper notation.

    The batch-mode counterpart of the REPL's ``count``.  With the
    default ``backend="auto"`` the engine routes supported plans to the
    symbolic backend (:mod:`repro.engine.symbolic`), which counts
    without enumerating — astronomically many worlds come back in
    milliseconds.

    >>> count_worlds_text("normalize", "{<1, 2>, <2, 3>}")
    4
    """
    from repro.engine import count_worlds
    from repro.lang.parser import parse_value

    return count_worlds(
        parsed_morphism(morphism_text),
        parse_value(value_text),
        backend=backend,
        intern=False,
    )


def count_worlds_json(
    morphism_text: str, value_json: object, backend: str = "auto"
) -> int:
    """:func:`count_worlds_text` over the JSON value encoding."""
    from repro.engine import count_worlds

    return count_worlds(
        parsed_morphism(morphism_text),
        value_from_json(value_json),
        backend=backend,
        intern=False,
    )


def certain_text(morphism_text: str, value_text: str, backend: str = "auto") -> str:
    """The certain answers of a query — elements in *every* world of the
    output — in the paper notation (the REPL's ``certain``).

    >>> certain_text("normalize", "{<1>, <2, 3>}")
    '{1}'
    """
    from repro.engine import certain
    from repro.lang.parser import parse_value

    result = certain(
        parsed_morphism(morphism_text),
        parse_value(value_text),
        backend=backend,
        intern=False,
    )
    return format_value(result)


def certain_json(
    morphism_text: str, value_json: object, backend: str = "auto"
) -> object:
    """:func:`certain_text` over the JSON value encoding."""
    from repro.engine import certain

    result = certain(
        parsed_morphism(morphism_text),
        value_from_json(value_json),
        backend=backend,
        intern=False,
    )
    return value_to_json(result)


def run_text_many(
    morphism_text,
    value_texts: list[str],
    backend: str = "eager",
    max_workers: int | None = None,
    timeout: float | None = None,
) -> list[str]:
    """Batched :func:`run_text`: parse and compile once, fan out.

    Unlike a loop of ``run_text`` calls, the batch shares one
    *batch-scoped* interner — structurally equal inputs (and their
    memoized normal forms) are computed once — and nothing stays pinned
    in the default engine's arena after the call returns.  *morphism_text*
    may also be a pre-resolved Morphism; *max_workers* bounds the batch's
    fan-out (``0``/``1`` for strictly sequential); *timeout* bounds the
    whole batch's evaluation (see :func:`run_text`).
    """
    from repro.engine import DEFAULT_ENGINE, Interner
    from repro.lang.parser import parse_value

    with _deadline_scope(timeout):
        results = DEFAULT_ENGINE.run_many(
            parsed_morphism(morphism_text),
            [parse_value(text) for text in value_texts],
            backend=backend,
            interner=Interner(),
            max_workers=max_workers,
        )
    return [format_value(r) for r in results]


def run_json_many(
    morphism_text,
    values_json: list,
    backend: str = "eager",
    max_workers: int | None = None,
    timeout: float | None = None,
) -> list[object]:
    """Batched :func:`run_json`: parse and compile once, fan out.

    The batch endpoint for serving many worlds of one query — and the
    function the async front-end (:mod:`repro.serve`) fans each
    micro-batch into: the program is parsed and compiled once (parses
    are LRU-memoized across calls via :func:`parsed_morphism`, so a
    serving loop pays the parse once per query text, not per batch),
    structurally equal inputs are computed once (one batch-scoped
    interner shares memoized normal forms across the whole batch), and
    distinct inputs fan out across worker threads — or whole worker
    processes when ``backend="process"``.  Results come back in input
    order; nothing is pinned in the default engine's arena afterwards.
    *morphism_text* may also be a pre-resolved Morphism; *max_workers*
    bounds the batch's fan-out (``0``/``1`` for strictly sequential);
    *timeout* bounds the whole batch's evaluation (see :func:`run_text`).
    """
    from repro.engine import DEFAULT_ENGINE, Interner

    with _deadline_scope(timeout):
        results = DEFAULT_ENGINE.run_many(
            parsed_morphism(morphism_text),
            [value_from_json(v) for v in values_json],
            backend=backend,
            interner=Interner(),
            max_workers=max_workers,
        )
    return [value_to_json(r) for r in results]
