"""Input/output facilities (Section 7's OR-SML package features).

Values and types round-trip through two formats:

* the paper's *text* notation via :mod:`repro.lang.parser` and
  :func:`repro.values.format_value`;
* a plain-JSON structure for interchange with other tooling.

JSON encoding: atoms become ``{"atom": base, "value": v}``; pairs
``{"pair": [a, b]}``; sets ``{"set": [...]}``; or-sets ``{"orset": [...]}``;
bags ``{"bag": [...]}``; unit ``{"unit": true}``; variant injections
``{"inl": ...}`` / ``{"inr": ...}``.
"""

from __future__ import annotations

import json

from repro.errors import OrNRAValueError
from repro.types.kinds import Type
from repro.types.parse import format_type, parse_type
from repro.values.values import (
    UNIT_VALUE,
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
    format_value,
)

__all__ = [
    "value_to_json",
    "value_from_json",
    "dumps_value",
    "loads_value",
    "dumps_type",
    "loads_type",
    "value_to_text",
    "value_from_text",
    "run_text",
    "run_json",
]


def value_to_json(v: Value) -> object:
    """Encode *v* as plain JSON-serializable data."""
    if isinstance(v, UnitValue):
        return {"unit": True}
    if isinstance(v, Atom):
        return {"atom": v.base, "value": v.value}
    if isinstance(v, Pair):
        return {"pair": [value_to_json(v.fst), value_to_json(v.snd)]}
    if isinstance(v, SetValue):
        return {"set": [value_to_json(e) for e in v.elems]}
    if isinstance(v, OrSetValue):
        return {"orset": [value_to_json(e) for e in v.elems]}
    if isinstance(v, BagValue):
        return {"bag": [value_to_json(e) for e in v.elems]}
    if isinstance(v, Variant):
        key = "inl" if v.side == 0 else "inr"
        return {key: value_to_json(v.payload)}
    raise OrNRAValueError(f"not a value: {v!r}")


def value_from_json(data: object) -> Value:
    """Decode the JSON structure produced by :func:`value_to_json`."""
    if not isinstance(data, dict):
        raise OrNRAValueError(f"malformed value JSON: {data!r}")
    if "unit" in data:
        return UNIT_VALUE
    if "atom" in data:
        return Atom(str(data["atom"]), data["value"])
    if "pair" in data:
        left, right = data["pair"]
        return Pair(value_from_json(left), value_from_json(right))
    if "set" in data:
        return SetValue(value_from_json(e) for e in data["set"])
    if "orset" in data:
        return OrSetValue(value_from_json(e) for e in data["orset"])
    if "bag" in data:
        return BagValue(value_from_json(e) for e in data["bag"])
    if "inl" in data:
        return Variant(0, value_from_json(data["inl"]))
    if "inr" in data:
        return Variant(1, value_from_json(data["inr"]))
    raise OrNRAValueError(f"malformed value JSON: {data!r}")


def dumps_value(v: Value) -> str:
    """Serialize *v* to a JSON string."""
    return json.dumps(value_to_json(v), sort_keys=True)


def loads_value(text: str) -> Value:
    """Deserialize a value from :func:`dumps_value` output."""
    return value_from_json(json.loads(text))


def dumps_type(t: Type) -> str:
    """Serialize a type in the concrete syntax."""
    return format_type(t)


def loads_type(text: str) -> Type:
    """Parse a type from its concrete syntax."""
    return parse_type(text)


def value_to_text(v: Value) -> str:
    """The paper-notation rendering of *v* (parsable back)."""
    return format_value(v)


def value_from_text(text: str) -> Value:
    """Parse a value from the paper notation."""
    from repro.lang.parser import parse_value

    return parse_value(text)


def run_text(morphism_text: str, value_text: str, backend: str = "eager") -> str:
    """Parse, compile and run a query; both sides in the paper notation.

    The batch-mode counterpart of the REPL's ``apply``: the program goes
    through the engine (optimizer passes, plan compilation), so repeated
    calls share compiled plans.  Values are *not* interned — these
    helpers serve arbitrary one-shot inputs, and the default engine's
    arena pins everything it interns for the process lifetime.

    >>> run_text("ormap(map(pi_1)) o alpha", "{<(1, 2), (3, 4)>}")
    '<{1}, {3}>'
    """
    from repro.engine import run
    from repro.lang.parser import parse_morphism, parse_value

    result = run(
        parse_morphism(morphism_text),
        parse_value(value_text),
        backend=backend,
        intern=False,
    )
    return format_value(result)


def run_json(morphism_text: str, value_json: object, backend: str = "eager") -> object:
    """Run a query over the JSON value encoding (interchange endpoint).

    The program is given in the surface syntax, the input and output in
    the :func:`value_to_json` structure.
    """
    from repro.engine import run
    from repro.lang.parser import parse_morphism

    result = run(
        parse_morphism(morphism_text),
        value_from_json(value_json),
        backend=backend,
        intern=False,
    )
    return value_to_json(result)
