"""Sharded execution over the plan's collection spine (threads + shared core).

The PODS'93 semantics makes possible-worlds evaluation embarrassingly
parallel — every or-set branch is an independent world, and the
structural operators (``map``, ``mu``, the coercions) act elementwise on
the top-level collection.  :class:`ShardedBackend` exploits exactly that
independence at the plan level, and is the shared core behind both the
thread-pool :class:`ParallelBackend` here and the multiprocess
:class:`~repro.engine.process.ProcessBackend`:

* the input collection of a ``map`` stage is split into *shards*
  (contiguous element chunks), and the compiled body closure runs on
  each shard in a worker pool;
* ``mu`` and the kind-changing coercions are cheap resharding steps that
  keep elements chunked (flattening or retagging without materializing a
  canonical collection between stages);
* any node that is not a streamable spine stage falls back to the eager
  closure on the *materialized* (merged, canonicalized) intermediate,
  after which sharding resumes — so every plan executes, parallel where
  the spine allows and eager where it does not;
* materialization merges shards in order, and the collection
  constructors canonicalize (sort, deduplicate) exactly as the eager
  backend's do, so results are structurally identical to
  :class:`~repro.engine.backends.EagerBackend`'s on every program
  (property-tested in ``tests/engine/test_parallel.py`` and gated for
  every registered backend by
  ``tests/engine/test_backend_conformance.py``).

Like the streaming backend, intermediate shards may carry transient
duplicates (canonicalization is deferred to materialization); the
set/or-set → bag coercions therefore deduplicate across shards so no
transient duplicate becomes an observable multiplicity.

The chunk-level helpers (:func:`apply_body_to_chunk`,
:func:`flatten_chunk`) are module-level functions, not closures: thread
workers only need callables, but the process backend pickles its shard
tasks, and a lambda-capturing closure would not survive the trip.

:class:`ParallelBackend`'s pool is a lazily created
:class:`~concurrent.futures.ThreadPoolExecutor` shared by all executions
on one backend instance.  Worker closures touch only the (locked)
interner and immutable values, so concurrent shards are safe; on
free-threaded builds the shards genuinely overlap, on GIL builds the
backend degrades to eager-equivalent throughput (which is what makes the
multiprocess backend worth its serialization cost on CPU-bound plans).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Callable, Iterable

from repro.errors import OrNRATypeError
from repro.lang.bag_ops import BagUnique
from repro.values.values import Value

from repro.engine.backends import _MU, _RETAG, _WRAPPER_OF, BACKENDS, Backend
from repro.engine.columnar import Arena, compile_stages, encode_input, run_stages
from repro.engine.cost_model import PARALLEL_BREAK_EVEN_WORK, estimate_value
from repro.engine.deadline import checkpoint
from repro.engine.interning import Interner
from repro.engine.plan import MAP_KINDS, Plan, PlanNode

__all__ = [
    "ShardedBackend",
    "ParallelBackend",
    "default_worker_count",
    "apply_body_to_chunk",
    "flatten_chunk",
    "dedup_chunks",
    "even_chunks",
    "even_ranges",
]


def default_worker_count() -> int:
    """The stdlib-flavoured default pool width."""
    return min(32, (os.cpu_count() or 1) + 4)


class _Shards:
    """A chunked collection flowing along the spine: kind + element chunks."""

    __slots__ = ("kind", "chunks")

    def __init__(self, kind: str, chunks: list[list[Value]]) -> None:
        self.kind = kind
        self.chunks = chunks


def _materialize(x: "Value | _Shards") -> Value:
    if isinstance(x, _Shards):
        wrapper = _WRAPPER_OF[x.kind]
        return wrapper(e for chunk in x.chunks for e in chunk)
    return x


# -- module-level chunk helpers (shared by the thread and process pools) -----


def apply_body_to_chunk(body: Callable[[Value], Value], chunk: list[Value]) -> list[Value]:
    """Apply a compiled map body to every element of one shard.

    The per-element :func:`~repro.engine.deadline.checkpoint` is the
    sharded walk's cooperative cancellation point — free when no
    deadline is installed, and a no-op inside process-pool workers
    (the deadline context never crosses the pickle boundary; the
    coordinator enforces it pool-side instead).
    """
    out: list[Value] = []
    for e in chunk:
        checkpoint("sharded map body")
        out.append(body(e))
    return out


def flatten_chunk(chunk: list[Value], wrapper: type, noun: str) -> list[Value]:
    """One ``mu`` shard: concatenate the inner collections' elements."""
    out: list[Value] = []
    for inner in chunk:
        if not isinstance(inner, wrapper):
            raise OrNRATypeError(f"{noun}, got element {inner!r}")
        out.extend(inner.elems)
    return out


def even_chunks(items: list, n: int) -> list[list]:
    """Split *items* into *n* contiguous chunks of near-equal length."""
    n = max(1, min(n, len(items)))
    step, extra = divmod(len(items), n)
    chunks, start = [], 0
    for i in range(n):
        end = start + step + (1 if i < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks


def even_ranges(length: int, n: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` ranges covering ``range(length)``."""
    n = max(1, min(n, length))
    step, extra = divmod(length, n)
    ranges, start = [], 0
    for i in range(n):
        end = start + step + (1 if i < extra else 0)
        ranges.append((start, end))
        start = end
    return ranges


def dedup_chunks(chunks: list[list[Value]]) -> list[list[Value]]:
    """Drop duplicates across shards, keeping first occurrences in order."""
    seen: set[Value] = set()
    out: list[list[Value]] = []
    for chunk in chunks:
        kept: list[Value] = []
        for e in chunk:
            if e not in seen:
                seen.add(e)
                kept.append(e)
        out.append(kept)
    return out


class ShardedBackend(Backend):
    """The sharded spine walk, with the chunk executor left to subclasses.

    Subclasses override :meth:`_map_chunks` (how a list of shards is
    mapped through a chunk function — inline here, a thread pool in
    :class:`ParallelBackend`) and optionally :meth:`_run_map_stage` (how
    a ``map`` stage's compiled body reaches the workers — the process
    backend ships the plan instead of a closure).  *min_shard* is the
    smallest collection worth splitting — anything shorter runs as a
    single inline shard.
    """

    name = "sharded"

    def __init__(
        self,
        max_workers: int | None = None,
        min_shard: int = 4,
        break_even_work: int = 0,
    ) -> None:
        self.max_workers = max_workers if max_workers is not None else default_worker_count()
        self.min_shard = max(1, min_shard)
        # Estimated per-element work below which sharding costs more than
        # it buys; 0 disables the gate (shard whenever wide enough).
        self.break_even_work = max(0, break_even_work)

    # -- chunk executor (overridden by the pools) --------------------------

    def _map_chunks(
        self, fn: Callable[[list[Value]], list[Value]], chunks: list[list[Value]]
    ) -> list[list[Value]]:
        return [fn(chunk) for chunk in chunks]

    def close(self) -> None:
        """Release pooled workers (a later execute reopens them)."""

    # -- sharding ----------------------------------------------------------

    def _shard(
        self,
        elems: Iterable[Value],
        hint: int | None = None,
        elem_work: int | None = None,
    ) -> list[list[Value]]:
        items = list(elems)
        if len(items) < max(self.min_shard, 2) or self.max_workers <= 1:
            return [items] if items else [[]]
        # Below the break-even the per-shard dispatch overhead exceeds
        # the work being split: keep the collection as one inline shard
        # so the backend never loses to eager on trivial bodies.
        if (
            elem_work is not None
            and self.break_even_work
            and elem_work < self.break_even_work
        ):
            return [items]
        # A shard-count *hint* (the cost model's estimate-proportional
        # choice) overrides the fixed workers*2 default.
        n_chunks = min(len(items), hint if hint else self.max_workers * 2)
        return even_chunks(items, n_chunks)

    def _as_shards(
        self,
        x: "Value | _Shards",
        kind: str,
        error: str,
        hint: int | None = None,
        elem_work: int | None = None,
    ) -> _Shards:
        if isinstance(x, _Shards):
            if x.kind != kind:
                raise OrNRATypeError(f"{error}, got {_materialize(x)!r}")
            return x
        wrapper = _WRAPPER_OF[kind]
        if not isinstance(x, wrapper):
            raise OrNRATypeError(f"{error}, got {x!r}")
        return _Shards(kind, self._shard(x.elems, hint, elem_work))

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        plan: Plan,
        value: Value,
        interner: Interner | None = None,
        shard_hint: int | None = None,
    ) -> Value:
        """Run the plan; *shard_hint* (from the cost model's estimate)
        sizes the chunks whenever a concrete collection is sharded."""
        from repro.engine.passes import fuse_plan

        plan = fuse_plan(plan)
        elem_work: int | None = None
        if self.break_even_work:
            est = estimate_value(value)
            if est.width:
                elem_work = est.norm_size // max(1, est.width)
        leaf = interner.leaf_apply if interner is not None else None
        result = self._eval(plan, plan.root, value, leaf, {}, shard_hint, elem_work)
        return _materialize(result)

    def _eval(
        self,
        plan: Plan,
        idx: int,
        value: "Value | _Shards",
        leaf: Callable | None,
        bound: dict[int, Callable[[Value], Value]],
        hint: int | None = None,
        elem_work: int | None = None,
    ) -> "Value | _Shards":
        node = plan.nodes[idx]
        op = node.op
        checkpoint("sharded stage")
        if op == "id":
            return value
        if op == "chain":
            for kid in node.kids:
                value = self._eval(plan, kid, value, leaf, bound, hint, elem_work)
            return value
        if op == "fused":
            return self._run_fused(plan, node, value, leaf, bound, hint, elem_work)
        if op == "map":
            kind, _wrapper, _tw, noun = MAP_KINDS[type(node.source)]
            shards = self._as_shards(value, kind, noun, hint, elem_work)
            chunks = self._run_map_stage(plan, node.kids[0], shards.chunks, leaf, bound)
            return _Shards(kind, chunks)
        source_cls = type(node.source)
        if op == "leaf" and source_cls in _MU:
            kind, noun = _MU[source_cls]
            shards = self._as_shards(value, kind, noun, hint, elem_work)
            wrapper = _WRAPPER_OF[kind]
            flatten = partial(flatten_chunk, wrapper=wrapper, noun=noun)
            return _Shards(kind, self._map_chunks(flatten, shards.chunks))
        if op == "leaf" and source_cls in _RETAG:
            kind_in, kind_out, noun = _RETAG[source_cls]
            shards = self._as_shards(value, kind_in, noun, hint, elem_work)
            chunks = shards.chunks
            if kind_out == "bag" and kind_in != "bag":
                # Transient duplicates across shards must not become
                # observable bag multiplicities (cf. the streaming spine).
                chunks = dedup_chunks(chunks)
            return _Shards(kind_out, chunks)
        if op == "leaf" and source_cls is BagUnique:
            shards = self._as_shards(value, "bag", "unique expects a bag", hint)
            return _Shards("bag", dedup_chunks(shards.chunks))
        # Anything else: merge-materialize and run the eager closure.
        concrete = _materialize(value)
        return self._bind_eager(plan, idx, leaf, bound)(concrete)

    # -- fused (columnar) stages -------------------------------------------

    def _run_fused(
        self,
        plan: Plan,
        node: PlanNode,
        value: "Value | _Shards",
        leaf: Callable | None,
        bound: dict[int, Callable[[Value], Value]],
        hint: int | None = None,
        elem_work: int | None = None,
    ) -> Value:
        """Run one fused node: arena slices across workers when the spec
        is map-only and wide enough, the inline kernel otherwise."""
        concrete = _materialize(value)
        kernel = self._bind_eager(plan, node.idx, leaf, bound)
        spec = node.spec or ()
        if any(stage[0] != "map" for stage in spec):
            # mu re-segments and retag/unique change cardinality across
            # slice boundaries; run those single-pass in this thread.
            return kernel(concrete)
        wrapper = _WRAPPER_OF.get(spec[0][1]) if spec else None
        if wrapper is None or not isinstance(concrete, wrapper):
            return kernel(concrete)  # raises the stage's own type error
        n = len(concrete.elems)
        if (
            n < max(self.min_shard, 2)
            or self.max_workers <= 1
            or (
                elem_work is not None
                and self.break_even_work
                and elem_work < self.break_even_work
            )
        ):
            return kernel(concrete)
        arena = encode_input(spec, concrete)
        n_slices = min(n, hint if hint else self.max_workers * 2)
        out = self._run_fused_slices(plan, node, arena, n_slices, leaf, bound)
        if out is None:
            return kernel(concrete)
        return out.to_value()

    def _run_fused_slices(
        self,
        plan: Plan,
        node: PlanNode,
        arena: Arena,
        n_slices: int,
        leaf: Callable | None,
        bound: dict[int, Callable[[Value], Value]],
    ) -> Arena | None:
        """Map a fused kernel over contiguous arena slices in workers.

        Returns ``None`` when no pool is available (the caller falls back
        to the inline kernel).  The base class has no pool.
        """
        return None

    def _run_map_stage(
        self,
        plan: Plan,
        body_idx: int,
        chunks: list[list[Value]],
        leaf: Callable | None,
        bound: dict[int, Callable[[Value], Value]],
    ) -> list[list[Value]]:
        """Run a map stage's body over every shard.

        The body is bound once, in the coordinating thread, so the worker
        callables only *apply* pure compiled functions.  The process
        backend overrides this: a bound closure cannot cross a process
        boundary, so it ships ``(plan, body_idx)`` and rebinds remotely.
        """
        body = self._bind_eager(plan, body_idx, leaf, bound)
        return self._map_chunks(partial(apply_body_to_chunk, body), chunks)

    def _bind_eager(
        self,
        plan: Plan,
        idx: int,
        leaf: Callable | None,
        bound: dict[int, Callable[[Value], Value]],
    ) -> Callable[[Value], Value]:
        """Eager closures for the subtree at *idx*, cached per execution."""

        def build(i: int) -> Callable[[Value], Value]:
            fn = bound.get(i)
            if fn is None:
                fn = Plan._build_node(plan.nodes[i], build, leaf)
                bound[i] = fn
            return fn

        return build(idx)


class ParallelBackend(ShardedBackend):
    """Sharded execution of the top-level collection spine on a thread pool.

    *max_workers* sizes the thread pool (default:
    :func:`default_worker_count`); *min_shard* is the smallest collection
    worth splitting — anything shorter runs as a single inline shard.
    """

    name = "parallel"

    def __init__(
        self,
        max_workers: int | None = None,
        min_shard: int = 4,
        break_even_work: int = PARALLEL_BREAK_EVEN_WORK,
    ) -> None:
        super().__init__(
            max_workers=max_workers,
            min_shard=min_shard,
            break_even_work=break_even_work,
        )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- pool --------------------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor | None:
        if self.max_workers <= 1:
            return None
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-parallel",
                    )
                    self._pool = pool
        return pool

    def close(self) -> None:
        """Shut the worker pool down (a later execute reopens it)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def _map_chunks(
        self, fn: Callable[[list[Value]], list[Value]], chunks: list[list[Value]]
    ) -> list[list[Value]]:
        pool = self._executor() if len(chunks) > 1 else None
        if pool is None:
            return [fn(chunk) for chunk in chunks]
        return list(pool.map(fn, chunks))

    def _run_fused_slices(
        self,
        plan: Plan,
        node: PlanNode,
        arena: Arena,
        n_slices: int,
        leaf: Callable | None,
        bound: dict[int, Callable[[Value], Value]],
    ) -> Arena | None:
        pool = self._executor()
        if pool is None or n_slices <= 1:
            return None
        stages = compile_stages(
            node, lambda i: self._bind_eager(plan, i, leaf, bound)
        )
        ranges = even_ranges(len(arena), n_slices)
        if len(ranges) <= 1:
            return None
        slices = [arena.slice(a, b) for a, b in ranges]
        outs = list(pool.map(partial(run_stages, stages), slices))
        bases: list = []
        raws: list = []
        for out in outs:
            bases.extend(out.bases)
            raws.extend(out.raws)
        return Arena(outs[0].kind, bases, raws)


BACKENDS["parallel"] = ParallelBackend()
