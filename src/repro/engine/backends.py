"""Execution backends for compiled plans.

Two strategies share the plan IR:

* :class:`EagerBackend` binds the plan to nested closures (see
  :meth:`repro.engine.plan.Plan.bind`) and runs them directly — the same
  semantics as the recursive interpreter, minus the per-composition
  interpretive overhead, plus the interner's memoized ``normalize``
  leaves when an arena is supplied.

* :class:`StreamingBackend` threads *lazy* collections through the
  top-level spine of the plan in the style of :mod:`repro.core.lazy`:
  ``map``/``mu``/coercion stages over sets, or-sets and bags pass
  generators along instead of materializing (sorting, deduplicating) a
  canonical collection between every stage.  Only the final result — and
  any intermediate consumed by a non-streamable operator — is
  materialized, so a chain like ``map(f) o mu o map(g)`` canonicalizes
  once instead of three times.  Results are structurally identical to
  the eager backend's.

Both backends also expose :meth:`Backend.possibilities`, the lazy
conceptual-value stream of a program's output, which is how existential
queries short-circuit without producing a whole normal form; the
streaming backend overrides it so the first conceptual value is yielded
straight off the lazy spine, before any materialization.

Two more strategies share the sharded spine walk of
:class:`~repro.engine.parallel.ShardedBackend`: the thread-pool
:class:`~repro.engine.parallel.ParallelBackend` (``BACKENDS["parallel"]``)
and the multiprocess :class:`~repro.engine.process.ProcessBackend`
(``BACKENDS["process"]``); each registers itself when its module is
imported (which :mod:`repro.engine` always does).

Callers rarely pick from :data:`BACKENDS` by hand: ``backend="auto"``
(the :meth:`repro.engine.Engine.run` default) chooses among the four
per call, from the cost model's static world-count estimate and the
plan's spine profile (:func:`repro.engine.cost_model.select_backend`).
The differential conformance suite
(``tests/engine/test_backend_conformance.py``) gates every registered
backend on structural equality with the direct interpreter.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import OrNRATypeError
from repro.lang.bag_ops import BagMu, BagToSet, BagUnique, SetToBag
from repro.lang.orset_ops import OrMu, OrToSet, SetToOr
from repro.lang.set_ops import SetMu
from repro.values.values import (
    BagValue,
    OrSetValue,
    SetValue,
    Value,
)

from repro.engine.deadline import checkpoint
from repro.engine.interning import Interner
from repro.engine.plan import MAP_KINDS, Plan

__all__ = ["Backend", "EagerBackend", "StreamingBackend", "BACKENDS"]


class Backend:
    """Interface: execute a compiled plan on a value."""

    name = "abstract"

    def execute(self, plan: Plan, value: Value, interner: Interner | None = None) -> Value:
        raise NotImplementedError

    def healthy(self) -> bool:
        """May the adaptive selector route new work here?

        The default backend is always available; supervised backends
        (the process pool) override this with their circuit-breaker
        state, and :class:`~repro.engine.Engine` drops unhealthy names
        from ``select_backend(available=)`` until they heal.  Explicit
        ``backend="name"`` requests bypass the health check — the
        supervised fallbacks keep them safe.
        """
        return True

    def possibilities(
        self, plan: Plan, value: Value, interner: Interner | None = None
    ) -> Iterator[Value]:
        """Stream the conceptual values of the program's output lazily."""
        from repro.core.lazy import iter_possibilities

        return iter_possibilities(self.execute(plan, value, interner))


class EagerBackend(Backend):
    """Closure-compiled execution with the original eager semantics."""

    name = "eager"

    def execute(self, plan: Plan, value: Value, interner: Interner | None = None) -> Value:
        checkpoint("eager execution")
        if interner is None:
            return plan.bind()(value)
        # The interner owns the bound-closure memo (not the plan): a
        # plan cached by the engine outlives any batch-scoped arena, and
        # a plan-side entry would pin that arena for the plan's lifetime.
        return interner.bound_plan(plan)(value)


# -- streaming ---------------------------------------------------------------

_WRAPPER_OF = {"set": SetValue, "orset": OrSetValue, "bag": BagValue}

# kind-changing coercions that stream (input kind -> output kind).
_RETAG: dict[type, tuple[str, str, str]] = {
    OrToSet: ("orset", "set", "ortoset expects an or-set"),
    SetToOr: ("set", "orset", "settoor expects a set"),
    BagToSet: ("bag", "set", "bagtoset expects a bag"),
    SetToBag: ("set", "bag", "settobag expects a set"),
}

_MU: dict[type, tuple[str, str]] = {
    SetMu: ("set", "mu expects a set of sets"),
    OrMu: ("orset", "or_mu expects an or-set of or-sets"),
    BagMu: ("bag", "b_mu expects a bag of bags"),
}


class _Stream:
    """A lazily produced collection: kind tag plus an element iterator."""

    __slots__ = ("kind", "elems")

    def __init__(self, kind: str, elems: Iterator[Value]) -> None:
        self.kind = kind
        self.elems = elems


def _materialize(x: "Value | _Stream") -> Value:
    if isinstance(x, _Stream):
        return _WRAPPER_OF[x.kind](x.elems)
    return x


def _dedup(elems: Iterator[Value]) -> Iterator[Value]:
    """Yield each distinct element once, keeping first occurrences."""
    seen: set[Value] = set()
    for e in elems:
        if e not in seen:
            seen.add(e)
            yield e


def _as_stream(x: "Value | _Stream", kind: str, error: str) -> _Stream:
    if isinstance(x, _Stream):
        if x.kind != kind:
            raise OrNRATypeError(f"{error}, got {_materialize(x)!r}")
        return x
    wrapper = _WRAPPER_OF[kind]
    if not isinstance(x, wrapper):
        raise OrNRATypeError(f"{error}, got {x!r}")
    return _Stream(kind, iter(x.elems))


class StreamingBackend(Backend):
    """Lazy element flow along the plan's top-level collection spine."""

    name = "streaming"

    def execute(self, plan: Plan, value: Value, interner: Interner | None = None) -> Value:
        leaf = interner.leaf_apply if interner is not None else None
        result = self._eval(plan, plan.root, value, leaf, {})
        return _materialize(result)

    def possibilities(
        self, plan: Plan, value: Value, interner: Interner | None = None
    ) -> Iterator[Value]:
        """Stream conceptual values without materializing the lazy spine.

        The base implementation executes first — which would canonicalize
        the whole result (defeating the short-circuiting that makes
        existential queries tractable).  Here, when the plan's output is
        a lazy *or-set* spine, each element's worlds are yielded as the
        element is produced: the or-set is a disjunction, so its
        conceptual values are the union of its elements' worlds and the
        first witness never forces the tail.  Set/bag-kinded outputs take
        a choice per member (a cross product), so they materialize as
        before.  Yield order may differ from the eager backend's; the
        yielded *set* of values is identical.
        """
        from repro.core.lazy import iter_possibilities
        from repro.core.worlds import iter_worlds

        leaf = interner.leaf_apply if interner is not None else None
        result = self._eval(plan, plan.root, value, leaf, {})
        if isinstance(result, _Stream) and result.kind == "orset":

            def stream(elems=result.elems):
                seen: set[Value] = set()
                for elem in elems:
                    for world in iter_worlds(elem):
                        if world not in seen:
                            seen.add(world)
                            yield world

            return stream()
        return iter_possibilities(_materialize(result))

    def _eval(
        self,
        plan: Plan,
        idx: int,
        value: "Value | _Stream",
        leaf: Callable | None,
        bound: dict[int, Callable[[Value], Value]],
    ) -> "Value | _Stream":
        node = plan.nodes[idx]
        op = node.op
        checkpoint("streaming stage")
        if op == "id":
            return value
        if op == "chain":
            for kid in node.kids:
                value = self._eval(plan, kid, value, leaf, bound)
            return value
        if op == "map":
            kind, _wrapper, _tw, noun = MAP_KINDS[type(node.source)]
            stream = _as_stream(value, kind, noun)
            body = node.kids[0]

            def mapped(elems=stream.elems, body=body):
                for e in elems:
                    checkpoint("streaming map")
                    yield _materialize(self._eval(plan, body, e, leaf, bound))

            return _Stream(kind, mapped())
        source_cls = type(node.source)
        if op == "leaf" and source_cls in _MU:
            kind, noun = _MU[source_cls]
            stream = _as_stream(value, kind, noun)
            wrapper = _WRAPPER_OF[kind]

            def flattened(elems=stream.elems, wrapper=wrapper, noun=noun):
                for inner in elems:
                    if not isinstance(inner, wrapper):
                        raise OrNRATypeError(f"{noun}, got element {inner!r}")
                    yield from inner.elems

            return _Stream(kind, flattened())
        if op == "leaf" and source_cls in _RETAG:
            kind_in, kind_out, noun = _RETAG[source_cls]
            stream = _as_stream(value, kind_in, noun)
            elems = stream.elems
            if kind_out == "bag" and kind_in != "bag":
                # A set/or-set-kinded stream may carry transient
                # duplicates (canonicalization is deferred); they must
                # not become observable bag multiplicities.
                elems = _dedup(elems)
            return _Stream(kind_out, elems)
        if op == "leaf" and source_cls is BagUnique:
            stream = _as_stream(value, "bag", "unique expects a bag")
            return _Stream("bag", _dedup(stream.elems))
        # Anything else: materialize and fall back to the eager node,
        # binding each node's closure once per execution (`bound`), not
        # once per element flowing through a surrounding map.
        concrete = _materialize(value)
        fn = bound.get(idx)
        if fn is None:
            fn = Plan._build_node(
                node,
                lambda k: (
                    lambda v: _materialize(self._eval(plan, k, v, leaf, bound))
                ),
                leaf,
            )
            bound[idx] = fn
        return fn(concrete)


BACKENDS: dict[str, Backend] = {
    "eager": EagerBackend(),
    "streaming": StreamingBackend(),
}
