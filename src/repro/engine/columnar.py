"""Columnar execution: flat arenas and fused single-pass kernels.

The eager backend walks one Python ``Value`` object per element per plan
node — for a wide, flat collection spine (``map`` bodies doing atom
arithmetic, ``mu`` flattening, coercions) almost all of that time is
object allocation and dynamic dispatch, not the paper's semantics.  This
module removes that overhead in three layers:

* :class:`Arena` — a columnar encoding of one collection: parallel
  arrays of atom bases and raw payloads (boxed ``Value`` objects only
  where an element is not an atom), plus optional segment *offsets* for
  a nested spine.  The encoding is lossless: ``Arena.from_value(v,
  ...).to_value()`` is structurally equal to ``v`` (property-tested in
  ``tests/engine/test_columnar.py``), and decoding installs interned
  sort keys so canonicalization never recomputes a key per atom.
* :func:`compile_scalar` — a tiny compiler from the arithmetic/boolean
  fragment of the morphism language (``Id``, ``Compose``, ``PairOf`` +
  the standard primitives, ``Cond``, ``Const``) to *raw* Python kernels
  ``scalar -> scalar`` that never box an ``Atom`` or allocate a
  ``Pair``.  Elements that do not fit the raw fragment (boxed values,
  off-base atoms) fall back to the compiled closure per element, so
  semantics — including error behavior — match the eager backend
  exactly.
* :func:`build_fused_kernel` / :class:`FusedBackend` — execution of a
  ``fused`` plan node (built by :func:`repro.engine.passes.fuse_plan`):
  encode the input once, run every fused stage as a tight loop over the
  columns, decode once.  The sharded backends reuse the same stage
  runner over contiguous arena slices (``Arena.slice``), which is what
  lets them ship index ranges instead of per-element pickles.

Transient duplicates follow the streaming/sharded convention: map
stages may emit colliding outputs, the set/or-set → bag coercions and
``unique`` deduplicate keeping first occurrences, and the single
``to_value`` at the end canonicalizes exactly like the eager
constructors.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import OrNRATypeError
from repro.lang.bag_ops import BagUnique
from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Const,
    Id,
    Morphism,
    PairOf,
    Primitive,
)
from repro.lang.primitives import (
    _bool_and_value,
    _bool_not_value,
    _bool_or_value,
    _IntBinOp,
    _IntCompare,
)
from repro.values.values import Atom, Value, sort_key, use_sort_key_cache

from repro.engine.backends import _MU, _RETAG, _WRAPPER_OF, BACKENDS, Backend
from repro.engine.deadline import checkpoint
from repro.engine.interning import Interner
from repro.engine.plan import Plan, PlanNode, _linearize

__all__ = [
    "Arena",
    "compile_scalar",
    "raw_kernels",
    "stage_of",
    "compile_stages",
    "run_stages",
    "encode_input",
    "build_fused_kernel",
    "FusedBackend",
]

# Error nouns per collection kind, phrased exactly like the streaming
# and sharded spines so every backend raises the same message.
_MAP_NOUN = {
    "set": "map expects a set",
    "orset": "ormap expects an or-set",
    "bag": "dmap expects a bag",
}
_MU_NOUN = {kind: noun for kind, noun in _MU.values()}
_UNIQUE_NOUN = "unique expects a bag"


# -- the arena ---------------------------------------------------------------

#: Bounded cache of decoded atoms and their precomputed sort keys, keyed
#: on ``(base, raw)``.  Repeated payloads across calls share one Atom
#: object *and* one sort key, so canonicalizing a decoded collection
#: never recomputes keys for cache hits.
_ATOM_CACHE: dict[tuple, tuple[Atom, tuple]] = {}
_ATOM_CACHE_MAX = 4096


def _atom_and_key(base: str, raw: object) -> tuple[Atom, tuple | None]:
    try:
        hit = _ATOM_CACHE.get((base, raw))
    except TypeError:  # unhashable payload: box without caching
        atom = Atom(base, raw)
        return atom, None
    if hit is None:
        atom = Atom(base, raw)
        hit = (atom, sort_key(atom))
        if len(_ATOM_CACHE) >= _ATOM_CACHE_MAX:
            _ATOM_CACHE.clear()
        _ATOM_CACHE[(base, raw)] = hit
    return hit


class Arena:
    """One collection, column-encoded.

    Flat form (``offsets is None``): element *i* is ``Atom(bases[i],
    raws[i])`` when ``bases[i]`` is a base name, or the boxed ``Value``
    ``raws[i]`` when ``bases[i]`` is ``None``.  Segmented form: the
    columns hold the concatenated elements of ``len(offsets) - 1`` inner
    collections of kind *inner_kind* (segment *i* spans
    ``offsets[i]:offsets[i+1]``) — the encoding of a nested spine whose
    ``mu`` is just "drop the offsets".
    """

    __slots__ = ("kind", "bases", "raws", "offsets", "inner_kind")

    def __init__(
        self,
        kind: str,
        bases: list,
        raws: list,
        offsets: list | None = None,
        inner_kind: str | None = None,
    ) -> None:
        self.kind = kind
        self.bases = bases
        self.raws = raws
        self.offsets = offsets
        self.inner_kind = inner_kind

    def __len__(self) -> int:
        if self.offsets is not None:
            return len(self.offsets) - 1
        return len(self.bases)

    @classmethod
    def from_value(cls, value: Value, kind: str, noun: str) -> "Arena":
        """Column-encode *value*, which must be a *kind* collection."""
        wrapper = _WRAPPER_OF[kind]
        if not isinstance(value, wrapper):
            raise OrNRATypeError(f"{noun}, got {value!r}")
        bases: list = []
        raws: list = []
        for e in value.elems:
            if type(e) is Atom:
                bases.append(e.base)
                raws.append(e.value)
            else:
                bases.append(None)
                raws.append(e)
        return cls(kind, bases, raws)

    @classmethod
    def segmented(cls, value: Value, kind: str, noun: str) -> "Arena":
        """Encode a *kind* collection of *kind* collections with offsets.

        The nested-spine form a leading ``mu`` consumes in O(1): the
        inner elements live flat in the columns and the offsets record
        the segment boundaries.
        """
        wrapper = _WRAPPER_OF[kind]
        if not isinstance(value, wrapper):
            raise OrNRATypeError(f"{noun}, got {value!r}")
        bases: list = []
        raws: list = []
        offsets = [0]
        for inner in value.elems:
            if not isinstance(inner, wrapper):
                raise OrNRATypeError(f"{noun}, got element {inner!r}")
            for e in inner.elems:
                if type(e) is Atom:
                    bases.append(e.base)
                    raws.append(e.value)
                else:
                    bases.append(None)
                    raws.append(e)
            offsets.append(len(bases))
        return cls(kind, bases, raws, offsets=offsets, inner_kind=kind)

    def slice(self, start: int, stop: int) -> "Arena":
        """A contiguous flat sub-range (the sharded backends' unit)."""
        return Arena(self.kind, self.bases[start:stop], self.raws[start:stop])

    def _decode_range(self, start: int, stop: int, key_cache: dict) -> list[Value]:
        out: list[Value] = []
        bases, raws = self.bases, self.raws
        for i in range(start, stop):
            b = bases[i]
            if b is None:
                out.append(raws[i])
            else:
                atom, key = _atom_and_key(b, raws[i])
                if key is not None:
                    key_cache[id(atom)] = key
                out.append(atom)
        return out

    def to_value(self) -> Value:
        """Decode back to a canonical collection ``Value``.

        The collection constructor canonicalizes (sorts, deduplicates)
        exactly like the eager backend's; the interned sort keys from the
        atom cache are installed for the construction so cached atoms
        never recompute theirs.
        """
        key_cache: dict[int, tuple] = {}
        wrapper = _WRAPPER_OF[self.kind]
        if self.offsets is None:
            elems = self._decode_range(0, len(self.bases), key_cache)
            with use_sort_key_cache(key_cache):
                return wrapper(elems)
        inner_wrapper = _WRAPPER_OF[self.inner_kind]
        offs = self.offsets
        with use_sort_key_cache(key_cache):
            inners = [
                inner_wrapper(self._decode_range(offs[i], offs[i + 1], key_cache))
                for i in range(len(offs) - 1)
            ]
            return wrapper(inners)


# -- the raw scalar-kernel compiler ------------------------------------------


def _ident(x):
    return x


def _pair_prim(op, lf, rf):
    """``x -> op(lf(x), rf(x))`` with the identity legs inlined away."""
    if lf is _ident and rf is _ident:
        return lambda x: op(x, x)
    if lf is _ident:
        return lambda x: op(x, rf(x))
    if rf is _ident:
        return lambda x: op(lf(x), x)
    return lambda x: op(lf(x), rf(x))


def _compose_fns(fns):
    if len(fns) == 1:
        return fns[0]
    fns = tuple(fns)

    def run(x):
        for fn in fns:
            x = fn(x)
        return x

    return run


def compile_scalar(
    m: Morphism, in_base: str
) -> tuple[Callable[[object], object], str] | None:
    """Compile *m* to a raw kernel over bare payloads, or ``None``.

    Returns ``(fn, out_base)`` where ``fn`` maps a raw *in_base* payload
    to a raw *out_base* payload, reproducing eager semantics for
    well-typed atoms (``_unwrap_int`` coerces with ``int()`` — Python
    ints and bools already *are* what the raw ops consume, and the
    per-element guard in the map stage excludes everything else).
    """
    if isinstance(m, Id):
        return _ident, in_base
    if isinstance(m, Const):
        # Const ignores its input entirely (``K v``), so any in_base works.
        v = m.value
        if type(v) is Atom and v.base in ("int", "bool"):
            raw = v.value
            return (lambda x, _raw=raw: _raw), v.base
        return None
    if isinstance(m, Cond):
        pred = compile_scalar(m.pred, in_base)
        then = compile_scalar(m.then, in_base)
        orelse = compile_scalar(m.orelse, in_base)
        if (
            pred is not None
            and pred[1] == "bool"
            and then is not None
            and orelse is not None
            and then[1] == orelse[1]
        ):
            pf, tf, ef = pred[0], then[0], orelse[0]
            return (lambda x: tf(x) if pf(x) else ef(x)), then[1]
        return None
    if isinstance(m, Primitive):
        if m.fn is _bool_not_value and in_base == "bool":
            return (lambda x: not x), "bool"
        return None
    if not isinstance(m, Compose):
        return None

    steps = _linearize(m)
    fns: list[Callable] = []
    base = in_base
    i = 0
    while i < len(steps):
        step = steps[i]
        if isinstance(step, Id):
            i += 1
            continue
        if (
            isinstance(step, Bang)
            and i + 1 < len(steps)
            and isinstance(steps[i + 1], Const)
        ):
            # `Const o Bang` — the Const ignores its input anyway.
            i += 1
            continue
        if (
            isinstance(step, PairOf)
            and i + 1 < len(steps)
            and isinstance(steps[i + 1], Primitive)
        ):
            ev = steps[i + 1].fn
            left = compile_scalar(step.left, base)
            right = compile_scalar(step.right, base)
            if left is None or right is None:
                return None
            if isinstance(ev, (_IntBinOp, _IntCompare)):
                if left[1] != "int" or right[1] != "int":
                    return None
                fns.append(_pair_prim(ev.fn, left[0], right[0]))
                base = "int" if isinstance(ev, _IntBinOp) else "bool"
                i += 2
                continue
            if ev is _bool_and_value or ev is _bool_or_value:
                if left[1] != "bool" or right[1] != "bool":
                    return None
                op = (lambda a, b: a and b) if ev is _bool_and_value else (
                    lambda a, b: a or b
                )
                fns.append(_pair_prim(op, left[0], right[0]))
                base = "bool"
                i += 2
                continue
            return None
        sub = compile_scalar(step, base)
        if sub is None:
            return None
        if sub[0] is not _ident:
            fns.append(sub[0])
        base = sub[1]
        i += 1
    if not fns:
        return _ident, base
    return _compose_fns(fns), base


def raw_kernels(m: Morphism) -> dict[str, tuple[Callable, str]]:
    """Raw kernels for *m* per admissible input base (may be empty)."""
    kernels: dict[str, tuple[Callable, str]] = {}
    for base in ("int", "bool"):
        compiled = compile_scalar(m, base)
        if compiled is not None:
            kernels[base] = compiled
    return kernels


# -- fused stages ------------------------------------------------------------


def stage_of(node: PlanNode) -> tuple | None:
    """The fused-stage descriptor for one spine step, or ``None``.

    Map stages carry the body *morphism* (the raw compiler's input); the
    body's plan index is resolved by :func:`repro.engine.passes.fuse_plan`
    when it rebuilds the node array.
    """
    if node.op == "map":
        return ("map", node.kind, None, node.source.body)
    if node.op == "leaf":
        cls = type(node.source)
        if cls in _MU:
            return ("mu", _MU[cls][0])
        if cls in _RETAG:
            kind_in, kind_out, noun = _RETAG[cls]
            return ("retag", kind_in, kind_out, noun)
        if cls is BagUnique:
            return ("unique",)
    return None


def spec_out_kind(spec: tuple) -> str:
    """The collection kind a fused stage sequence produces."""
    kind = "bag"
    for stage in spec:
        if stage[0] in ("map", "mu"):
            kind = stage[1]
        elif stage[0] == "retag":
            kind = stage[2]
    return kind


def encode_input(spec: tuple, value: Value) -> Arena:
    """Encode the kernel's input for the first fused stage.

    A leading ``mu`` gets the segmented (offsets) encoding so the flatten
    is a constant-time offsets drop; everything else encodes flat.
    """
    first = spec[0]
    tag = first[0]
    if tag == "map":
        return Arena.from_value(value, first[1], _MAP_NOUN[first[1]])
    if tag == "mu":
        return Arena.segmented(value, first[1], _MU_NOUN[first[1]])
    if tag == "retag":
        return Arena.from_value(value, first[1], first[3])
    return Arena.from_value(value, "bag", _UNIQUE_NOUN)


def compile_stages(node: PlanNode, build: Callable[[int], Callable]) -> list:
    """Prepare the runnable stage list for one ``fused`` node.

    *build* resolves a plan-node index to its compiled closure (the
    caller's bound-subtree builder), used for map bodies on the boxed
    fallback path; the raw kernels are compiled here from the body
    morphism recorded in the spec.
    """
    prepared = []
    for stage in node.spec:
        if stage[0] == "map":
            _tag, kind, kid_pos, body_m = stage
            boxed = build(node.kids[kid_pos])
            prepared.append(("map", kind, boxed, raw_kernels(body_m)))
        else:
            prepared.append(stage)
    return prepared


def _run_map(stage: tuple, arena: Arena) -> Arena:
    _tag, kind, boxed, kernels = stage
    if arena.kind != kind:
        raise OrNRATypeError(f"{_MAP_NOUN[kind]}, got {arena.to_value()!r}")
    int_k = kernels.get("int")
    bool_k = kernels.get("bool")
    out_bases: list = []
    out_raws: list = []
    push_base = out_bases.append
    push_raw = out_raws.append
    if int_k is not None:
        int_fn, int_out = int_k
    if bool_k is not None:
        bool_fn, bool_out = bool_k
    for b, r in zip(arena.bases, arena.raws, strict=True):
        if b == "int" and int_k is not None and isinstance(r, int):
            push_base(int_out)
            push_raw(int_fn(r))
        elif b == "bool" and bool_k is not None and type(r) is bool:
            push_base(bool_out)
            push_raw(bool_fn(r))
        else:
            elem = r if b is None else _atom_and_key(b, r)[0]
            out = boxed(elem)
            if type(out) is Atom:
                push_base(out.base)
                push_raw(out.value)
            else:
                push_base(None)
                push_raw(out)
    return Arena(kind, out_bases, out_raws)


def _run_mu(stage: tuple, arena: Arena) -> Arena:
    _tag, kind = stage
    noun = _MU_NOUN[kind]
    if arena.kind != kind:
        raise OrNRATypeError(f"{noun}, got {arena.to_value()!r}")
    if arena.offsets is not None:
        # The segmented encoding: flattening is just dropping the offsets.
        return Arena(kind, arena.bases, arena.raws)
    wrapper = _WRAPPER_OF[kind]
    out_bases: list = []
    out_raws: list = []
    for b, r in zip(arena.bases, arena.raws, strict=True):
        inner = r if b is None else _atom_and_key(b, r)[0]
        if not isinstance(inner, wrapper):
            raise OrNRATypeError(f"{noun}, got element {inner!r}")
        for e in inner.elems:
            if type(e) is Atom:
                out_bases.append(e.base)
                out_raws.append(e.value)
            else:
                out_bases.append(None)
                out_raws.append(e)
    return Arena(kind, out_bases, out_raws)


def _dedup_columns(bases: list, raws: list) -> tuple[list, list]:
    """Keep-first structural dedup over column-encoded elements.

    Key ``(base, raw)`` matches :class:`Atom` equality (bool payloads
    compare equal to their int coercions, exactly as atoms do); boxed
    values key on themselves and can never collide with an atom tuple.
    """
    seen: set = set()
    out_bases: list = []
    out_raws: list = []
    for b, r in zip(bases, raws, strict=True):
        key = (b, r) if b is not None else r
        if key not in seen:
            seen.add(key)
            out_bases.append(b)
            out_raws.append(r)
    return out_bases, out_raws


def _run_retag(stage: tuple, arena: Arena) -> Arena:
    _tag, kind_in, kind_out, noun = stage
    if arena.kind != kind_in:
        raise OrNRATypeError(f"{noun}, got {arena.to_value()!r}")
    bases, raws = arena.bases, arena.raws
    if kind_out == "bag" and kind_in != "bag":
        # Transient duplicates must not become observable multiplicities
        # (the streaming/sharded spine convention).
        bases, raws = _dedup_columns(bases, raws)
    return Arena(kind_out, bases, raws)


def _run_unique(arena: Arena) -> Arena:
    if arena.kind != "bag":
        raise OrNRATypeError(f"{_UNIQUE_NOUN}, got {arena.to_value()!r}")
    bases, raws = _dedup_columns(arena.bases, arena.raws)
    return Arena("bag", bases, raws)


def run_stages(stages: list, arena: Arena) -> Arena:
    """Run prepared fused stages over *arena*, column to column.

    The per-stage checkpoint keeps fused kernels cooperatively
    cancellable at stage granularity without a per-element branch in
    the tight column loops.
    """
    for stage in stages:
        checkpoint("fused stage")
        tag = stage[0]
        if tag == "map":
            arena = _run_map(stage, arena)
        elif tag == "mu":
            arena = _run_mu(stage, arena)
        elif tag == "retag":
            arena = _run_retag(stage, arena)
        else:
            arena = _run_unique(arena)
    return arena


def build_fused_kernel(
    node: PlanNode, build: Callable[[int], Callable]
) -> Callable[[Value], Value]:
    """The single closure a ``fused`` plan node executes as."""
    stages = compile_stages(node, build)
    spec = node.spec

    def kernel(value: Value) -> Value:
        return run_stages(stages, encode_input(spec, value)).to_value()

    return kernel


# -- the backend -------------------------------------------------------------


class FusedBackend(Backend):
    """Eager execution of the fused plan: one kernel per fused spine run.

    Plans are fused on entry (:func:`repro.engine.passes.fuse_plan`
    caches the derived plan on the original, so repeated executions —
    and the interner's bound-closure memo — see one stable object); a
    plan with nothing to fuse degrades to plain eager execution.
    """

    name = "fused"

    def execute(
        self, plan: Plan, value: Value, interner: Interner | None = None
    ) -> Value:
        from repro.engine.passes import fuse_plan

        fused = fuse_plan(plan)
        if interner is None:
            return fused.bind()(value)
        return interner.bound_plan(fused)(value)


BACKENDS["fused"] = FusedBackend()
