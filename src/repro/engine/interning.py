"""The value arena: hash-consing, cached sort keys, memoized normalize.

Every :class:`~repro.values.values.Value` is immutable, so structurally
equal values are interchangeable — but the direct interpreter happily
builds millions of distinct-but-equal objects, re-deriving the canonical
sort order (and, worse, the normal form) for each copy.  The
:class:`Interner` fixes that at the runtime layer:

* :meth:`Interner.intern` hash-conses a value: structurally equal values
  come back as the *same* object, rebuilt bottom-up so all shared
  substructure is shared physically too;
* the arena registers each interned object's canonical sort key in the
  :func:`repro.values.values.sort_key` cache (safe because the arena
  keeps the object alive, so its ``id`` can never be reused), which
  makes re-canonicalization of collections containing interned elements
  an O(1) dictionary hit instead of a recursive descent;
* :meth:`Interner.normalize` memoizes :func:`repro.core.normalize.normalize`
  keyed on the interned object's *identity* (plus the declared type), so
  repeated normalization of the same object — the dominant cost in
  possible-worlds workloads — is computed once.

The arena holds strong references by design (identity-keyed caches
require it); call :meth:`Interner.clear` to release everything.
"""

from __future__ import annotations

from repro.types.kinds import Type
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
    sort_key,
    use_sort_key_cache,
)

__all__ = ["Interner"]


class Interner:
    """A hash-consing arena with identity-keyed derived-result caches."""

    def __init__(self) -> None:
        self._arena: dict[Value, Value] = {}
        self._sort_keys: dict[int, tuple] = {}
        self._normal_forms: dict[tuple[int, Type | None], Value] = {}
        self.hits = 0
        self.misses = 0
        self.normalize_hits = 0
        self.normalize_misses = 0

    # -- hash-consing ------------------------------------------------------

    def intern(self, value: Value) -> Value:
        """The canonical physical object structurally equal to *value*."""
        with use_sort_key_cache(self._sort_keys):
            return self._intern(value)

    def _intern(self, value: Value) -> Value:
        canon = self._arena.get(value)
        if canon is not None:
            self.hits += 1
            return canon
        self.misses += 1
        canon = self._rebuild(value)
        self._arena[canon] = canon
        # The arena pins `canon`, so caching by id() is sound.
        self._sort_keys[id(canon)] = sort_key(canon)
        return canon

    def _rebuild(self, value: Value) -> Value:
        if isinstance(value, (Atom, UnitValue)):
            return value
        if isinstance(value, Pair):
            return Pair(self._intern(value.fst), self._intern(value.snd))
        if isinstance(value, Variant):
            return Variant(value.side, self._intern(value.payload))
        if isinstance(value, SetValue):
            return SetValue(self._intern(e) for e in value.elems)
        if isinstance(value, OrSetValue):
            return OrSetValue(self._intern(e) for e in value.elems)
        if isinstance(value, BagValue):
            return BagValue(self._intern(e) for e in value.elems)
        return value

    def is_interned(self, value: Value) -> bool:
        """Is *value* (this exact object) the arena's canonical copy?"""
        return self._arena.get(value) is value

    # -- derived results ---------------------------------------------------

    def sort_key(self, value: Value) -> tuple:
        """The canonical sort key, cached on the interned identity."""
        canon = self.intern(value)
        return self._sort_keys[id(canon)]

    def normalize(self, value: Value, value_type: Type | None = None) -> Value:
        """Memoized :func:`repro.core.normalize.normalize`.

        The key is the *identity* of the interned input (plus the
        declared type), so equal inputs share one normalization no matter
        how many structurally distinct copies the caller holds.
        """
        from repro.core.normalize import normalize as _normalize

        canon = self.intern(value)
        key = (id(canon), value_type)
        cached = self._normal_forms.get(key)
        if cached is not None:
            self.normalize_hits += 1
            return cached
        self.normalize_misses += 1
        with use_sort_key_cache(self._sort_keys):
            result = self._intern(_normalize(canon, value_type))
        self._normal_forms[key] = result
        return result

    # -- plan integration --------------------------------------------------

    def leaf_apply(self, m):
        """Leaf executor for :meth:`repro.engine.plan.Plan.bind`.

        ``normalize`` leaves run through the memo table; every other leaf
        keeps its direct ``apply``.
        """
        from repro.core.normalize import Normalize

        if isinstance(m, Normalize):
            declared = m.input_type
            return lambda v: self.normalize(v, declared)
        return m.apply

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Arena and cache counters (for benchmarks and diagnostics)."""
        return {
            "arena_size": len(self._arena),
            "intern_hits": self.hits,
            "intern_misses": self.misses,
            "normalize_hits": self.normalize_hits,
            "normalize_misses": self.normalize_misses,
        }

    def clear(self) -> None:
        """Drop the arena and every derived-result cache."""
        self._arena.clear()
        self._sort_keys.clear()
        self._normal_forms.clear()

    def __len__(self) -> int:
        return len(self._arena)
