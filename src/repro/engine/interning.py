"""The value arena: hash-consing, cached sort keys, memoized normalize.

Every :class:`~repro.values.values.Value` is immutable, so structurally
equal values are interchangeable — but the direct interpreter happily
builds millions of distinct-but-equal objects, re-deriving the canonical
sort order (and, worse, the normal form) for each copy.  The
:class:`Interner` fixes that at the runtime layer:

* :meth:`Interner.intern` hash-conses a value: structurally equal values
  come back as the *same* object, rebuilt bottom-up so all shared
  substructure is shared physically too;
* the arena registers each interned object's canonical sort key in the
  :func:`repro.values.values.sort_key` cache (safe because the arena
  keeps the object alive, so its ``id`` can never be reused), which
  makes re-canonicalization of collections containing interned elements
  an O(1) dictionary hit instead of a recursive descent;
* :meth:`Interner.normalize` memoizes :func:`repro.core.normalize.normalize`
  keyed on the interned object's *identity* (plus the declared type), so
  repeated normalization of the same object — the dominant cost in
  possible-worlds workloads — is computed once.

The arena holds strong references by design (identity-keyed caches
require it), so it is *bounded*: past ``max_size`` entries the arena
evicts **least-recently-used** entries one at a time — every intern hit
touches its entry, so the hot working set stays resident while cold
values (and *their* cached sort keys and normal forms, keyed by the
evicted object's id) leave together.  ``stats()["evictions"]`` counts
evicted entries; pass ``max_size=None`` for the old unbounded behaviour,
or call :meth:`Interner.clear` to release everything by hand.

All public methods are thread-safe: one :class:`threading.RLock` guards
the arena and the derived-result caches, which is what makes the shared
``DEFAULT_ENGINE`` safe to hammer from the parallel backend and
``run_many`` worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.types.kinds import Type
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
    sort_key,
    use_sort_key_cache,
)

__all__ = ["Interner", "DEFAULT_MAX_ARENA_SIZE"]

#: Default arena capacity (entries).  Generous enough that eviction never
#: fires on benchmark-sized workloads, small enough that a long-running
#: REPL or server process cannot pin memory without bound.
DEFAULT_MAX_ARENA_SIZE = 1 << 20

#: Cap on per-interner bound-plan closures (cleared wholesale past it).
_MAX_BOUND_PLANS = 256


class Interner:
    """A hash-consing arena with identity-keyed derived-result caches.

    *max_size* caps the number of arena entries; ``None`` disables the
    cap.  Past capacity the arena evicts in true LRU order: interning an
    already-present value touches its entry, so frequently reused values
    (and their cached sort keys and memoized normal forms) survive while
    cold ones are dropped entry by entry.
    """

    def __init__(self, max_size: int | None = DEFAULT_MAX_ARENA_SIZE) -> None:
        self.max_size = max_size
        self._arena: OrderedDict[Value, Value] = OrderedDict()
        self._sort_keys: dict[int, tuple] = {}
        self._normal_forms: dict[int, dict[Type | None, Value]] = {}
        self._bound_plans: dict[int, tuple[object, object]] = {}
        # RLock: normalize() interns, and leaf_apply-driven normalize
        # calls may arrive while intern() already holds the lock.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.normalize_hits = 0
        self.normalize_misses = 0
        self.evictions = 0

    # -- hash-consing ------------------------------------------------------

    def intern(self, value: Value) -> Value:
        """The canonical physical object structurally equal to *value*."""
        with self._lock:
            with use_sort_key_cache(self._sort_keys):
                canon = self._intern(value)
            self._trim()
            return canon

    def _intern(self, value: Value) -> Value:
        canon = self._arena.get(value)
        if canon is not None:
            self.hits += 1
            self._arena.move_to_end(value)  # touch: LRU keeps hot entries
            return canon
        self.misses += 1
        canon = self._rebuild(value)
        self._arena[canon] = canon
        # The arena pins `canon`, so caching by id() is sound.
        self._sort_keys[id(canon)] = sort_key(canon)
        return canon

    def _rebuild(self, value: Value) -> Value:
        if isinstance(value, (Atom, UnitValue)):
            return value
        if isinstance(value, Pair):
            return Pair(self._intern(value.fst), self._intern(value.snd))
        if isinstance(value, Variant):
            return Variant(value.side, self._intern(value.payload))
        if isinstance(value, SetValue):
            return SetValue(self._intern(e) for e in value.elems)
        if isinstance(value, OrSetValue):
            return OrSetValue(self._intern(e) for e in value.elems)
        if isinstance(value, BagValue):
            return BagValue(self._intern(e) for e in value.elems)
        return value

    def is_interned(self, value: Value) -> bool:
        """Is *value* (this exact object) the arena's canonical copy?"""
        with self._lock:
            return self._arena.get(value) is value

    def _trim(self) -> None:
        """Evict LRU entries until the arena is back within ``max_size``.

        Each evicted canon takes its derived results with it (they are
        keyed by an id only the arena kept alive).  A single intern of a
        large value may insert many nested entries at once, so trimming
        runs after the rebuild — always keeping at least the most recent
        entry, which callers like :meth:`sort_key` read back immediately.
        Previously returned canonical objects stay valid values — they
        merely stop being identical to the canon of *future* interns.
        """
        if self.max_size is None:
            return
        floor = max(self.max_size, 1)
        while len(self._arena) > floor:
            _key, canon = self._arena.popitem(last=False)
            self._sort_keys.pop(id(canon), None)
            self._normal_forms.pop(id(canon), None)
            self.evictions += 1

    # -- derived results ---------------------------------------------------

    def sort_key(self, value: Value) -> tuple:
        """The canonical sort key, cached on the interned identity."""
        with self._lock:
            canon = self.intern(value)
            return self._sort_keys[id(canon)]

    def normalize(self, value: Value, value_type: Type | None = None) -> Value:
        """Memoized :func:`repro.core.normalize.normalize`.

        The key is the *identity* of the interned input (plus the
        declared type), so equal inputs share one normalization no matter
        how many structurally distinct copies the caller holds.

        The lock is held only around the memo lookups and inserts — the
        normalization itself runs outside it, so concurrent workers
        normalizing *different* inputs do not serialize on one arena
        (first-insert-wins on the rare duplicated computation).
        """
        from repro.core.normalize import normalize as _normalize

        with self._lock:
            canon = self.intern(value)
            by_type = self._normal_forms.get(id(canon))
            cached = by_type.get(value_type) if by_type is not None else None
            if cached is not None:
                self.normalize_hits += 1
                return cached
        raw = _normalize(canon, value_type)
        with self._lock:
            # `canon` is pinned by this frame, but the LRU may have
            # evicted its entry in between: re-intern so the memo key's
            # id is arena-pinned again (a no-op hit in the common case).
            with use_sort_key_cache(self._sort_keys):
                canon = self._intern(canon)
                by_type = self._normal_forms.get(id(canon))
                cached = by_type.get(value_type) if by_type is not None else None
                if cached is not None:
                    self.normalize_hits += 1
                    return cached
                self.normalize_misses += 1
                result = self._intern(raw)
            # Interning a large normal form may have pushed `canon` far
            # down the LRU order; re-touch it so the trim below evicts
            # the normal form's nested entries before the memo's key —
            # otherwise the memo would die for exactly the expensive
            # inputs it exists for.
            self._arena.move_to_end(canon)
            self._normal_forms.setdefault(id(canon), {})[value_type] = result
            self._trim()
            return result

    # -- plan integration --------------------------------------------------

    def leaf_apply(self, m):
        """Leaf executor for :meth:`repro.engine.plan.Plan.bind`.

        ``normalize`` leaves run through the memo table; every other leaf
        keeps its direct ``apply``.
        """
        from repro.core.normalize import Normalize

        if isinstance(m, Normalize):
            declared = m.input_type
            return lambda v: self.normalize(v, declared)
        return m.apply

    def bound_plan(self, plan):
        """The plan's executable closure with this arena's leaf executor.

        The memo lives on the *interner*, not the plan: the bound
        closures close over ``self``, so caching them on the (engine-
        cached, long-lived) plan would pin a batch-scoped arena for the
        plan's lifetime.  Here everything dies with the interner.  The
        stored ``(plan, fn)`` pair keeps the plan alive so its ``id``
        cannot be recycled into a stale hit.
        """
        key = id(plan)
        with self._lock:
            entry = self._bound_plans.get(key)
            if entry is not None and entry[0] is plan:
                return entry[1]
            if len(self._bound_plans) >= _MAX_BOUND_PLANS:
                self._bound_plans.clear()
            fn = plan.bind(self.leaf_apply, cache=False)
            self._bound_plans[key] = (plan, fn)
            return fn

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict[str, int | None]:
        """Arena and cache counters (for benchmarks and diagnostics)."""
        with self._lock:
            return {
                "arena_size": len(self._arena),
                "max_size": self.max_size,
                "intern_hits": self.hits,
                "intern_misses": self.misses,
                "normalize_hits": self.normalize_hits,
                "normalize_misses": self.normalize_misses,
                "evictions": self.evictions,
            }

    def clear(self) -> None:
        """Drop the arena and every derived-result cache."""
        with self._lock:
            self._arena.clear()
            self._sort_keys.clear()
            self._normal_forms.clear()
            self._bound_plans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._arena)
