"""The plan IR: a flat, typed compilation target for or-NRA morphisms.

The direct interpreter evaluates a :class:`~repro.lang.morphisms.Morphism`
by recursive ``apply`` calls over the syntax tree.  This module compiles
the same tree into a *plan* — a flat array of :class:`PlanNode`
instructions with explicit child references and hash-consed sharing —
which is the engine's canonical execution representation:

* **flat**: composition chains are linearized into a single ``chain``
  node whose steps execute in a loop (no interpreter recursion per
  composition, no Python stack growth on long pipelines);
* **shared**: structurally equal sub-morphisms compile to the *same*
  node id, so a sub-plan referenced from several places is built (and
  bound to a closure) once;
* **typed**: :meth:`Plan.infer_types` annotates every node with its
  concrete input/output :class:`~repro.types.kinds.Type` for a given
  program input type, which the optimizer passes and the diagnostics
  (``Plan.describe``) use.

Ops
---

==========  ===============================================================
``id``      the identity (chains prune it)
``chain``   a linearized composition; ``kids`` in application order
``pair``    :class:`PairOf` — run both kids on the same input
``cond``    :class:`Cond` — predicate kid selects a branch kid
``case``    :class:`Case` — variant tag selects a branch kid
``map``     :class:`SetMap` / :class:`OrMap` / :class:`DMap`; ``kind``
            records the collection family, ``kids[0]`` is the body
``leaf``    any other combinator; executes via the morphism's own
            ``apply`` (or a backend-supplied override, which is how the
            interning runtime memoizes ``normalize`` nodes)
``fused``   a run of spine stages collapsed by
            :func:`repro.engine.passes.fuse_plan`; ``spec`` is the stage
            list, ``kids`` are the map-stage bodies, ``source`` the
            composed morphism; executes as one columnar kernel
            (:func:`repro.engine.columnar.build_fused_kernel`)
==========  ===============================================================

Binding (:meth:`Plan.bind`) turns the node array into nested closures
bottom-up; the result is a plain ``Value -> Value`` callable whose hot
path is a tuple loop over pre-built step functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.engine.cost_model import ShapeEstimate

from repro.errors import OrNRATypeError
from repro.lang.bag_ops import DMap
from repro.lang.morphisms import Compose, Cond, Id, Morphism, PairOf
from repro.lang.orset_ops import OrMap
from repro.lang.set_ops import SetMap
from repro.lang.variant_ops import Case
from repro.types.kinds import BagType, OrSetType, SetType, Type, VariantType
from repro.types.parse import format_type
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    Value,
    Variant,
)

__all__ = ["PlanNode", "Plan", "compile_plan", "MAP_KINDS"]

# Collection family per map class: (constructor, type wrapper, error noun).
MAP_KINDS: dict[type, tuple[str, type, type, str]] = {
    SetMap: ("set", SetValue, SetType, "map expects a set"),
    OrMap: ("orset", OrSetValue, OrSetType, "ormap expects an or-set"),
    DMap: ("bag", BagValue, BagType, "dmap expects a bag"),
}

LeafApply = Callable[[Morphism], Callable[[Value], Value]]


@dataclass
class PlanNode:
    """One instruction of the flat plan IR."""

    idx: int
    op: str
    kids: tuple[int, ...]
    source: Morphism
    kind: str | None = None
    dom: Type | None = None
    cod: Type | None = None
    est_worlds: int | None = None
    est_size: int | None = None
    spec: tuple | None = None

    def pretty(self) -> str:
        parts = [f"n{self.idx:<3} {self.op}"]
        if self.kind:
            parts[0] += f"[{self.kind}]"
        if self.kids:
            parts.append("(" + ", ".join(f"n{k}" for k in self.kids) + ")")
        if self.op == "leaf":
            parts.append(self.source.describe())
        if self.op == "fused" and self.spec:
            parts.append("{" + "+".join(stage[0] for stage in self.spec) + "}")
        if self.dom is not None and self.cod is not None:
            parts.append(f": {format_type(self.dom)} -> {format_type(self.cod)}")
        if self.est_worlds is not None:
            parts.append(f"~worlds<={self.est_worlds} size<={self.est_size}")
        return " ".join(parts)


@dataclass
class Plan:
    """A compiled program: flat node array plus the root instruction id."""

    nodes: list[PlanNode]
    root: int
    source: Morphism
    _bound: dict[object, Callable[[Value], Value]] = field(
        default_factory=dict, repr=False
    )

    # -- execution ---------------------------------------------------------

    def bind(
        self,
        leaf_apply: LeafApply | None = None,
        cache_key: object = None,
        cache: bool = True,
    ) -> Callable[[Value], Value]:
        """Build (and memoize) the executable closure for this plan.

        *leaf_apply* lets a backend substitute the executor of leaf nodes
        (the interning runtime replaces ``Normalize`` leaves with a
        memoized version); *cache_key* identifies that substitution so
        repeated binds are free.  Pass ``cache=False`` to skip the
        plan-side memo entirely — callers whose *leaf_apply* closes over
        shorter-lived state (a batch-scoped interner) must own the
        caching themselves, or the plan would pin that state for its own
        lifetime.
        """
        if not cache:
            return self._bind_fresh(leaf_apply)
        cached = self._bound.get(cache_key)
        if cached is not None:
            return cached
        fn = self._bind_fresh(leaf_apply)
        self._bound[cache_key] = fn
        return fn

    def _bind_fresh(self, leaf_apply: LeafApply | None) -> Callable[[Value], Value]:
        fns: list[Callable[[Value], Value] | None] = [None] * len(self.nodes)

        def build(i: int) -> Callable[[Value], Value]:
            ready = fns[i]
            if ready is not None:
                return ready
            node = self.nodes[i]
            fn = self._build_node(node, build, leaf_apply)
            fns[i] = fn
            return fn

        return build(self.root)

    @staticmethod
    def _build_node(
        node: PlanNode,
        build: Callable[[int], Callable[[Value], Value]],
        leaf_apply: LeafApply | None,
    ) -> Callable[[Value], Value]:
        op = node.op
        if op == "id":
            return lambda v: v
        if op == "chain":
            steps = tuple(build(k) for k in node.kids)

            def run_chain(v: Value, _steps=steps) -> Value:
                for step in _steps:
                    v = step(v)
                return v

            return run_chain
        if op == "pair":
            left, right = build(node.kids[0]), build(node.kids[1])
            return lambda v: Pair(left(v), right(v))
        if op == "cond":
            pred, then, orelse = (build(k) for k in node.kids)

            def run_cond(v: Value) -> Value:
                verdict = pred(v)
                if not (isinstance(verdict, Atom) and verdict.base == "bool"):
                    raise OrNRATypeError(
                        f"cond predicate returned non-boolean {verdict!r}"
                    )
                return then(v) if verdict.value else orelse(v)

            return run_cond
        if op == "case":
            on_left, on_right = build(node.kids[0]), build(node.kids[1])

            def run_case(v: Value) -> Value:
                if not isinstance(v, Variant):
                    raise OrNRATypeError(f"case expects a variant, got {v!r}")
                return on_left(v.payload) if v.side == 0 else on_right(v.payload)

            return run_case
        if op == "map":
            body = build(node.kids[0])
            _kind, wrapper, _tw, noun = MAP_KINDS[type(node.source)]

            def run_map(v: Value, _wrap=wrapper, _noun=noun) -> Value:
                if not isinstance(v, _wrap):
                    raise OrNRATypeError(f"{_noun}, got {v!r}")
                return _wrap(body(e) for e in v.elems)

            return run_map
        if op == "fused":
            from repro.engine.columnar import build_fused_kernel

            return build_fused_kernel(node, build)
        # leaf
        if leaf_apply is not None:
            return leaf_apply(node.source)
        return node.source.apply

    def execute(self, value: Value) -> Value:
        """Run the plan with the default (direct ``apply``) leaf executor."""
        return self.bind()(value)

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle only the IR, not the derived runtime state.

        Bound closures (``_bound``) are unpicklable and rebuilt on demand;
        cached profiles and payloads (set by the cost model and the
        process backend via ``setattr``) are derived and cheap to
        recompute.  This is what lets the process backend ship compiled
        plans to worker processes even after the coordinating process has
        bound them.
        """
        return {"nodes": self.nodes, "root": self.root, "source": self.source}

    def __setstate__(self, state: dict) -> None:
        self.nodes = state["nodes"]
        self.root = state["root"]
        self.source = state["source"]
        self._bound = {}

    # -- typing ------------------------------------------------------------

    def infer_types(self, input_type: Type) -> Type | None:
        """Annotate every node with concrete dom/cod for *input_type*.

        Returns the program's output type, or ``None`` where inference
        fails (e.g. a ``normalize`` leaf without a declared input type).
        Nodes shared between contexts keep the last visit's annotation —
        the annotations are diagnostic, not semantic.
        """

        def out_type(node: PlanNode, dom: Type | None) -> Type | None:
            if dom is None:
                return None
            try:
                return node.source.output_type(dom)
            except Exception:
                return None

        def visit(i: int, dom: Type | None) -> Type | None:
            node = self.nodes[i]
            node.dom = dom
            if node.op == "chain":
                t = dom
                for k in node.kids:
                    t = visit(k, t)
                node.cod = t
                return t
            cod = out_type(node, dom)
            node.cod = cod
            if node.op == "pair":
                visit(node.kids[0], dom)
                visit(node.kids[1], dom)
            elif node.op == "cond":
                for k in node.kids:
                    visit(k, dom)
            elif node.op == "case":
                left = dom.left if isinstance(dom, VariantType) else None
                right = dom.right if isinstance(dom, VariantType) else None
                visit(node.kids[0], left)
                visit(node.kids[1], right)
            elif node.op == "map":
                _kind, _w, type_wrapper, _n = MAP_KINDS[type(node.source)]
                elem = dom.elem if isinstance(dom, type_wrapper) else None
                visit(node.kids[0], elem)
            return cod

        return visit(self.root, input_type)

    def annotate_estimates(self, value: Value) -> "ShapeEstimate":
        """Predict per-node world counts/sizes for *value* (Section 6 bounds).

        Delegates to :func:`repro.engine.cost_model.annotate_plan`; the
        annotations appear in :meth:`describe`.  Returns the root's
        :class:`~repro.engine.cost_model.ShapeEstimate`.
        """
        from repro.engine.cost_model import annotate_plan

        return annotate_plan(self, value)

    # -- diagnostics -------------------------------------------------------

    def describe(self) -> str:
        """A readable rendering of the flat instruction array."""
        lines = [f"plan: {len(self.nodes)} nodes, root=n{self.root}"]
        lines += ["  " + node.pretty() for node in self.nodes]
        return "\n".join(lines)

    def to_morphism(self) -> Morphism:
        """Decompile back to a morphism tree (round-trip testing aid)."""

        def rebuild(i: int) -> Morphism:
            node = self.nodes[i]
            if node.op == "chain":
                steps = [rebuild(k) for k in node.kids]
                result = steps[0]
                for step in steps[1:]:
                    result = Compose(step, result)
                return result
            if node.op == "pair":
                return PairOf(rebuild(node.kids[0]), rebuild(node.kids[1]))
            if node.op == "cond":
                return Cond(*(rebuild(k) for k in node.kids))
            if node.op == "case":
                return Case(rebuild(node.kids[0]), rebuild(node.kids[1]))
            if node.op == "map":
                return type(node.source)(rebuild(node.kids[0]))
            return node.source

        return rebuild(self.root)

    def __len__(self) -> int:
        return len(self.nodes)


def _linearize(m: Morphism) -> list[Morphism]:
    """Flatten nested compositions into application order (first first)."""
    if isinstance(m, Compose):
        return _linearize(m.before) + _linearize(m.after)
    return [m]


def compile_plan(m: Morphism) -> Plan:
    """Compile a morphism tree into a flat, shared :class:`Plan`."""
    nodes: list[PlanNode] = []
    memo: dict[Morphism, int] = {}

    def emit(sub: Morphism) -> int:
        known = memo.get(sub)
        if known is not None:
            return known
        if isinstance(sub, Compose):
            steps = [s for s in _linearize(sub) if not isinstance(s, Id)]
            if not steps:
                idx = add(PlanNode(-1, "id", (), Id()))
            elif len(steps) == 1:
                idx = emit(steps[0])
            else:
                kids = tuple(emit(s) for s in steps)
                idx = add(PlanNode(-1, "chain", kids, sub))
        elif isinstance(sub, Id):
            idx = add(PlanNode(-1, "id", (), sub))
        elif isinstance(sub, PairOf):
            kids = (emit(sub.left), emit(sub.right))
            idx = add(PlanNode(-1, "pair", kids, sub))
        elif isinstance(sub, Cond):
            kids = (emit(sub.pred), emit(sub.then), emit(sub.orelse))
            idx = add(PlanNode(-1, "cond", kids, sub))
        elif isinstance(sub, Case):
            kids = (emit(sub.on_left), emit(sub.on_right))
            idx = add(PlanNode(-1, "case", kids, sub))
        elif type(sub) in MAP_KINDS:
            kind = MAP_KINDS[type(sub)][0]
            idx = add(PlanNode(-1, "map", (emit(sub.body),), sub, kind=kind))
        else:
            idx = add(PlanNode(-1, "leaf", (), sub))
        memo[sub] = idx
        return idx

    def add(node: PlanNode) -> int:
        node.idx = len(nodes)
        nodes.append(node)
        return node.idx

    root = emit(m)
    return Plan(nodes=nodes, root=root, source=m)
