"""Cooperative deadlines for long-running evaluations.

A stuck request must fail with :class:`~repro.errors.DeadlineExceeded`
instead of wedging an executor thread forever — but evaluation happens
deep inside backend loops that know nothing about the serving layer.
The bridge is a :class:`Deadline` carried in a :mod:`contextvars`
context variable:

* the caller (the serving front-end, or :func:`repro.io.run_json` with a
  ``timeout=``) wraps evaluation in :func:`deadline_scope`;
* the evaluation loops call :func:`checkpoint` at their natural stage
  boundaries — per plan node in the sharded walk, per element on the
  streaming spine, per fused columnar stage, per solver restart and per
  membership SAT call in the symbolic backend, per input in
  ``Engine.run_many`` — and the first checkpoint past the deadline
  raises.

Checkpoints are *cooperative*: with no deadline installed the cost is
one context-variable read, so backends pay nothing on the common path
(measured in ``benchmarks/bench_serve.py``'s steady-state gate).
Because the deadline rides a context variable, it does **not**
automatically cross thread or process boundaries — callers that hand
evaluation to a worker thread re-enter :func:`deadline_scope` inside the
worker callable (the serving layer does), and the process backend's
coordinator enforces the deadline on its side of the pool instead
(:meth:`~repro.engine.process.ProcessBackend` waits on worker futures
with the remaining time).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "checkpoint",
    "current_deadline",
    "deadline_scope",
]


class Deadline:
    """A point on the monotonic clock by which a request must finish."""

    __slots__ = ("at",)

    def __init__(self, at: float) -> None:
        self.at = at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """The deadline *seconds* from now (``0`` is already expired)."""
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left, floored at zero once expired.

        The floor matters: callers hand this straight to wait
        primitives (``Future.result(timeout=...)``) that reject
        negative timeouts.
        """
        return max(0.0, self.at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self.at

    def check(self, site: str = "evaluation") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if time.monotonic() >= self.at:
            raise DeadlineExceeded(f"deadline exceeded during {site}")

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Deadline(remaining={self.remaining():.3f}s)"


_CURRENT: ContextVar[Deadline | None] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The deadline installed for the current context (``None`` if free)."""
    return _CURRENT.get()


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Install *deadline* for the duration of the block.

    ``None`` explicitly clears any inherited deadline — a nested
    unbounded evaluation (a background warm-up, say) must not be killed
    by an outer request's clock.
    """
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)


def checkpoint(site: str = "evaluation") -> None:
    """The cooperative cancellation point the evaluation loops call.

    Free when no deadline is installed; raises
    :class:`DeadlineExceeded` at the first call past the installed
    deadline.
    """
    deadline = _CURRENT.get()
    if deadline is not None and time.monotonic() >= deadline.at:
        raise DeadlineExceeded(f"deadline exceeded during {site}")
