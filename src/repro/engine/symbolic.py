"""The symbolic backend: answer world queries without enumerating worlds.

Every other backend materializes or iterates possible worlds, so the
Section 6 lower bound (``3^(n/3)`` worlds on the tight family) is a wall
for all of them — streaming short-circuits the *first* witness but
counting, certainty and emptiness still touch every world.  This backend
goes around the wall with knowledge compilation:

1. **trace** — :func:`trace_worlds` walks the plan's spine carrying a
   *surrogate* value whose world set provably equals the world set of
   the program's output.  Cheap structural steps (coercions, flattens,
   etas) run for real; expansion steps are *skipped*, because they are
   world-set-preserving: Theorem 4.2 (coherence) gives
   ``worlds(normalize(x)) = worlds(x)``, the same argument covers
   ``alpha`` and ``ormap(normalize)``, and skipping them is exactly what
   makes the surrogate linear-sized where the output is exponential.
2. **compile** — :class:`ChoiceSpace` encodes the surrogate's or-set
   choices as CNF over *binary* selector variables: an ``n``-branch
   or-site gets ``ceil(log2 n)`` bit variables (so even a
   thousand-branch site costs ten variables and a handful of
   range clauses, never a quadratic exactly-one ladder), guard clauses
   pin every site beneath an unselected branch to its canonical first
   pattern (so irrelevant choices do not multiply the count), and an
   empty or-site (``< >`` denotes no worlds) contributes a clause
   forbidding its guarding branch outright.  The CNF's models are in
   bijection with the value's world-generating choice vectors, and
   :func:`repro.sat.ddnnf.compile_ddnnf` turns it into a d-DNNF.
3. **query** — on the circuit, satisfiability answers ``exists`` in
   O(1), lazy model enumeration streams (decoded, deduplicated) worlds,
   the model count gives ``count_worlds`` in circuit-linear time
   whenever the space's *injectivity certificate* proves models map
   one-to-one onto distinct worlds, and certain/possible membership is
   one CDCL call (:func:`repro.sat.dpll.dpll_sat`) per candidate.

Everything degrades soundly: unsupported plans, non-injective spaces and
non-flat membership structures fall back to the eager enumeration path,
so :meth:`SymbolicBackend.execute`/``possibilities`` stay conformant
with every other backend on every program (the differential suite runs
them against the direct interpreter), while supported queries at
``>=10^9`` estimated worlds finish in milliseconds.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.normalize import Normalize
from repro.errors import OrNRATypeError, OrNRAValueError
from repro.lang.orset_ops import Alpha, OrMap
from repro.sat.cnf import CNF, Clause
from repro.sat.ddnnf import DDNNF, compile_ddnnf
from repro.sat.dpll import dpll_sat, dpll_solve
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
)

from repro.engine.analysis import CHEAP_REAL_OPS, plan_facts
from repro.engine.backends import BACKENDS, Backend, EagerBackend
from repro.engine.deadline import checkpoint
from repro.engine.interning import Interner
from repro.engine.plan import Plan

__all__ = [
    "SymbolicBackend",
    "SymbolicUnsupported",
    "ChoiceSpace",
    "trace_worlds",
    "plan_supports_symbolic",
]


class SymbolicUnsupported(Exception):
    """This (plan, value) has no world-preserving symbolic trace."""


# -- the spine trace ---------------------------------------------------------

#: Structural steps cheap enough to run for real during the trace: each
#: is linear in its input and, because the carried value *is* the true
#: intermediate up to that point, running it preserves the invariant
#: (and raises exactly the errors eager execution would raise).  The
#: table lives in :mod:`repro.engine.analysis` (the canonical home of
#: the operator class tables); the trace keeps its historical name.
_CHEAP_REAL = CHEAP_REAL_OPS


def _body_is_world_preserving(plan: Plan, idx: int) -> bool:
    """Is the map body a chain of ``normalize``/``id`` steps only?"""
    return plan_facts(plan).node_facts[idx].world_preserving


def _spine_steps(plan: Plan) -> list[int]:
    top = plan.nodes[plan.root]
    return list(top.kids) if top.op == "chain" else [plan.root]


def plan_supports_symbolic(plan: Plan) -> bool:
    """Can :func:`trace_worlds` possibly handle *plan*?  (Kind mismatches
    are only discovered against a concrete value, and fall back then.)
    An adapter over :func:`repro.engine.analysis.plan_facts` — the
    backend selector asks per call, and reads the memoized record."""
    return plan_facts(plan).symbolic_ok


def trace_worlds(plan: Plan, value: Value) -> Value:
    """A surrogate value with ``worlds(surrogate) == worlds(run(plan, value))``.

    Walks the top-level spine.  While the carried value is the true
    intermediate, cheap structural ops run for real.  The first skipped
    expansion step (``normalize`` / ``alpha`` / ``ormap(normalize)``)
    makes the carried value *virtual*: still world-equivalent, no longer
    structurally the intermediate — from there only further
    world-preserving steps are allowed.  Anything else raises
    :exc:`SymbolicUnsupported` and the caller falls back to eager.
    """
    current = value
    virtual = False
    for idx in _spine_steps(plan):
        node = plan.nodes[idx]
        if node.op == "id":
            continue
        src = node.source
        if node.op == "leaf" and isinstance(src, Normalize):
            # Theorem 4.2: worlds(normalize(x)) == worlds(x).  Skip.
            virtual = True
            continue
        if node.op == "map" and isinstance(src, OrMap) and _body_is_world_preserving(
            plan, node.kids[0]
        ):
            # <x_1,...> -> <normalize(x_1),...>: the union of the
            # members' world sets is unchanged member by member.
            if not isinstance(current, OrSetValue):
                raise SymbolicUnsupported("ormap over a non-or-set")
            virtual = True
            continue
        if node.op == "leaf" and isinstance(src, Alpha):
            # alpha : {<s>} -> <{s}> enumerates component-wise choices —
            # precisely worlds() restricted one level, so the world set
            # of the output equals the world set of the input set.
            if not (
                isinstance(current, SetValue)
                and all(isinstance(e, OrSetValue) for e in current.elems)
            ):
                raise SymbolicUnsupported("alpha over a non-{<s>} value")
            virtual = True
            continue
        if node.op == "leaf" and isinstance(src, _CHEAP_REAL):
            if virtual:
                raise SymbolicUnsupported(
                    "structural op after a skipped expansion step"
                )
            current = src.apply(current)
            continue
        raise SymbolicUnsupported(f"unsupported spine step {node.op}")
    return current


# -- the choice space --------------------------------------------------------


class ChoiceSpace:
    """The CNF choice encoding of one value, with decoder and certificate.

    Each multi-branch or-site with ``n`` branches gets ``ceil(log2 n)``
    *bit* variables; the little-endian bit pattern picks the branch.
    Binary selectors keep wide or-sites linear where one-hot exactly-one
    constraints are quadratic — a 1000-branch site is 10 variables and a
    few clauses.  Clauses:

    * range clauses forbidding the unused patterns ``n .. 2^width - 1``
      (one clause per zero bit of ``n - 1``, standard lexicographic
      bound), so patterns are in bijection with branches;
    * guard clauses: a site's *guard* is the conjunction of bit literals
      selecting every enclosing or-branch on the path from the root.
      ``(bit -> g)`` for each guard literal ``g`` pins the site to its
      canonical all-zero pattern whenever any enclosing branch is not
      chosen, so irrelevant choices do not multiply the count.  (The
      guard must be the *whole* path condition: a site nested beneath a
      canonically-pinned branch is just as irrelevant as the pinned
      site itself.)
    * ``(~g_1 | ... | ~g_m)`` for an empty or-site (``< >`` has no
      worlds, so the branch leading to one is infeasible); an unguarded
      empty site contributes the empty clause — zero worlds.

    ``exact`` is the injectivity certificate: when it holds, CNF models
    are in bijection with *distinct* worlds and the d-DNNF model count
    is the exact world count.  When it fails (sibling branches sharing
    atoms can collapse two choices into one world), counting falls back
    to deduplicated enumeration — still correct, no longer sub-world.
    """

    def __init__(self, value: Value) -> None:
        self.value = value
        self._n_vars = 0
        self._clauses: list[Clause] = []
        self.root = self._build(value, ())
        self.exact = _injective(value)
        self._circuit: DDNNF | None = None

    # -- construction -------------------------------------------------------

    def _fresh(self) -> int:
        self._n_vars += 1
        return self._n_vars

    def _build(self, v: Value, guard: tuple[int, ...]):
        if isinstance(v, (Atom, UnitValue)):
            return ("leaf", v)
        if isinstance(v, Pair):
            return ("pair", self._build(v.fst, guard), self._build(v.snd, guard))
        if isinstance(v, Variant):
            return ("variant", v.side, self._build(v.payload, guard))
        if isinstance(v, (SetValue, BagValue)):
            kind = "set" if isinstance(v, SetValue) else "bag"
            return (kind, tuple(self._build(e, guard) for e in v.elems))
        if isinstance(v, OrSetValue):
            branches = v.elems
            if not branches:
                self._clauses.append(frozenset(-g for g in guard))
                return ("or", (), ())
            if len(branches) == 1:
                return ("or", (), (self._build(branches[0], guard),))
            n = len(branches)
            width = (n - 1).bit_length()
            bits = tuple(self._fresh() for _ in range(width))
            # Forbid patterns > n-1: one clause per zero bit of n-1, each
            # saying "not (agree with n-1 above position t and exceed it
            # at t)" — the lexicographic upper-bound encoding.
            top = n - 1
            for t in range(width):
                if (top >> t) & 1:
                    continue
                lits = [-bits[t]]
                for s in range(t + 1, width):
                    lits.append(-bits[s] if (top >> s) & 1 else bits[s])
                self._clauses.append(frozenset(lits))
            # Pin to the all-zero pattern when any enclosing branch is
            # not chosen: bit -> g for every guard literal.
            for bit in bits:
                for g in guard:
                    self._clauses.append(frozenset((-bit, g)))
            subs = tuple(
                self._build(branch, guard + _pattern(bits, i))
                for i, branch in enumerate(branches)
            )
            return ("or", bits, subs)
        raise OrNRAValueError(f"not a value: {v!r}")

    # -- the compiled artifacts ---------------------------------------------

    def cnf(self) -> CNF:
        return CNF(self._n_vars, tuple(self._clauses))

    def circuit(self) -> DDNNF:
        if self._circuit is None:
            self._circuit = compile_ddnnf(self.cnf())
        return self._circuit

    # -- decoding -----------------------------------------------------------

    def decode(self, model: dict[int, bool]) -> Value:
        """The world selected by the total *model* (mirrors ``iter_worlds``)."""

        def walk(node) -> Value:
            tag = node[0]
            if tag == "leaf":
                return node[1]
            if tag == "pair":
                return Pair(walk(node[1]), walk(node[2]))
            if tag == "variant":
                return Variant(node[1], walk(node[2]))
            if tag == "set":
                return SetValue(walk(e) for e in node[1])
            if tag == "bag":
                return BagValue(walk(e) for e in node[1])
            bits, subs = node[1], node[2]
            if not bits:
                return walk(subs[0])
            index = 0
            for t, bit in enumerate(bits):
                if model.get(bit):
                    index |= 1 << t
            return walk(subs[index if index < len(subs) else 0])

        return walk(self.root)

    # -- queries ------------------------------------------------------------

    def satisfiable(self) -> bool:
        if self._circuit is not None:
            return self._circuit.satisfiable()
        return dpll_sat(self.cnf())

    def iter_worlds(self) -> Iterator[Value]:
        """Distinct worlds, lazily.

        Once the circuit is compiled, enumeration walks its model paths.
        Before that it runs CDCL with blocking clauses — each next
        solution is one :func:`~repro.sat.dpll.dpll_solve` call, so the
        *first* witness never pays for knowledge compilation (the case
        that matters when a wide or-site makes the circuit expensive but
        a single model is easy).
        """
        if self._circuit is not None:
            yield from self._iter_circuit()
        else:
            yield from self._iter_cdcl()

    def _iter_circuit(self) -> Iterator[Value]:
        seen: set[Value] = set()
        for model in self.circuit().iter_models():
            checkpoint("symbolic model enumeration")
            world = self.decode(model)
            if world not in seen:
                seen.add(world)
                yield world

    def _iter_cdcl(self) -> Iterator[Value]:
        seen: set[Value] = set()
        clauses = list(self._clauses)
        n = self._n_vars
        while True:
            # One checkpoint per solver restart: each blocking-clause
            # round is a fresh CDCL solve, the natural boundary at which
            # a deadline can interrupt enumeration.
            checkpoint("symbolic solver restart")
            model = dpll_solve(CNF(n, tuple(clauses)))
            if model is None:
                return
            # The partial model stands for every completion over its
            # unassigned variables; expand them (lazily) so free bits
            # reach the decoder, then block the assigned core.
            free = [v for v in range(1, n + 1) if v not in model]
            for mask in range(1 << len(free)):
                filled = dict(model)
                for j, v in enumerate(free):
                    filled[v] = bool((mask >> j) & 1)
                world = self.decode(filled)
                if world not in seen:
                    seen.add(world)
                    yield world
            if not model:
                return
            clauses.append(
                frozenset(-v if positive else v for v, positive in model.items())
            )

    def count_worlds(self) -> int:
        """Exact ``|worlds(value)|`` — circuit-linear when ``exact``,
        deduplicated enumeration otherwise."""
        if self.exact:
            return self.circuit().model_count()
        self.circuit()  # exhaustive anyway; paths beat repeated solving
        return sum(1 for _ in self.iter_worlds())

    def member_sites(self):
        """The flat membership structure for certain/possible queries.

        When the root is a set/bag whose members are each either fixed
        (choice-free) or a single or-site with fixed branches, membership
        of an element in a world is decided by one site's bit pattern —
        returns ``(fixed_values, [(patterns, branch_values)])`` with one
        bit-literal conjunction per branch.  Raises
        :exc:`SymbolicUnsupported` on any deeper nesting (callers fall
        back to enumeration).
        """
        if self.root[0] not in ("set", "bag"):
            raise SymbolicUnsupported("root is not a collection")
        fixed: list[Value] = []
        sites: list[tuple[tuple[tuple[int, ...], ...], tuple[Value, ...]]] = []
        for member in self.root[1]:
            while member[0] == "or" and not member[1] and member[2]:
                member = member[2][0]
            if member[0] == "or" and not member[2]:
                # An empty or-site: the whole space has no worlds — the
                # callers' satisfiability check raises for it.
                continue
            if _node_is_fixed(member):
                fixed.append(_fixed_value(member))
                continue
            if member[0] != "or" or not member[1]:
                raise SymbolicUnsupported("nested choices in a member")
            bits, subs = member[1], member[2]
            if not all(_node_is_fixed(sub) for sub in subs):
                raise SymbolicUnsupported("nested choices in a member")
            patterns = tuple(_pattern(bits, i) for i in range(len(subs)))
            sites.append((patterns, tuple(_fixed_value(sub) for sub in subs)))
        return fixed, sites

    def certain_members(self) -> frozenset[Value]:
        """Elements present in *every* world: one UNSAT check each."""
        fixed, sites = self.member_sites()
        if not self.satisfiable():
            raise OrNRAValueError("certain() of an inconsistent value (no worlds)")
        certain = set(fixed)
        candidates: dict[Value, list[tuple[int, ...]]] = {}
        for patterns, values in sites:
            for pattern, branch_value in zip(patterns, values, strict=True):
                candidates.setdefault(branch_value, []).append(pattern)
        base = self._clauses
        for candidate, patterns in candidates.items():
            checkpoint("symbolic certain membership")
            if candidate in certain:
                continue
            # Certain iff "no world omits it": CNF plus, per occurrence,
            # a clause denying that branch's bit pattern is UNSAT.
            blocked = tuple(base) + tuple(
                frozenset(-lit for lit in pattern) for pattern in patterns
            )
            if not dpll_sat(CNF(self._n_vars, blocked)):
                certain.add(candidate)
        return frozenset(certain)

    def possible_members(self) -> frozenset[Value]:
        """Elements present in *some* world: one SAT check each."""
        fixed, sites = self.member_sites()
        if not self.satisfiable():
            raise OrNRAValueError("possible() of an inconsistent value (no worlds)")
        possible = set(fixed)
        base = self._clauses
        for patterns, values in sites:
            for pattern, branch_value in zip(patterns, values, strict=True):
                checkpoint("symbolic possible membership")
                if branch_value in possible:
                    continue
                chosen = tuple(base) + tuple(
                    frozenset((lit,)) for lit in pattern
                )
                if dpll_sat(CNF(self._n_vars, chosen)):
                    possible.add(branch_value)
        return frozenset(possible)


def _pattern(bits: tuple[int, ...], index: int) -> tuple[int, ...]:
    """The bit-literal conjunction selecting branch *index* of a site."""
    return tuple(
        bit if (index >> t) & 1 else -bit for t, bit in enumerate(bits)
    )


def _node_is_fixed(node) -> bool:
    tag = node[0]
    if tag == "leaf":
        return True
    if tag == "pair":
        return _node_is_fixed(node[1]) and _node_is_fixed(node[2])
    if tag == "variant":
        return _node_is_fixed(node[2])
    if tag in ("set", "bag"):
        return all(_node_is_fixed(e) for e in node[1])
    return False  # an or-site


def _fixed_value(node) -> Value:
    tag = node[0]
    if tag == "leaf":
        return node[1]
    if tag == "pair":
        return Pair(_fixed_value(node[1]), _fixed_value(node[2]))
    if tag == "variant":
        return Variant(node[1], _fixed_value(node[2]))
    if tag == "set":
        return SetValue(_fixed_value(e) for e in node[1])
    return BagValue(_fixed_value(e) for e in node[1])


# -- the injectivity certificate ---------------------------------------------


def _injective(v: Value) -> bool:
    """Do distinct canonical choice vectors yield distinct worlds?

    Sufficient structural conditions, checked in one traversal.  The
    analysis returns ``(injective, grounded, fixed, support)`` per
    sub-value: *grounded* — every world contains at least one atom;
    *fixed* — the sub-value is choice-free (it is its own single world);
    *support* — the atoms occurring anywhere below.  Two sibling
    positions can only collapse different choices into one world if
    their world sets intersect; fixed siblings are distinct canonical
    values (hence distinct worlds), and otherwise disjoint supports with
    at most one atom-free-capable sibling rule intersection out.
    Conservative: a ``False`` merely routes counting to enumeration.
    """

    def pairwise_ok(parts) -> bool:
        for i, (_, gi, fi, si) in enumerate(parts):
            for _, gj, fj, sj in parts[i + 1 :]:
                if fi and fj:
                    continue
                if si & sj:
                    return False
                if not gi and not gj:
                    return False
        return True

    def walk(v: Value):
        if isinstance(v, Atom):
            return True, True, True, frozenset((v,))
        if isinstance(v, UnitValue):
            return True, False, True, frozenset()
        if isinstance(v, Pair):
            ia, ga, fa, sa = walk(v.fst)
            ib, gb, fb, sb = walk(v.snd)
            return ia and ib, ga or gb, fa and fb, sa | sb
        if isinstance(v, Variant):
            i, g, f, s = walk(v.payload)
            return i, g, f, s
        if isinstance(v, OrSetValue):
            parts = [walk(e) for e in v.elems]
            inj = all(p[0] for p in parts) and pairwise_ok(parts)
            grounded = all(p[1] for p in parts)
            support = frozenset().union(*(p[3] for p in parts)) if parts else frozenset()
            return inj, grounded, not v.elems, support
        if isinstance(v, (SetValue, BagValue)):
            parts = [walk(e) for e in v.elems]
            inj = all(p[0] for p in parts) and pairwise_ok(parts)
            grounded = any(p[1] for p in parts)
            fixed = all(p[2] for p in parts)
            support = frozenset().union(*(p[3] for p in parts)) if parts else frozenset()
            return inj, grounded, fixed, support
        raise OrNRAValueError(f"not a value: {v!r}")

    injective, _grounded, fixed, _support = walk(v)
    return injective or fixed


# -- the backend -------------------------------------------------------------


class SymbolicBackend(Backend):
    """Knowledge-compilation execution for world queries.

    ``execute`` delegates to eager — a symbolic representation has
    nothing to add when the caller wants the materialized output value,
    and delegation keeps the backend conformant on arbitrary programs.
    The wins are the world-query methods: ``possibilities`` (lazy
    decoded model enumeration), :meth:`count_worlds`, :meth:`exists`,
    :meth:`certain` and :meth:`possible`, all running on the compiled
    circuit when the trace supports the plan and falling back to eager
    enumeration when it does not.
    """

    name = "symbolic"

    def __init__(self) -> None:
        self._eager = EagerBackend()

    def execute(
        self, plan: Plan, value: Value, interner: Interner | None = None
    ) -> Value:
        return self._eager.execute(plan, value, interner)

    def space(self, plan: Plan, value: Value) -> ChoiceSpace | None:
        """The compiled choice space, or ``None`` when unsupported."""
        try:
            return ChoiceSpace(trace_worlds(plan, value))
        except SymbolicUnsupported:
            return None

    def possibilities(
        self, plan: Plan, value: Value, interner: Interner | None = None
    ) -> Iterator[Value]:
        space = self.space(plan, value)
        if space is None:
            return self._eager.possibilities(plan, value, interner)
        return space.iter_worlds()

    # -- world queries -------------------------------------------------------

    def count_worlds(
        self, plan: Plan, value: Value, interner: Interner | None = None
    ) -> int:
        space = self.space(plan, value)
        if space is None:
            return _dedup_count(self._eager.possibilities(plan, value, interner))
        return space.count_worlds()

    def exists(
        self, plan: Plan, value: Value, interner: Interner | None = None
    ) -> bool:
        space = self.space(plan, value)
        if space is None:
            return next(
                iter(self._eager.possibilities(plan, value, interner)), None
            ) is not None
        return space.satisfiable()

    def certain(
        self, plan: Plan, value: Value, interner: Interner | None = None
    ) -> frozenset[Value]:
        space = self.space(plan, value)
        if space is not None:
            try:
                return space.certain_members()
            except SymbolicUnsupported:
                worlds = space.iter_worlds()
                return _certain_of_worlds(worlds)
        return _certain_of_worlds(self._eager.possibilities(plan, value, interner))

    def possible(
        self, plan: Plan, value: Value, interner: Interner | None = None
    ) -> frozenset[Value]:
        space = self.space(plan, value)
        if space is not None:
            try:
                return space.possible_members()
            except SymbolicUnsupported:
                worlds = space.iter_worlds()
                return _possible_of_worlds(worlds)
        return _possible_of_worlds(self._eager.possibilities(plan, value, interner))


def _dedup_count(worlds: Iterator[Value]) -> int:
    return len(set(worlds))


def _world_elements(world: Value) -> frozenset[Value]:
    if isinstance(world, (SetValue, BagValue, OrSetValue)):
        return frozenset(world.elems)
    raise OrNRATypeError(
        f"certain/possible expect collection-valued worlds, got {world!r}"
    )


def _certain_of_worlds(worlds: Iterator[Value]) -> frozenset[Value]:
    result: frozenset[Value] | None = None
    for world in worlds:
        elems = _world_elements(world)
        result = elems if result is None else result & elems
        if not result:
            break
    if result is None:
        raise OrNRAValueError("certain() of an inconsistent value (no worlds)")
    return result


def _possible_of_worlds(worlds: Iterator[Value]) -> frozenset[Value]:
    result: set[Value] = set()
    empty = True
    for world in worlds:
        empty = False
        result |= _world_elements(world)
    if empty:
        raise OrNRAValueError("possible() of an inconsistent value (no worlds)")
    return frozenset(result)


BACKENDS["symbolic"] = SymbolicBackend()
