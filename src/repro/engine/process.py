"""The multiprocess backend: true CPU parallelism for compiled plans.

:class:`~repro.engine.parallel.ParallelBackend` shards the collection
spine across *threads* — safe and cheap, but on GIL builds CPU-bound
plans (normalization, arithmetic-heavy map bodies) serialize anyway.
:class:`ProcessBackend` runs the same sharded spine walk (it subclasses
:class:`~repro.engine.parallel.ShardedBackend`) with the shards executed
in a :class:`~concurrent.futures.ProcessPoolExecutor`:

* **pickle-safe transport** — the compiled :class:`~repro.engine.plan.Plan`
  is pickled *once* per plan (``Plan.__getstate__`` drops bound closures)
  and shipped to workers as a byte payload; each worker caches the
  unpickled plan and its bound closures keyed on the payload digest, so
  repeated shards of the same plan only pay the transport, not the
  rebind.  Values cross the boundary as ordinary pickles.
* **per-worker interner** — every worker process owns a private
  :class:`~repro.engine.interning.Interner` (keyed on ``os.getpid()`` so
  a forked arena is never reused), giving shard-local hash-consing and
  memoized ``normalize``; the coordinator merges shard results in order
  on materialization and the caller's arena re-interns the final value —
  merge-on-materialize, exactly like the thread backend.
* **graceful degradation** — a plan that does not pickle (a user
  primitive wrapping a lambda, say) falls back to eager execution in the
  coordinating process (counted in ``stats()["pickle_fallbacks"]``), and
  a broken pool is handled by *supervised recovery*
  (:meth:`ProcessBackend._supervised`): the pool is torn down and
  rebuilt up to ``restarts`` times with seeded, jittered backoff
  (:class:`~repro.engine.supervisor.Supervisor`) before the shards
  re-run locally, so ``backend="process"`` is *always* semantically
  safe.  Repeated incidents trip a
  :class:`~repro.engine.supervisor.CircuitBreaker`; while it is open,
  :meth:`ProcessBackend.healthy` answers ``False`` and the adaptive
  selector routes around the backend until the breaker half-opens and a
  probe succeeds.

Requests carrying a deadline (:mod:`repro.engine.deadline`) are
enforced coordinator-side: shard futures are awaited with
``result(timeout=remaining)`` and an expired wait cancels the
outstanding futures and raises
:class:`~repro.errors.DeadlineExceeded` — workers cannot observe the
coordinator's context variable across the pickle boundary, so the
coordinator polices the clock for them.  The deterministic
fault-injection harness (:mod:`repro.engine.faults`) hooks the
coordinator submission site (``process.pool``) and the three worker
entry points.

The backend registers itself as ``BACKENDS["process"]``;
``backend="auto"`` reaches it through
:func:`repro.engine.cost_model.select_backend` when the static estimate
says the plan is CPU-bound enough to amortize process transport
(``PROCESS_NORM_SIZE``).  :meth:`ProcessBackend.run_values` is the batch
hook ``Engine.run_many`` uses to fan *whole inputs* across workers —
one task per input chunk, each evaluated start-to-finish in a worker.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
import threading
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from itertools import repeat
from typing import Any, Callable, Iterable, Sequence

from repro.errors import DeadlineExceeded
from repro.values.values import Value

from repro.engine import faults
from repro.engine.analysis import plan_facts
from repro.engine.backends import BACKENDS
from repro.engine.columnar import Arena, compile_stages, run_stages
from repro.engine.deadline import current_deadline
from repro.engine.faults import InjectedFault
from repro.engine.interning import Interner
from repro.engine.parallel import ShardedBackend, even_chunks, even_ranges
from repro.engine.plan import Plan, PlanNode
from repro.engine.supervisor import CircuitBreaker, Supervisor

__all__ = ["ProcessBackend", "default_process_count"]

#: Cap on coordinator-side cached plan payloads (cleared wholesale past it).
_MAX_PAYLOADS = 128

#: Cap on worker-side cached plans / bound closures (cleared wholesale past
#: it).  Long-lived workers serving many distinct query texts must not
#: accumulate every plan they have ever seen.
_MAX_WORKER_PLANS = 128


def default_process_count() -> int:
    """Default worker-process count: the machine's cores, bounded."""
    return max(1, min(16, os.cpu_count() or 1))


# -- worker side -------------------------------------------------------------
#
# Everything below the pool boundary is module-level (picklable by
# reference under every multiprocessing start method).  Worker state is
# keyed on the worker's pid so a forked parent arena is never mistaken
# for the worker's own.

_WORKER_STATE: dict = {"pid": None}


def _worker_state() -> dict:
    state = _WORKER_STATE
    if state.get("pid") != os.getpid():
        state.clear()
        state["pid"] = os.getpid()
        state["interner"] = Interner()
        state["plans"] = {}
        state["bound"] = {}
    return state


def _worker_plan(payload: bytes) -> tuple[dict, bytes, Plan]:
    state = _worker_state()
    key = hashlib.sha1(payload).digest()
    plan = state["plans"].get(key)
    if plan is None:
        if len(state["plans"]) >= _MAX_WORKER_PLANS:
            state["plans"].clear()
            state["bound"].clear()
        plan = pickle.loads(payload)
        state["plans"][key] = plan
    return state, key, plan


def _bind_subtree(
    plan: Plan, idx: int, leaf: Callable | None
) -> Callable[[Value], Value]:
    """Eager closures for the subtree at *idx* (worker-side rebind)."""
    bound: dict[int, Callable[[Value], Value]] = {}

    def build(i: int) -> Callable[[Value], Value]:
        fn = bound.get(i)
        if fn is None:
            fn = Plan._build_node(plan.nodes[i], build, leaf)
            bound[i] = fn
        return fn

    return build(idx)


def _bind_body(plan: Plan, interner: Interner, idx: int) -> Callable[[Value], Value]:
    """Stage-body binder for :func:`repro.engine.columnar.compile_stages`."""
    return _bind_subtree(plan, idx, interner.leaf_apply)


def _run_chunk_remote(
    payload: bytes, body_idx: int | None, chunk: list[Value]
) -> list[Value]:
    """Worker entry point: run one plan subtree over one shard.

    *body_idx* selects the subtree (``None`` means the whole plan — the
    :meth:`ProcessBackend.run_values` batch path).  Inputs are interned
    into the worker's private arena so repeated elements share one
    memoized normalization within the worker.
    """
    faults.fire("process.worker_chunk")
    state, key, plan = _worker_plan(payload)
    idx = plan.root if body_idx is None else body_idx
    interner: Interner = state["interner"]
    fn = state["bound"].get((key, idx))
    if fn is None:
        fn = _bind_subtree(plan, idx, interner.leaf_apply)
        state["bound"][(key, idx)] = fn
    return [fn(interner.intern(e)) for e in chunk]


def _run_fused_slice_remote(
    payload: bytes, node_idx: int, kind: str, bases: list, raws: list
) -> tuple[str, list, list]:
    """Worker entry point: one fused node's stages over one arena slice.

    The slice crosses the boundary as raw columns — atom payloads and the
    occasional boxed ``Value`` — so no per-element ``Value`` pickling
    happens for the common all-atoms spine.  The compiled stage list is
    cached per (plan, node) like the bound closures.
    """
    faults.fire("process.worker_fused")
    state, key, plan = _worker_plan(payload)
    interner: Interner = state["interner"]
    stages = state["bound"].get((key, node_idx, "fused"))
    if stages is None:
        stages = compile_stages(
            plan.nodes[node_idx],
            functools.partial(_bind_body, plan, interner),
        )
        state["bound"][(key, node_idx, "fused")] = stages
    out = run_stages(stages, Arena(kind, bases, raws))
    return out.kind, out.bases, out.raws


def _worker_ping(_i: int) -> int:
    """No-op worker task used by :meth:`ProcessBackend.warm`."""
    faults.fire("process.worker_ping")
    return os.getpid()


# -- coordinator side --------------------------------------------------------


class ProcessBackend(ShardedBackend):
    """Sharded spine execution across a process pool.

    *max_workers* sizes the pool (default :func:`default_process_count`);
    *min_shard* is the smallest collection worth shipping to workers —
    process transport costs more than a thread handoff, so the default is
    higher than the thread backend's; *mp_context* overrides the
    :mod:`multiprocessing` start-method context.

    ``mp_context=None`` keeps the platform default (``fork`` on Linux):
    the ``spawn``/``forkserver`` methods re-import the *parent's* main
    module in each worker, which breaks plain-script and stdin callers
    (they degrade to the local fallback and never parallelize — measured,
    not hypothetical).  The cost of ``fork`` is that lazily creating
    workers from a non-main thread of a multi-threaded coordinator is
    deadlock-prone; long-lived servers avoid that by calling
    :meth:`warm` once from the main thread before concurrency starts
    (the serving entry points do).
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        min_shard: int = 32,
        mp_context=None,
        supervisor: Supervisor | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        super().__init__(
            max_workers=max_workers if max_workers is not None else default_process_count(),
            min_shard=min_shard,
        )
        self.mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._payloads: dict[int, tuple[Plan, bytes | None]] = {}
        self.supervisor = supervisor if supervisor is not None else Supervisor()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.remote_chunks = 0
        self.pickle_fallbacks = 0
        self.pool_fallbacks = 0
        self.pool_restarts = 0

    # -- pool --------------------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor | None:
        if self.max_workers <= 1:
            return None
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=self.max_workers, mp_context=self.mp_context
                    )
                    self._pool = pool
        return pool

    def warm(self) -> None:
        """Start every worker process now, from the calling thread.

        Worker processes are otherwise forked lazily by whichever thread
        first submits a shard — under a fork start method that thread is
        often a pool thread of a multi-threaded coordinator, which is
        deadlock-prone.  Serving entry points call this once from the
        main thread before concurrency begins; with all workers already
        alive, later submits never fork.
        """
        if self._executor() is None:
            return
        # One task per worker forces the pool to spawn its full
        # complement (workers are created one per pending submit).
        def attempt() -> list:
            return self._pool_map(self._executor(), _worker_ping, range(self.max_workers))

        self._supervised(attempt)

    def close(self) -> None:
        """Shut the worker pool down (a later execute reopens it)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def _discard_pool(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def _count(self, counter: str, n: int = 1) -> None:
        # The singleton backend is shared across engines and threads;
        # unguarded += would lose increments under concurrency.
        with self._pool_lock:
            setattr(self, counter, getattr(self, counter) + n)

    # -- supervision -------------------------------------------------------

    def healthy(self) -> bool:
        """False while the circuit breaker is open (selector routes away)."""
        return self.breaker.allow()

    def _pool_map(
        self,
        pool: ProcessPoolExecutor | None,
        fn: Callable,
        *columns: Iterable,
    ) -> list:
        """``pool.map`` with coordinator-side deadline enforcement.

        Without an ambient deadline this is a plain blocking map.  With
        one, each shard is submitted as a future and awaited with the
        deadline's remaining budget — workers never see the coordinator's
        context variable (it does not survive pickling), so the
        coordinator polices the clock: an expired wait cancels every
        outstanding future and raises
        :class:`~repro.errors.DeadlineExceeded`.  The fault-injection
        site ``process.pool`` fires per attempt, before submission, so an
        injected :class:`~repro.engine.faults.InjectedFault` exercises
        the same supervised-recovery path as a genuinely broken pool.
        """
        faults.fire("process.pool")
        if pool is None:  # pragma: no cover - callers gate on _executor()
            raise BrokenExecutor("worker pool unavailable")
        deadline = current_deadline()
        if deadline is None:
            return list(pool.map(fn, *columns))
        # strict=False: the payload columns are itertools.repeat — the
        # finite chunk column bounds the zip, exactly like pool.map.
        futures: list[Future] = [
            pool.submit(fn, *args) for args in zip(*columns, strict=False)
        ]
        results: list[Any] = []
        try:
            for future in futures:
                remaining = deadline.remaining()
                if remaining <= 0.0:
                    raise FuturesTimeout
                results.append(future.result(timeout=remaining))
        except FuturesTimeout:
            for future in futures:
                future.cancel()
            raise DeadlineExceeded(
                "deadline exceeded waiting on process pool"
            ) from None
        return results

    def _supervised(self, attempt: Callable[[], list]) -> list | None:
        """Run one remote submission under the restart/breaker policy.

        Returns the attempt's result, or ``None`` when the caller should
        degrade to local execution: the breaker is open, or the pool
        failed ``restarts + 1`` times in a row (each failure tears the
        pool down so the next attempt forks fresh workers, and waits a
        seeded jittered backoff).  :class:`~repro.errors.DeadlineExceeded`
        is *not* retried — a request out of budget must fail now, not
        after a backoff sleep.
        """
        restarts = self.supervisor.restarts
        for trial in range(restarts + 1):
            if not self.breaker.allow():
                return None
            try:
                result = attempt()
            except (BrokenExecutor, InjectedFault):
                # A crashed worker (OOM kill, interpreter teardown) or an
                # injected coordinator fault must not take the query down.
                self._discard_pool()
                self.breaker.record_failure()
                if trial < restarts and self.breaker.allow():
                    self._count("pool_restarts")
                    self.supervisor.wait(trial)
                    continue
                self._count("pool_fallbacks")
                return None
            self.breaker.record_success()
            return result
        return None  # pragma: no cover - loop always returns

    # -- plan transport ----------------------------------------------------

    def can_transport(self, plan: Plan) -> bool:
        """Can *plan* reach the workers at all (is its pickle payload ok)?

        ``Engine.run_many`` consults this before committing a batch to
        :meth:`run_values`: an untransportable plan is better served by
        the *thread* fan-out than by this backend's sequential eager
        fallback.

        The memoized static fact
        (:func:`repro.engine.analysis.plan_facts`) answers the common
        case without touching the payload cache lock; the actual pickle
        payload stays the final word, so the decision is exactly the
        pre-analysis one (a leaf that pickles in isolation but whose
        *assembly* does not is still rejected).
        """
        if not plan_facts(plan).transportable:
            return False
        return self._payload(plan) is not None

    def _payload(self, plan: Plan) -> bytes | None:
        """The plan's pickled transport form (``None`` if unpicklable)."""
        key = id(plan)
        with self._pool_lock:
            entry = self._payloads.get(key)
            if entry is not None and entry[0] is plan:
                return entry[1]
        try:
            blob: bytes | None = pickle.dumps(plan)
        except Exception:
            blob = None
        with self._pool_lock:
            if len(self._payloads) >= _MAX_PAYLOADS:
                self._payloads.clear()
            # The stored plan reference keeps id(plan) from being recycled.
            self._payloads[key] = (plan, blob)
        return blob

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        plan: Plan,
        value: Value,
        interner: Interner | None = None,
        shard_hint: int | None = None,
    ) -> Value:
        from repro.engine.passes import fuse_plan

        # Fuse before the transport check so the payload workers receive
        # is the plan the spine walk executes (fuse_plan is idempotent).
        plan = fuse_plan(plan)
        if not self.can_transport(plan):
            # An unpicklable plan cannot reach the workers; correctness
            # beats parallelism, so run it eagerly in-process.
            self._count("pickle_fallbacks")
            return BACKENDS["eager"].execute(plan, value, interner)
        return super().execute(plan, value, interner, shard_hint)

    def _run_map_stage(
        self,
        plan: Plan,
        body_idx: int,
        chunks: list[list[Value]],
        leaf: Callable | None,
        bound: dict[int, Callable[[Value], Value]],
    ) -> list[list[Value]]:
        pool = self._executor() if len(chunks) > 1 else None
        payload = self._payload(plan) if pool is not None else None
        if pool is None or payload is None:
            return super()._run_map_stage(plan, body_idx, chunks, leaf, bound)
        def attempt() -> list:
            return self._pool_map(
                self._executor(),
                _run_chunk_remote,
                repeat(payload),
                repeat(body_idx),
                chunks,
            )

        results = self._supervised(attempt)
        if results is None:
            return super()._run_map_stage(plan, body_idx, chunks, leaf, bound)
        self._count("remote_chunks", len(chunks))
        return results

    def _run_fused_slices(
        self,
        plan: Plan,
        node: PlanNode,
        arena: Arena,
        n_slices: int,
        leaf: Callable | None,
        bound: dict[int, Callable[[Value], Value]],
    ) -> Arena | None:
        pool = self._executor()
        payload = self._payload(plan) if pool is not None else None
        if pool is None or payload is None:
            return None
        ranges = even_ranges(len(arena), n_slices)
        if len(ranges) <= 1:
            return None
        def attempt() -> list:
            return self._pool_map(
                self._executor(),
                _run_fused_slice_remote,
                repeat(payload),
                repeat(node.idx),
                repeat(arena.kind),
                [arena.bases[a:b] for a, b in ranges],
                [arena.raws[a:b] for a, b in ranges],
            )

        results = self._supervised(attempt)
        if results is None:
            return None
        self._count("remote_chunks", len(ranges))
        bases: list = []
        raws: list = []
        for _kind, slice_bases, slice_raws in results:
            bases.extend(slice_bases)
            raws.extend(slice_raws)
        return Arena(results[0][0], bases, raws)

    def run_values(
        self,
        plan: Plan,
        values: Sequence[Value],
        interner: Interner | None = None,
        max_workers: int | None = None,
    ) -> list[Value]:
        """Fan *whole inputs* across the worker pool, one chunk per task.

        The batch hook behind ``Engine.run_many(..., backend="process")``:
        each input is evaluated start-to-finish inside one worker (no
        per-stage materialization crossing the boundary), and results
        come back in input order.  *max_workers* is the caller's
        fan-out bound (``run_many``'s parameter): fewer chunks are cut
        when it is tighter than the pool.
        """
        fanout = self.max_workers if max_workers is None else min(max_workers, self.max_workers)
        pool = self._executor() if fanout > 1 else None
        payload = self._payload(plan) if pool is not None else None
        if pool is None or payload is None or len(values) <= 1:
            return [self.execute(plan, v, interner) for v in values]
        chunks = even_chunks(list(values), fanout)
        def attempt() -> list:
            return self._pool_map(
                self._executor(), _run_chunk_remote, repeat(payload), repeat(None), chunks
            )

        shards = self._supervised(attempt)
        if shards is None:
            return [self.execute(plan, v, interner) for v in values]
        self._count("remote_chunks", len(chunks))
        results = [r for shard in shards for r in shard]
        if interner is not None:
            results = [interner.intern(r) for r in results]
        return results

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict[str, int | str]:
        """Transport, fallback and supervision counters (diagnostics/tests)."""
        breaker_state = self.breaker.state
        with self._pool_lock:
            return {
                "remote_chunks": self.remote_chunks,
                "pickle_fallbacks": self.pickle_fallbacks,
                "pool_fallbacks": self.pool_fallbacks,
                "pool_restarts": self.pool_restarts,
                "breaker": breaker_state,
                "max_workers": self.max_workers,
            }


BACKENDS["process"] = ProcessBackend()
