"""Deterministic fault injection for the robustness test harness.

The fault-tolerance layer's core invariant — *no admitted request is
ever left unresolved* — is only worth stating if it can be exercised:
worker crashes, slow evaluations and malformed protocol frames must be
reproducible on demand, in-process and in CI.  This module is the
injection harness:

* a :class:`FaultPlan` is a seeded set of :class:`FaultRule`\\ s, each
  naming a **site** (a string the instrumented code passes to
  :func:`fire`), a fault **kind**, and either a deterministic hit count
  (``times`` — fire on the first N hits of that site) or a probability
  (decided by the plan's seeded RNG, so a given seed replays the same
  fault schedule);
* instrumented code calls ``faults.fire("site.name")`` at the named
  sites; with no plan installed the call is one module-global read, so
  production paths pay nothing;
* plans are installed programmatically (:func:`install` /
  :func:`clear`, or the :func:`active_plan` context manager) or through
  the ``REPRO_FAULTS`` environment variable — the env gate is what lets
  forked/spawned *worker processes* of the process backend pick the
  plan up and crash on cue.

Fault kinds:

``error``
    raise :class:`InjectedFault` at the site (a generic in-process
    failure; the process backend's coordinator treats it like a broken
    pool so supervised recovery can be driven without killing real
    processes);
``crash``
    hard-exit the current process (``os._exit``) — only meaningful
    inside pool worker processes, where it produces a genuine
    ``BrokenProcessPool``;
``slow``
    sleep for the rule's ``delay`` seconds (drives deadline coverage);
``malform``
    corrupt the payload passed to :func:`fire` (drives the stdio
    server's malformed-frame handling).

``REPRO_FAULTS`` spec syntax — semicolon-separated entries; an optional
``seed=N`` entry, then ``site:kind[:times[:delay]]`` rules where
``times`` is an integer or ``*`` (every hit)::

    REPRO_FAULTS="seed=42;process.worker_chunk:crash:1;serve.eval:slow:2:0.05"
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "SITES",
    "active",
    "active_plan",
    "clear",
    "fire",
    "install",
]

#: The named injection sites instrumented across the codebase (the
#: documentation the harness tests assert against — adding a site means
#: adding it here).
SITES = (
    "process.pool",  # coordinator-side pool submission (engine/process.py)
    "process.worker_chunk",  # worker entry for plan-subtree shards
    "process.worker_fused",  # worker entry for fused arena slices
    "process.worker_ping",  # worker entry for warm()'s ping task
    "serve.eval",  # AsyncEngine's executor-side batch evaluation
    "serve.frame",  # stdio server's per-line frame decoding
)

KINDS = ("error", "crash", "slow", "malform")


class InjectedFault(RuntimeError):
    """The error an ``error``-kind rule raises at its site."""


@dataclass
class FaultRule:
    """One injection: fire *kind* at *site* for the first *times* hits.

    ``times=None`` means decide per hit with the plan's seeded RNG at
    probability *prob* (deterministic for a fixed seed and hit order).
    """

    site: str
    kind: str
    times: int | None = 1
    prob: float = 1.0
    delay: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (have: {KINDS})")


@dataclass
class FaultPlan:
    """A seeded, reproducible schedule of injected faults."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    _hits: dict[str, int] = field(default_factory=dict, repr=False)
    _fired: dict[int, int] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` environment spec (see module doc)."""
        seed = 0
        rules: list[FaultRule] = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                seed = int(entry[len("seed=") :])
                continue
            parts = entry.split(":")
            if len(parts) < 2:
                raise ValueError(f"malformed fault entry {entry!r}")
            site, kind = parts[0], parts[1]
            times: int | None = 1
            prob = 1.0
            if len(parts) > 2:
                if parts[2] == "*":
                    times = None
                    prob = 1.0
                elif "." in parts[2]:
                    times = None
                    prob = float(parts[2])
                else:
                    times = int(parts[2])
            delay = float(parts[3]) if len(parts) > 3 else 0.01
            rules.append(FaultRule(site, kind, times=times, prob=prob, delay=delay))
        return cls(seed=seed, rules=tuple(rules))

    def match(self, site: str) -> FaultRule | None:
        """The rule firing at this hit of *site*, if any (counts the hit)."""
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            for i, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                if rule.times is not None:
                    fired = self._fired.get(i, 0)
                    if fired >= rule.times:
                        continue
                    self._fired[i] = fired + 1
                    return rule
                # Probabilistic rule: a per-(site, hit) hash of the seed
                # keeps the decision deterministic for a fixed seed and
                # independent of rule-matching order elsewhere.
                draw = _seeded_draw(self.seed, site, hit)
                if draw < rule.prob:
                    return rule
            return None

    def stats(self) -> dict[str, int]:
        """Site hit counts (diagnostics for harness tests)."""
        with self._lock:
            return dict(self._hits)


def _seeded_draw(seed: int, site: str, hit: int) -> float:
    """A deterministic pseudo-uniform draw in [0, 1) for one site hit.

    Built on ``crc32`` rather than ``hash()``: string hashing is
    randomized per process (``PYTHONHASHSEED``), and the whole point is
    that one seed replays one schedule — in this process, in forked
    workers, and in CI.
    """
    x = (
        seed * 0x9E3779B9
        + zlib.crc32(site.encode("utf-8")) * 0x85EBCA6B
        + hit * 0xC2B2AE35
    ) & 0xFFFFFFFF
    # splitmix-style scramble: adjacent hits must not cluster.
    x = (x ^ (x >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    x = (x ^ (x >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    return ((x ^ (x >> 16)) & 0xFFFFFF) / float(1 << 24)


# -- the installed plan ------------------------------------------------------

_ACTIVE: FaultPlan | None = None
_ENV_CHECKED = False


def install(plan: FaultPlan) -> FaultPlan:
    """Install *plan* as the process-wide active fault plan."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = plan
    _ENV_CHECKED = True
    return plan


def clear() -> None:
    """Remove the active plan (and forget any env-derived one)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = True


@contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install *plan* for the duration of the block (tests' entry point)."""
    global _ACTIVE, _ENV_CHECKED
    previous, previously_checked = _ACTIVE, _ENV_CHECKED
    install(plan)
    try:
        yield plan
    finally:
        _ACTIVE, _ENV_CHECKED = previous, previously_checked


def active() -> FaultPlan | None:
    """The installed plan; lazily adopts ``REPRO_FAULTS`` on first use.

    The lazy env read is what arms *worker processes*: they inherit the
    environment (under any multiprocessing start method) and build their
    own plan copy on their first instrumented call.
    """
    global _ACTIVE, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec = os.environ.get("REPRO_FAULTS")
        if spec:
            _ACTIVE = FaultPlan.from_spec(spec)
    return _ACTIVE


def fire(site: str, payload: object = None) -> object:
    """The instrumented sites' hook: maybe inject a fault, else no-op.

    Returns *payload* (possibly corrupted by a ``malform`` rule), so
    frame-handling sites can thread their data through the hook.
    """
    plan = active()
    if plan is None:
        return payload
    rule = plan.match(site)
    if rule is None:
        return payload
    if rule.kind == "slow":
        time.sleep(rule.delay)
        return payload
    if rule.kind == "malform":
        return _corrupt(payload)
    if rule.kind == "crash":
        # A hard exit, bypassing finalizers — the honest simulation of an
        # OOM kill or interpreter abort inside a pool worker.
        os._exit(13)
    raise InjectedFault(f"injected fault at {site}")


def _corrupt(payload: object) -> object:
    """Deterministically mangle a protocol frame (an unparsable prefix)."""
    if isinstance(payload, str):
        return '{"malformed' + payload
    if isinstance(payload, bytes):  # pragma: no cover - symmetry
        return b'{"malformed' + payload
    return payload
