"""Plan-IR and rewrite verification: miscompiles fail loudly, named.

Optimizer rules are semantics-preserving *by proof obligation*, not by
construction — a buggy rule (or a buggy interaction of sound rules)
silently changes program meaning, and before this module the only
safety net was whichever differential test happened to cover the shape.
This module turns that into an always-on check:

* :func:`verify_plan` — structural well-formedness of a compiled
  :class:`~repro.engine.plan.Plan`: index integrity, topological kid
  order (the invariant the one-pass analysis and the bottom-up binder
  both rely on), per-op arity and source-class agreement, fused-spec
  consistency, and full reachability from the root.
* :func:`verify_rewrite` — fact preservation for one rule application.
  Two independent checks:

  1. **principal types** (the facts of Section 2): the rewritten
     morphism's most general type must *match* the original's — it may
     only generalize (substituting the rewrite's own type variables),
     never shift or specialize.  A rule that turns ``or_to_set`` into
     ``set_to_or`` dies here without running anything.
  2. **differential probes**: a handful of small random inputs of the
     original's principal domain type (type variables instantiated at
     ``int``), evaluated under both morphisms.  Divergence — a changed
     output, or a new error — is a miscompile.  A rule that drops a
     conditional branch survives the type check but dies here.

  Violations raise :exc:`PassVerificationError` carrying the *pass and
  rule names*, so a seeded miscompile reads ``pass 'broken-cond' rule
  'drop_branch': ...`` instead of a distant conformance diff.

Verification is gated by the ``REPRO_VERIFY_PASSES`` environment
variable (``1``/``true`` on, ``0``/``false`` off).  When unset it
defaults to **on under pytest and CI** (``PYTEST_CURRENT_TEST`` or
``CI`` in the environment) and off in production — the probe evaluation
is cheap but not free, and the optimizer sits on the compile path.
Checked (before, after) pairs are memoized, so re-deriving the same
rewrite costs one dict hit.
"""

from __future__ import annotations

import os
import random
import threading
import zlib
from typing import Callable

from repro.errors import OrNRAError, OrNRATypeError
from repro.gen import random_value
from repro.lang.morphisms import Compose, Cond, Id, Morphism, PairOf
from repro.lang.variant_ops import Case
from repro.types.kinds import INT, FuncType, Type
from repro.types.unify import FreshVars, apply_subst, free_type_vars, unify
from repro.values.values import Value

from repro.engine.columnar import spec_out_kind
from repro.engine.plan import MAP_KINDS, Plan

__all__ = [
    "PlanVerificationError",
    "PassVerificationError",
    "verification_enabled",
    "verify_plan",
    "verify_rewrite",
    "clear_verify_cache",
]

#: Differential probes per rewrite: enough to catch branch swaps and
#: drops on the seeded fixtures, few enough to stay off the profile.
_PROBES = 3

#: Probe value shape: tiny on purpose — the check is per *rule
#: application*, and small inputs already separate unequal morphisms.
_PROBE_WIDTH = 2
_PROBE_DOMAIN = 4

#: Memo of verified (before, after, pass) triples, bounded.
_VERIFIED: dict[tuple[Morphism, Morphism, str], bool] = {}
_VERIFIED_LOCK = threading.Lock()
_MAX_VERIFIED = 4096

_STAGE_TAGS = frozenset({"map", "mu", "retag", "unique"})


class PlanVerificationError(Exception):
    """A compiled plan violates the IR's structural invariants."""


class PassVerificationError(Exception):
    """An optimizer rule application changed the program's facts.

    ``pass_name`` / ``rule_name`` identify the offending rewrite; the
    message carries the divergence evidence.
    """

    def __init__(self, pass_name: str, rule_name: str, detail: str) -> None:
        self.pass_name = pass_name
        self.rule_name = rule_name
        super().__init__(
            f"pass {pass_name!r} rule {rule_name!r} broke the program: {detail}"
        )


def verification_enabled() -> bool:
    """Should optimizer rewrites be verified in this process?

    ``REPRO_VERIFY_PASSES=1`` (or ``true``/``yes``/``on``) forces on,
    ``0``/``false``/``no``/``off`` forces off; unset defaults to on
    under pytest or CI and off otherwise.
    """
    raw = os.environ.get("REPRO_VERIFY_PASSES")
    if raw is not None:
        return raw.strip().lower() not in ("", "0", "false", "no", "off")
    return "PYTEST_CURRENT_TEST" in os.environ or bool(os.environ.get("CI"))


def clear_verify_cache() -> None:
    """Drop the rewrite memo (benchmarks measure cold verification)."""
    with _VERIFIED_LOCK:
        _VERIFIED.clear()


# -- structural plan verification ---------------------------------------------

#: Required kid count per op (``None`` means checked specially).
_ARITY: dict[str, int | None] = {
    "id": 0,
    "leaf": 0,
    "pair": 2,
    "cond": 3,
    "case": 2,
    "map": 1,
    "chain": None,
    "fused": None,
}


def verify_plan(plan: Plan, context: str = "") -> Plan:
    """Check *plan* against the IR's structural invariants; return it.

    Raises :exc:`PlanVerificationError` naming the offending node on
    any violation.  The invariants are exactly what the rest of the
    engine assumes without checking: in-range indices, kids emitted
    before parents (``compile_plan`` and ``fuse_plan`` both guarantee
    it, and the one-pass analysis and binder rely on it), per-op arity,
    op/source-class agreement, fused-spec consistency, and every node
    reachable from the root.
    """
    where = f" ({context})" if context else ""
    n = len(plan.nodes)
    if not 0 <= plan.root < n:
        raise PlanVerificationError(f"root n{plan.root} out of range 0..{n - 1}{where}")
    for pos, node in enumerate(plan.nodes):
        label = f"n{pos} {node.op}{where}"
        if node.idx != pos:
            raise PlanVerificationError(f"{label}: idx field says {node.idx}")
        if node.op not in _ARITY:
            raise PlanVerificationError(f"{label}: unknown op")
        for k in node.kids:
            if not 0 <= k < n:
                raise PlanVerificationError(f"{label}: kid n{k} out of range")
            if k >= pos:
                raise PlanVerificationError(
                    f"{label}: kid n{k} not emitted before its parent"
                )
        arity = _ARITY[node.op]
        if arity is not None and len(node.kids) != arity:
            raise PlanVerificationError(
                f"{label}: expected {arity} kid(s), found {len(node.kids)}"
            )
        if node.op == "chain" and len(node.kids) < 2:
            raise PlanVerificationError(f"{label}: chain with <2 steps")
        if node.op == "pair" and not isinstance(node.source, PairOf):
            raise PlanVerificationError(f"{label}: source is not PairOf")
        if node.op == "cond" and not isinstance(node.source, Cond):
            raise PlanVerificationError(f"{label}: source is not Cond")
        if node.op == "case" and not isinstance(node.source, Case):
            raise PlanVerificationError(f"{label}: source is not Case")
        if node.op == "id" and not isinstance(node.source, Id):
            raise PlanVerificationError(f"{label}: source is not Id")
        if node.op == "map":
            family = MAP_KINDS.get(type(node.source))
            if family is None:
                raise PlanVerificationError(f"{label}: source is not a map class")
            if node.kind != family[0]:
                raise PlanVerificationError(
                    f"{label}: kind {node.kind!r} != source family {family[0]!r}"
                )
        if node.op == "leaf" and (
            isinstance(node.source, (Compose, Id, PairOf, Cond, Case))
            or type(node.source) in MAP_KINDS
        ):
            raise PlanVerificationError(
                f"{label}: composite morphism compiled as a leaf"
            )
        if node.op == "fused":
            if not node.spec:
                raise PlanVerificationError(f"{label}: fused node without a spec")
            map_stages = [s for s in node.spec if s[0] == "map"]
            if len(map_stages) != len(node.kids):
                raise PlanVerificationError(
                    f"{label}: {len(map_stages)} map stage(s) but "
                    f"{len(node.kids)} kid(s)"
                )
            for stage in node.spec:
                if stage[0] not in _STAGE_TAGS:
                    raise PlanVerificationError(
                        f"{label}: unknown stage tag {stage[0]!r}"
                    )
            if node.kind != spec_out_kind(node.spec):
                raise PlanVerificationError(
                    f"{label}: kind {node.kind!r} != spec output "
                    f"{spec_out_kind(node.spec)!r}"
                )
    reached: set[int] = set()
    stack = [plan.root]
    while stack:
        i = stack.pop()
        if i in reached:
            continue
        reached.add(i)
        stack.extend(plan.nodes[i].kids)
    if len(reached) != n:
        orphans = sorted(set(range(n)) - reached)
        raise PlanVerificationError(
            f"unreachable node(s) {', '.join(f'n{i}' for i in orphans)}{where}"
        )
    return plan


# -- rewrite verification ------------------------------------------------------


def _principal_type(m: Morphism, fresh: FreshVars) -> FuncType | None:
    try:
        return m.signature(fresh)
    except Exception:
        return None


def _instantiate_ground(t: Type) -> Type:
    """*t* with every type variable pinned at ``int`` (probe generation)."""
    mapping = {var: INT for var in free_type_vars(t)}
    return apply_subst(mapping, t) if mapping else t


def _probe_inputs(dom: Type, seed: int) -> list[Value]:
    rng = random.Random(seed)
    try:
        return [
            random_value(
                dom, rng, max_width=_PROBE_WIDTH, min_width=0, domain=_PROBE_DOMAIN
            )
            for _ in range(_PROBES)
        ]
    except OrNRAError:
        # A domain the generator cannot inhabit: the type check above
        # already ran; there is simply nothing to probe.
        return []


def verify_rewrite(
    before: Morphism,
    after: Morphism,
    pass_name: str,
    rule_name: str,
    apply_fn: Callable[[Morphism, Value], Value] | None = None,
) -> None:
    """Check that rewriting *before* into *after* preserved the program.

    Raises :exc:`PassVerificationError` (naming *pass_name* /
    *rule_name*) when the principal types diverge or a differential
    probe separates the two morphisms.  *apply_fn* overrides the probe
    evaluator (tests inject counters); the default is direct ``apply``.

    Verified triples are memoized — fixpoint drivers re-derive the same
    local rewrites constantly, and the memo makes each repeat one dict
    lookup.
    """
    memo_key = (before, after, pass_name)
    with _VERIFIED_LOCK:
        if _VERIFIED.get(memo_key):
            return

    fresh = FreshVars(prefix="v")
    ft_before = _principal_type(before, fresh)
    ft_after = _principal_type(after, fresh) if ft_before is not None else None
    if ft_before is not None:
        if ft_after is None:
            raise PassVerificationError(
                pass_name,
                rule_name,
                f"rewrite of {before.describe()} no longer typechecks: "
                f"{after.describe()}",
            )
        # One-way match: the rewrite's type may only *generalize* —
        # unification must succeed binding only the rewrite's own
        # variables (the two signatures share one fresh supply, so the
        # variable sets are disjoint).
        try:
            subst = unify(ft_after.dom, ft_before.dom)
            subst = unify(ft_after.cod, ft_before.cod, subst)
        except OrNRATypeError as exc:
            raise PassVerificationError(
                pass_name,
                rule_name,
                f"principal type changed: {before.describe()} : {ft_before} "
                f"rewritten to {after.describe()} : {ft_after} ({exc})",
            ) from None
        stuck = free_type_vars(ft_before) & set(subst)
        if stuck:
            raise PassVerificationError(
                pass_name,
                rule_name,
                f"rewrite specializes the principal type: "
                f"{before.describe()} : {ft_before} became "
                f"{after.describe()} : {ft_after}",
            )
        # Differential probes over the original's (ground) domain.
        dom = _instantiate_ground(ft_before.dom)
        seed = zlib.crc32(f"{pass_name}:{rule_name}".encode())
        run = apply_fn if apply_fn is not None else (lambda m, v: m.apply(v))
        for value in _probe_inputs(dom, seed):
            try:
                expected = run(before, value)
            except OrNRAError:
                # The probe missed the morphism's real precondition
                # (kind mismatches hide behind type variables); nothing
                # to compare on this input.
                continue
            try:
                got = run(after, value)
            except OrNRAError as exc:
                raise PassVerificationError(
                    pass_name,
                    rule_name,
                    f"rewrite raises on {value!r} where the original "
                    f"returned {expected!r}: {exc}",
                ) from None
            if got != expected:
                raise PassVerificationError(
                    pass_name,
                    rule_name,
                    f"output diverged on {value!r}: {expected!r} became {got!r}",
                )

    with _VERIFIED_LOCK:
        if len(_VERIFIED) >= _MAX_VERIFIED:
            _VERIFIED.clear()
        _VERIFIED[memo_key] = True
