"""The pass-based optimizer: composable, toggleable rewrite passes.

This re-homes the equational rewriter that used to be hard-coded in
:mod:`repro.lang.optimize` as a pipeline of named :class:`Pass` objects,
each a small group of oriented rewrite rules (a semantic identity on
well-typed inputs, oriented toward the cheaper side).  Passes can be run
individually (each is unit-testable on its own), toggled out of a
pipeline, or extended with new rules without touching the driver.

The default pipeline (:data:`DEFAULT_PASSES`) contains exactly the
equations of the paper's Section 7 optimizer — category laws, monad laws
for the three collection monads and the Theorem 4.2 coherence-diagram
equations — plus three new groups:

* ``projection`` additionally performs *dead-projection elimination*:
  ``pi_i o ((f, g) o h)`` drops the unused pair component even when the
  pairing is buried inside a composition chain;
* ``conditionals`` folds constant predicates, collapses equal branches
  and factors a common composition suffix out of both branches;
* ``normalize`` knows the or-set rewrites of :mod:`repro.core.normalize`:
  composing ``normalize`` after one of its own value transformers
  (``or_mu``, ``or_rho_2``) is just ``normalize``, ``normalize`` is
  idempotent, and the ``ortoset``/``settoor`` round trip is the identity.

:data:`COND_PUSHDOWN` is provided but *not* in the default pipeline: it
duplicates the pushed composition into all three branches, so it can
grow the static operator count (the default pipeline guarantees
``cost(optimize(m)) <= cost(m)``); enable it explicitly when a later
fusion pass profits from the exposed redexes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:
    from repro.engine.plan import Plan

from repro.core.normalize import Normalize
from repro.lang.bag_ops import AlphaD, BagEta, BagMu, DMap
from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Const,
    Id,
    Morphism,
    PairOf,
    Proj1,
    Proj2,
)
from repro.lang.orset_ops import (
    Alpha,
    OrEta,
    OrMap,
    OrMu,
    OrRho2,
    OrToSet,
    SetToOr,
)
from repro.lang.set_ops import SetEta, SetMap, SetMu, SetRho2
from repro.lang.variant_ops import Case, InjectLeft, InjectRight

__all__ = [
    "Pass",
    "Pipeline",
    "DEFAULT_PASSES",
    "COND_PUSHDOWN",
    "LATE_NORMALIZE",
    "default_pipeline",
    "optimize_morphism",
    "morphism_cost",
    "operator_census",
    "rebuild",
    "fuse_plan",
    "fusible_spans",
]

# (map-combinator, eta, mu) triples for the three collection monads.
_MONADS = (
    (SetMap, SetEta, SetMu),
    (OrMap, OrEta, OrMu),
    (DMap, BagEta, BagMu),
)

Rule = Callable[[Morphism], "Morphism | None"]


def rebuild(m: Morphism, kids: tuple[Morphism, ...]) -> Morphism:
    """Reconstruct *m* with new children (same class, same other state)."""
    if isinstance(m, Compose):
        return Compose(kids[0], kids[1])
    if isinstance(m, PairOf):
        return PairOf(kids[0], kids[1])
    if isinstance(m, Cond):
        return Cond(kids[0], kids[1], kids[2])
    if isinstance(m, Case):
        return Case(kids[0], kids[1])
    for map_cls, _eta, _mu in _MONADS:
        if isinstance(m, map_cls):
            return map_cls(kids[0])
    raise TypeError(f"cannot rebuild {m!r} with children")


# ---------------------------------------------------------------------------
# Rules (each returns the rewritten morphism, or None when it does not apply)
# ---------------------------------------------------------------------------


def _rule_assoc_right(m: Morphism) -> Morphism | None:
    # (f o g) o h -> f o (g o h): canonical right-nesting so that the
    # binary composition rules see adjacent operators.
    if isinstance(m, Compose) and isinstance(m.after, Compose):
        return Compose(m.after.after, Compose(m.after.before, m.before))
    return None


def _rule_compose_id(m: Morphism) -> Morphism | None:
    if isinstance(m, Compose):
        if isinstance(m.after, Id):
            return m.before
        if isinstance(m.before, Id):
            return m.after
    return None


def _rule_proj_pair(m: Morphism) -> Morphism | None:
    if isinstance(m, Compose) and isinstance(m.before, PairOf):
        if isinstance(m.after, Proj1):
            return m.before.left
        if isinstance(m.after, Proj2):
            return m.before.right
    return None


def _rule_dead_projection(m: Morphism) -> Morphism | None:
    # pi_i o ((f, g) o h) -> f_or_g o h: the pairing buried inside a
    # right-nested chain is dead on the unused side.
    if not (
        isinstance(m, Compose)
        and isinstance(m.after, (Proj1, Proj2))
        and isinstance(m.before, Compose)
        and isinstance(m.before.after, PairOf)
    ):
        return None
    pairing = m.before.after
    kept = pairing.left if isinstance(m.after, Proj1) else pairing.right
    return Compose(kept, m.before.before)


def _rule_pair_of_projections(m: Morphism) -> Morphism | None:
    if (
        isinstance(m, PairOf)
        and isinstance(m.left, Proj1)
        and isinstance(m.right, Proj2)
    ):
        return Id()
    return None


def _rule_bang_absorbs(m: Morphism) -> Morphism | None:
    if isinstance(m, Compose) and isinstance(m.after, Bang):
        if not isinstance(m.before, Id):
            return Bang()
    return None


def _rule_map_id(m: Morphism) -> Morphism | None:
    for map_cls, _eta, _mu in _MONADS:
        if isinstance(m, map_cls) and isinstance(m.body, Id):
            return Id()
    return None


def _rule_map_fusion(m: Morphism) -> Morphism | None:
    if not isinstance(m, Compose):
        return None
    for map_cls, _eta, _mu in _MONADS:
        if isinstance(m.after, map_cls) and isinstance(m.before, map_cls):
            return map_cls(Compose(m.after.body, m.before.body))
    return None


def _rule_mu_eta(m: Morphism) -> Morphism | None:
    if not isinstance(m, Compose):
        return None
    for map_cls, eta_cls, mu_cls in _MONADS:
        if isinstance(m.after, mu_cls):
            # mu o eta = id
            if isinstance(m.before, eta_cls):
                return Id()
            # mu o map(eta) = id
            if isinstance(m.before, map_cls) and isinstance(m.before.body, eta_cls):
                return Id()
    return None


def _rule_map_after_eta(m: Morphism) -> Morphism | None:
    if not isinstance(m, Compose):
        return None
    for map_cls, eta_cls, _mu in _MONADS:
        if isinstance(m.after, map_cls) and isinstance(m.before, eta_cls):
            return Compose(eta_cls(), m.after.body)
    return None


def _rule_mu_naturality(m: Morphism) -> Morphism | None:
    # mu o map(map(f))  ->  map(f) o mu  (one traversal less)
    if not isinstance(m, Compose):
        return None
    for map_cls, _eta, mu_cls in _MONADS:
        if (
            isinstance(m.after, mu_cls)
            and isinstance(m.before, map_cls)
            and isinstance(m.before.body, map_cls)
        ):
            return Compose(map_cls(m.before.body.body), mu_cls())
    return None


def _rule_alpha_diagram(m: Morphism) -> Morphism | None:
    # ormap(map(f)) o alpha  ->  alpha o map(ormap(f))       (Theorem 4.2)
    # ormap(dmap(f)) o alpha_d -> alpha_d o dmap(ormap(f))
    if not (isinstance(m, Compose) and isinstance(m.after, OrMap)):
        return None
    body = m.after.body
    if isinstance(m.before, Alpha) and isinstance(body, SetMap):
        return Compose(Alpha(), SetMap(OrMap(body.body)))
    if isinstance(m.before, AlphaD) and isinstance(body, DMap):
        return Compose(AlphaD(), DMap(OrMap(body.body)))
    return None


def _factors_through_proj1(m: Morphism) -> bool:
    """Is *m* of the shape ``h o pi_1`` (under right-nested composition)?"""
    if isinstance(m, Proj1):
        return True
    return isinstance(m, Compose) and _factors_through_proj1(m.before)


def _rule_or_mu_diagram(m: Morphism) -> Morphism | None:
    # ormap((f o pi_1, pi_2)) o or_rho_2  ->  or_rho_2 o (f o pi_1, pi_2)
    if not (isinstance(m, Compose) and isinstance(m.before, OrRho2)):
        return None
    if not isinstance(m.after, OrMap):
        return None
    body = m.after.body
    if (
        isinstance(body, PairOf)
        and isinstance(body.right, Proj2)
        and _factors_through_proj1(body.left)
    ):
        return Compose(OrRho2(), body)
    return None


def _rule_rho_eta(m: Morphism) -> Morphism | None:
    # or_rho_2 o (f, or_eta o g)  ->  or_eta o (f, g):  pairing with a
    # singleton or-set is conceptually just pairing.  (Dually for sets.)
    if not (isinstance(m, Compose) and isinstance(m.before, PairOf)):
        return None
    right = m.before.right
    if isinstance(m.after, OrRho2):
        if isinstance(right, OrEta):
            return Compose(OrEta(), PairOf(m.before.left, Id()))
        if isinstance(right, Compose) and isinstance(right.after, OrEta):
            return Compose(OrEta(), PairOf(m.before.left, right.before))
    if isinstance(m.after, SetRho2):
        if isinstance(right, SetEta):
            return Compose(SetEta(), PairOf(m.before.left, Id()))
        if isinstance(right, Compose) and isinstance(right.after, SetEta):
            return Compose(SetEta(), PairOf(m.before.left, right.before))
    return None


def _rule_case_eta(m: Morphism) -> Morphism | None:
    # case(f, g) o inl = f  (and dually for inr): case with a known tag.
    if isinstance(m, Compose) and isinstance(m.after, Case):
        if isinstance(m.before, InjectLeft):
            return m.after.on_left
        if isinstance(m.before, InjectRight):
            return m.after.on_right
    return None


def _rule_cond_same_branches(m: Morphism) -> Morphism | None:
    if isinstance(m, Cond) and m.then == m.orelse:
        return m.then
    return None


def _constant_bool(m: Morphism) -> bool | None:
    """The boolean *m* always returns, if statically known (K b [o !])."""
    if isinstance(m, Compose) and isinstance(m.before, Bang):
        m = m.after
    if isinstance(m, Const) and m.value.base == "bool":
        return bool(m.value.value)
    return None


def _rule_cond_const_pred(m: Morphism) -> Morphism | None:
    # cond(K true o !, t, f) -> t  (and dually for a constant-false test).
    if not isinstance(m, Cond):
        return None
    verdict = _constant_bool(m.pred)
    if verdict is None:
        return None
    return m.then if verdict else m.orelse


def _rule_cond_factor_suffix(m: Morphism) -> Morphism | None:
    # cond(p, f o t, f o e) -> f o cond(p, t, e): both branches end in the
    # same post-processing, so apply it once outside the conditional.
    if not (
        isinstance(m, Cond)
        and isinstance(m.then, Compose)
        and isinstance(m.orelse, Compose)
        and m.then.after == m.orelse.after
    ):
        return None
    return Compose(m.then.after, Cond(m.pred, m.then.before, m.orelse.before))


def _rule_cond_pushdown(m: Morphism) -> Morphism | None:
    # cond(p, t, f) o g -> cond(p o g, t o g, f o g): push a pre-step into
    # the predicate and both branches.  Semantics-preserving but triples
    # the occurrences of g, hence not in the default pipeline.
    if isinstance(m, Compose) and isinstance(m.after, Cond):
        c, g = m.after, m.before
        return Cond(
            Compose(c.pred, g), Compose(c.then, g), Compose(c.orelse, g)
        )
    return None


_NORMALIZE_ABSORBED = (OrMu, OrRho2)


def _rule_normalize_absorbs_transformer(m: Morphism) -> Morphism | None:
    # normalize o or_mu = normalize   /   normalize o or_rho_2 = normalize:
    # the inner combinator is one of normalization's own value
    # transformers, so by coherence (Theorem 4.2) running it first cannot
    # change the normal form.  Only fires for the type-agnostic normalize
    # (a declared input type would no longer match the new input).
    if not (
        isinstance(m, Compose)
        and isinstance(m.after, Normalize)
        and m.after.input_type is None
        and isinstance(m.before, _NORMALIZE_ABSORBED)
    ):
        return None
    return m.after


def _rule_normalize_idempotent(m: Morphism) -> Morphism | None:
    # normalize o normalize = normalize: a normal form has no redexes.
    if (
        isinstance(m, Compose)
        and isinstance(m.after, Normalize)
        and m.after.input_type is None
        and isinstance(m.before, Normalize)
    ):
        return m.before
    return None


def _rule_orset_set_roundtrip(m: Morphism) -> Morphism | None:
    # ortoset o settoor = id  and  settoor o ortoset = id: the two
    # coercions are mutually inverse bijections on the carrier.
    if not isinstance(m, Compose):
        return None
    if isinstance(m.after, OrToSet) and isinstance(m.before, SetToOr):
        return Id()
    if isinstance(m.after, SetToOr) and isinstance(m.before, OrToSet):
        return Id()
    return None


def _rule_drop_prenormalized_elements(m: Morphism) -> Morphism | None:
    # normalize o map(normalize) -> normalize (all three monads): by
    # coherence (Theorem 4.2) elementwise pre-normalization cannot change
    # the outer normal form, and Corollary 6.4 makes the un-normalized
    # pre-image the smaller input — so normalize as late, and as few
    # times, as possible.  Only for the type-agnostic outer normalize
    # (a declared input type would no longer match the new input).
    if not (
        isinstance(m, Compose)
        and isinstance(m.after, Normalize)
        and m.after.input_type is None
    ):
        return None
    before = m.before
    for map_cls, _eta, _mu in _MONADS:
        if isinstance(before, map_cls) and isinstance(before.body, Normalize):
            return m.after
    return None


def _rule_delay_normalize_past_mu(m: Morphism) -> Morphism | None:
    # or_mu o ormap(normalize_t) -> normalize_t o or_mu when t is an
    # or-set type: flattening first leaves one normalize over the smaller
    # (un-expanded) pre-image instead of one per element.  The declared
    # or-set input type is required so the rewritten or_mu still
    # typechecks (mu's input <t> must be an or-set of or-sets).
    if not (isinstance(m, Compose) and isinstance(m.after, OrMu)):
        return None
    from repro.types.kinds import OrSetType

    before = m.before
    if (
        isinstance(before, OrMap)
        and isinstance(before.body, Normalize)
        and isinstance(before.body.input_type, OrSetType)
    ):
        return Compose(Normalize(before.body.input_type), OrMu())
    return None


# ---------------------------------------------------------------------------
# Passes and pipelines
# ---------------------------------------------------------------------------


def operator_census(m: Morphism) -> frozenset[type]:
    """The set of morphism classes occurring in *m* (one cheap walk).

    The scheduler uses it to skip passes whose rules cannot possibly
    fire: a pass only matters when one of its trigger classes is present.
    """
    present: set[type] = set()

    def walk(node: Morphism) -> None:
        present.add(type(node))
        for kid in node.children():
            walk(kid)

    walk(m)
    return frozenset(present)


# The scheduler's internal census representation: one bit per morphism
# class, assigned on first sight, so subtree censuses union with `|` and
# pass relevance is one `&` — integer ops instead of set building on the
# optimizer's hottest path.  Bit assignment is locked: a race handing
# two bits to one class would permanently desynchronize the cached
# trigger masks from future census masks.
_CLASS_BITS: dict[type, int] = {}
_CLASS_BITS_LOCK = threading.Lock()


def _class_bit(cls: type) -> int:
    bit = _CLASS_BITS.get(cls)
    if bit is None:
        with _CLASS_BITS_LOCK:
            bit = _CLASS_BITS.get(cls)
            if bit is None:
                bit = 1 << len(_CLASS_BITS)
                _CLASS_BITS[cls] = bit
    return bit


def _mask_of(classes: Iterable[type]) -> int:
    mask = 0
    for cls in classes:
        mask |= _class_bit(cls)
    return mask


@dataclass(frozen=True)
class Pass:
    """A named, independently runnable group of rewrite rules.

    *triggers* lists the morphism classes whose presence makes the pass
    worth trying; ``None`` means always relevant.  The cost-guided
    scheduler skips passes whose triggers are absent from the program's
    :func:`operator_census`.
    """

    name: str
    rules: tuple[Rule, ...]
    doc: str = ""
    triggers: tuple[type, ...] | None = None

    def relevant(self, present: "frozenset[type] | set[type]") -> bool:
        """Could any rule of this pass fire on a tree with *present* ops?"""
        if self.triggers is None:
            return True
        return any(cls in present for cls in self.triggers)

    @cached_property
    def _trigger_mask(self) -> int:
        """Bitmask form of *triggers* (0 = always relevant)."""
        return 0 if self.triggers is None else _mask_of(self.triggers)

    def _relevant_mask(self, mask: int) -> bool:
        own = self._trigger_mask
        return own == 0 or bool(own & mask)

    def apply_at_root(self, m: Morphism) -> tuple[Morphism, str] | None:
        """Try each rule at the root; the first hit wins."""
        for rule in self.rules:
            out = rule(m)
            if out is not None and out != m:
                return out, rule.__name__.removeprefix("_rule_")
        return None

    def run(self, m: Morphism, max_passes: int = 50) -> Morphism:
        """Run just this pass (with canonical right-nesting) to fixpoint."""
        return Pipeline((CANONICALIZE, self)).run(m, max_passes=max_passes)


CANONICALIZE = Pass(
    "canonicalize",
    (_rule_assoc_right,),
    "right-nest compositions so binary rules see adjacent operators",
    triggers=(Compose,),
)
IDENTITY_ELIMINATION = Pass(
    "identity",
    (_rule_compose_id, _rule_map_id),
    "category identity laws and map(id) = id",
    triggers=(Id,),
)
PROJECTION = Pass(
    "projection",
    (
        _rule_proj_pair,
        _rule_dead_projection,
        _rule_pair_of_projections,
        _rule_bang_absorbs,
    ),
    "projection/pairing laws and dead-projection elimination",
    triggers=(Proj1, Proj2, PairOf, Bang),
)
MAP_FUSION = Pass(
    "fusion",
    (_rule_map_fusion,),
    "map(f) o map(g) = map(f o g) for all three monads",
    triggers=(SetMap, OrMap, DMap),
)
MONAD_LAWS = Pass(
    "monad",
    (_rule_mu_eta, _rule_map_after_eta, _rule_mu_naturality),
    "unit and naturality laws of the collection monads",
    triggers=(SetEta, OrEta, BagEta, SetMu, OrMu, BagMu),
)
INTERACTION = Pass(
    "interaction",
    (_rule_alpha_diagram, _rule_or_mu_diagram, _rule_rho_eta),
    "Theorem 4.2 coherence-diagram equations",
    triggers=(Alpha, AlphaD, OrRho2, SetRho2),
)
VARIANTS = Pass(
    "variants",
    (_rule_case_eta,),
    "case over a known injection",
    triggers=(Case,),
)
CONDITIONALS = Pass(
    "conditionals",
    (_rule_cond_same_branches, _rule_cond_const_pred, _rule_cond_factor_suffix),
    "conditional folding and common-suffix factoring",
    triggers=(Cond,),
)
NORMALIZE_AWARE = Pass(
    "normalize",
    (
        _rule_normalize_absorbs_transformer,
        _rule_normalize_idempotent,
        _rule_orset_set_roundtrip,
    ),
    "or-set rewrites around the normalize primitive",
    triggers=(Normalize, OrToSet, SetToOr),
)
LATE_NORMALIZE = Pass(
    "late-normalize",
    (_rule_drop_prenormalized_elements, _rule_delay_normalize_past_mu),
    "normalize as late (and as few times) as possible — Corollary 6.4 "
    "makes the un-normalized pre-image the smaller input",
    triggers=(Normalize,),
)
COND_PUSHDOWN = Pass(
    "cond-pushdown",
    (_rule_cond_pushdown,),
    "push a composition into conditional branches (may grow the plan)",
    triggers=(Cond,),
)

#: Classes a firing rule may introduce that were not necessarily present.
_ID_COMPOSE_MASK = _mask_of((Id, Compose))

DEFAULT_PASSES: tuple[Pass, ...] = (
    CANONICALIZE,
    IDENTITY_ELIMINATION,
    PROJECTION,
    MAP_FUSION,
    MONAD_LAWS,
    INTERACTION,
    VARIANTS,
    CONDITIONALS,
    NORMALIZE_AWARE,
    LATE_NORMALIZE,
)


class Pipeline:
    """A collection of passes run to a joint fixpoint, cost-guided.

    The driver keeps the old terminating bottom-up strategy (rewrite
    children first, then retry rules at the node until none fires) but
    schedules work by cost instead of by fixed pass order:

    * each sweep starts from an :func:`operator_census` of the program
      and **skips every pass whose trigger classes are absent** — on
      large programs touching few operator families this is where the
      optimizer's time goes;
    * when several passes can fire at one node, the candidates are
      scored by the cost model
      (:func:`repro.engine.cost_model.estimate_morphism_cost` by
      default) and the **cheapest resulting subtree wins** (best-first;
      ties keep pass order, preserving the old behaviour);
    * a *budget* caps the total number of rule applications per
      :meth:`run` — every prefix of a rewrite sequence is semantics-
      preserving, so an exhausted budget just returns the best morphism
      reached so far.

    ``fired`` records the rule names applied during the last
    :meth:`run`; ``schedule`` records ``(rule, cost_before, cost_after)``
    triples (diagnostics and the benchmarks read both).  The previous
    fixed-order driver remains as :meth:`run_fixed_order` so the
    scheduling win stays measurable (``benchmarks/bench_cost_model.py``).
    """

    def __init__(
        self,
        passes: Iterable[Pass] = DEFAULT_PASSES,
        cost_fn: Callable[[Morphism], int] | None = None,
        budget: int | None = None,
    ) -> None:
        self.passes: tuple[Pass, ...] = tuple(passes)
        self.cost_fn = cost_fn
        self.budget = budget
        self.fired: list[str] = []
        self.schedule: list[tuple[str, int, int]] = []
        self._spent = 0
        self._verify = False

    def _refresh_verify(self) -> None:
        # Sampled per run (not per rule application) so tests toggling
        # the environment variable see the change on their next run.
        from repro.engine.verify import verification_enabled

        self._verify = verification_enabled()

    def _check_rewrite(
        self, before: Morphism, after: Morphism, pass_name: str, rule_name: str
    ) -> None:
        from repro.engine.verify import verify_rewrite

        verify_rewrite(before, after, pass_name, rule_name)

    def _cost(self, m: Morphism) -> int:
        if self.cost_fn is not None:
            return self.cost_fn(m)
        from repro.engine.cost_model import estimate_morphism_cost

        return estimate_morphism_cost(m)

    def without(self, *names: str) -> "Pipeline":
        """A copy of this pipeline with the named passes disabled."""
        return Pipeline(
            (p for p in self.passes if p.name not in names),
            cost_fn=self.cost_fn,
            budget=self.budget,
        )

    def with_pass(self, extra: Pass) -> "Pipeline":
        """A copy of this pipeline with *extra* appended."""
        return Pipeline(
            (*self.passes, extra), cost_fn=self.cost_fn, budget=self.budget
        )

    def rewrite_once(self, m: Morphism) -> Morphism:
        """One census-filtered, best-first bottom-up sweep."""
        self._refresh_verify()
        present = operator_census(m)
        active = tuple(p for p in self.passes if p.relevant(present))
        if not active:
            return m
        out, _mask = self._rewrite(m, active)
        return out

    def _rewrite(
        self, m: Morphism, active: tuple[Pass, ...]
    ) -> tuple[Morphism, int]:
        """Bottom-up rewrite returning the subtree's census bitmask too.

        The census flows upward for free (an `|` of the kids' masks), so
        each node only tries passes whose trigger classes occur in *its
        own* subtree — operator-sparse regions of a large program are
        skipped without a single rule attempt.  The mask is an
        over-approximation after rules fire (bits are only ever added),
        which can cost a wasted attempt but never a missed one.
        """
        kids = m.children()
        mask = _class_bit(type(m))
        if kids:
            new_kids = []
            for k in kids:
                out, kid_mask = self._rewrite(k, active)
                new_kids.append(out)
                mask |= kid_mask
            new_kids = tuple(new_kids)
            if new_kids != kids:
                m = rebuild(m, new_kids)
        local = [p for p in active if p._relevant_mask(mask)]
        while local:
            if self.budget is not None and self._spent >= self.budget:
                break
            hits = [
                (p.name, *hit)
                for p in local
                if (hit := p.apply_at_root(m)) is not None
            ]
            if not hits:
                break
            if len(hits) == 1:
                pass_name, out, rule_name = hits[0]
            else:
                # Best-first: the candidate whose subtree the cost model
                # scores cheapest wins (stable min — ties keep pass order).
                pass_name, out, rule_name = min(
                    hits, key=lambda hit: self._cost(hit[1])
                )
            if self._verify:
                self._check_rewrite(m, out, pass_name, rule_name)
            self.fired.append(rule_name)
            self._spent += 1
            m = out
            # Every default rule rebuilds from operators already counted,
            # plus possibly Id/Compose — extend the mask, don't recompute.
            grown = mask | _class_bit(type(m)) | _ID_COMPOSE_MASK
            if grown != mask:
                mask = grown
                local = [p for p in active if p._relevant_mask(mask)]
        return m, mask

    def run(self, m: Morphism, max_passes: int = 50) -> Morphism:
        """Rewrite *m* to a fixpoint of all passes (or until the budget)."""
        self.fired = []
        self.schedule = []
        self._spent = 0
        cost_before: int | None = None
        for _ in range(max_passes):
            out = self.rewrite_once(m)
            if out == m:
                return out
            # One cost walk per changed sweep: the previous sweep's
            # "after" is this sweep's "before".
            if cost_before is None:
                cost_before = self._cost(m)
            cost_after = self._cost(out)
            self.schedule.append(("sweep", cost_before, cost_after))
            cost_before = cost_after
            m = out
            if self.budget is not None and self._spent >= self.budget:
                return m
        return m

    def run_fixed_order(self, m: Morphism, max_passes: int = 50) -> Morphism:
        """The pre-cost-model driver: fixed pass order, no census, no
        best-first scoring.  Kept as the baseline the scheduling
        benchmark compares against."""
        self.fired = []
        self._refresh_verify()
        for _ in range(max_passes):
            out = self._rewrite_fixed(m)
            if out == m:
                return out
            m = out
        return m

    def _rewrite_fixed(self, m: Morphism) -> Morphism:
        kids = m.children()
        if kids:
            new_kids = tuple(self._rewrite_fixed(k) for k in kids)
            if new_kids != kids:
                m = rebuild(m, new_kids)
        changed = True
        while changed:
            changed = False
            for pipeline_pass in self.passes:
                hit = pipeline_pass.apply_at_root(m)
                if hit is not None:
                    out, rule_name = hit
                    if self._verify:
                        self._check_rewrite(m, out, pipeline_pass.name, rule_name)
                    m = out
                    self.fired.append(rule_name)
                    changed = True
                    break
        return m


def default_pipeline() -> Pipeline:
    """A fresh pipeline with the default pass set."""
    return Pipeline(DEFAULT_PASSES)


def optimize_morphism(
    m: Morphism, pipeline: Pipeline | None = None, max_passes: int = 50
) -> Morphism:
    """Optimize *m* with *pipeline* (default pipeline when omitted)."""
    if pipeline is None:
        pipeline = Pipeline(DEFAULT_PASSES)
    return pipeline.run(m, max_passes=max_passes)


def morphism_cost(m: Morphism) -> int:
    """Static operator count (nodes in the morphism AST)."""
    return 1 + sum(morphism_cost(k) for k in m.children())


# -- plan fusion -------------------------------------------------------------
#
# Unlike the equational passes above, fusion rewrites the compiled *plan*
# (not the morphism): runs of spine stages in the root chain collapse
# into single ``fused`` nodes executing as one columnar kernel
# (:mod:`repro.engine.columnar`).  It is execution-time only — the
# backends fuse on entry and the engine's compile/describe output is
# unchanged — so diagnostics stay stable and non-fused backends never
# see a fused node.


def fusible_spans(plan: Plan) -> list[tuple[int, int, list]]:
    """Maximal fusible stage runs in *plan*'s root chain.

    Returns ``(start, stop, stages)`` triples over the chain's step
    positions.  A run qualifies when it has at least two spine stages
    (one kernel replaces several canonicalizing passes over the spine),
    or is a single map whose body compiles to a raw scalar kernel (the
    per-element win alone pays for the encoding).

    An adapter over :func:`repro.engine.analysis.plan_facts`: the span
    structure is part of the memoized fact record, so repeated
    ``fuse_plan``/``plan_profile`` calls stop re-walking the chain.
    """
    # Imported lazily, like columnar was before it: this module sits
    # below the analysis layer in the import order.
    from repro.engine.analysis import plan_facts

    return [
        (start, stop, list(stages))
        for start, stop, stages in plan_facts(plan).fusible
    ]


def fuse_plan(plan: Plan) -> Plan:
    """The fused execution plan for *plan* (cached; may be *plan* itself).

    Rebuilds the node array with every fusible run of root-chain spine
    stages replaced by one ``fused`` node whose kids are the map-stage
    body subtrees, whose source is the run's composed morphism (so type
    inference, decompilation and pickling keep working), and whose
    ``spec`` drives :func:`repro.engine.columnar.build_fused_kernel`.
    The original plan is never mutated; a plan with nothing to fuse is
    returned unchanged, so callers degrade to plain execution.
    """
    from repro.engine.columnar import spec_out_kind
    from repro.engine.plan import Plan, PlanNode

    cached = getattr(plan, "_fused_plan", None)
    if cached is not None:
        return cached
    spans = fusible_spans(plan)
    if not spans:
        setattr(plan, "_fused_plan", plan)  # noqa: B010 — derived cache
        return plan

    nodes: list[PlanNode] = []
    memo: dict[int, int] = {}

    def copy_subtree(i: int) -> int:
        known = memo.get(i)
        if known is not None:
            return known
        old = plan.nodes[i]
        kids = tuple(copy_subtree(k) for k in old.kids)
        idx = len(nodes)
        nodes.append(
            PlanNode(idx, old.op, kids, old.source, kind=old.kind, spec=old.spec)
        )
        memo[i] = idx
        return idx

    root_node = plan.nodes[plan.root]
    steps = list(root_node.kids) if root_node.op == "chain" else [plan.root]
    new_steps: list[int] = []
    pos = 0
    for start, stop, stages in spans:
        for k in range(pos, start):
            new_steps.append(copy_subtree(steps[k]))
        kids: list[int] = []
        spec: list[tuple] = []
        composed: Morphism | None = None
        for offset, stage in enumerate(stages):
            step_node = plan.nodes[steps[start + offset]]
            composed = (
                step_node.source
                if composed is None
                else Compose(step_node.source, composed)
            )
            if stage[0] == "map":
                kid_pos = len(kids)
                kids.append(copy_subtree(step_node.kids[0]))
                spec.append(("map", stage[1], kid_pos, stage[3]))
            else:
                spec.append(stage)
        idx = len(nodes)
        nodes.append(
            PlanNode(
                idx,
                "fused",
                tuple(kids),
                composed,
                kind=spec_out_kind(tuple(spec)),
                spec=tuple(spec),
            )
        )
        new_steps.append(idx)
        pos = stop
    for k in range(pos, len(steps)):
        new_steps.append(copy_subtree(steps[k]))

    if len(new_steps) == 1:
        root = new_steps[0]
    else:
        root = len(nodes)
        nodes.append(PlanNode(root, "chain", tuple(new_steps), plan.source))
    fused = Plan(nodes=nodes, root=root, source=plan.source)
    from repro.engine.verify import verification_enabled, verify_plan

    if verification_enabled():
        verify_plan(fused, context="fuse_plan")
    setattr(plan, "_fused_plan", fused)  # noqa: B010 — derived cache
    setattr(fused, "_fused_plan", fused)  # noqa: B010
    return fused
