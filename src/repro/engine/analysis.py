"""Unified static analysis over the plan IR: one pass, one fact record.

Libkin–Wong's calculus is built on facts a compiler can know *without
running anything*: types, Section 6 world/size bounds, and which
operators preserve them.  Before this module the engine re-derived such
facts ad hoc — :func:`repro.engine.symbolic.plan_supports_symbolic`,
:meth:`repro.engine.process.ProcessBackend.can_transport`,
:func:`repro.engine.passes.fusible_spans` and
:func:`repro.engine.cost_model.plan_profile` were four independent
whole-plan traversals with no shared infrastructure.  Here a single
bottom-up abstract interpretation computes every static fact the
backends route on, in one linear scan over the flat node array
(:func:`repro.engine.plan.compile_plan` emits children before parents,
so index order *is* a valid bottom-up order):

* **shape** — the statically known output collection kind per node;
* **purity/determinism** — whether the subtree is built purely from
  calculus combinators and named primitives (no lambdas or closures,
  whose behaviour the engine cannot certify across runs or processes);
* **pickle-transportability** — whether every leaf pickles, the static
  gate for shipping the plan to worker processes;
* **raw-scalar compilability** — whether a map body compiles to an
  unboxed kernel (:func:`repro.engine.columnar.compile_scalar`);
* **symbolic supportability** — whether the top-level spine has a
  world-preserving trace (:mod:`repro.engine.symbolic`);
* **fusible-span structure** — the maximal runs of root-chain stages a
  columnar kernel can collapse (:func:`repro.engine.passes.fuse_plan`);
* **short-circuit potential** — a streamable spine whose output is an
  or-set, so lazy consumers can stop at the first witness.

The result is a :class:`PlanFacts` record cached on the plan object
(plans themselves are cached/interned by the :class:`~repro.engine.Engine`,
so the facts live exactly as long as the plan): repeated
``select_backend`` / ``fuse_plan`` / ``can_transport`` calls read one
memoized record instead of re-walking the plan.  The four historical
predicates are now thin adapters over :func:`plan_facts`, and
:mod:`repro.engine.verify` checks that optimizer rewrites preserve what
the facts report.

This module is also the canonical home of the operator class tables
(expansion / alpha / traversal / cheap-real) that the cost model and the
symbolic trace previously each declared for themselves.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.engine.cost_model import ShapeEstimate
    from repro.values.values import Value

from repro.core.normalize import Normalize
from repro.lang.bag_ops import AlphaD, BagEta, BagMu, BagToSet, BagUnique, SetToBag
from repro.lang.morphisms import Morphism, Primitive
from repro.lang.orset_ops import Alpha, OrEta, OrMap, OrMu, OrToSet, SetToOr
from repro.lang.set_ops import SetEta, SetMu

from repro.engine import columnar
from repro.engine.plan import Plan, PlanNode

__all__ = [
    "NodeFacts",
    "PlanFacts",
    "plan_facts",
    "compute_plan_facts",
    "format_facts",
    "annotate_plan",
    "EXPANSION_OPS",
    "ALPHA_OPS",
    "TRAVERSAL_OPS",
    "CHEAP_REAL_OPS",
    "SYMBOLIC_SPINE_LEAVES",
]

# -- operator class tables (canonical home) ----------------------------------

#: Normalization-class operators: expand a value into its or-set of
#: worlds (Theorem 6.2's ``3^(n/3)`` blow-up risk).
EXPANSION_OPS: tuple[type, ...] = (Normalize,)

#: The per-redex expansion step (set/bag versions).
ALPHA_OPS: tuple[type, ...] = (Alpha, AlphaD)

#: Collection traversals: linear in their input, and exactly the
#: streamable spine stages the backends shard, stream and fuse.
TRAVERSAL_OPS: tuple[type, ...] = (
    SetMu,
    OrMu,
    BagMu,
    OrToSet,
    SetToOr,
    BagToSet,
    SetToBag,
    BagUnique,
)

#: Structural steps the symbolic trace runs *for real* (each is linear
#: and preserves the world-set invariant; see ``symbolic.trace_worlds``).
CHEAP_REAL_OPS: tuple[type, ...] = TRAVERSAL_OPS + (OrEta, SetEta)

#: Every leaf class admissible on a symbolically traceable spine: the
#: cheap structural steps plus the *skippable* expansion steps
#: (Theorem 4.2 coherence makes ``normalize``/``alpha`` world-preserving).
SYMBOLIC_SPINE_LEAVES: tuple[type, ...] = CHEAP_REAL_OPS + (Normalize, Alpha)

#: Statically known output collection kind per leaf class.
_LEAF_OUT_KIND: dict[type, str] = {
    SetEta: "set",
    OrEta: "orset",
    BagEta: "bag",
    SetMu: "set",
    OrMu: "orset",
    BagMu: "bag",
    OrToSet: "set",
    SetToOr: "orset",
    BagToSet: "set",
    SetToBag: "bag",
    BagUnique: "bag",
    Normalize: "orset",
    Alpha: "orset",
    AlphaD: "orset",
}


# -- fact records ------------------------------------------------------------


@dataclass(frozen=True)
class NodeFacts:
    """Static facts for one plan node (an element of the fact lattice).

    ``out_kind`` is the statically known output collection family
    (``None`` when it depends on the input); ``pure`` certifies the
    subtree is deterministic calculus structure (no lambdas/closures);
    ``transportable`` that every leaf pickles; ``world_preserving`` that
    the subtree is a chain of ``id``/``normalize`` steps (the map bodies
    the symbolic trace may skip); ``stage`` is the columnar fused-stage
    descriptor when this node can be a kernel stage; ``raw_scalar``
    whether a map body compiles to an unboxed scalar kernel.
    """

    out_kind: str | None
    pure: bool
    transportable: bool
    world_preserving: bool
    stage: tuple | None
    raw_scalar: bool


@dataclass(frozen=True)
class PlanFacts:
    """Everything the engine's routing layers know statically about a plan.

    One record per plan, computed by :func:`compute_plan_facts` in a
    single bottom-up scan and cached by :func:`plan_facts`.  The four
    historical predicates read it:

    * ``symbolic_ok``          — ``symbolic.plan_supports_symbolic``;
    * ``transportable``        — ``ProcessBackend.can_transport``'s
      static gate (the pickle payload stays the final word);
    * ``fusible``/``fused_stages`` — ``passes.fusible_spans``;
    * ``spine_maps``/``spine_stages``/``has_normalize`` —
      ``cost_model.plan_profile``.
    """

    nodes: int
    spine_maps: int
    spine_stages: int
    has_normalize: bool
    fusible: tuple[tuple[int, int, tuple[tuple, ...]], ...]
    fused_stages: int
    symbolic_ok: bool
    transportable: bool
    pure: bool
    out_kind: str | None
    short_circuit: bool
    node_facts: tuple[NodeFacts, ...]


# -- the one-pass analysis ---------------------------------------------------


def _leaf_transportable(m: Morphism) -> bool:
    """Does this leaf's source pickle?  (Composites derive from kids.)"""
    try:
        pickle.dumps(m)
    except Exception:
        return False
    return True


def _leaf_pure(m: Morphism) -> bool:
    """Is this leaf certifiably deterministic calculus structure?

    Every combinator of the calculus is a pure total function of its
    input.  A :class:`~repro.lang.morphisms.Primitive` is trusted when
    its callable is a *named, closure-free* function (the signature
    ``Sigma`` the paper parameterizes over); a lambda or a closure may
    capture mutable state the engine cannot see, so it is conservatively
    not certified.
    """
    for prim in _primitives_in(m):
        fn = prim.fn
        if getattr(fn, "__name__", "") == "<lambda>":
            return False
        if getattr(fn, "__closure__", None):
            return False
    return True


def _primitives_in(m: Morphism) -> list[Primitive]:
    out: list[Primitive] = []
    stack = [m]
    while stack:
        node = stack.pop()
        if isinstance(node, Primitive):
            out.append(node)
        stack.extend(node.children())
    return out


def _node_out_kind(node: PlanNode, kid_facts: list[NodeFacts]) -> str | None:
    if node.op == "map":
        return node.kind
    if node.op == "leaf":
        return _LEAF_OUT_KIND.get(type(node.source))
    if node.op == "fused" and node.spec:
        return columnar.spec_out_kind(node.spec)
    if node.op == "chain":
        return kid_facts[-1].out_kind
    if node.op in ("cond", "case"):
        branches = kid_facts[1:] if node.op == "cond" else kid_facts
        kinds = {f.out_kind for f in branches}
        if len(kinds) == 1:
            return kinds.pop()
    return None


def compute_plan_facts(plan: Plan) -> PlanFacts:
    """One bottom-up scan of ``plan.nodes`` producing a :class:`PlanFacts`.

    ``compile_plan`` and ``fuse_plan`` both emit children before parents,
    so a single index-order loop visits every kid before its parent —
    this is the abstract interpretation's whole control flow.
    """
    node_facts: list[NodeFacts] = []
    for node in plan.nodes:
        kid_facts = [node_facts[k] for k in node.kids]
        if node.op == "leaf":
            transportable = _leaf_transportable(node.source)
            pure = _leaf_pure(node.source)
        else:
            transportable = all(f.transportable for f in kid_facts)
            pure = all(f.pure for f in kid_facts)
        if node.op == "id":
            world_preserving = True
        elif node.op == "leaf" and isinstance(node.source, Normalize):
            world_preserving = True
        elif node.op == "chain":
            world_preserving = all(f.world_preserving for f in kid_facts)
        else:
            world_preserving = False
        stage = columnar.stage_of(node)
        body = getattr(node.source, "body", None)
        raw_scalar = bool(
            node.op == "map" and body is not None and columnar.raw_kernels(body)
        )
        node_facts.append(
            NodeFacts(
                out_kind=_node_out_kind(node, kid_facts),
                pure=pure,
                transportable=transportable,
                world_preserving=world_preserving,
                stage=stage,
                raw_scalar=raw_scalar,
            )
        )

    top = plan.nodes[plan.root]
    steps = list(top.kids) if top.op == "chain" else [plan.root]

    spine_maps = spine_stages = 0
    symbolic_ok = True
    for idx in steps:
        node = plan.nodes[idx]
        if node.op == "map":
            spine_maps += 1
            spine_stages += 1
        elif node.op == "leaf" and isinstance(node.source, TRAVERSAL_OPS):
            spine_stages += 1
        if node.op == "id":
            continue
        if node.op == "leaf" and isinstance(node.source, SYMBOLIC_SPINE_LEAVES):
            continue
        if (
            node.op == "map"
            and isinstance(node.source, OrMap)
            and node_facts[node.kids[0]].world_preserving
        ):
            continue
        symbolic_ok = False

    fusible: list[tuple[int, int, tuple[tuple, ...]]] = []
    i = 0
    while i < len(steps):
        stages: list[tuple] = []
        j = i
        while j < len(steps):
            stage = node_facts[steps[j]].stage
            if stage is None:
                break
            stages.append(stage)
            j += 1
        if len(stages) >= 2:
            fusible.append((i, j, tuple(stages)))
        elif len(stages) == 1 and node_facts[steps[i]].raw_scalar:
            fusible.append((i, j, tuple(stages)))
        i = max(j, i + 1)

    has_normalize = any(
        node.op == "leaf" and isinstance(node.source, EXPANSION_OPS + ALPHA_OPS)
        for node in plan.nodes
    )
    root_facts = node_facts[plan.root]
    return PlanFacts(
        nodes=len(plan.nodes),
        spine_maps=spine_maps,
        spine_stages=spine_stages,
        has_normalize=has_normalize,
        fusible=tuple(fusible),
        fused_stages=max((len(s) for _a, _b, s in fusible), default=0),
        symbolic_ok=symbolic_ok,
        transportable=root_facts.transportable,
        pure=root_facts.pure,
        out_kind=root_facts.out_kind,
        short_circuit=spine_stages >= 1 and root_facts.out_kind == "orset",
        node_facts=tuple(node_facts),
    )


def plan_facts(plan: Plan) -> PlanFacts:
    """The (memoized) :class:`PlanFacts` for *plan*.

    Cached on the plan object, like the closures ``Plan.bind`` memoizes:
    the record is immutable, a racing double-compute produces equal
    records, and ``Plan.__getstate__`` drops derived state so a plan
    shipped to a worker process re-derives its facts there.
    """
    cached = getattr(plan, "_facts", None)
    if cached is not None:
        return cached
    facts = compute_plan_facts(plan)
    setattr(plan, "_facts", facts)  # noqa: B010 — derived cache, not a field
    return facts


def format_facts(facts: PlanFacts) -> str:
    """The ``facts:`` line ``Engine.explain`` and the REPL print."""

    def yn(flag: bool) -> str:
        return "yes" if flag else "no"

    spans = (
        ",".join(f"[{a}:{b})x{len(s)}" for a, b, s in facts.fusible) or "none"
    )
    return (
        f"facts: symbolic={yn(facts.symbolic_ok)}"
        f" transportable={yn(facts.transportable)}"
        f" pure={yn(facts.pure)}"
        f" normalize={yn(facts.has_normalize)}"
        f" spine={facts.spine_maps}map/{facts.spine_stages}stage"
        f" fused-spans={spans}"
        f" shape={facts.out_kind or '?'}"
        f" short-circuit={yn(facts.short_circuit)}"
    )


# -- ShapeEstimate plumbing (re-homed from cost_model) ------------------------


def annotate_plan(plan: Plan, value: "Value") -> "ShapeEstimate":
    """Write per-node world/size estimates onto *plan* for input *value*.

    Walks the plan in execution order, threading a
    :class:`~repro.engine.cost_model.ShapeEstimate` through each node's
    transfer function: ``normalize``/``alpha`` turn the estimate into an
    or-set of ``worlds`` elements of total size ``norm_size``; ``eta``
    wraps (width 1); ``settoor`` turns each of up to ``width`` members
    into a disjunct.  These annotations are *predictions* for
    diagnostics, not certified bounds: projections, maps and unknown
    leaves pass the carried estimate through unchanged, which is exact
    for world-preserving bodies but an approximation when a body itself
    multiplies worlds (only ``estimate_value`` on a concrete value
    carries the tested soundness guarantee).  Returns the estimate at
    the root; ``PlanNode.est_worlds`` / ``est_size`` hold the per-node
    output predictions, which :meth:`PlanNode.pretty` renders.
    """
    # Imported lazily: cost_model imports this module at load time (the
    # fact framework is beneath the cost model, not above it).
    from repro.engine.cost_model import ShapeEstimate, estimate_value

    est_in = estimate_value(value)

    def transfer(node: PlanNode, est: ShapeEstimate) -> ShapeEstimate:
        src = node.source
        if node.op == "leaf":
            if isinstance(src, EXPANSION_OPS + ALPHA_OPS):
                return ShapeEstimate(
                    est.worlds, est.norm_size, est.norm_size, est.worlds, 1
                )
            if isinstance(src, (SetEta, OrEta, BagEta)):
                return ShapeEstimate(
                    est.worlds,
                    est.norm_size,
                    est.size,
                    1,
                    est.orsets + (1 if isinstance(src, OrEta) else 0),
                )
            if isinstance(src, SetToOr) and est.width:
                # A set of k members becomes a k-way disjunction: up to
                # width * (worlds + 1) worlds (each member contributes
                # its own worlds independently of the others' choices).
                return ShapeEstimate(
                    est.width * (est.worlds + 1),
                    est.norm_size,
                    est.size,
                    est.width,
                    est.orsets + 1,
                )
        return est

    def visit(idx: int, est: ShapeEstimate) -> ShapeEstimate:
        node = plan.nodes[idx]
        if node.op == "chain":
            out = est
            for kid in node.kids:
                out = visit(kid, out)
        elif node.op == "pair":
            left = visit(node.kids[0], est)
            right = visit(node.kids[1], est)
            out = ShapeEstimate(
                left.worlds * right.worlds,
                right.worlds * left.norm_size + left.worlds * right.norm_size,
                left.size + right.size,
                None,
                left.orsets + right.orsets,
            )
        elif node.op in ("cond", "case"):
            branches = node.kids[1:] if node.op == "cond" else node.kids
            outs = [visit(k, est) for k in branches]
            if node.op == "cond":
                visit(node.kids[0], est)
            out = max(outs, key=lambda e: (e.worlds, e.norm_size))
        elif node.op == "map":
            # The body transforms elements we have no shape for; keep the
            # collection-level bound and leave body nodes unannotated.
            out = est
        else:
            out = transfer(node, est)
        node.est_worlds = out.worlds
        node.est_size = out.norm_size
        return out

    return visit(plan.root, est_in)
