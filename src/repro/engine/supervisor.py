"""Supervised recovery: bounded restarts, jittered backoff, circuit breaking.

The process backend's worker pool can die under it — an OOM-killed
worker, an interpreter abort, an injected fault — and the old answer was
one silent local fallback per incident.  Supervision makes recovery a
policy:

* :class:`Supervisor` retries a remote submission a bounded number of
  times, rebuilding the pool between attempts and sleeping a *seeded*,
  jittered, exponentially growing backoff (deterministic for a fixed
  seed, so the fault-injection suite replays exact schedules);
* :class:`CircuitBreaker` counts consecutive failures; past the
  threshold it *opens* — :meth:`allow` refuses further attempts, which
  the engine surfaces by demoting the backend out of
  :func:`~repro.engine.cost_model.select_backend`'s ``available`` set —
  and after ``reset_after`` seconds it *half-opens*, letting one probe
  through: a success closes the breaker (the backend heals), a failure
  re-opens it for another window.

Both classes are policy-only (no pool knowledge); the process backend
wires them to its executor in
:meth:`repro.engine.process.ProcessBackend._supervised`.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "Supervisor"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    *threshold* consecutive failures open the breaker; *reset_after*
    seconds later one probe attempt is allowed through (half-open).
    *clock* is injectable for deterministic tests.
    """

    def __init__(
        self,
        threshold: int = 3,
        reset_after: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = max(1, threshold)
        self.reset_after = reset_after
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        with self._lock:
            if self._failures < self.threshold:
                return "closed"
            if self._clock() - (self._opened_at or 0.0) >= self.reset_after:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """May an attempt proceed right now?

        True while closed; False while open; True again once the reset
        window has elapsed (the half-open probe — its outcome, reported
        via :meth:`record_success` / :meth:`record_failure`, decides
        whether the breaker closes or re-opens).
        """
        return self.state != "open"

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= self.threshold:
                self._opened_at = self._clock()


class Supervisor:
    """Bounded-restart retry policy with seeded, jittered backoff.

    *restarts* is how many times a failed attempt may be retried;
    *base_delay* doubles per retry up to *max_delay*, and each sleep is
    multiplied by a jitter factor in ``[0.5, 1.0)`` drawn from a
    :class:`random.Random` seeded with *seed* — deterministic schedules
    for the fault-injection suite, desynchronized retries in a real
    fleet (pass a varying seed).  *sleep* is injectable so tests run in
    microseconds.
    """

    def __init__(
        self,
        restarts: int = 2,
        base_delay: float = 0.05,
        max_delay: float = 1.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.restarts = max(0, restarts)
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()

    def backoff(self, attempt: int) -> float:
        """The jittered delay before retry *attempt* (0-based)."""
        delay = min(self.max_delay, self.base_delay * (2**attempt))
        with self._lock:
            jitter = 0.5 + self._rng.random() / 2.0
        return delay * jitter

    def wait(self, attempt: int) -> None:
        """Sleep the backoff for retry *attempt*."""
        self._sleep(self.backoff(attempt))
