"""The cost model: static Section 6 estimates driving the engine.

`core/costs.py` measures the paper's quantities — ``m(x)`` (the world
count) and ``size(normalize(x))`` — by *materializing* every possible
world, which is exactly the exponential blow-up Section 6 quantifies.
This module predicts the same quantities **without normalizing**: one
structural traversal of the value combines

* the compositional world-count recursion (union for or-sets, product
  for sets, bags and pairs — the argument behind Proposition 6.1),
* Proposition 6.1's ``prod_i (m_i + 1)`` cap over the innermost or-set
  arities (:func:`repro.values.measure.innermost_orset_arities`), and
* the Moon–Moser ``3^(n/3)`` ceiling of Theorem 6.2 for context in
  diagnostics (the recursion is already at least as tight, so only the
  first two enter the returned bound),

into a :class:`ShapeEstimate` that is a *sound upper bound*:
``estimate_value(x).worlds >= m(x)`` and
``estimate_value(x).norm_size >= size(normalize(<x>))`` for every value
(property-tested in ``tests/engine/test_cost_model.py``), and exact on
the tight witness family of Theorem 6.5.

Three consumers sit on top of the estimator:

* :func:`annotate_plan` pushes the input estimate through a compiled
  :class:`~repro.engine.plan.Plan`, writing predicted world counts and
  normalized sizes onto every node along the executed spine — which
  ``Plan.describe`` and ``Engine.explain`` render, so predicted blow-up
  is visible before a single world is built;
* :func:`estimate_morphism_cost` is the weighted static cost the
  optimizer's best-first scheduler minimizes (normalization-class
  operators carry the Section 6 exponential risk and weigh accordingly);
* :func:`select_backend` picks the execution backend per call — eager
  for small estimated world counts, streaming when the estimate says the
  normal form is huge (existential consumers then short-circuit off the
  lazy spine), parallel with estimate-proportional shard sizes when the
  top-level spine is wide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection

from repro.core.costs import moon_moser
from repro.lang.morphisms import Morphism
from repro.values.measure import innermost_orset_arities
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
)

from repro.engine.analysis import (
    ALPHA_OPS as _ALPHA_OPS,
)
from repro.engine.analysis import (
    EXPANSION_OPS as _EXPANSION_OPS,
)
from repro.engine.analysis import (
    TRAVERSAL_OPS as _TRAVERSAL_OPS,
)
from repro.engine.analysis import annotate_plan, plan_facts
from repro.engine.plan import Plan

__all__ = [
    "ShapeEstimate",
    "estimate_value",
    "estimate_m_value",
    "estimate_normalized_size",
    "estimate_json",
    "estimate_morphism_cost",
    "OPERATOR_CLASSES",
    "OPERATOR_COSTS",
    "operator_features",
    "calibrate",
    "rank_error",
    "set_calibration",
    "get_calibration",
    "calibration_scope",
    "annotate_plan",
    "PlanProfile",
    "plan_profile",
    "BackendChoice",
    "select_backend",
    "SYMBOLIC_WORLDS",
    "SMALL_WORLDS",
    "WIDE_SPINE",
    "STREAM_NORM_SIZE",
    "SHARD_TARGET_WORK",
    "PROCESS_NORM_SIZE",
    "PARALLEL_BREAK_EVEN_WORK",
    "FUSED_MIN_SPINE",
]

# -- backend-selection thresholds (documented in docs/ARCHITECTURE.md) -------

#: At or below this many estimated worlds, eager execution (with its
#: maximal memo reuse) beats the laziness bookkeeping.
SMALL_WORLDS = 64

#: Past this many estimated worlds a whole-world-set consumer
#: (count/certain/possible/exists) is routed to the symbolic backend
#: (when the plan's spine has a world-preserving trace): enumerating
#: backends pay per world, while the knowledge-compilation path is
#: linear in the *value* — measured crossover is well under a hundred
#: worlds on the tight family, so only the eager-trivial range is kept
#: out.  First-witness consumers are *not* routed here (streaming's
#: lazy spine wins those); see ``select_backend``'s ``world_query``.
SYMBOLIC_WORLDS = 1 << 8

#: Top-level collections at least this wide are worth sharding.
WIDE_SPINE = 32

#: Estimated ``size(normalize(x))`` past which a streamable spine should
#: run lazily rather than materialize canonical intermediates.
STREAM_NORM_SIZE = 4096

#: Target estimated leaf-work per parallel shard; the shard-count hint is
#: the estimated total size divided by this, clamped to the spine width.
SHARD_TARGET_WORK = 256

#: Estimated total work past which a wide spine counts as *CPU-bound*:
#: on GIL builds thread shards serialize, so once the per-call estimate
#: amortizes plan transport and value pickling, the multiprocess backend
#: wins.  Only consulted when a ``"process"`` backend is registered.
PROCESS_NORM_SIZE = 1 << 16

#: Estimated per-element work below which sharding a wide spine costs
#: more than it buys (chunk bookkeeping and pool dispatch dominate, the
#: 0.78x BENCH_parallel regression): below this, a wide flat spine runs
#: as a fused columnar kernel instead of being split across workers.
PARALLEL_BREAK_EVEN_WORK = 4

#: Minimum top-level width for the fused columnar path: narrower
#: collections never amortize the arena encode/decode.
FUSED_MIN_SPINE = 32


@dataclass(frozen=True)
class ShapeEstimate:
    """Static Section 6 bounds for one value, from one traversal.

    ``worlds``    — upper bound on ``m(x) = |normalize(<x>)|``;
    ``norm_size`` — upper bound on ``size(normalize(<x>))`` (the sum of
    the sizes of all conceptual possibilities);
    ``size``      — the paper's ``size(x)`` (atomic leaf count);
    ``width``     — top-level element count when *x* is a collection;
    ``orsets``    — number of or-set nodes in ``T(x)``.
    """

    worlds: int
    norm_size: int
    size: int
    width: int | None = None
    orsets: int = 0

    @property
    def moon_moser_cap(self) -> int:
        """Theorem 6.2's ``3^(n/3)`` ceiling for this value's size."""
        return moon_moser(self.size)


def _estimate(v: Value) -> tuple[int, int, int, int]:
    """(worlds, norm_size, size, orsets) for *v*, compositionally.

    The recursion mirrors how possibilities are generated: an or-set's
    worlds are the union of its elements' worlds (``<=`` the sum), a
    set/bag/pair takes one world per component (``<=`` the product);
    deduplication only ever shrinks, so every case is an upper bound.
    """
    if isinstance(v, (Atom, UnitValue)):
        return 1, 1, 1, 0
    if isinstance(v, Pair):
        wa, na, sa, oa = _estimate(v.fst)
        wb, nb, sb, ob = _estimate(v.snd)
        # Each world of the pair is a pair of component worlds, so its
        # size is the sum of the component-world sizes: summed over all
        # wa*wb combinations that is wb*na + wa*nb.
        return wa * wb, wb * na + wa * nb, sa + sb, oa + ob
    if isinstance(v, Variant):
        w, n, s, o = _estimate(v.payload)
        return w, n, s, o
    if isinstance(v, OrSetValue):
        worlds = norm = size = orsets = 0
        for e in v.elems:
            w, n, s, o = _estimate(e)
            worlds += w
            norm += n
            size += s
            orsets += o
        return worlds, norm, size, 1 + orsets
    if isinstance(v, (SetValue, BagValue)):
        worlds, size, orsets = 1, 0, 0
        parts: list[tuple[int, int]] = []
        for e in v.elems:
            w, n, s, o = _estimate(e)
            parts.append((w, n))
            worlds *= w
            size += s
            orsets += o
        if worlds == 0:
            return 0, 0, size, orsets
        # One world per element: summed over all combinations, element i
        # contributes its world sizes once per choice of the others.
        norm = sum(n * (worlds // w) for w, n in parts)
        return worlds, norm, size, orsets
    raise TypeError(f"not a value: {v!r}")


def estimate_value(v: Value) -> ShapeEstimate:
    """Statically bound ``m(v)`` and ``size(normalize(v))`` — no worlds built.

    The compositional recursion is capped with Proposition 6.1's
    ``prod_i (m_i + 1)`` over the innermost or-set arities (both are
    sound, so their minimum is).
    """
    worlds, norm, size, orsets = _estimate(v)
    if orsets:
        cap = 1
        for m_i in innermost_orset_arities(v):
            cap *= m_i + 1
        if cap < worlds:
            worlds = cap
    width = len(v.elems) if isinstance(v, (SetValue, OrSetValue, BagValue)) else None
    return ShapeEstimate(worlds, norm, size, width, orsets)


def estimate_m_value(v: Value) -> int:
    """Static upper bound on the paper's ``m(v)`` (never normalizes)."""
    return estimate_value(v).worlds


def estimate_normalized_size(v: Value) -> int:
    """Static upper bound on ``size(normalize(<v>))`` (never normalizes)."""
    return estimate_value(v).norm_size


def estimate_json(data: object) -> ShapeEstimate:
    """:func:`estimate_value` straight off the JSON value encoding.

    The admission layer's cost guard (:class:`repro.serve.AsyncEngine`)
    must price a request *before* committing any evaluation resources to
    it, so this walks the :func:`repro.io.value_to_json` structure
    directly — same recursion as :func:`_estimate`, no
    :class:`~repro.values.values.Value` construction.  Deliberately
    lenient: an unrecognizable fragment is priced as an atom instead of
    raising, so a malformed request still reaches the decoder and fails
    with its canonical error rather than a guard artifact.  The
    Proposition 6.1 innermost-arity cap is skipped (it needs the typed
    value), so the bound here can be looser than ``estimate_value``'s —
    still sound, which is all a guard needs.
    """
    worlds, norm, size, orsets, width = _estimate_json(data, top=True)
    return ShapeEstimate(worlds, norm, size, width, orsets)


def _estimate_json(
    data: object, top: bool = False
) -> tuple[int, int, int, int, int | None]:
    """(worlds, norm_size, size, orsets, top_width) for a JSON fragment."""
    width: int | None = None
    if not isinstance(data, dict):
        return 1, 1, 1, 0, width
    if "pair" in data and isinstance(data["pair"], list) and len(data["pair"]) == 2:
        wa, na, sa, oa, _ = _estimate_json(data["pair"][0])
        wb, nb, sb, ob, _ = _estimate_json(data["pair"][1])
        return wa * wb, wb * na + wa * nb, sa + sb, oa + ob, width
    for key in ("inl", "inr"):
        if key in data:
            w, n, s, o, _ = _estimate_json(data[key])
            return w, n, s, o, width
    if "orset" in data and isinstance(data["orset"], list):
        worlds = norm = size = orsets = 0
        for e in data["orset"]:
            w, n, s, o, _ = _estimate_json(e)
            worlds += w
            norm += n
            size += s
            orsets += o
        if top:
            width = len(data["orset"])
        return worlds, norm, size, 1 + orsets, width
    for key in ("set", "bag"):
        if key in data and isinstance(data[key], list):
            worlds, size, orsets = 1, 0, 0
            parts: list[tuple[int, int]] = []
            for e in data[key]:
                w, n, s, o, _ = _estimate_json(e)
                parts.append((w, n))
                worlds *= w
                size += s
                orsets += o
            if top:
                width = len(data[key])
            if worlds == 0:
                return 0, 0, size, orsets, width
            norm = sum(n * (worlds // w) for w, n in parts)
            return worlds, norm, size, orsets, width
    return 1, 1, 1, 0, width


# -- morphism cost -----------------------------------------------------------

# Weight classes for the optimizer's cost objective live in
# repro.engine.analysis (the canonical operator-class tables), imported
# above: normalization-class operators expand worlds (Theorem 6.2's
# 3^(n/3) risk); alpha is the per-redex expansion step; collection
# traversals touch every element.

#: The operator classes the cost objective distinguishes — the feature
#: axes of :func:`operator_features` and the keys of every weight table.
OPERATOR_CLASSES = ("expansion", "alpha", "traversal", "other")

#: The hand-tuned per-class weights — the default cost table.  Relative
#: magnitudes encode the Section 6 story (expansion operators carry the
#: exponential risk); :func:`calibrate` learns a replacement table from
#: *measured* per-program latencies when the load harness has data.
OPERATOR_COSTS = {"expansion": 64, "alpha": 16, "traversal": 2, "other": 1}

# Back-compat aliases (pre-calibration names for the same knobs).
NORMALIZE_WEIGHT = OPERATOR_COSTS["expansion"]
ALPHA_WEIGHT = OPERATOR_COSTS["alpha"]
TRAVERSAL_WEIGHT = OPERATOR_COSTS["traversal"]

#: The active learned table (``None`` → :data:`OPERATOR_COSTS`).
_CALIBRATION: "dict[str, float] | None" = None


def operator_features(m: Morphism, shape: ShapeEstimate | None = None) -> dict:
    """Per-class operator counts for *m* — the cost model's feature vector.

    With a *shape* for the program's input, the expansion-class counts
    (``expansion`` and ``alpha``) are scaled by the estimated world
    count's bit length, mirroring how those operators' real latency grows
    with the input's possibility space.  By construction
    ``estimate_morphism_cost(m, shape)`` is the dot product of this
    vector with the active weight table — which is what lets a
    least-squares fit of measured latencies against these features
    (:func:`calibrate`) produce drop-in replacement weights.
    """
    scale = 1
    if shape is not None and shape.worlds > 1:
        scale = max(1, shape.worlds.bit_length())
    features = dict.fromkeys(OPERATOR_CLASSES, 0)

    def walk(node: Morphism) -> None:
        if isinstance(node, _EXPANSION_OPS):
            features["expansion"] += scale
        elif isinstance(node, _ALPHA_OPS):
            features["alpha"] += scale
        elif isinstance(node, _TRAVERSAL_OPS):
            features["traversal"] += 1
        else:
            features["other"] += 1
        for child in node.children():
            walk(child)

    walk(m)
    return features


def estimate_morphism_cost(
    m: Morphism,
    shape: ShapeEstimate | None = None,
    weights: "dict[str, float] | None" = None,
) -> int:
    """Weighted static cost of *m* — the scheduler's objective function.

    Plain operator count (like :func:`repro.engine.passes.morphism_cost`)
    treats ``normalize`` and ``pi_1`` alike; here each operator carries a
    weight reflecting the Section 6 blow-up class it belongs to.  With a
    *shape* for the program's input, the expansion weights scale with the
    estimated world count, so rewrites that drop or delay normalization
    of large pre-images score better the larger the input.

    *weights* overrides the weight table for this call; otherwise the
    active calibration (:func:`set_calibration`) is used when one is
    installed, the hand-tuned :data:`OPERATOR_COSTS` when not.  Only the
    *ordering* the scheduler sees changes with the table — the
    :class:`ShapeEstimate` soundness bounds are never touched by
    calibration.
    """
    table = weights if weights is not None else _CALIBRATION
    if table is None:
        table = OPERATOR_COSTS
    features = operator_features(m, shape)
    cost = sum(features[key] * table.get(key, 1.0) for key in OPERATOR_CLASSES)
    return max(1, round(cost))


# -- learned calibration ------------------------------------------------------


def calibrate(samples, *, ridge: float = 1e-9) -> dict:
    """Fit per-class weights to measured latencies — the learned cost table.

    *samples* is an iterable of ``(features, seconds)`` pairs, where
    *features* is an :func:`operator_features` vector for a benchmarked
    program and *seconds* its measured per-request latency (the load
    harness's p50 is a good choice: medians shrug off batching noise).
    A ridge-regularized least-squares fit over the four class axes yields
    seconds-per-operator weights; negative solutions (collinear or
    under-determined mixes) are clamped to a floor, and the table is
    rescaled so the cheapest class costs 1 — the scheduler only consumes
    the *ordering* of costs, so any positive scale is equivalent.

    This replaces the hand-tuned :data:`OPERATOR_COSTS` numbers (install
    with :func:`set_calibration`) without touching the estimator:
    ``ShapeEstimate`` bounds stay sound whatever the weights say.
    """
    rows = [(dict(f), float(t)) for f, t in samples]
    if not rows:
        return dict(OPERATOR_COSTS)
    keys = OPERATOR_CLASSES
    n = len(keys)
    # Normal equations: (X^T X + ridge·I) w = X^T y.
    xtx = [[ridge * (i == j) for j in range(n)] for i in range(n)]
    xty = [0.0] * n
    for features, seconds in rows:
        vec = [float(features.get(k, 0)) for k in keys]
        for i in range(n):
            if not vec[i]:
                continue
            xty[i] += vec[i] * seconds
            for j in range(n):
                xtx[i][j] += vec[i] * vec[j]
    solution = _solve(xtx, xty)
    if solution is None:
        return dict(OPERATOR_COSTS)
    positives = [w for w in solution if w > 0]
    if not positives:
        return dict(OPERATOR_COSTS)
    # Clamp degenerate axes to a floor well below the cheapest real
    # weight, then normalize so the cheapest class costs 1.
    floor = min(positives) / 16.0
    unit = min(positives)
    return {k: max(w, floor) / unit for k, w in zip(keys, solution)}


def _solve(matrix, rhs):
    """Gaussian elimination with partial pivoting; ``None`` if singular."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-30:
            return None
        a[col], a[pivot] = a[pivot], a[col]
        for row in range(n):
            if row == col:
                continue
            factor = a[row][col] / a[col][col]
            if factor:
                for k in range(col, n + 1):
                    a[row][k] -= factor * a[col][k]
    return [a[i][n] / a[i][i] for i in range(n)]


def rank_error(predicted, measured) -> float:
    """Fraction of discordant pairs between two orderings (0 = perfect).

    The scheduler and backend selector consume cost *orderings*, not
    magnitudes, so the calibration quality metric is rank agreement:
    over every pair with distinct measured latencies, how often does the
    prediction order them the wrong way?  A predicted tie on a measured
    non-tie counts half — an uninformative prediction must not score as
    a correct one.
    """
    predicted = list(predicted)
    measured = list(measured)
    if len(predicted) != len(measured):
        raise ValueError("predicted and measured must have equal length")
    comparable = 0
    discordant = 0.0
    for i in range(len(measured)):
        for j in range(i + 1, len(measured)):
            dm = measured[i] - measured[j]
            if dm == 0:
                continue
            comparable += 1
            dp = predicted[i] - predicted[j]
            if dp == 0:
                discordant += 0.5
            elif (dp > 0) != (dm > 0):
                discordant += 1.0
    return discordant / comparable if comparable else 0.0


def set_calibration(weights: "dict[str, float] | None") -> None:
    """Install (or with ``None`` clear) the learned weight table.

    Affects :func:`estimate_morphism_cost` — and so the optimizer's
    rewrite ordering and everything priced off it — process-wide.  The
    :class:`ShapeEstimate` soundness bounds are independent of the table.
    """
    global _CALIBRATION
    _CALIBRATION = dict(weights) if weights is not None else None


def get_calibration() -> "dict[str, float] | None":
    """The active learned table, or ``None`` when hand-tuned weights rule."""
    return dict(_CALIBRATION) if _CALIBRATION is not None else None


class calibration_scope:
    """``with calibration_scope(weights): ...`` — scoped :func:`set_calibration`."""

    def __init__(self, weights: "dict[str, float] | None") -> None:
        self.weights = weights
        self._saved: "dict[str, float] | None" = None

    def __enter__(self) -> "dict[str, float] | None":
        self._saved = get_calibration()
        set_calibration(self.weights)
        return self.weights

    def __exit__(self, *exc) -> None:
        set_calibration(self._saved)


# -- plan annotation ---------------------------------------------------------
#
# The ShapeEstimate plan-walk lives in repro.engine.analysis (one home
# for all plan-IR static analysis); ``annotate_plan`` is re-exported
# above so cost-model callers keep their import path.


# -- plan profile and backend selection --------------------------------------


@dataclass(frozen=True)
class PlanProfile:
    """What the backend selector needs to know about a compiled plan."""

    spine_maps: int  # map stages on the top-level streamable spine
    spine_stages: int  # all streamable stages (maps, mus, coercions)
    has_normalize: bool  # any Normalize/Alpha leaf anywhere in the plan
    nodes: int
    fused_stages: int = 0  # longest fusible spine run (columnar kernel length)


def plan_profile(plan: Plan) -> PlanProfile:
    """Classify the plan's top-level spine.

    An adapter over :func:`repro.engine.analysis.plan_facts`: the spine
    counts come straight off the memoized fact record, so repeated
    ``select_backend`` calls on one plan never re-walk it.
    """
    facts = plan_facts(plan)
    return PlanProfile(
        facts.spine_maps,
        facts.spine_stages,
        facts.has_normalize,
        facts.nodes,
        facts.fused_stages,
    )


@dataclass(frozen=True)
class BackendChoice:
    """An adaptive backend decision, with its reasoning and shard hint."""

    backend: str
    reason: str
    shards: int | None = None


def select_backend(
    plan: Plan,
    value: Value,
    *,
    existential: bool = False,
    world_query: bool = False,
    available: "Collection[str] | None" = None,
) -> BackendChoice:
    """Pick the backend — eager/streaming/parallel/process/fused/symbolic —
    for this (plan, value) call.

    * **small** estimated world count → ``eager`` (closure execution and
      maximal memo reuse win outright);
    * **world queries** (count/certain/possible/exists — consumers that
      quantify over the *whole* world set, flagged ``world_query=True``)
      past :data:`SYMBOLIC_WORLDS` estimated worlds, over a plan whose
      spine the symbolic trace supports → ``symbolic`` (the
      knowledge-compilation backend answers without enumerating a single
      world; a first-witness consumer is better served by streaming, so
      ``existential`` alone does not trigger this);
    * **existential** consumers over a huge estimated world count →
      ``streaming`` (the first witness comes off the lazy spine before
      any normal form is materialized);
    * **wide** top-level collection whose estimated per-element work is
      below :data:`PARALLEL_BREAK_EVEN_WORK` → ``fused`` when the spine
      has a fusible run at least :data:`FUSED_MIN_SPINE` wide (one
      columnar kernel instead of shards that lose to eager), ``eager``
      otherwise;
    * **wide** top-level collection under a streamable spine whose
      estimated total work amortizes process transport
      (:data:`PROCESS_NORM_SIZE`) → ``process`` (true CPU parallelism);
    * **wide** top-level collection under a streamable spine →
      ``parallel``, with a shard-count hint proportional to the
      estimated total work (:data:`SHARD_TARGET_WORK` per shard);
    * a streamable spine whose estimated normal form is large →
      ``streaming`` (skip canonicalizing big intermediates);
    * anything else → ``eager``.

    *available* restricts the choice to the caller's registered backend
    names (``Engine`` passes its registry).  ``None`` — the bare-function
    default — means the in-thread backends only, so direct callers never
    receive a ``"process"`` decision they did not sign up for.
    """
    est = estimate_value(value)
    profile = plan_profile(plan)
    names = (
        ("eager", "streaming", "parallel", "fused", "symbolic")
        if available is None
        else available
    )
    if world_query and est.worlds > SYMBOLIC_WORLDS and "symbolic" in names:
        # Imported lazily: the symbolic module imports the backends
        # registry, which this module must not import at load time.
        from repro.engine.symbolic import plan_supports_symbolic

        if plan_supports_symbolic(plan):
            return BackendChoice(
                "symbolic",
                f"~{est.worlds} estimated worlds is beyond enumeration; "
                "the compiled choice space answers without building any",
            )
    if (
        existential
        and est.worlds > SMALL_WORLDS
        and profile.spine_stages >= 1
        and "streaming" in names
    ):
        return BackendChoice(
            "streaming",
            f"existential over ~{est.worlds} estimated worlds short-circuits",
        )
    if est.worlds <= SMALL_WORLDS and (est.width or 0) < WIDE_SPINE:
        return BackendChoice("eager", f"small (~{est.worlds} estimated worlds)")
    if profile.spine_maps >= 1 and est.width is not None and est.width >= WIDE_SPINE:
        shards = max(2, min(est.width, est.norm_size // SHARD_TARGET_WORK or 2))
        elem_work = est.norm_size // max(1, est.width)
        if elem_work < PARALLEL_BREAK_EVEN_WORK:
            # Sharding below the break-even loses to eager (pool dispatch
            # swamps the per-element work); a fused columnar kernel still
            # wins by skipping per-element boxing and dispatch entirely.
            if (
                profile.fused_stages >= 1
                and est.width >= FUSED_MIN_SPINE
                and "fused" in names
            ):
                return BackendChoice(
                    "fused",
                    f"wide flat spine ({est.width} elements, ~{elem_work} "
                    "estimated work/element) runs as a fused columnar kernel",
                )
            return BackendChoice(
                "eager",
                f"wide spine below the sharding break-even (~{elem_work} "
                f"estimated work/element < {PARALLEL_BREAK_EVEN_WORK})",
            )
        if "process" in names and est.norm_size >= PROCESS_NORM_SIZE:
            return BackendChoice(
                "process",
                f"CPU-bound wide spine ({est.width} elements, "
                f"~{est.norm_size} estimated work amortizes process transport)",
                shards=min(shards, 32),
            )
        if "parallel" in names:
            return BackendChoice(
                "parallel",
                f"wide spine ({est.width} elements, ~{est.norm_size} estimated work)",
                shards=shards,
            )
    if (
        profile.spine_stages >= 2
        and est.norm_size > STREAM_NORM_SIZE
        and "streaming" in names
    ):
        return BackendChoice(
            "streaming",
            f"streamable spine with ~{est.norm_size} estimated normal-form size",
        )
    return BackendChoice("eager", "default")
