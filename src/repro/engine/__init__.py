"""The compile-and-run engine: plan IR, optimizer passes, interned runtime.

This package gives the evaluation stack the classic query-engine shape:

1. **compile** — :func:`repro.engine.plan.compile_plan` turns a
   :class:`~repro.lang.morphisms.Morphism` tree into a flat, typed
   :class:`~repro.engine.plan.Plan`;
2. **optimize** — :mod:`repro.engine.passes` rewrites the morphism with
   a pipeline of composable equational passes before compilation;
3. **run** — :mod:`repro.engine.backends` executes the plan eagerly or
   as a stream, with :mod:`repro.engine.interning` hash-consing values
   and memoizing ``normalize`` on interned identity.

The single entry point is :func:`run` (or :meth:`Engine.run`)::

    from repro import engine
    from repro.lang import ormap, p1

    engine.run(ormap(p1()), vorset(vpair(1, 2)))     # <1>
    engine.run(q, db, backend="streaming")           # lazy spine
    engine.run(q, db, optimize=False, intern=False)  # plain compiled

``engine.run(p, v)`` is structurally equal to the direct interpretation
``p(v)`` for every program; the engine is the canonical execution path
used by the REPL, the I/O helpers, the examples and the benchmarks.
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.morphisms import Morphism
from repro.types.kinds import Type
from repro.values.values import Value, ensure_value

from repro.engine.backends import BACKENDS, Backend, EagerBackend, StreamingBackend
from repro.engine.interning import Interner
from repro.engine.passes import (
    COND_PUSHDOWN,
    DEFAULT_PASSES,
    Pass,
    Pipeline,
    default_pipeline,
    optimize_morphism,
)
from repro.engine.plan import Plan, PlanNode, compile_plan

__all__ = [
    "Engine",
    "DEFAULT_ENGINE",
    "run",
    "compile_program",
    "explain",
    "Plan",
    "PlanNode",
    "compile_plan",
    "Pass",
    "Pipeline",
    "DEFAULT_PASSES",
    "COND_PUSHDOWN",
    "default_pipeline",
    "optimize_morphism",
    "Interner",
    "Backend",
    "EagerBackend",
    "StreamingBackend",
    "BACKENDS",
]


class Engine:
    """Compile-and-run driver tying passes, plans, backends and the arena.

    One engine owns one :class:`Interner` (so repeated runs share the
    memoized normal forms) and one compiled-plan cache keyed on the
    program, per optimization setting.
    """

    def __init__(
        self,
        pipeline: Pipeline | None = None,
        interner: Interner | None = None,
    ) -> None:
        self.pipeline = pipeline if pipeline is not None else default_pipeline()
        self.interner = interner if interner is not None else Interner()
        self.backends: dict[str, Backend] = dict(BACKENDS)
        self._plans: dict[tuple[Morphism, bool], Plan] = {}

    # -- compilation -------------------------------------------------------

    def compile(self, program: Morphism, optimize: bool = True) -> Plan:
        """The (cached) compiled plan for *program*."""
        key = (program, optimize)
        plan = self._plans.get(key)
        if plan is None:
            m = self.pipeline.run(program) if optimize else program
            plan = compile_plan(m)
            self._plans[key] = plan
        return plan

    def explain(self, program: Morphism, input_type: Type | None = None) -> str:
        """The optimized, compiled (and, given a type, annotated) plan."""
        plan = self.compile(program)
        if input_type is not None:
            plan.infer_types(input_type)
        return plan.describe()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        program: Morphism,
        value: object,
        *,
        backend: str = "eager",
        optimize: bool = True,
        intern: bool = True,
    ) -> Value:
        """Compile *program* and execute it on *value*.

        ``backend`` selects eager or streaming execution; ``optimize``
        toggles the pass pipeline; ``intern`` routes values through the
        hash-consing arena (enabling the memoized ``normalize``).
        """
        chosen = self._backend(backend)
        plan = self.compile(program, optimize)
        concrete = ensure_value(value)
        interner = self.interner if intern else None
        if interner is not None:
            concrete = interner.intern(concrete)
        result = chosen.execute(plan, concrete, interner)
        if interner is not None:
            result = interner.intern(result)
        return result

    def possibilities(
        self,
        program: Morphism,
        value: object,
        *,
        backend: str = "eager",
        optimize: bool = True,
        intern: bool = True,
    ) -> Iterator[Value]:
        """Lazily stream the conceptual values of ``run(program, value)``."""
        chosen = self._backend(backend)
        plan = self.compile(program, optimize)
        interner = self.interner if intern else None
        concrete = ensure_value(value)
        if interner is not None:
            concrete = interner.intern(concrete)
        return chosen.possibilities(plan, concrete, interner)

    def _backend(self, name: str) -> Backend:
        try:
            return self.backends[name]
        except KeyError:
            raise ValueError(
                f"unknown backend {name!r} (have: {', '.join(sorted(self.backends))})"
            ) from None

    def clear_caches(self) -> None:
        """Drop compiled plans and the value arena."""
        self._plans.clear()
        self.interner.clear()


#: The module-level engine behind :func:`run` — shared so the REPL, the
#: I/O helpers and library callers benefit from one another's caches.
DEFAULT_ENGINE = Engine()


def run(program: Morphism, value: object, **options) -> Value:
    """Run *program* on *value* through the default engine."""
    return DEFAULT_ENGINE.run(program, value, **options)


def compile_program(program: Morphism, optimize: bool = True) -> Plan:
    """Compile (and optionally optimize) through the default engine."""
    return DEFAULT_ENGINE.compile(program, optimize)


def explain(program: Morphism, input_type: Type | None = None) -> str:
    """Describe the default engine's plan for *program*."""
    return DEFAULT_ENGINE.explain(program, input_type)
