"""The compile-and-run engine: plan IR, optimizer passes, interned runtime.

This package gives the evaluation stack the classic query-engine shape:

1. **compile** — :func:`repro.engine.plan.compile_plan` turns a
   :class:`~repro.lang.morphisms.Morphism` tree into a flat, typed
   :class:`~repro.engine.plan.Plan`;
2. **optimize** — :mod:`repro.engine.passes` rewrites the morphism with
   a pipeline of composable equational passes before compilation;
3. **run** — :mod:`repro.engine.backends` executes the plan eagerly, as
   a stream, or sharded across a worker pool
   (:mod:`repro.engine.parallel`), with :mod:`repro.engine.interning`
   hash-consing values and memoizing ``normalize``.

The single entry point is :func:`run` (or :meth:`Engine.run`)::

    from repro import engine
    from repro.lang import ormap, p1

    engine.run(ormap(p1()), vorset(vpair(1, 2)))     # <1>
    engine.run(q, db, backend="streaming")           # lazy spine
    engine.run(q, db, backend="parallel")            # thread-sharded spine
    engine.run(q, db, backend="process")             # process-sharded spine
    engine.run(q, db, backend="fused")               # columnar fused kernels
    engine.run(q, db, optimize=False, intern=False)  # plain compiled
    engine.run_many(q, dbs)                          # compile once, fan out

The default ``backend="auto"`` picks the backend *per call* from the
cost model (:mod:`repro.engine.cost_model`): the input's estimated world
count and the plan's spine profile decide between eager execution, lazy
streaming, estimate-proportional thread sharding and — when the estimate
says the call is CPU-bound enough to amortize plan/value transport —
true multiprocess sharding (:mod:`repro.engine.process`) — without
building a single world (Section 6's bounds are computed statically).

``engine.run(p, v)`` is structurally equal to the direct interpretation
``p(v)`` for every program; the engine is the canonical execution path
used by the REPL, the I/O helpers, the examples and the benchmarks.

The module-level :data:`DEFAULT_ENGINE` is safe for concurrent use: the
plan cache is guarded by a lock (and LRU-bounded), and the shared
:class:`Interner` serializes arena access internally — which is what
lets :meth:`Engine.run_many` and the parallel backend hammer one engine
from many threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator, Sequence

from repro.lang.morphisms import Morphism
from repro.types.kinds import Type
from repro.values.values import SetValue, Value, ensure_value

from repro.engine.analysis import (
    NodeFacts,
    PlanFacts,
    compute_plan_facts,
    format_facts,
    plan_facts,
)
from repro.engine import faults
from repro.engine.backends import BACKENDS, Backend, EagerBackend, StreamingBackend
from repro.engine.columnar import Arena, FusedBackend
from repro.engine.cost_model import (
    OPERATOR_COSTS,
    BackendChoice,
    PlanProfile,
    ShapeEstimate,
    annotate_plan,
    calibrate,
    calibration_scope,
    estimate_json,
    estimate_morphism_cost,
    estimate_value,
    operator_features,
    plan_profile,
    rank_error,
    select_backend,
    set_calibration,
)
from repro.engine.deadline import (
    Deadline,
    checkpoint,
    current_deadline,
    deadline_scope,
)
from repro.engine.interning import Interner
from repro.engine.parallel import ParallelBackend, ShardedBackend, default_worker_count
from repro.engine.process import ProcessBackend, default_process_count
from repro.engine.passes import (
    COND_PUSHDOWN,
    DEFAULT_PASSES,
    LATE_NORMALIZE,
    Pass,
    Pipeline,
    default_pipeline,
    fuse_plan,
    optimize_morphism,
)
from repro.engine.plan import Plan, PlanNode, compile_plan
from repro.engine.supervisor import CircuitBreaker, Supervisor
from repro.engine.symbolic import (
    ChoiceSpace,
    SymbolicBackend,
    plan_supports_symbolic,
    trace_worlds,
)
from repro.engine.symbolic import (
    _certain_of_worlds as _certain_of,
)
from repro.engine.symbolic import (
    _possible_of_worlds as _possible_of,
)
from repro.engine.verify import (
    PassVerificationError,
    PlanVerificationError,
    verification_enabled,
    verify_plan,
    verify_rewrite,
)

__all__ = [
    "Engine",
    "DEFAULT_ENGINE",
    "run",
    "run_many",
    "compile_program",
    "explain",
    "count_worlds",
    "certain",
    "possible",
    "exists",
    "Plan",
    "PlanNode",
    "compile_plan",
    "Pass",
    "Pipeline",
    "DEFAULT_PASSES",
    "COND_PUSHDOWN",
    "LATE_NORMALIZE",
    "default_pipeline",
    "optimize_morphism",
    "Interner",
    "Backend",
    "EagerBackend",
    "StreamingBackend",
    "ParallelBackend",
    "ProcessBackend",
    "ShardedBackend",
    "FusedBackend",
    "SymbolicBackend",
    "ChoiceSpace",
    "trace_worlds",
    "plan_supports_symbolic",
    "Arena",
    "fuse_plan",
    "BACKENDS",
    "default_worker_count",
    "default_process_count",
    "ShapeEstimate",
    "estimate_value",
    "estimate_json",
    "estimate_morphism_cost",
    "OPERATOR_COSTS",
    "operator_features",
    "calibrate",
    "calibration_scope",
    "rank_error",
    "set_calibration",
    "annotate_plan",
    "PlanProfile",
    "plan_profile",
    "BackendChoice",
    "select_backend",
    "NodeFacts",
    "PlanFacts",
    "plan_facts",
    "compute_plan_facts",
    "format_facts",
    "verify_plan",
    "verify_rewrite",
    "PlanVerificationError",
    "PassVerificationError",
    "verification_enabled",
    "Deadline",
    "deadline_scope",
    "current_deadline",
    "checkpoint",
    "CircuitBreaker",
    "Supervisor",
    "faults",
]


class Engine:
    """Compile-and-run driver tying passes, plans, backends and the arena.

    One engine owns one :class:`Interner` (so repeated runs share the
    memoized normal forms) and one compiled-plan cache keyed on the
    program, per optimization setting.  The plan cache is an LRU bounded
    by *max_plans*, and both caches are safe to use from multiple
    threads.
    """

    def __init__(
        self,
        pipeline: Pipeline | None = None,
        interner: Interner | None = None,
        max_plans: int = 256,
    ) -> None:
        self.pipeline = pipeline if pipeline is not None else default_pipeline()
        self.interner = interner if interner is not None else Interner()
        self.backends: dict[str, Backend] = dict(BACKENDS)
        self.max_plans = max_plans
        self._plans: OrderedDict[tuple[Morphism, bool], Plan] = OrderedDict()
        self._lock = threading.Lock()

    def _available(self) -> dict[str, Backend]:
        """The backends the adaptive selector may route to right now.

        A supervised backend whose circuit breaker is open reports
        ``healthy() == False`` and is dropped from the candidate set, so
        ``backend="auto"`` degrades around it (process → parallel) until
        the breaker half-opens and a probe heals it.  Explicit
        ``backend="name"`` requests bypass this filter — their supervised
        fallbacks keep them safe.
        """
        healthy = {name: b for name, b in self.backends.items() if b.healthy()}
        return healthy if healthy else self.backends

    # -- compilation -------------------------------------------------------

    def compile(self, program: Morphism, optimize: bool = True) -> Plan:
        """The (cached, LRU-evicted) compiled plan for *program*."""
        key = (program, optimize)
        # The whole miss path runs under the lock: `pipeline.run` records
        # the fired rules on the shared pipeline (the documented
        # diagnostics channel), so concurrent compiles must not
        # interleave their rule lists.
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
            m = self.pipeline.run(program) if optimize else program
            plan = compile_plan(m)
            if verification_enabled():
                verify_plan(plan, context="compile")
            self._plans[key] = plan
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
        return plan

    def explain(
        self,
        program: Morphism,
        input_type: Type | None = None,
        value: object = None,
        *,
        existential: bool = False,
    ) -> str:
        """The optimized, compiled (and, given a type, annotated) plan.

        The node listing is followed by a ``facts:`` line — the
        :class:`~repro.engine.analysis.PlanFacts` record the routing
        layers read (symbolic supportability, transportability, purity,
        spine shape, fusible spans, output shape, short-circuit
        potential), printed exactly as the selector sees it.

        Describes a *fresh* compilation rather than the cached plan:
        ``infer_types`` writes dom/cod annotations into the plan's nodes,
        and annotating the shared cached plan would leak one call's types
        into later ``explain``/``describe`` output (or a concurrent
        reader's).  Given a *value*, each node is additionally annotated
        with the cost model's predicted world count and normalized size
        (``~worlds<=... size<=...``) — the Section 6 bounds, computed
        without building a single world — followed by the backend the
        adaptive selector would pick for this call.  When the plan's
        spine has fusible runs, a ``fusion:`` line reports how many
        stages collapse into how many single-pass columnar kernels
        (:func:`repro.engine.passes.fuse_plan`).  ``existential=True``
        asks for the world-query route instead of the run route — the
        selector may then report the symbolic backend
        (:mod:`repro.engine.symbolic`).
        """
        with self._lock:
            m = self.pipeline.run(program)
        plan = compile_plan(m)
        if input_type is not None:
            plan.infer_types(input_type)
        facts_line = "\n" + format_facts(plan_facts(plan))
        fused = fuse_plan(plan)
        fusion = ""
        if fused is not plan:
            kernels = sum(1 for node in fused.nodes if node.op == "fused")
            stages = sum(
                len(node.spec) for node in fused.nodes if node.op == "fused"
            )
            fusion = (
                f"\nfusion: {stages} spine stage(s) collapse into "
                f"{kernels} fused kernel(s)"
            )
        if value is None:
            return plan.describe() + facts_line + fusion
        concrete = ensure_value(value)
        plan.annotate_estimates(concrete)
        choice = select_backend(
            plan,
            concrete,
            existential=existential,
            world_query=existential,
            available=self._available(),
        )
        return (
            plan.describe()
            + facts_line
            + fusion
            + f"\nbackend: {choice.backend} ({choice.reason})"
        )

    # -- execution ---------------------------------------------------------

    def run(
        self,
        program: Morphism,
        value: object,
        *,
        backend: str = "auto",
        optimize: bool = True,
        intern: bool = True,
    ) -> Value:
        """Compile *program* and execute it on *value*.

        ``backend`` selects eager, streaming or parallel execution — or
        ``"auto"`` (the default), which picks per call from the cost
        model's static world-count estimate and the plan's spine profile
        (:func:`repro.engine.cost_model.select_backend`); ``optimize``
        toggles the pass pipeline; ``intern`` routes values through the
        hash-consing arena (enabling the memoized ``normalize``).
        """
        plan = self.compile(program, optimize)
        concrete = ensure_value(value)
        interner = self.interner if intern else None
        if interner is not None:
            concrete = interner.intern(concrete)
        result = self._execute(backend, plan, concrete, interner)
        if interner is not None:
            result = interner.intern(result)
        return result

    def _execute(
        self,
        backend: str,
        plan: Plan,
        concrete: Value,
        interner: Interner | None,
        existential: bool = False,
    ) -> Value:
        """Resolve *backend* (adaptively for ``"auto"``) and execute."""
        checkpoint("engine dispatch")
        if backend != "auto":
            return self._backend(backend).execute(plan, concrete, interner)
        choice = select_backend(
            plan, concrete, existential=existential, available=self._available()
        )
        chosen = self.backends[choice.backend]
        if choice.shards is not None and isinstance(chosen, ShardedBackend):
            return chosen.execute(plan, concrete, interner, shard_hint=choice.shards)
        return chosen.execute(plan, concrete, interner)

    def run_many(
        self,
        program: Morphism,
        values: Sequence[object],
        *,
        backend: str = "auto",
        optimize: bool = True,
        intern: bool = True,
        interner: Interner | None = None,
        max_workers: int | None = None,
    ) -> list[Value]:
        """Run *program* on every input in *values*: compile once, fan out.

        The batched counterpart of :meth:`run`: one plan compilation and
        one backend bind are amortized over the whole batch, structurally
        equal inputs are computed once, and distinct inputs are fanned
        out across a worker pool (``max_workers``; pass ``0`` or ``1``
        for strictly sequential execution).  Results come back in input
        order and satisfy ``run_many(p, vs)[i] == run(p, vs[i])``.
        ``backend="auto"`` (the default) re-selects the backend per
        distinct input — a batch can mix small eager inputs with wide
        sharded ones.

        *interner* overrides the engine's arena for this batch — pass a
        fresh :class:`Interner` to share memoized normal forms *within*
        the batch without pinning anything in the engine afterwards
        (this is what :func:`repro.io.run_json_many` does).
        """
        if backend != "auto":
            self._backend(backend)  # validate the name up front
        plan = self.compile(program, optimize)
        arena = interner if interner is not None else (self.interner if intern else None)
        concrete = [ensure_value(v) for v in values]
        if arena is not None:
            concrete = [arena.intern(v) for v in concrete]
        if not concrete:
            return []

        # Dedupe structurally equal inputs: a multi-world batch often
        # repeats whole inputs, and each distinct one is computed once.
        index: dict[Value, int] = {}
        unique: list[Value] = []
        for v in concrete:
            if v not in index:
                index[v] = len(unique)
                unique.append(v)

        def run_one(v: Value) -> Value:
            result = self._execute(backend, plan, v, arena)
            if arena is not None:
                result = arena.intern(result)
            return result

        chosen = self.backends.get(backend) if backend != "auto" else None
        workers = default_worker_count() if max_workers is None else max_workers
        if backend == "auto" and workers > 1 and len(unique) > 1:
            # A batch whose every input auto-selects the process backend
            # should use the batch hook too, not stack the thread pool
            # on top of the process pool (one chunk per worker beats
            # many threads hammering pool.map concurrently).
            proc = self.backends.get("process")
            if isinstance(proc, ProcessBackend) and all(
                select_backend(plan, v, available=self._available()).backend == "process"
                for v in unique
            ):
                chosen = proc
        if (
            isinstance(chosen, ProcessBackend)
            and workers > 1
            and len(unique) > 1
            and chosen.can_transport(plan)
        ):
            # The process backend's batch hook: whole inputs fan out
            # across worker processes, one chunk per task — no thread
            # pool stacked on top of the process pool.  The caller's
            # max_workers bound caps the process fan-out too.  A plan
            # that cannot pickle never reaches this branch: the thread
            # fan-out below beats run_values' sequential eager fallback.
            results = chosen.run_values(plan, unique, arena, max_workers=workers)
        elif workers > 1 and len(unique) > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(unique)),
                thread_name_prefix="repro-run-many",
            ) as pool:
                results = list(pool.map(run_one, unique))
        else:
            results = [run_one(v) for v in unique]
        return [results[index[v]] for v in concrete]

    def possibilities(
        self,
        program: Morphism,
        value: object,
        *,
        backend: str = "auto",
        optimize: bool = True,
        intern: bool = True,
    ) -> Iterator[Value]:
        """Lazily stream the conceptual values of ``run(program, value)``.

        With ``backend="auto"`` (the default) this is an *existential*
        consumer: when the static estimate predicts a huge world count
        over a streamable spine, the streaming backend is chosen so the
        first witness short-circuits without materializing a normal form.
        """
        plan = self.compile(program, optimize)
        interner = self.interner if intern else None
        concrete = ensure_value(value)
        if interner is not None:
            concrete = interner.intern(concrete)
        if backend == "auto":
            choice = select_backend(
                plan, concrete, existential=True, available=self._available()
            )
            chosen = self.backends[choice.backend]
        else:
            chosen = self._backend(backend)
        return chosen.possibilities(plan, concrete, interner)

    # -- world queries -----------------------------------------------------

    def _world_query_backend(
        self, plan: Plan, concrete: Value, backend: str
    ) -> Backend:
        """Resolve the backend for a world query (whole-world-set consumer)."""
        if backend == "auto":
            choice = select_backend(
                plan,
                concrete,
                existential=True,
                world_query=True,
                available=self._available(),
            )
            return self.backends[choice.backend]
        return self._backend(backend)

    def _world_query_setup(
        self, program: Morphism, value: object, optimize: bool, intern: bool
    ) -> tuple[Plan, Value, Interner | None]:
        plan = self.compile(program, optimize)
        interner = self.interner if intern else None
        concrete = ensure_value(value)
        if interner is not None:
            concrete = interner.intern(concrete)
        return plan, concrete, interner

    def count_worlds(
        self,
        program: Morphism,
        value: object,
        *,
        backend: str = "auto",
        optimize: bool = True,
        intern: bool = True,
    ) -> int:
        """``|worlds(run(program, value))|`` — the paper's ``m``.

        With ``backend="auto"`` (or ``"symbolic"``), supported plans are
        answered on the compiled choice space: exact counts in time
        linear in the *input*, even when the count itself is
        astronomical.  Other backends count by deduplicated enumeration.
        """
        plan, concrete, interner = self._world_query_setup(
            program, value, optimize, intern
        )
        chosen = self._world_query_backend(plan, concrete, backend)
        if isinstance(chosen, SymbolicBackend):
            return chosen.count_worlds(plan, concrete, interner)
        return len(set(chosen.possibilities(plan, concrete, interner)))

    def exists(
        self,
        program: Morphism,
        value: object,
        predicate=None,
        *,
        backend: str = "auto",
        optimize: bool = True,
        intern: bool = True,
    ) -> bool:
        """Does some world of the output satisfy *predicate*?

        With no predicate: is the output consistent (has any world at
        all)?  The symbolic route answers that without producing one.
        With a predicate (any ``Value -> bool`` callable), worlds are
        streamed lazily and the first witness short-circuits.
        """
        plan, concrete, interner = self._world_query_setup(
            program, value, optimize, intern
        )
        chosen = self._world_query_backend(plan, concrete, backend)
        if predicate is None and isinstance(chosen, SymbolicBackend):
            return chosen.exists(plan, concrete, interner)
        stream = chosen.possibilities(plan, concrete, interner)
        if predicate is None:
            return next(iter(stream), None) is not None
        return any(predicate(world) for world in stream)

    def certain(
        self,
        program: Morphism,
        value: object,
        *,
        backend: str = "auto",
        optimize: bool = True,
        intern: bool = True,
    ) -> Value:
        """The set of elements present in *every* world of the output.

        The certain-answer operator of consistent query answering: the
        output's worlds must be collections (sets/bags — e.g. the worlds
        of a normalized or-set database), and the result is the
        intersection of their element sets, as a canonical ``SetValue``.
        Raises :class:`~repro.errors.OrNRAValueError` when the output
        has no worlds at all (inconsistency).  The symbolic route
        answers each membership with one SAT call instead of
        intersecting exponentially many worlds.
        """
        plan, concrete, interner = self._world_query_setup(
            program, value, optimize, intern
        )
        chosen = self._world_query_backend(plan, concrete, backend)
        if isinstance(chosen, SymbolicBackend):
            elements = chosen.certain(plan, concrete, interner)
        else:
            elements = _certain_of(chosen.possibilities(plan, concrete, interner))
        result: Value = SetValue(elements)
        if interner is not None:
            result = interner.intern(result)
        return result

    def possible(
        self,
        program: Morphism,
        value: object,
        *,
        backend: str = "auto",
        optimize: bool = True,
        intern: bool = True,
    ) -> Value:
        """The set of elements present in *some* world of the output —
        the dual of :meth:`certain` (possible answers)."""
        plan, concrete, interner = self._world_query_setup(
            program, value, optimize, intern
        )
        chosen = self._world_query_backend(plan, concrete, backend)
        if isinstance(chosen, SymbolicBackend):
            elements = chosen.possible(plan, concrete, interner)
        else:
            elements = _possible_of(chosen.possibilities(plan, concrete, interner))
        result: Value = SetValue(elements)
        if interner is not None:
            result = interner.intern(result)
        return result

    def choose_backend(
        self,
        program: Morphism,
        value: object,
        *,
        optimize: bool = True,
        existential: bool = False,
        world_query: bool = False,
    ) -> BackendChoice:
        """The adaptive selector's decision for this call, with reasoning.

        What ``backend="auto"`` would do — exposed for diagnostics, the
        REPL and tests.  ``existential`` marks a first-witness consumer
        (:meth:`possibilities`); ``world_query`` marks a whole-world-set
        consumer (:meth:`count_worlds` / :meth:`certain` /
        :meth:`possible` / :meth:`exists`).
        """
        plan = self.compile(program, optimize)
        return select_backend(
            plan,
            ensure_value(value),
            existential=existential,
            world_query=world_query,
            available=self._available(),
        )

    def _backend(self, name: str) -> Backend:
        try:
            return self.backends[name]
        except KeyError:
            raise ValueError(
                f"unknown backend {name!r} (have: {', '.join(sorted(self.backends))})"
            ) from None

    def clear_caches(self) -> None:
        """Drop compiled plans and the value arena."""
        with self._lock:
            self._plans.clear()
        self.interner.clear()


#: The module-level engine behind :func:`run` — shared so the REPL, the
#: I/O helpers and library callers benefit from one another's caches.
DEFAULT_ENGINE = Engine()


def run(program: Morphism, value: object, **options) -> Value:
    """Run *program* on *value* through the default engine."""
    return DEFAULT_ENGINE.run(program, value, **options)


def run_many(program: Morphism, values: Sequence[object], **options) -> list[Value]:
    """Batched :func:`run` through the default engine (compile once, fan out)."""
    return DEFAULT_ENGINE.run_many(program, values, **options)


def compile_program(program: Morphism, optimize: bool = True) -> Plan:
    """Compile (and optionally optimize) through the default engine."""
    return DEFAULT_ENGINE.compile(program, optimize)


def explain(
    program: Morphism,
    input_type: Type | None = None,
    value: object = None,
    *,
    existential: bool = False,
) -> str:
    """Describe the default engine's plan for *program*.

    Given a *value*, nodes carry the cost model's predicted world counts
    and the adaptive backend decision for that input; ``existential=True``
    explains the routing for world queries (:func:`exists`,
    :func:`certain`, :func:`count_worlds`) instead of :func:`run`.
    """
    return DEFAULT_ENGINE.explain(program, input_type, value, existential=existential)


def count_worlds(program: Morphism, value: object, **options) -> int:
    """Exact world count of the output through the default engine."""
    return DEFAULT_ENGINE.count_worlds(program, value, **options)


def exists(program: Morphism, value: object, predicate=None, **options) -> bool:
    """Existential world query through the default engine."""
    return DEFAULT_ENGINE.exists(program, value, predicate, **options)


def certain(program: Morphism, value: object, **options) -> Value:
    """Certain answers (elements in every world) through the default engine."""
    return DEFAULT_ENGINE.certain(program, value, **options)


def possible(program: Morphism, value: object, **options) -> Value:
    """Possible answers (elements in some world) through the default engine."""
    return DEFAULT_ENGINE.possible(program, value, **options)
