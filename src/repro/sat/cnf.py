"""CNF formulas and the paper's or-set encoding (Section 6, last result).

The reduction: literals are elements of a base type ``b``; a positive
literal ``u`` is the pair ``(u, true) : b * bool`` and a negative literal
``not u`` is ``(u, false)``; a clause (disjunction) becomes the *or-set*
of its literal encodings, and the conjunction of clauses becomes the *set*
of clause encodings.  A formula ``psi`` is thus an object
``x : {<b * bool>}``, and ``psi`` is satisfiable iff some element of
``normalize(x)`` — a set of ``(variable, polarity)`` pairs, i.e. one
chosen literal per clause — satisfies the functional dependency
``var -> polarity`` (no variable chosen with both polarities).

This module represents CNF, generates random instances, performs the
encoding/decoding, and supplies the FD predicate both as a plain function
and as an or-NRA morphism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import OrNRAValueError
from repro.types.kinds import BOOL, BaseType, OrSetType, ProdType, SetType, Type
from repro.values.values import Atom, OrSetValue, Pair, SetValue, Value, boolean

from repro.lang.morphisms import Morphism
from repro.lang.primitives import predicate

__all__ = [
    "CNF",
    "random_cnf",
    "VAR_BASE",
    "encode_cnf",
    "encoded_type",
    "decode_choice",
    "satisfies_fd",
    "fd_predicate",
    "assignment_satisfies",
    "all_assignments",
]

VAR_BASE = "var"

Literal = int  # +v / -v for variable v >= 1
Clause = frozenset[Literal]


@dataclass(frozen=True)
class CNF:
    """A CNF formula: a tuple of clauses over variables ``1..n_vars``."""

    n_vars: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            for lit in clause:
                if lit == 0 or abs(lit) > self.n_vars:
                    raise OrNRAValueError(f"literal {lit} out of range")

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def is_satisfied_by(self, assignment: dict[int, bool]) -> bool:
        """Does a total/partial assignment satisfy every clause?"""
        return all(
            any(
                (lit > 0) == assignment.get(abs(lit), None)
                for lit in clause
                if abs(lit) in assignment
            )
            for clause in self.clauses
        )


def random_cnf(
    n_vars: int,
    n_clauses: int,
    k: int,
    rng: random.Random | None = None,
    *,
    seed: int | None = None,
) -> CNF:
    """A random *k*-CNF: each clause draws *k* distinct variables with
    random polarities (tautological clauses excluded by construction).

    Pass either an *rng* or a *seed*; a seed builds a private
    ``random.Random(seed)`` so benchmark instances are reproducible
    without threading generator state through the call site.
    """
    if rng is not None and seed is not None:
        raise OrNRAValueError("pass either rng or seed, not both")
    if rng is None:
        rng = random.Random(seed)
    if k > n_vars:
        raise OrNRAValueError(f"clause width {k} exceeds {n_vars} variables")
    clauses = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_vars + 1), k)
        clause = frozenset(
            v if rng.random() < 0.5 else -v for v in variables
        )
        clauses.append(clause)
    return CNF(n_vars, tuple(clauses))


def encoded_type() -> Type:
    """The encoding's type ``{<var * bool>}``."""
    return SetType(OrSetType(ProdType(BaseType(VAR_BASE), BOOL)))


def _literal_value(lit: Literal) -> Value:
    return Pair(Atom(VAR_BASE, abs(lit)), boolean(lit > 0))


def encode_cnf(cnf: CNF) -> Value:
    """Encode *cnf* as an object of type ``{<var * bool>}``.

    Note the set/or-set semantics already collapse duplicate clauses and
    duplicate literals, which preserves satisfiability.
    """
    return SetValue(
        OrSetValue(_literal_value(lit) for lit in clause)
        for clause in cnf.clauses
    )


def decode_choice(choice: Value) -> dict[int, bool]:
    """Decode a conceptual value (a set of ``(var, bool)`` pairs, one chosen
    literal per clause) into a partial assignment.

    Raises when the choice violates the functional dependency.
    """
    if not isinstance(choice, SetValue):
        raise OrNRAValueError(f"expected a set of pairs, got {choice!r}")
    assignment: dict[int, bool] = {}
    for pair in choice.elems:
        if not (
            isinstance(pair, Pair)
            and isinstance(pair.fst, Atom)
            and isinstance(pair.snd, Atom)
        ):
            raise OrNRAValueError(f"malformed literal {pair!r}")
        var = int(pair.fst.value)  # type: ignore[arg-type]
        polarity = bool(pair.snd.value)
        if var in assignment and assignment[var] != polarity:
            raise OrNRAValueError(f"choice violates FD on variable {var}")
        assignment[var] = polarity
    return assignment


def satisfies_fd(choice: Value) -> bool:
    """The paper's predicate ``p``: does the relation satisfy the functional
    dependency ``#1 -> #2``?  (Implementable in relational algebra.)"""
    if not isinstance(choice, SetValue):
        raise OrNRAValueError(f"expected a set of pairs, got {choice!r}")
    seen: dict[Value, Value] = {}
    for pair in choice.elems:
        if not isinstance(pair, Pair):
            raise OrNRAValueError(f"malformed pair {pair!r}")
        if pair.fst in seen and seen[pair.fst] != pair.snd:
            return False
        seen[pair.fst] = pair.snd
    return True


def fd_predicate() -> Morphism:
    """``p : {var * bool} -> bool`` as an or-NRA primitive."""
    return predicate(
        "fd_check", satisfies_fd, SetType(ProdType(BaseType(VAR_BASE), BOOL))
    )


def assignment_satisfies(cnf: CNF, assignment: dict[int, bool]) -> bool:
    """Independent check that *assignment* (possibly partial, free variables
    chosen arbitrarily False) satisfies *cnf*."""
    total = {v: assignment.get(v, False) for v in range(1, cnf.n_vars + 1)}
    return all(
        any((lit > 0) == total[abs(lit)] for lit in clause)
        for clause in cnf.clauses
    )


def all_assignments(n_vars: int) -> Iterator[dict[int, bool]]:
    """Every total assignment, generated lazily one dict at a time.

    A generator, so brute-force cross-checks can consume assignments
    incrementally (and short-circuit) without ``2^n_vars`` dicts ever
    existing at once — ``next(all_assignments(1000))`` is instant.
    """
    for mask in range(1 << n_vars):
        yield {v: bool((mask >> (v - 1)) & 1) for v in range(1, n_vars + 1)}
