"""The Section 6 SAT reduction: CNF encoding, FD predicate, solvers."""

from repro.sat.cnf import (
    CNF,
    VAR_BASE,
    all_assignments,
    assignment_satisfies,
    decode_choice,
    encode_cnf,
    encoded_type,
    fd_predicate,
    random_cnf,
    satisfies_fd,
)
from repro.sat.dpll import dpll_sat, dpll_solve
from repro.sat.via_normalization import sat_eager, sat_lazy, sat_witness

__all__ = [
    "CNF", "VAR_BASE", "random_cnf", "encode_cnf", "encoded_type",
    "decode_choice", "satisfies_fd", "fd_predicate", "assignment_satisfies",
    "all_assignments",
    "dpll_sat", "dpll_solve",
    "sat_eager", "sat_lazy", "sat_witness",
]
