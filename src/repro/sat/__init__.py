"""The Section 6 SAT reduction — and the solver stack grown out of it.

CNF encoding and the FD predicate (:mod:`repro.sat.cnf`), the
normalization-based satisfiability backends
(:mod:`repro.sat.via_normalization`), a CDCL solver with an exact model
counter (:mod:`repro.sat.dpll`), and d-DNNF knowledge compilation
(:mod:`repro.sat.ddnnf`) — the machinery behind the engine's symbolic
backend (:mod:`repro.engine.symbolic`).
"""

from repro.sat.cnf import (
    CNF,
    VAR_BASE,
    all_assignments,
    assignment_satisfies,
    decode_choice,
    encode_cnf,
    encoded_type,
    fd_predicate,
    random_cnf,
    satisfies_fd,
)
from repro.sat.ddnnf import DDNNF, compile_ddnnf
from repro.sat.dpll import count_models, dpll_sat, dpll_solve
from repro.sat.via_normalization import sat_eager, sat_lazy, sat_witness

__all__ = [
    "CNF", "VAR_BASE", "random_cnf", "encode_cnf", "encoded_type",
    "decode_choice", "satisfies_fd", "fd_predicate", "assignment_satisfies",
    "all_assignments",
    "dpll_sat", "dpll_solve", "count_models",
    "DDNNF", "compile_ddnnf",
    "sat_eager", "sat_lazy", "sat_witness",
]
