"""A CDCL SAT solver and an exact model counter (#SAT).

Originally a recursive textbook DPLL; now a small conflict-driven
clause-learning solver in the MiniSat lineage:

* **iterative trail** — assignments live on an explicit trail with
  decision levels, so deep implication chains never touch the Python
  recursion limit (the old ``_solve`` recursed once per branch);
* **two-watched-literal unit propagation** — each clause is watched by
  two literals and is only visited when a watch is falsified, so
  propagation cost is proportional to the clauses that actually change;
* **conflict-driven clause learning** — conflicts are analyzed to the
  first unique implication point (1-UIP), the learned clause is added
  and the solver backjumps non-chronologically.

:func:`count_models` is the exact #SAT counter used by the symbolic
backend as an independent cross-check: unit propagation, connected
component decomposition (variable-disjoint residual formulas multiply)
and caching on residual formulas — the same decomposition the d-DNNF
compiler (:mod:`repro.sat.ddnnf`) traces into a circuit.

The public contract is unchanged: :func:`dpll_solve` returns a
satisfying (possibly partial — variables in no clause stay unassigned)
assignment or ``None``, and :func:`dpll_sat` the boolean.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.sat.cnf import CNF, Clause

__all__ = ["dpll_sat", "dpll_solve", "count_models"]


class _CDCL:
    """One solver instance over a fixed clause database."""

    def __init__(self, clauses: Iterable[Clause]) -> None:
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = defaultdict(list)
        self.assign: dict[int, bool] = {}
        self.level: dict[int, int] = {}
        self.reason: dict[int, int | None] = {}
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.ok = True
        self.variables: list[int] = []
        seen_vars: set[int] = set()
        units: list[int] = []
        for clause in clauses:
            lits = sorted(clause, key=abs)
            for lit in lits:
                if abs(lit) not in seen_vars:
                    seen_vars.add(abs(lit))
                    self.variables.append(abs(lit))
            if not lits:
                self.ok = False
                continue
            if len(lits) == 1:
                units.append(lits[0])
                continue
            self._attach(lits)
        self.variables.sort()
        if self.ok:
            for lit in units:
                if not self._enqueue(lit, None):
                    self.ok = False
                    break

    # -- clause plumbing ----------------------------------------------------

    def _attach(self, lits: list[int]) -> int:
        ci = len(self.clauses)
        self.clauses.append(lits)
        self.watches[lits[0]].append(ci)
        self.watches[lits[1]].append(ci)
        return ci

    def _value(self, lit: int) -> bool | None:
        v = self.assign.get(abs(lit))
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int, reason: int | None) -> bool:
        val = self._value(lit)
        if val is not None:
            return val
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    # -- unit propagation (two watched literals) ----------------------------

    def _propagate(self) -> list[int] | None:
        """Propagate the queue; return a conflicting clause or ``None``."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            falsified = -lit
            watching = self.watches[falsified]
            kept: list[int] = []
            i = 0
            while i < len(watching):
                ci = watching[i]
                i += 1
                lits = self.clauses[ci]
                # Normalize so the falsified watch sits at position 1.
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                if self._value(lits[0]) is True:
                    kept.append(ci)
                    continue
                # Look for a new literal to watch.
                for j in range(2, len(lits)):
                    if self._value(lits[j]) is not False:
                        lits[1], lits[j] = lits[j], lits[1]
                        self.watches[lits[1]].append(ci)
                        break
                else:
                    kept.append(ci)
                    if not self._enqueue(lits[0], ci):
                        kept.extend(watching[i:])
                        del watching[:]
                        watching.extend(kept)
                        return lits
                    continue
            del watching[:]
            watching.extend(kept)
        return None

    # -- conflict analysis (1-UIP) ------------------------------------------

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """Learn a 1-UIP clause from *conflict*; return (clause, backjump)."""
        current = len(self.trail_lim)
        seen: set[int] = set()
        learnt: list[int] = []
        counter = 0
        lits = conflict
        idx = len(self.trail) - 1
        uip = 0
        while True:
            for lit in lits:
                var = abs(lit)
                if var in seen or self.level.get(var, 0) == 0:
                    continue
                seen.add(var)
                if self.level[var] == current:
                    counter += 1
                else:
                    learnt.append(lit)
            while abs(self.trail[idx]) not in seen:
                idx -= 1
            uip = self.trail[idx]
            var = abs(uip)
            idx -= 1
            counter -= 1
            if counter == 0:
                break
            reason = self.reason[var]
            assert reason is not None
            lits = [lit for lit in self.clauses[reason] if abs(lit) != var]
        learnt_clause = [-uip] + learnt
        if len(learnt_clause) == 1:
            return learnt_clause, 0
        back = max(self.level[abs(lit)] for lit in learnt)
        return learnt_clause, back

    def _backjump(self, target_level: int) -> None:
        limit = self.trail_lim[target_level]
        for lit in self.trail[limit:]:
            var = abs(lit)
            del self.assign[var], self.level[var], self.reason[var]
        del self.trail[limit:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # -- the search loop ----------------------------------------------------

    def _all_clauses_satisfied(self) -> bool:
        return all(
            any(self._value(lit) is True for lit in lits) for lits in self.clauses
        )

    def solve(self) -> dict[int, bool] | None:
        if not self.ok:
            return None
        while True:
            conflict = self._propagate()
            if conflict is not None:
                if not self.trail_lim:
                    return None
                learnt, back = self._analyze(conflict)
                self._backjump(back)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        return None
                else:
                    # Position a literal of the backjump level as the
                    # second watch so the clause wakes up correctly.
                    for j in range(1, len(learnt)):
                        if self.level.get(abs(learnt[j]), 0) == back:
                            learnt[1], learnt[j] = learnt[j], learnt[1]
                            break
                    ci = self._attach(learnt)
                    self._enqueue(learnt[0], ci)
                continue
            if self._all_clauses_satisfied():
                return dict(self.assign)
            decision = next(
                (v for v in self.variables if v not in self.assign), None
            )
            if decision is None:
                return dict(self.assign)
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, None)


def dpll_solve(cnf: CNF) -> dict[int, bool] | None:
    """A satisfying (partial) assignment, or ``None`` if unsatisfiable.

    Variables that occur in no clause are left unassigned, and the search
    stops as soon as every clause is satisfied — matching the historical
    DPLL behaviour that callers (and tests) rely on.
    """
    return _CDCL(cnf.clauses).solve()


def dpll_sat(cnf: CNF) -> bool:
    """Is *cnf* satisfiable?"""
    return dpll_solve(cnf) is not None


# -- exact model counting (#SAT) ---------------------------------------------


def _reduce(clauses: frozenset[Clause], lit: int) -> frozenset[Clause] | None:
    """Assign *lit* true; ``None`` signals an empty (conflicting) clause."""
    out: set[Clause] = set()
    for clause in clauses:
        if lit in clause:
            continue
        if -lit in clause:
            reduced = clause - {-lit}
            if not reduced:
                return None
            out.add(reduced)
        else:
            out.add(clause)
    return frozenset(out)


def _clause_vars(clauses: Iterable[Clause]) -> set[int]:
    return {abs(lit) for clause in clauses for lit in clause}


def _bcp(
    clauses: frozenset[Clause],
) -> tuple[frozenset[Clause] | None, list[int]]:
    """Exhaustive unit propagation: (residual or ``None`` on conflict,
    the literals forced, in propagation order)."""
    forced: list[int] = []
    current = clauses
    while True:
        unit = next((c for c in current if len(c) == 1), None)
        if unit is None:
            return current, forced
        lit = next(iter(unit))
        reduced = _reduce(current, lit)
        if reduced is None:
            return None, forced
        forced.append(lit)
        current = reduced


def _components(clauses: frozenset[Clause]) -> list[frozenset[Clause]]:
    """Partition into variable-disjoint connected components."""
    by_var: dict[int, list[Clause]] = defaultdict(list)
    for clause in clauses:
        for lit in clause:
            by_var[abs(lit)].append(clause)
    unvisited = set(clauses)
    components: list[frozenset[Clause]] = []
    while unvisited:
        seed = next(iter(unvisited))
        frontier = [seed]
        unvisited.discard(seed)
        component = {seed}
        while frontier:
            clause = frontier.pop()
            for lit in clause:
                for other in by_var[abs(lit)]:
                    if other in unvisited:
                        unvisited.discard(other)
                        component.add(other)
                        frontier.append(other)
        components.append(frozenset(component))
    return components


def _count(clauses: frozenset[Clause], memo: dict) -> int:
    """Models of *clauses* over exactly the variables occurring in them."""
    if not clauses:
        return 1
    if frozenset() in clauses:
        return 0
    cached = memo.get(clauses)
    if cached is not None:
        return cached
    n_before = len(_clause_vars(clauses))
    residual, forced = _bcp(clauses)
    if residual is None:
        memo[clauses] = 0
        return 0
    n_forced = len(forced)
    if not residual:
        # Everything either forced (factor 1) or freed (factor 2).
        result = 1 << (n_before - n_forced)
        memo[clauses] = result
        return result
    residual_vars = _clause_vars(residual)
    freed = n_before - n_forced - len(residual_vars)
    parts = _components(residual)
    if n_forced or freed or len(parts) > 1:
        result = 1 << freed
        for part in parts:
            result *= _count(part, memo)
    else:
        # One connected, unit-free component: branch on a frequent var.
        occurrences: dict[int, int] = defaultdict(int)
        for clause in residual:
            for lit in clause:
                occurrences[abs(lit)] += 1
        var = max(sorted(occurrences), key=occurrences.__getitem__)
        result = 0
        for lit in (var, -var):
            branch = _reduce(residual, lit)
            if branch is None:
                continue
            branch_vars = _clause_vars(branch)
            gap = len(residual_vars) - 1 - len(branch_vars)
            result += _count(branch, memo) << gap
    memo[clauses] = result
    return result


def count_models(cnf: CNF) -> int:
    """The exact number of total assignments over ``1..n_vars`` satisfying
    *cnf* — #SAT by unit propagation, component decomposition and caching.

    Agrees with brute force over :func:`repro.sat.cnf.all_assignments`
    (property-tested) but runs in time governed by the formula's
    component structure rather than ``2^n_vars``.
    """
    clauses = frozenset(cnf.clauses)
    constrained = _clause_vars(clauses)
    free = cnf.n_vars - len(constrained)
    return _count(clauses, {}) << free
