"""A baseline DPLL SAT solver — the independent comparator for the
normalization-based satisfiability backends.

Classic Davis–Putnam–Logemann–Loveland with unit propagation and pure
literal elimination.  Used by tests (agreement with normalization SAT) and
by the hardness benchmark (Section 6's claim is that existential queries
over normal forms *cannot avoid* exponential behaviour in the worst case;
DPLL provides the conventional-solver scaling for comparison).
"""

from __future__ import annotations

from repro.sat.cnf import CNF, Clause

__all__ = ["dpll_sat", "dpll_solve"]


def _simplify(clauses: list[Clause], lit: int) -> list[Clause] | None:
    """Assign *lit* true: drop satisfied clauses, strip falsified literals.
    Returns ``None`` when an empty clause (conflict) appears."""
    out: list[Clause] = []
    for clause in clauses:
        if lit in clause:
            continue
        if -lit in clause:
            reduced = clause - {-lit}
            if not reduced:
                return None
            out.append(reduced)
        else:
            out.append(clause)
    return out


def _solve(clauses: list[Clause], assignment: dict[int, bool]) -> dict[int, bool] | None:
    while True:
        if not clauses:
            return assignment
        # Unit propagation.
        unit = next((next(iter(c)) for c in clauses if len(c) == 1), None)
        if unit is not None:
            assignment = {**assignment, abs(unit): unit > 0}
            simplified = _simplify(clauses, unit)
            if simplified is None:
                return None
            clauses = simplified
            continue
        # Pure literal elimination.
        polarity: dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                var = abs(lit)
                sign = 1 if lit > 0 else -1
                polarity[var] = sign if polarity.get(var, sign) == sign else 0
        pure = next((v * s for v, s in polarity.items() if s != 0), None)
        if pure is not None:
            assignment = {**assignment, abs(pure): pure > 0}
            simplified = _simplify(clauses, pure)
            if simplified is None:
                return None
            clauses = simplified
            continue
        break
    # Branch on the first literal of the first clause.
    lit = next(iter(clauses[0]))
    for choice in (lit, -lit):
        simplified = _simplify(clauses, choice)
        if simplified is not None:
            result = _solve(simplified, {**assignment, abs(choice): choice > 0})
            if result is not None:
                return result
    return None


def dpll_solve(cnf: CNF) -> dict[int, bool] | None:
    """A satisfying (partial) assignment, or ``None`` if unsatisfiable."""
    return _solve(list(cnf.clauses), {})


def dpll_sat(cnf: CNF) -> bool:
    """Is *cnf* satisfiable?"""
    return dpll_solve(cnf) is not None
