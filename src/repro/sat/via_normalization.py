"""Satisfiability as an existential query over normal forms (Section 6).

``psi`` is satisfiable iff
``exists(fd_check)(normalize(encode(psi)))`` is true: normalization
enumerates one-literal-per-clause choices, and the functional dependency
``var -> polarity`` holds exactly of the consistent ones.

Backends:

* :func:`sat_eager` — materialize the full normal form first (worst-case
  exponential space, the paper's baseline reading);
* :func:`sat_lazy` — stream the choices with early exit (Section 7);
* :func:`sat_witness` — also decode a satisfying assignment.

All must agree with :func:`repro.sat.dpll.dpll_sat`.
"""

from __future__ import annotations

from repro.core.existential import exists_query
from repro.core.lazy import find_first
from repro.sat.cnf import (
    CNF,
    decode_choice,
    encode_cnf,
    encoded_type,
    satisfies_fd,
)

__all__ = ["sat_eager", "sat_lazy", "sat_witness"]


def sat_eager(cnf: CNF) -> bool:
    """Satisfiability via the fully materialized normal form."""
    return exists_query(
        satisfies_fd, encode_cnf(cnf), encoded_type(), backend="eager"
    )


def sat_lazy(cnf: CNF) -> bool:
    """Satisfiability via lazy (stream) normalization with early exit."""
    return exists_query(
        satisfies_fd, encode_cnf(cnf), encoded_type(), backend="lazy"
    )


def sat_witness(cnf: CNF) -> dict[int, bool] | None:
    """A satisfying partial assignment extracted from the first consistent
    choice, or ``None`` when unsatisfiable."""
    choice = find_first(satisfies_fd, encode_cnf(cnf))
    if choice is None:
        return None
    return decode_choice(choice)
