"""Knowledge compilation: tracing exhaustive DPLL into a d-DNNF circuit.

Running the DPLL search to exhaustion — unit propagation, connected
component decomposition, caching on residual formulas — and *recording*
the search as a circuit instead of discarding it yields a d-DNNF
(Darwiche's deterministic decomposable negation normal form):

* **decomposable** — the children of every AND node mention disjoint
  variables (forced literals vs. residual components, component vs.
  component);
* **deterministic** — the two children of every OR node disagree on the
  node's decision variable, so no model is represented twice.

On that form the queries the symbolic backend needs are linear in the
circuit, not exponential in the variables: :meth:`DDNNF.model_count` is
one bottom-up pass (smoothing is applied arithmetically — a branch that
drops ``g`` variables contributes ``2^g`` models per represented model,
exactly what materializing smoothing gates would count),
:meth:`DDNNF.satisfiable` is constant (compilation already reduced
unsatisfiable formulas to the FALSE node), and :meth:`DDNNF.iter_models`
enumerates models lazily so existential consumers stop at the first.

Component caching makes the tight-family encodings (many independent
or-sites) compile in linear time: each site's sub-formula is compiled
once and shared.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.sat.cnf import CNF, Clause
from repro.sat.dpll import _bcp, _components, _reduce

__all__ = [
    "DDNNF",
    "DNode",
    "DTrue",
    "DFalse",
    "DLit",
    "DAnd",
    "DOr",
    "compile_ddnnf",
]


class DNode:
    """Base of the circuit node hierarchy; ``vars`` is the mentioned set."""

    __slots__ = ()
    vars: frozenset[int] = frozenset()


class DTrue(DNode):
    __slots__ = ()

    def __repr__(self) -> str:
        return "TRUE"


class DFalse(DNode):
    __slots__ = ()

    def __repr__(self) -> str:
        return "FALSE"


TRUE = DTrue()
FALSE = DFalse()


class DLit(DNode):
    __slots__ = ("lit", "vars")

    def __init__(self, lit: int) -> None:
        self.lit = lit
        self.vars = frozenset((abs(lit),))

    def __repr__(self) -> str:
        return f"L({self.lit})"


class DAnd(DNode):
    """Decomposable conjunction: children mention disjoint variables."""

    __slots__ = ("kids", "vars")

    def __init__(self, kids: tuple[DNode, ...]) -> None:
        self.kids = kids
        out: frozenset[int] = frozenset()
        for kid in kids:
            out |= kid.vars
        self.vars = out

    def __repr__(self) -> str:
        return "AND(" + ", ".join(map(repr, self.kids)) + ")"


class DOr(DNode):
    """Deterministic disjunction: branches disagree on ``var``."""

    __slots__ = ("var", "hi", "lo", "vars")

    def __init__(self, var: int, hi: DNode, lo: DNode) -> None:
        self.var = var
        self.hi = hi
        self.lo = lo
        self.vars = hi.vars | lo.vars | frozenset((var,))

    def __repr__(self) -> str:
        return f"OR({self.var}, {self.hi!r}, {self.lo!r})"


def _conj(kids: Iterable[DNode]) -> DNode:
    flat: list[DNode] = []
    for kid in kids:
        if isinstance(kid, DFalse):
            return FALSE
        if isinstance(kid, DTrue):
            continue
        if isinstance(kid, DAnd):
            flat.extend(kid.kids)
        else:
            flat.append(kid)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return DAnd(tuple(flat))


def _decision(var: int, hi: DNode, lo: DNode) -> DNode:
    if isinstance(hi, DFalse) and isinstance(lo, DFalse):
        return FALSE
    if isinstance(hi, DFalse):
        return _conj((DLit(-var), lo))
    if isinstance(lo, DFalse):
        return _conj((DLit(var), hi))
    return DOr(var, _conj((DLit(var), hi)), _conj((DLit(-var), lo)))


def _pick_var(clauses: frozenset[Clause]) -> int:
    occurrences: dict[int, int] = defaultdict(int)
    for clause in clauses:
        for lit in clause:
            occurrences[abs(lit)] += 1
    return max(sorted(occurrences), key=occurrences.__getitem__)


def compile_ddnnf(cnf: CNF) -> "DDNNF":
    """Compile *cnf* by tracing exhaustive DPLL with component caching.

    The memo table maps residual formulas to their compiled sub-circuits,
    so structurally repeated components (the tight family's independent
    or-sites) share one node.
    """
    memo: dict[frozenset[Clause], DNode] = {}

    def build(clauses: frozenset[Clause]) -> DNode:
        if not clauses:
            return TRUE
        if frozenset() in clauses:
            return FALSE
        cached = memo.get(clauses)
        if cached is not None:
            return cached
        residual, forced = _bcp(clauses)
        if residual is None:
            memo[clauses] = FALSE
            return FALSE
        kids: list[DNode] = [DLit(lit) for lit in forced]
        if residual:
            parts = _components(residual)
            if not forced and len(parts) == 1:
                var = _pick_var(residual)
                hi = build(_frozen(_reduce(residual, var)))
                lo = build(_frozen(_reduce(residual, -var)))
                node = _decision(var, hi, lo)
                memo[clauses] = node
                return node
            kids.extend(build(part) for part in parts)
        node = _conj(kids)
        memo[clauses] = node
        return node

    def _frozen(reduced: frozenset[Clause] | None) -> frozenset[Clause]:
        if reduced is None:
            return frozenset((frozenset(),))
        return reduced

    return DDNNF(build(frozenset(cnf.clauses)), cnf.n_vars)


class DDNNF:
    """A compiled circuit with its variable budget (``1..n_vars``)."""

    __slots__ = ("root", "n_vars", "fixed")

    def __init__(
        self, root: DNode, n_vars: int, fixed: frozenset[int] | None = None
    ) -> None:
        self.root = root
        self.n_vars = n_vars
        # Variables pinned by condition(); not free.
        self.fixed = frozenset() if fixed is None else fixed

    # -- queries (linear in the circuit) ------------------------------------

    def satisfiable(self) -> bool:
        """Constant time: compilation already decided it."""
        return not isinstance(self.root, DFalse)

    def model_count(self) -> int:
        """Exact #SAT over ``1..n_vars`` in one smoothed bottom-up pass."""
        counts: dict[int, int] = {}

        def count(node: DNode) -> int:
            key = id(node)
            cached = counts.get(key)
            if cached is not None:
                return cached
            if isinstance(node, DTrue):
                result = 1
            elif isinstance(node, DFalse):
                result = 0
            elif isinstance(node, DLit):
                result = 1
            elif isinstance(node, DAnd):
                result = 1
                for kid in node.kids:
                    result *= count(kid)
            else:
                assert isinstance(node, DOr)
                gap_hi = len(node.vars) - len(node.hi.vars)
                gap_lo = len(node.vars) - len(node.lo.vars)
                result = (count(node.hi) << gap_hi) + (count(node.lo) << gap_lo)
            counts[key] = result
            return result

        free = self.n_vars - len(self.root.vars) - len(self.fixed - self.root.vars)
        return count(self.root) << free

    def iter_models(self, partial: bool = False) -> Iterator[dict[int, bool]]:
        """Lazily enumerate models as ``{var: bool}`` dicts.

        With ``partial=True``, each yielded dict covers only the
        variables on its circuit path (unmentioned variables are free) —
        the form the symbolic decoder consumes, and the one that keeps
        the first model O(circuit depth).  With ``partial=False`` every
        free variable (conditioned ones excepted) is expanded both ways,
        so the dicts are total over ``1..n_vars`` and exactly
        :meth:`model_count` of them are yielded.
        """

        def gen(node: DNode) -> Iterator[dict[int, bool]]:
            if isinstance(node, DTrue):
                yield {}
            elif isinstance(node, DFalse):
                return
            elif isinstance(node, DLit):
                yield {abs(node.lit): node.lit > 0}
            elif isinstance(node, DAnd):
                yield from gen_conj(node.kids, 0)
            else:
                assert isinstance(node, DOr)
                yield from gen(node.hi)
                yield from gen(node.lo)

        def gen_conj(
            kids: tuple[DNode, ...], i: int
        ) -> Iterator[dict[int, bool]]:
            if i == len(kids):
                yield {}
                return
            for head in gen(kids[i]):
                for tail in gen_conj(kids, i + 1):
                    yield {**head, **tail}

        if partial:
            return gen(self.root)

        def total() -> Iterator[dict[int, bool]]:
            expandable = [
                v for v in range(1, self.n_vars + 1) if v not in self.fixed
            ]
            for model in gen(self.root):
                gaps = [v for v in expandable if v not in model]
                for mask in range(1 << len(gaps)):
                    filled = dict(model)
                    for j, v in enumerate(gaps):
                        filled[v] = bool((mask >> j) & 1)
                    yield filled

        return total()

    def condition(self, lits: Iterable[int]) -> "DDNNF":
        """The circuit with each literal in *lits* assumed true.

        One memoized pass; the result is again a d-DNNF whose counts and
        models range over the remaining variables.
        """
        assignment = {abs(lit): lit > 0 for lit in lits}
        memo: dict[int, DNode] = {}

        def walk(node: DNode) -> DNode:
            key = id(node)
            cached = memo.get(key)
            if cached is not None:
                return cached
            if isinstance(node, DLit):
                pinned = assignment.get(abs(node.lit))
                if pinned is None:
                    result: DNode = node
                else:
                    result = TRUE if pinned == (node.lit > 0) else FALSE
            elif isinstance(node, DAnd):
                result = _conj(walk(kid) for kid in node.kids)
            elif isinstance(node, DOr):
                hi, lo = walk(node.hi), walk(node.lo)
                if isinstance(hi, DFalse):
                    result = lo
                elif isinstance(lo, DFalse):
                    result = hi
                else:
                    result = DOr(node.var, hi, lo)
            else:
                result = node
            memo[key] = result
            return result

        return DDNNF(
            walk(self.root), self.n_vars, self.fixed | frozenset(assignment)
        )

    # -- structural checks (used by the property tests) ---------------------

    def is_decomposable(self) -> bool:
        """Do all AND children mention pairwise-disjoint variables?"""
        ok = True
        seen: set[int] = set()

        def walk(node: DNode) -> None:
            nonlocal ok
            if not ok or id(node) in seen:
                return
            seen.add(id(node))
            if isinstance(node, DAnd):
                claimed: set[int] = set()
                for kid in node.kids:
                    if claimed & kid.vars:
                        ok = False
                        return
                    claimed |= kid.vars
                    walk(kid)
            elif isinstance(node, DOr):
                walk(node.hi)
                walk(node.lo)

        walk(self.root)
        return ok

    def node_count(self) -> int:
        seen: set[int] = set()

        def walk(node: DNode) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            if isinstance(node, DAnd):
                for kid in node.kids:
                    walk(kid)
            elif isinstance(node, DOr):
                walk(node.hi)
                walk(node.lo)

        walk(self.root)
        return len(seen)
