"""Exception hierarchy for the or-NRA reproduction.

Every error raised by the library derives from :class:`OrNRAError`, so
callers can catch a single type.  The subclasses separate the phases in
which things can go wrong:

* :class:`OrNRATypeError` — a morphism was applied to a value of the wrong
  type, two types failed to unify, or a type expression was malformed.
* :class:`OrNRAValueError` — a value literal is malformed (e.g. a set whose
  elements have different types).
* :class:`OrNRAParseError` — the surface-syntax parser rejected its input.
* :class:`NormalizationError` — the normalization engine was driven into an
  inconsistent state (a rewrite applied at a position that is not a redex).
* :class:`EligibilityError` — ``preserve(f)`` was requested for a morphism
  outside the syntactic class of Theorem 5.1 / Proposition 5.2.

The robustness layer (deadlines, admission control, degradation —
``repro.engine.deadline`` and ``repro.serve``) adds three operational
errors, all still under :class:`OrNRAError` so a catch-all client keeps
working:

* :class:`DeadlineExceeded` — a request's deadline expired at a
  cooperative checkpoint inside evaluation (also a ``TimeoutError``).
* :class:`Overloaded` — admission control shed the request; carries a
  ``retry_after`` hint in seconds.
* :class:`CostBudgetExceeded` — the static
  :class:`~repro.engine.cost_model.ShapeEstimate` of the input exceeds
  the configured per-request budget, so evaluation was refused before it
  started.
"""

from __future__ import annotations


class OrNRAError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class OrNRATypeError(OrNRAError, TypeError):
    """A type mismatch in a morphism application or type operation."""


class OrNRAValueError(OrNRAError, ValueError):
    """A malformed complex-object value."""


class OrNRAParseError(OrNRAError, ValueError):
    """The surface-syntax parser rejected its input."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class NormalizationError(OrNRAError, RuntimeError):
    """The normalization engine reached an inconsistent state."""


class EligibilityError(OrNRAError, ValueError):
    """A morphism is outside the class covered by the losslessness theorem."""


class DeadlineExceeded(OrNRAError, TimeoutError):
    """A request's deadline expired at a cooperative evaluation checkpoint."""


class Overloaded(OrNRAError, RuntimeError):
    """Admission control shed this request (bounded queue is full).

    ``retry_after`` is the server's hint, in seconds, for when capacity
    is likely to be available again.
    """

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        self.retry_after = retry_after
        super().__init__(f"{message} (retry after {retry_after:.3f}s)")


class CostBudgetExceeded(OrNRAError, ValueError):
    """A request's static cost estimate exceeds the configured budget.

    Raised *before* any evaluation: the admission layer's cost guard
    compares the input's :class:`~repro.engine.cost_model.ShapeEstimate`
    against the per-request budget and refuses inputs that would blow
    past it, so a pathological input never occupies a worker.
    """

    def __init__(self, message: str, estimated: int, budget: int) -> None:
        self.estimated = estimated
        self.budget = budget
        super().__init__(f"{message} (estimated {estimated} > budget {budget})")
