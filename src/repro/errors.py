"""Exception hierarchy for the or-NRA reproduction.

Every error raised by the library derives from :class:`OrNRAError`, so
callers can catch a single type.  The subclasses separate the phases in
which things can go wrong:

* :class:`OrNRATypeError` — a morphism was applied to a value of the wrong
  type, two types failed to unify, or a type expression was malformed.
* :class:`OrNRAValueError` — a value literal is malformed (e.g. a set whose
  elements have different types).
* :class:`OrNRAParseError` — the surface-syntax parser rejected its input.
* :class:`NormalizationError` — the normalization engine was driven into an
  inconsistent state (a rewrite applied at a position that is not a redex).
* :class:`EligibilityError` — ``preserve(f)`` was requested for a morphism
  outside the syntactic class of Theorem 5.1 / Proposition 5.2.
"""

from __future__ import annotations


class OrNRAError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class OrNRATypeError(OrNRAError, TypeError):
    """A type mismatch in a morphism application or type operation."""


class OrNRAValueError(OrNRAError, ValueError):
    """A malformed complex-object value."""


class OrNRAParseError(OrNRAError, ValueError):
    """The surface-syntax parser rejected its input."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class NormalizationError(OrNRAError, RuntimeError):
    """The normalization engine reached an inconsistent state."""


class EligibilityError(OrNRAError, ValueError):
    """A morphism is outside the class covered by the losslessness theorem."""
