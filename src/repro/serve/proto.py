"""The serving wire protocol, shared by the stdio and network front-ends.

Both ``python -m repro.serve`` (stdio JSON-lines) and
:class:`repro.serve.net.NetServer` (TCP/HTTP) speak the same frames:

Request::

    {"id": 1, "program": "normalize", "value": {"orset": [...]}}
    {"id": 2, "program": "normalize", "values": [{...}, {...}]}
    {"id": 3, "op": "count", "program": "normalize", "value": {...}}
    {"id": 4, "op": "stats"}

Response::

    {"id": 1, "result": {...}}
    {"id": 2, "results": [{...}, {...}]}
    {"id": 3, "result": {"count": 4, "approximate": false}}
    {"id": 4, "stats": {...}}
    {"id": 1, "error": "...", "code": "overloaded", "retry_after": 0.05}

Every failure is a *structured* error frame: the ``code`` names which
admission or evaluation guard fired (``overloaded`` / ``deadline`` /
``cost`` / ``closed`` / ``malformed`` / ``oversized`` / ``error``), and
overload frames carry the ``retry_after`` hint clients should back off
by.  :func:`error_frame` is the single exception→frame mapping;
:data:`HTTP_STATUS` maps the same codes onto HTTP status lines for the
network front-end's ``POST /run`` path.
"""

from __future__ import annotations

import json

from repro.errors import CostBudgetExceeded, DeadlineExceeded, Overloaded, OrNRAError
from repro.serve.server import ServerClosed

__all__ = ["DEFAULT_MAX_LINE", "error_frame", "HTTP_STATUS"]

#: Default cap on one request line (1 MiB of text).
DEFAULT_MAX_LINE = 1 << 20

#: Error-frame ``code`` → HTTP status for the network front-end.
HTTP_STATUS = {
    "malformed": 400,
    "cost": 413,
    "overloaded": 429,
    "error": 500,
    "closed": 503,
    "deadline": 504,
    "oversized": 431,
}


def error_frame(exc: BaseException) -> dict:
    """The structured error payload for one failed request."""
    if isinstance(exc, Overloaded):
        return {
            "error": str(exc),
            "code": "overloaded",
            "retry_after": exc.retry_after,
        }
    if isinstance(exc, DeadlineExceeded):
        return {"error": str(exc), "code": "deadline"}
    if isinstance(exc, CostBudgetExceeded):
        return {"error": str(exc), "code": "cost"}
    if isinstance(exc, ServerClosed):
        return {"error": str(exc), "code": "closed"}
    if isinstance(exc, (json.JSONDecodeError, KeyError, OrNRAError)):
        return {"error": str(exc), "code": "malformed"}
    return {"error": str(exc), "code": "error"}
