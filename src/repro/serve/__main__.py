"""``python -m repro.serve`` — a JSON-lines stdio server over AsyncEngine.

Protocol: one JSON object per input line, one JSON object per output
line (order may interleave; match on ``id``).

Request::

    {"id": 1, "program": "normalize", "value": {"orset": [...]}}
    {"id": 2, "program": "normalize", "values": [{...}, {...}]}

Response::

    {"id": 1, "result": {...}}
    {"id": 2, "results": [{...}, {...}]}
    {"id": 1, "error": "..."}

Requests on different lines are admitted concurrently, so consecutive
lines land in the same micro-batch and duplicate inputs are evaluated
once — the whole point of the front-end.  EOF closes the server cleanly
(in-flight requests are served first) and prints the batching stats to
stderr.

Flags: ``--backend`` (default ``auto``), ``--window`` (batching window,
seconds), ``--max-batch``, ``--quiet`` (suppress the stats line).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.serve.server import AsyncEngine

__all__ = ["main", "amain"]


async def _handle(engine: AsyncEngine, line: str, stdout) -> None:
    request_id = None
    try:
        request = json.loads(line)
        request_id = request.get("id")
        program = request["program"]
        if "values" in request:
            payload = {"results": await engine.run_many(program, request["values"])}
        else:
            payload = {"result": await engine.run_json(program, request["value"])}
    except Exception as exc:  # noqa: BLE001 — every request error goes to the client
        payload = {"error": str(exc)}
    if request_id is not None:
        payload["id"] = request_id
    print(json.dumps(payload, sort_keys=True), file=stdout, flush=True)


async def amain(
    argv: list[str] | None = None, stdin=None, stdout=None, stderr=None
) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--backend", default="auto")
    parser.add_argument("--window", type=float, default=0.002)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr

    engine = AsyncEngine(
        backend=args.backend, batch_window=args.window, max_batch=args.max_batch
    )
    loop = asyncio.get_running_loop()
    pending: set[asyncio.Task] = set()
    async with engine:
        while True:
            line = await loop.run_in_executor(None, stdin.readline)
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.ensure_future(_handle(engine, line, stdout))
            pending.add(task)
            task.add_done_callback(pending.discard)
            # Yield once so same-burst lines land in one batching window.
            await asyncio.sleep(0)
        if pending:
            await asyncio.gather(*pending)
    if not args.quiet:
        print(f"serve stats: {json.dumps(engine.stats(), sort_keys=True)}", file=stderr)


def main(argv: list[str] | None = None) -> None:
    """Synchronous entry point (console and ``-m`` execution)."""
    asyncio.run(amain(argv))


if __name__ == "__main__":
    main()
