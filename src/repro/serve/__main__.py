"""``python -m repro.serve`` — a JSON-lines stdio server over AsyncEngine.

Protocol: one JSON object per input line, one JSON object per output
line (order may interleave; match on ``id``).

Request::

    {"id": 1, "program": "normalize", "value": {"orset": [...]}}
    {"id": 2, "program": "normalize", "values": [{...}, {...}]}

Response::

    {"id": 1, "result": {...}}
    {"id": 2, "results": [{...}, {...}]}
    {"id": 1, "error": "...", "code": "malformed"}

Requests on different lines are admitted concurrently, so consecutive
lines land in the same micro-batch and duplicate inputs are evaluated
once — the whole point of the front-end.  EOF closes the server cleanly
(in-flight requests are served first) and prints the batching stats to
stderr.

The framing layer is hardened against hostile or broken peers: input
lines longer than ``--max-line`` are rejected with a structured error
frame (``"code": "oversized"``) and skipped to the next newline instead
of buffering without bound; malformed JSON and malformed value
encodings answer ``"code": "malformed"``; shed requests answer
``"code": "overloaded"`` with a ``retry_after`` hint; expired deadlines
answer ``"code": "deadline"``; over-budget inputs answer
``"code": "cost"``.  ``--idle-timeout`` closes the server when no line
arrives for that many seconds — a dead peer cannot hold the process
open forever.

Flags: ``--backend`` (default ``auto``), ``--window`` (batching window,
seconds), ``--max-batch``, ``--timeout`` (per-request deadline,
seconds), ``--max-pending``, ``--cost-budget``, ``--max-line`` (bytes),
``--idle-timeout`` (seconds), ``--quiet`` (suppress the stats line).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import threading

from repro.serve.proto import DEFAULT_MAX_LINE, error_frame as _error_frame
from repro.serve.server import AsyncEngine

__all__ = ["main", "amain"]

#: Sentinel for "the peer sent a line longer than --max-line".
_OVERSIZED = object()


async def _handle(engine: AsyncEngine, line: str, stdout) -> None:
    from repro.engine import faults

    request_id = None
    try:
        line = faults.fire("serve.frame", line)
        request = json.loads(line)
        request_id = request.get("id")
        program = request["program"]
        if "values" in request:
            payload = {"results": await engine.run_many(program, request["values"])}
        else:
            payload = {"result": await engine.run_json(program, request["value"])}
    except Exception as exc:  # noqa: BLE001 — every request error goes to the client
        payload = _error_frame(exc)
    if request_id is not None:
        payload["id"] = request_id
    print(json.dumps(payload, sort_keys=True), file=stdout, flush=True)


def _read_frame(stdin, max_line: int):
    """One line from *stdin*, bounded: '' on EOF, _OVERSIZED past the cap.

    Runs on a worker thread (blocking reads must not stall the loop).
    An oversized line is consumed up to its newline so the *next* frame
    starts clean — one hostile line must not poison the rest of the
    stream.
    """
    line = stdin.readline(max_line + 1)
    if not line:
        return ""
    if len(line) > max_line and not line.endswith("\n"):
        while True:
            rest = stdin.readline(max_line)
            if not rest or rest.endswith("\n"):
                return _OVERSIZED
    return line


def _pump_frames(stdin, max_line: int, loop, frames: asyncio.Queue) -> None:
    """Daemon reader thread: feed frames from *stdin* into *frames*.

    A daemon thread rather than the loop's executor, so a peer that
    never closes stdin cannot pin the process open: blocked reads are
    simply abandoned at exit instead of joined.
    """
    while True:
        frame = _read_frame(stdin, max_line)
        try:
            loop.call_soon_threadsafe(frames.put_nowait, frame)
        except RuntimeError:  # loop already closed (idle-timeout exit)
            return
        if frame == "":
            return


async def amain(
    argv: list[str] | None = None, stdin=None, stdout=None, stderr=None
) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--backend", default="auto")
    parser.add_argument("--window", type=float, default=0.002)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--max-pending", type=int, default=1024)
    parser.add_argument("--cost-budget", type=int, default=None)
    parser.add_argument("--max-line", type=int, default=DEFAULT_MAX_LINE)
    parser.add_argument("--idle-timeout", type=float, default=None)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr

    engine = AsyncEngine(
        backend=args.backend,
        batch_window=args.window,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        default_timeout=args.timeout,
        cost_budget=args.cost_budget,
    )
    loop = asyncio.get_running_loop()
    pending: set[asyncio.Task] = set()
    frames: asyncio.Queue = asyncio.Queue()
    threading.Thread(
        target=_pump_frames,
        args=(stdin, args.max_line, loop, frames),
        name="serve-stdin",
        daemon=True,
    ).start()
    async with engine:
        while True:
            if args.idle_timeout is None:
                line = await frames.get()
            else:
                try:
                    line = await asyncio.wait_for(frames.get(), args.idle_timeout)
                except asyncio.TimeoutError:
                    if not args.quiet:
                        print(
                            f"idle for {args.idle_timeout}s, closing", file=stderr
                        )
                    break
            if not line:
                break
            if line is _OVERSIZED:
                frame = {
                    "error": f"request line over {args.max_line} characters",
                    "code": "oversized",
                }
                print(json.dumps(frame, sort_keys=True), file=stdout, flush=True)
                continue
            if not line.strip():
                continue
            task = asyncio.ensure_future(_handle(engine, line, stdout))
            pending.add(task)
            task.add_done_callback(pending.discard)
            # Yield once so same-burst lines land in one batching window.
            await asyncio.sleep(0)
        if pending:
            await asyncio.gather(*pending)
    if not args.quiet:
        print(f"serve stats: {json.dumps(engine.stats(), sort_keys=True)}", file=stderr)


def main(argv: list[str] | None = None) -> None:
    """Synchronous entry point (console and ``-m`` execution)."""
    asyncio.run(amain(argv))


if __name__ == "__main__":
    main()
