"""The serving layer: an asyncio front-end over the batched engine.

``repro.engine`` turned the paper's evaluator into a library;
``repro.serve`` turns the library into a *service*.  The package has two
faces:

* :class:`AsyncEngine` (:mod:`repro.serve.server`) — the embeddable
  front-end: admit JSON queries concurrently from many clients,
  micro-batch them over a configurable window, deduplicate structurally
  equal inputs, and fan each batch into
  :func:`repro.io.run_json_many` off the event loop;
* ``python -m repro.serve`` (:mod:`repro.serve.__main__`) — a JSON-lines
  stdio server speaking the same protocol, for driving the service from
  another process or a shell pipe.

See ``docs/ARCHITECTURE.md`` ("The serving layer") for how admission,
batching, the cost model and the process backend compose.
"""

from repro.serve.server import AsyncEngine, ServerClosed

__all__ = ["AsyncEngine", "ServerClosed"]
