"""The serving layer: an asyncio front-end over the batched engine.

``repro.engine`` turned the paper's evaluator into a library;
``repro.serve`` turns the library into a *service*.  The package has two
faces:

* :class:`AsyncEngine` (:mod:`repro.serve.server`) — the embeddable
  front-end: admit JSON queries concurrently from many clients,
  micro-batch them over a configurable window, deduplicate structurally
  equal inputs, and fan each batch into
  :func:`repro.io.run_json_many` off the event loop;
* ``python -m repro.serve`` (:mod:`repro.serve.__main__`) — a JSON-lines
  stdio server speaking the same protocol, for driving the service from
  another process or a shell pipe;
* :class:`NetServer` (:mod:`repro.serve.net`, also
  ``python -m repro.serve.net``) — the TCP/HTTP front-end: NDJSON frames
  and a minimal ``POST /run`` / ``GET /stats`` HTTP path on one port,
  per-client token-bucket rate limits, and a multi-process worker mode
  routed by program digest;
* :mod:`repro.serve.metrics` — the latency observability layer:
  ring-buffer histograms (:class:`RingHistogram`) behind
  :class:`ServerMetrics`, recording admission/queue/execute/total
  durations per request, plus the :class:`TokenBucket` rate limiter.

See ``docs/ARCHITECTURE.md`` ("The serving layer" and "Network serving
& observability") for how admission, batching, the cost model and the
process backend compose.
"""

from repro.serve.metrics import RingHistogram, ServerMetrics, TokenBucket
from repro.serve.net import NetServer, RateLimiter
from repro.serve.server import AsyncEngine, ServerClosed

__all__ = [
    "AsyncEngine",
    "NetServer",
    "RateLimiter",
    "RingHistogram",
    "ServerClosed",
    "ServerMetrics",
    "TokenBucket",
]
