"""Latency observability primitives: ring histograms and token buckets.

Serving "heavy traffic" is meaningless without latency visibility — a
throughput counter hides the tail that users actually feel.  This module
is the observability layer under :class:`repro.serve.AsyncEngine` and
the network front-end (:mod:`repro.serve.net`):

* :class:`RingHistogram` — a fixed-capacity ring buffer of duration
  samples over the **monotonic clock**.  Recording is O(1) (append into
  the ring, overwrite the oldest), so the hot path pays two clock reads
  and a list store per request; percentiles are computed on demand by
  sorting a snapshot of the window.  Percentiles use the *nearest-rank*
  definition — ``p50`` of ``1..100`` is exactly ``50`` — so the numbers
  are pinnable in tests.
* :class:`ServerMetrics` — one histogram per request phase
  (``admission``: the synchronous admission checks; ``queue``: admitted
  → dispatched; ``execute``: dispatched → resolved; ``total``: the
  whole request) plus a completion-timestamp ring that yields windowed
  throughput.  :meth:`ServerMetrics.snapshot` returns plain dicts built
  fresh on every call — mutating a snapshot can never corrupt the live
  counters.
* :class:`TokenBucket` — the standard rate limiter: *rate* tokens per
  second refill up to a *burst* cap; a denied admission reports how long
  until the next token, which the serving layer forwards as the
  ``retry_after`` hint on :class:`~repro.errors.Overloaded`.

Everything takes an injectable ``clock`` (defaulting to
:func:`time.monotonic`) so the tests drive refill and throughput math
with a fake clock instead of sleeping.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "percentile",
    "RingHistogram",
    "ServerMetrics",
    "TokenBucket",
    "PHASES",
]

#: The request phases one serving-layer observation decomposes into.
PHASES = ("admission", "queue", "execute", "total")


def percentile(samples: "list[float]", q: float) -> "float | None":
    """Nearest-rank percentile of *samples* (unsorted ok); None when empty.

    ``q`` is in percent: ``percentile(xs, 50)`` is the median sample.
    Single-sample windows answer that sample for every ``q``; empty
    windows answer ``None`` (there is no honest number to report).
    """
    if not samples:
        return None
    ordered = sorted(samples)
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q!r}")
    rank = -(-q * len(ordered) // 100)  # ceil(q/100 * n), integer math
    return ordered[int(rank) - 1]


class RingHistogram:
    """A bounded window of duration samples with on-demand percentiles.

    The ring keeps the most recent *capacity* samples — a serving process
    that has been up for a week reports the current tail, not a
    lifetime-diluted average — while ``count`` still tallies every sample
    ever recorded.  Thread-safe: the serving layer records from the event
    loop, but snapshots may be taken from anywhere (the REPL, a stats
    endpoint on another thread).
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("RingHistogram capacity must be positive")
        self.capacity = capacity
        self._ring: list[float] = []
        self._next = 0  # overwrite cursor once the ring is full
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one duration sample (seconds; monotonic-clock delta)."""
        with self._lock:
            if len(self._ring) < self.capacity:
                self._ring.append(seconds)
            else:
                self._ring[self._next] = seconds
                self._next = (self._next + 1) % self.capacity
            self._count += 1
            self._total += seconds

    @property
    def count(self) -> int:
        """Samples ever recorded (not just the ones still in the window)."""
        return self._count

    def window(self) -> "list[float]":
        """A copy of the samples currently in the ring (arbitrary order)."""
        with self._lock:
            return list(self._ring)

    def percentile(self, q: float) -> "float | None":
        return percentile(self.window(), q)

    def snapshot(self) -> dict:
        """A freshly-built summary dict: count/window/p50/p90/p99/mean/max.

        The dict (and everything in it) is new on every call; callers may
        mutate it freely without touching the live histogram.
        """
        with self._lock:
            samples = list(self._ring)
            count, total = self._count, self._total
        ordered = sorted(samples)
        return {
            "count": count,
            "window": len(ordered),
            "p50": percentile(ordered, 50),
            "p90": percentile(ordered, 90),
            "p99": percentile(ordered, 99),
            "mean": (sum(ordered) / len(ordered)) if ordered else None,
            "max": ordered[-1] if ordered else None,
            "total": total,
        }


class ServerMetrics:
    """Per-phase latency histograms plus windowed throughput.

    One :meth:`observe` per completed request records the four phase
    durations and stamps a completion time; :meth:`snapshot` renders the
    whole thing as plain nested dicts (fresh objects — snapshot isolation
    is part of the contract and is pinned by the tests).
    """

    def __init__(self, capacity: int = 2048, clock=time.monotonic) -> None:
        self.clock = clock
        self.histograms = {phase: RingHistogram(capacity) for phase in PHASES}
        self._completions = RingHistogram(capacity)  # completion *timestamps*
        self._started = clock()

    def observe(
        self,
        *,
        admission: "float | None" = None,
        queue: "float | None" = None,
        execute: "float | None" = None,
        total: "float | None" = None,
    ) -> None:
        """Record one request's phase durations (seconds; None = unknown)."""
        for phase, seconds in (
            ("admission", admission),
            ("queue", queue),
            ("execute", execute),
            ("total", total),
        ):
            if seconds is not None:
                self.histograms[phase].record(max(0.0, seconds))
        self._completions.record(self.clock())

    @property
    def completed(self) -> int:
        return self._completions.count

    def throughput(self) -> float:
        """Completed requests per second over the completion window.

        The window is the span between the oldest and newest completion
        timestamps still in the ring — i.e. recent, steady-state
        throughput, not a lifetime average that forgets idle gaps.
        """
        stamps = self._completions.window()
        if len(stamps) < 2:
            span = self.clock() - self._started
            return (len(stamps) / span) if span > 0 else 0.0
        span = max(stamps) - min(stamps)
        if span <= 0:
            return 0.0
        return (len(stamps) - 1) / span

    def snapshot(self) -> dict:
        """Fresh nested dicts: one per phase, plus throughput and totals."""
        out = {phase: hist.snapshot() for phase, hist in self.histograms.items()}
        out["throughput_rps"] = self.throughput()
        out["completed"] = self.completed
        return out


class TokenBucket:
    """A token-bucket rate limiter with an injectable monotonic clock.

    *rate* tokens per second refill continuously up to *burst*.  The
    bucket starts full, so a client's first *burst* requests always
    admit — rate limiting is about sustained pressure, not greeting
    every newcomer with a 429.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("TokenBucket rate must be positive")
        if burst < 1:
            raise ValueError("TokenBucket burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def admit(self, tokens: float = 1.0) -> float:
        """Try to take *tokens*; 0.0 on success, else seconds until retry.

        A non-zero return is the ``retry_after`` hint: how long until the
        bucket will have refilled enough for this admission to succeed.
        The denied request consumes nothing.
        """
        with self._lock:
            now = self.clock()
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token balance (after a refresh; diagnostics only)."""
        with self._lock:
            self._refill(self.clock())
            return self._tokens
