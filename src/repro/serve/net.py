"""The network serving front-end: TCP/HTTP over :class:`AsyncEngine`.

``python -m repro.serve`` speaks JSON-lines over stdio — one process,
one pipe.  This module is the *service* face the ROADMAP's serving item
asks for: a socket front-end many clients connect to concurrently, with
per-client rate limits, latency observability and a multi-process worker
mode.  One :class:`NetServer` speaks two protocols on one port:

* **NDJSON frames** — the same newline-delimited JSON protocol as the
  stdio server (see :mod:`repro.serve.proto`), plus ``{"op": "count"}``
  for world counts and ``{"op": "stats"}`` for the live stats snapshot.
  Frames on one connection are admitted concurrently, so a burst of
  lines lands in one micro-batch and duplicate inputs are deduplicated —
  the whole point of the front-end.
* **a minimal HTTP path** — ``POST /run`` and ``POST /count`` take the
  same request object as a frame (sans ``id``) as their JSON body;
  ``GET /stats`` answers the stats snapshot.  Structured error codes map
  onto status lines (429 for ``overloaded`` with a ``Retry-After``
  header, 504 for ``deadline``, 413 for ``cost``, ...).  One request per
  connection (``Connection: close``) — curl-ability, not a web server.

**Rate limits.**  With ``rate=`` set, each client (keyed by peer
address) gets a :class:`~repro.serve.metrics.TokenBucket`; a client over
its budget is shed with the same :class:`~repro.errors.Overloaded` →
``{"code": "overloaded", "retry_after": ...}`` path as engine
backpressure, *before* the request touches the admission queue.

**Worker mode.**  With ``workers=N`` the server becomes a router over
*N* worker processes, each running its own in-process ``NetServer`` (and
so its own engine, plan cache, parse memo and interner) on an ephemeral
port.  Frames are routed by :func:`repro.io.program_digest` of their
program text, so every request for one program lands on the same worker
and that worker's caches stay hot for it — cache affinity instead of
cache shredding.  ``{"op": "stats"}`` / ``GET /stats`` aggregate the
router's counters with every worker's snapshot.

Latency for every served request is recorded by the engine's metrics
layer (:mod:`repro.serve.metrics`): ``stats()["latency"]`` carries
p50/p90/p99 per phase plus windowed throughput, which the load harness
(``tools/loadgen.py``, ``benchmarks/bench_net_serve.py``) sweeps and the
REPL's ``serve`` command prints.

Use as an async context manager::

    async with NetServer() as server:
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        ...

or from a shell: ``python -m repro.serve.net --port 7707``.
"""

from __future__ import annotations

import asyncio
import json
import math
import sys
import time
from collections import OrderedDict

from repro.errors import OrNRAError, Overloaded
from repro.io import program_digest
from repro.serve.metrics import TokenBucket
from repro.serve.proto import DEFAULT_MAX_LINE, HTTP_STATUS, error_frame
from repro.serve.server import AsyncEngine, ServerClosed

__all__ = ["NetServer", "RateLimiter", "main", "amain"]

_HTTP_METHODS = {"GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH"}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class RateLimiter:
    """Per-client token buckets, LRU-bounded so clients can't leak memory.

    One bucket per client key (the network layer keys by peer address);
    buckets are created full on first sight and evicted least-recently-
    used past *max_clients* — an evicted-and-returning client starts
    with a fresh burst, which errs on the side of serving.
    """

    def __init__(
        self,
        rate: float,
        burst: "float | None" = None,
        clock=time.monotonic,
        max_clients: int = 1024,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        self.clock = clock
        self.max_clients = max(1, max_clients)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def admit(self, key: str) -> float:
        """0.0 if *key* may proceed, else seconds until it should retry."""
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self.clock)
            self._buckets[key] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(key)
        return bucket.admit()


class _WorkerClient:
    """The router's handle on one worker process: a multiplexed NDJSON pipe.

    Requests are tagged with router-side ids; one reader task resolves
    responses back to their waiting futures, so any number of in-flight
    requests share one connection (and arrive at the worker in one
    admission stream — the worker's micro-batcher sees them together).
    """

    def __init__(self, process, address) -> None:
        self.process = process
        self.address = address
        self.frames = 0
        self._pending: dict = {}
        self._next_id = 0
        self._write_lock: "asyncio.Lock | None" = None
        self._reader_task: "asyncio.Task | None" = None
        self._reader = None
        self._writer = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(*self.address)
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                data = json.loads(line)
                future = self._pending.pop(data.pop("id", None), None)
                if future is not None and not future.done():
                    future.set_result(data)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ServerClosed("worker connection lost"))
            self._pending.clear()

    async def request(self, frame: dict) -> dict:
        """Send one frame to the worker and await its response payload."""
        rid = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        payload = dict(frame)
        payload["id"] = rid
        blob = (json.dumps(payload, sort_keys=True) + "\n").encode()
        async with self._write_lock:
            self._writer.write(blob)
            await self._writer.drain()
        self.frames += 1
        return await future

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            self._writer.close()
        self.process.terminate()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.process.join, 5.0)


def _recv_address(conn, process, timeout: float = 60.0):
    """Block (on an executor thread) for a worker's reported address."""
    if conn.poll(timeout):
        return conn.recv()
    raise RuntimeError(
        f"worker pid={process.pid} did not report an address within {timeout}s"
    )


def _worker_main(conn, host: str, engine_kwargs: dict, max_line: int) -> None:
    """Entry point of one worker process (must be importable for spawn)."""
    try:
        asyncio.run(_worker_amain(conn, host, engine_kwargs, max_line))
    except KeyboardInterrupt:
        pass


async def _worker_amain(conn, host: str, engine_kwargs: dict, max_line: int) -> None:
    server = NetServer(host=host, port=0, max_line=max_line, **engine_kwargs)
    await server.start()
    conn.send(tuple(server.address))
    conn.close()
    try:
        # Serve until the router terminates us (daemon process).
        await asyncio.Event().wait()
    finally:
        await server.close()


class NetServer:
    """An asyncio TCP/HTTP server over :class:`AsyncEngine` (or a router
    over worker processes when ``workers > 0``).

    *engine* is an :class:`AsyncEngine` to serve (in-process mode only);
    omitted, one is built from ``**engine_kwargs`` (``backend``,
    ``batch_window``, ``max_pending``, ``cost_budget``, ...).  *rate* /
    *burst* arm the per-client token buckets (requests per second;
    ``None`` disables rate limiting).  *workers* > 0 switches to the
    multi-process router: ``**engine_kwargs`` then configure each
    worker's engine.  *port* 0 (the default) picks an ephemeral port —
    read :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        engine: "AsyncEngine | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        rate: "float | None" = None,
        burst: "float | None" = None,
        workers: int = 0,
        max_line: int = DEFAULT_MAX_LINE,
        mp_start: str = "spawn",
        **engine_kwargs,
    ) -> None:
        if workers and engine is not None:
            raise ValueError("worker mode builds per-worker engines; pass engine_kwargs")
        self.host = host
        self.port = port
        self.workers = max(0, workers)
        self.max_line = max_line
        self.mp_start = mp_start
        self.engine = None if self.workers else (engine or AsyncEngine(**engine_kwargs))
        self._engine_kwargs = engine_kwargs
        self._limiter = RateLimiter(rate, burst) if rate is not None else None
        self._server: "asyncio.AbstractServer | None" = None
        self._worker_clients: "list[_WorkerClient]" = []
        self._route_counts: "list[int]" = [0] * self.workers
        self.address: "tuple[str, int] | None" = None
        self._counters = {
            "connections": 0,
            "frames": 0,
            "http_requests": 0,
            "rate_limited": 0,
            "oversized": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "NetServer":
        if self._server is not None:
            return self
        if self.workers:
            await self._start_workers()
        else:
            await self.engine.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=self.max_line
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        return self

    async def _start_workers(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context(self.mp_start)
        loop = asyncio.get_running_loop()
        spawned = []
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, self.host, self._engine_kwargs, self.max_line),
                daemon=True,
            )
            process.start()
            child_conn.close()
            spawned.append((process, parent_conn))
        for process, conn in spawned:
            address = await loop.run_in_executor(None, _recv_address, conn, process)
            conn.close()
            client = _WorkerClient(process, address)
            await client.connect()
            self._worker_clients.append(client)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for client in self._worker_clients:
            await client.close()
        self._worker_clients = []
        if self.engine is not None:
            await self.engine.close()

    async def __aenter__(self) -> "NetServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- request processing ------------------------------------------------

    def _admit_client(self, key: str) -> None:
        if self._limiter is None:
            return
        retry_after = self._limiter.admit(key)
        if retry_after:
            self._counters["rate_limited"] += 1
            raise Overloaded(
                f"client {key} over its rate limit", retry_after=retry_after
            )

    async def _process(self, request) -> dict:
        """One parsed request object → one response payload (sans id)."""
        if not isinstance(request, dict):
            raise OrNRAError(f"malformed request frame: {request!r}")
        op = request.get("op")
        if op == "stats":
            return {"stats": await self._stats_payload()}
        if self._worker_clients:
            return await self._route(request)
        program = request["program"]
        if op == "count":
            return {"result": await self.engine.count_json(program, request["value"])}
        if op not in (None, "run"):
            raise OrNRAError(f"unknown op {op!r}")
        if "values" in request:
            return {"results": await self.engine.run_many(program, request["values"])}
        return {"result": await self.engine.run_json(program, request["value"])}

    async def _route(self, request: dict) -> dict:
        """Worker mode: forward by program digest for cache affinity."""
        program = request["program"]
        index = int(program_digest(program), 16) % len(self._worker_clients)
        self._route_counts[index] += 1
        return await self._worker_clients[index].request(request)

    # -- stats -------------------------------------------------------------

    def stats(self) -> dict:
        """The local stats snapshot (engine counters + network counters).

        In worker mode this is the router's own view; the aggregated
        view — router plus every worker's snapshot — is what
        ``{"op": "stats"}`` frames and ``GET /stats`` answer.
        """
        snapshot = self.engine.stats() if self.engine is not None else {}
        snapshot["net"] = dict(self._counters)
        if self.workers:
            snapshot["net"]["worker_frames"] = list(self._route_counts)
        return snapshot

    async def _stats_payload(self) -> dict:
        if not self._worker_clients:
            return self.stats()
        snapshot = {"net": dict(self._counters)}
        snapshot["net"]["worker_frames"] = list(self._route_counts)
        workers = []
        for client in self._worker_clients:
            try:
                response = await client.request({"op": "stats"})
                workers.append(response.get("stats", response))
            except Exception as exc:  # noqa: BLE001 — a dead worker is a data point
                workers.append({"error": str(exc)})
        snapshot["workers"] = workers
        return snapshot

    # -- the connection loop -----------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        self._counters["connections"] += 1
        peer = writer.get_extra_info("peername")
        key = str(peer[0]) if isinstance(peer, (tuple, list)) and peer else "local"
        write_lock = asyncio.Lock()
        tasks: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line over the stream limit: answer a structured
                    # frame and drop the connection — there is no way to
                    # resync to the next newline we never buffered.
                    self._counters["oversized"] += 1
                    frame = {
                        "error": f"request line over {self.max_line} bytes",
                        "code": "oversized",
                    }
                    await self._write_frame(writer, write_lock, frame)
                    break
                if not line:
                    break
                text = line.decode("utf-8", "replace").strip()
                if not text:
                    continue
                if _looks_like_http(text):
                    await self._serve_http(text, reader, writer, key)
                    break  # Connection: close
                task = asyncio.ensure_future(
                    self._serve_frame(text, writer, write_lock, key)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                # Yield once so same-burst lines land in one batching window.
                await asyncio.sleep(0)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _write_frame(self, writer, write_lock, payload: dict) -> None:
        blob = (json.dumps(payload, sort_keys=True) + "\n").encode()
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(blob)
            try:
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass

    async def _serve_frame(self, text: str, writer, write_lock, key: str) -> None:
        request_id = None
        try:
            request = json.loads(text)
            if isinstance(request, dict):
                request_id = request.get("id")
            self._admit_client(key)
            self._counters["frames"] += 1
            payload = await self._process(request)
        except Exception as exc:  # noqa: BLE001 — every error goes to the client
            payload = error_frame(exc)
        if request_id is not None:
            payload = dict(payload)
            payload["id"] = request_id
        await self._write_frame(writer, write_lock, payload)

    # -- the HTTP path -----------------------------------------------------

    async def _serve_http(self, request_line: str, reader, writer, key: str) -> None:
        parts = request_line.split()
        method = parts[0]
        path = parts[1] if len(parts) > 1 else "/"
        headers: "dict[str, str]" = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length > 0 else b""
        status, payload = await self._http_dispatch(method, path, body, key)
        blob = json.dumps(payload, sort_keys=True).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(blob)}\r\n"
            "Connection: close\r\n"
        )
        if payload.get("code") == "overloaded" and "retry_after" in payload:
            head += f"Retry-After: {max(1, math.ceil(payload['retry_after']))}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + blob)
        try:
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass

    async def _http_dispatch(self, method, path, body: bytes, key):
        try:
            if method == "GET" and path == "/stats":
                # Observability is exempt from rate limits: a shedding
                # server must still answer "how bad is it?".
                return 200, {"stats": await self._stats_payload()}
            if method == "POST" and path in ("/run", "/count"):
                request = json.loads(body.decode("utf-8", "replace"))
                if not isinstance(request, dict):
                    raise OrNRAError(f"malformed request body: {request!r}")
                if path == "/count":
                    request = dict(request)
                    request["op"] = "count"
                self._admit_client(key)
                self._counters["http_requests"] += 1
                return 200, await self._process(request)
            return 404, {
                "error": f"no route for {method} {path}",
                "code": "malformed",
            }
        except Exception as exc:  # noqa: BLE001 — every error becomes a status
            frame = error_frame(exc)
            return HTTP_STATUS.get(frame.get("code"), 500), frame


def _looks_like_http(text: str) -> bool:
    return text.split(" ", 1)[0] in _HTTP_METHODS and " HTTP/" in text


# -- CLI ---------------------------------------------------------------------


async def amain(argv: "list[str] | None" = None, *, ready=None) -> None:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.net", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--backend", default="auto")
    parser.add_argument("--window", type=float, default=0.002)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--max-pending", type=int, default=1024)
    parser.add_argument("--cost-budget", type=int, default=None)
    parser.add_argument("--rate", type=float, default=None)
    parser.add_argument("--burst", type=float, default=None)
    parser.add_argument("--max-line", type=int, default=DEFAULT_MAX_LINE)
    args = parser.parse_args(argv)

    server = NetServer(
        host=args.host,
        port=args.port,
        rate=args.rate,
        burst=args.burst,
        workers=args.workers,
        max_line=args.max_line,
        backend=args.backend,
        batch_window=args.window,
        max_batch=args.max_batch,
        default_timeout=args.timeout,
        max_pending=args.max_pending,
        cost_budget=args.cost_budget,
    )
    async with server:
        host, port = server.address
        print(f"serving on {host}:{port} (workers={args.workers})", file=sys.stderr)
        if ready is not None:
            ready(server)
        await asyncio.Event().wait()


def main(argv: "list[str] | None" = None) -> None:
    """Synchronous entry point (``python -m repro.serve.net``)."""
    try:
        asyncio.run(amain(argv))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
