"""The asyncio serving front-end: admit concurrently, micro-batch, dedupe.

:func:`repro.io.run_json_many` amortizes parsing, compilation and
normalization over a *batch* — but something has to build the batches.
In a long-lived service the requests arrive one by one from many
concurrent clients; :class:`AsyncEngine` is the admission layer that
turns that stream back into batches:

* ``await engine.run_json(program, value)`` admits a single request and
  resolves when its result is ready;
* requests are collected into **micro-batches**: the first request opens
  a batching window (``batch_window`` seconds, ``max_batch`` requests)
  and everything admitted inside it ships as one batch;
* within a batch, requests are grouped by program and **deduplicated**
  on the canonical JSON encoding of their inputs — one thousand clients
  asking ``normalize`` of the same world trigger *one* evaluation, and
  every duplicate admits for free (``stats()["deduped_inputs"]``);
* each group fans into :func:`repro.io.run_json_many` on a worker
  thread, so the event loop never blocks on evaluation; distinct inputs
  inside the batch still fan out across ``run_many``'s own pool (and
  whole worker processes under ``backend="process"``).

Failure isolation: if a batch evaluation fails (one malformed input,
say), the group is retried input-by-input so only the offending
requests see the error — no cross-request bleed, which the concurrency
tests (``tests/serve/test_async_server.py``) assert along with clean
shutdown: :meth:`AsyncEngine.close` stops admissions immediately but
drains and serves every in-flight request before returning.

All AsyncEngine methods must be called from the event loop that first
used it (the standard asyncio single-loop discipline); evaluation — the
expensive part — happens off-loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Sequence

from repro.io import run_json_many

__all__ = ["AsyncEngine", "ServerClosed"]


class ServerClosed(RuntimeError):
    """Raised when a request is admitted after :meth:`AsyncEngine.close`."""


_SHUTDOWN = object()


class _Request:
    """One admitted request: program, JSON input, dedupe key, its future."""

    __slots__ = ("program", "value", "key", "future")

    def __init__(self, program, value, key, future) -> None:
        self.program = program
        self.value = value
        self.key = key
        self.future = future


class AsyncEngine:
    """Concurrent admission and micro-batched evaluation of JSON queries.

    *backend* is the engine backend each batch runs under (``"auto"``
    lets the cost model pick per distinct input); *batch_window* is how
    long the batcher waits for more requests after the first one arrives
    (seconds; ``0`` batches only what is already queued); *max_batch*
    caps requests per batch; *max_workers* bounds the per-batch fan-out
    inside :func:`repro.io.run_json_many`.

    Use as an async context manager, or call :meth:`close` explicitly::

        async with AsyncEngine() as engine:
            out = await engine.run_json("normalize", {"orset": [...]})
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        batch_window: float = 0.002,
        max_batch: int = 64,
        max_workers: int | None = None,
    ) -> None:
        self.backend = backend
        self.batch_window = batch_window
        self.max_batch = max(1, max_batch)
        self.max_workers = max_workers
        self._queue: asyncio.Queue = asyncio.Queue()
        self._batcher: asyncio.Task | None = None
        self._closed = False
        self._stats = {
            "requests": 0,
            "batches": 0,
            "groups": 0,
            "batched_inputs": 0,
            "unique_inputs": 0,
            "deduped_inputs": 0,
            "errors": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "AsyncEngine":
        """Start the batcher task (idempotent; admission auto-starts too)."""
        if self._batcher is None:
            if self.backend in ("process", "auto"):
                # Fork the worker processes now, from this (usually
                # main) thread — never lazily from an executor thread
                # mid-request (fork-from-thread is deadlock-prone).
                # "auto" warms too: the cost model may route any
                # CPU-bound request to the process backend.
                from repro.engine import BACKENDS, ProcessBackend

                backend = BACKENDS.get("process")
                if isinstance(backend, ProcessBackend):
                    backend.warm()
            self._batcher = asyncio.ensure_future(self._run_batcher())
        return self

    async def close(self) -> None:
        """Refuse new admissions, drain in-flight requests, stop the batcher.

        Requests admitted before ``close`` was called are still served —
        the batcher consumes the whole queue before exiting — so every
        outstanding ``run_json`` future resolves.
        """
        if self._closed:
            if self._batcher is not None:
                await asyncio.shield(self._batcher)
            return
        self._closed = True
        if self._batcher is None:
            return
        self._queue.put_nowait(_SHUTDOWN)
        await asyncio.shield(self._batcher)

    async def __aenter__(self) -> "AsyncEngine":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- admission ---------------------------------------------------------

    async def run_json(self, program, value_json) -> object:
        """Admit one request and await its result.

        *program* is surface-syntax text (or a pre-resolved Morphism);
        *value_json* is the :func:`repro.io.value_to_json` encoding.
        Structurally equal concurrent requests share one evaluation.
        """
        if self._closed:
            raise ServerClosed("AsyncEngine is closed")
        await self.start()
        key = (program, _canonical(value_json))
        # Hash the key now: an unhashable program (a list, say, from a
        # malformed stdio request) must fail *this* caller at admission,
        # not explode later inside the shared batcher task.
        hash(key)
        future = asyncio.get_running_loop().create_future()
        self._stats["requests"] += 1
        self._queue.put_nowait(_Request(program, value_json, key, future))
        return await future

    async def run_many(self, program, values_json: Sequence) -> list:
        """Admit a whole client-side batch concurrently; results in order."""
        return list(
            await asyncio.gather(*(self.run_json(program, v) for v in values_json))
        )

    # -- batching ----------------------------------------------------------

    async def _run_batcher(self) -> None:
        loop = asyncio.get_running_loop()
        shutting_down = False
        while not shutting_down:
            first = await self._queue.get()
            if first is _SHUTDOWN:
                break
            batch = [first]
            shutting_down = self._collect_nowait(batch)
            deadline = loop.time() + self.batch_window
            while not shutting_down and len(batch) < self.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if item is _SHUTDOWN:
                    shutting_down = True
                    break
                batch.append(item)
            await self._dispatch_guarded(batch)
        # Drain everything admitted before the shutdown sentinel.
        leftovers: list[_Request] = []
        self._collect_nowait(leftovers, limit=None)
        while leftovers:
            head, leftovers = leftovers[: self.max_batch], leftovers[self.max_batch :]
            await self._dispatch_guarded(head)

    async def _dispatch_guarded(self, batch: list) -> None:
        """Dispatch a batch; an unexpected error fails *these* futures only.

        The batcher task must survive anything a batch throws at it — a
        dead batcher would hang every later request — so dispatch-level
        failures are delivered to the batch's futures instead of
        propagating.
        """
        try:
            await self._dispatch(batch)
        except Exception as exc:  # noqa: BLE001 — the batcher must not die
            self._stats["errors"] += len(batch)
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)

    def _collect_nowait(self, batch: list, limit: int | None = 0) -> bool:
        """Move already-queued requests into *batch*; True on sentinel.

        ``limit=0`` means "up to ``max_batch``"; ``None`` means no cap
        (the shutdown drain).
        """
        cap = self.max_batch if limit == 0 else limit
        while cap is None or len(batch) < cap:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if item is _SHUTDOWN:
                return True
            batch.append(item)
        return False

    async def _dispatch(self, batch: list) -> None:
        if not batch:
            return
        self._stats["batches"] += 1
        self._stats["batched_inputs"] += len(batch)
        groups: dict = {}
        for req in batch:
            groups.setdefault(req.program, []).append(req)
        await asyncio.gather(
            *(self._run_group(program, reqs) for program, reqs in groups.items())
        )

    async def _run_group(self, program, reqs: list) -> None:
        """Evaluate one same-program group: dedupe, fan out, deliver."""
        self._stats["groups"] += 1
        index: dict = {}
        unique: list = []
        for req in reqs:
            if req.key not in index:
                index[req.key] = len(unique)
                unique.append(req.value)
        self._stats["unique_inputs"] += len(unique)
        self._stats["deduped_inputs"] += len(reqs) - len(unique)
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                None,
                lambda: run_json_many(
                    program, unique, self.backend, max_workers=self.max_workers
                ),
            )
        except Exception:
            # One bad input must not poison the batch: retry one by one
            # so only the offending requests see their own error.
            await self._run_individually(program, reqs)
            return
        for req in reqs:
            if not req.future.done():
                req.future.set_result(results[index[req.key]])

    async def _run_individually(self, program, reqs: list) -> None:
        loop = asyncio.get_running_loop()
        resolved: dict = {}
        for req in reqs:
            outcome = resolved.get(req.key)
            if outcome is None:
                try:
                    result = await loop.run_in_executor(
                        None, lambda v=req.value: run_json_many(
                            program, [v], self.backend, max_workers=self.max_workers
                        )[0]
                    )
                    outcome = (True, result)
                except Exception as exc:
                    self._stats["errors"] += 1
                    outcome = (False, exc)
                resolved[req.key] = outcome
            ok, payload = outcome
            if req.future.done():
                continue
            if ok:
                req.future.set_result(payload)
            else:
                req.future.set_exception(payload)

    # -- diagnostics -------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Admission/batching counters (tests and the REPL read these)."""
        return dict(self._stats)


def _canonical(value_json) -> str:
    """A structural dedupe key: canonical JSON text of the input."""
    return json.dumps(value_json, sort_keys=True, separators=(",", ":"))
