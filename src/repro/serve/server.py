"""The asyncio serving front-end: admit concurrently, micro-batch, dedupe.

:func:`repro.io.run_json_many` amortizes parsing, compilation and
normalization over a *batch* — but something has to build the batches.
In a long-lived service the requests arrive one by one from many
concurrent clients; :class:`AsyncEngine` is the admission layer that
turns that stream back into batches:

* ``await engine.run_json(program, value)`` admits a single request and
  resolves when its result is ready;
* requests are collected into **micro-batches**: the first request opens
  a batching window (``batch_window`` seconds, ``max_batch`` requests)
  and everything admitted inside it ships as one batch;
* within a batch, requests are grouped by program and **deduplicated**
  on the canonical JSON encoding of their inputs — one thousand clients
  asking ``normalize`` of the same world trigger *one* evaluation, and
  every duplicate admits for free (``stats()["deduped_inputs"]``);
* each group fans into :func:`repro.io.run_json_many` on a worker
  thread, so the event loop never blocks on evaluation; distinct inputs
  inside the batch still fan out across ``run_many``'s own pool (and
  whole worker processes under ``backend="process"``).

Robustness — the admission layer is also where overload and slowness
are turned into *bounded, typed* failures instead of unbounded queues
and wedged threads:

* **backpressure** — at most ``max_pending`` admitted-but-unresolved
  requests; past that, admission sheds load with
  :class:`~repro.errors.Overloaded` carrying a ``retry_after`` hint
  (``stats()["shed"]``).
* **cost guard** — with a ``cost_budget``, each input's static
  :class:`~repro.engine.cost_model.ShapeEstimate` (via
  :func:`~repro.engine.cost_model.estimate_json`, straight off the JSON
  encoding) is checked *before* any evaluation; a predicted normalized
  size over budget is rejected with
  :class:`~repro.errors.CostBudgetExceeded` — the paper's Section 6
  bounds as an admission policy.
* **deadlines** — per-request ``timeout=`` (or the engine-wide
  ``default_timeout``) becomes a :class:`~repro.engine.deadline.Deadline`
  carried into the evaluation thread; the engine's cooperative
  checkpoints raise :class:`~repro.errors.DeadlineExceeded` instead of
  letting a pathological input wedge a worker thread
  (``stats()["timeouts"]``).
* **degradation** — :meth:`count_json` answers a world-count request
  with the exact engine count, but near-deadline falls back to the
  static Section 6 *upper bound* marked ``"approximate": true``
  (``stats()["degraded"]``); deeper in the stack the process pool's
  circuit breaker demotes ``backend="auto"`` routing process → parallel
  (``stats()["breaker_open"]``).

Failure isolation: if a batch evaluation fails (one malformed input,
say), the group is retried input-by-input so only the offending
requests see the error — no cross-request bleed, which the concurrency
tests (``tests/serve/test_async_server.py``) assert along with clean
shutdown: :meth:`AsyncEngine.close` stops admissions immediately but
drains and serves every in-flight request before returning, and a
straggler that slips into the queue *after* the final drain is failed
with :class:`ServerClosed` rather than left pending forever.  The
fault-injection suite (``tests/serve/test_faults.py``) drives seeded
crashes, slowdowns and malformed frames through
:mod:`repro.engine.faults` and asserts the core invariant: **no
admitted future is ever left unresolved**.

All AsyncEngine methods must be called from the event loop that first
used it (the standard asyncio single-loop discipline); evaluation — the
expensive part — happens off-loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Sequence

from repro.errors import CostBudgetExceeded, DeadlineExceeded, Overloaded
from repro.io import count_worlds_json, run_json_many
from repro.serve.metrics import ServerMetrics

__all__ = ["AsyncEngine", "ServerClosed"]


class ServerClosed(RuntimeError):
    """Raised when a request is admitted after :meth:`AsyncEngine.close`."""


_SHUTDOWN = object()

#: Default for :meth:`AsyncEngine._collect_nowait`'s *limit* — "collect up
#: to ``max_batch``".  A distinct sentinel, not ``0``: a computed ``limit=0``
#: must mean "collect nothing", never silently drain a full batch.
_UP_TO_MAX_BATCH = object()


class _Request:
    """One admitted request: program, JSON input, dedupe key, deadline, future.

    ``admitted``/``dispatched`` are monotonic-clock stamps the metrics
    layer uses to split a request's life into queue and execute phases;
    they stay ``None`` when metrics are disabled.
    """

    __slots__ = ("program", "value", "key", "future", "deadline", "admitted", "dispatched")

    def __init__(self, program, value, key, future, deadline=None) -> None:
        self.program = program
        self.value = value
        self.key = key
        self.future = future
        self.deadline = deadline
        self.admitted = None
        self.dispatched = None


class AsyncEngine:
    """Concurrent admission and micro-batched evaluation of JSON queries.

    *backend* is the engine backend each batch runs under (``"auto"``
    lets the cost model pick per distinct input); *batch_window* is how
    long the batcher waits for more requests after the first one arrives
    (seconds; ``0`` batches only what is already queued); *max_batch*
    caps requests per batch; *max_workers* bounds the per-batch fan-out
    inside :func:`repro.io.run_json_many`.

    Robustness knobs: *max_pending* bounds admitted-but-unresolved
    requests (past it admission raises
    :class:`~repro.errors.Overloaded`); *default_timeout* is the
    per-request deadline in seconds when the caller passes none
    (``None`` = unbounded); *cost_budget* rejects inputs whose static
    normalized-size bound exceeds it
    (:class:`~repro.errors.CostBudgetExceeded`) before any evaluation;
    *degrade* lets :meth:`count_json` fall back to the static estimate
    when the exact count runs out of deadline.

    Observability: *metrics* (default on) attaches a
    :class:`~repro.serve.metrics.ServerMetrics` — monotonic ring-buffer
    histograms of per-request admission/queue/execute/total latencies
    plus windowed throughput, surfaced as ``stats()["latency"]`` (p50 /
    p90 / p99 per phase).  Pass ``metrics=False`` to shave the two clock
    reads per request, or a ``ServerMetrics`` of your own to share a
    registry or inject a fake clock.

    Use as an async context manager, or call :meth:`close` explicitly::

        async with AsyncEngine() as engine:
            out = await engine.run_json("normalize", {"orset": [...]})
    """

    def __init__(
        self,
        *,
        backend: str = "auto",
        batch_window: float = 0.002,
        max_batch: int = 64,
        max_workers: int | None = None,
        max_pending: int = 1024,
        default_timeout: float | None = None,
        cost_budget: int | None = None,
        degrade: bool = True,
        metrics: "ServerMetrics | bool | None" = True,
    ) -> None:
        self.backend = backend
        self.batch_window = batch_window
        self.max_batch = max(1, max_batch)
        self.max_workers = max_workers
        self.max_pending = max(1, max_pending)
        self.default_timeout = default_timeout
        self.cost_budget = cost_budget
        self.degrade = degrade
        # *metrics* — the latency observability layer: True (default)
        # builds a ServerMetrics; False/None disables recording; a
        # ServerMetrics instance is used as-is (shared registries, fake
        # clocks in tests).
        if metrics is True:
            self.metrics: "ServerMetrics | None" = ServerMetrics()
        elif not metrics:
            self.metrics = None
        else:
            self.metrics = metrics
        self._queue: asyncio.Queue = asyncio.Queue()
        self._batcher: asyncio.Task | None = None
        self._closed = False
        self._pending = 0
        self._stats = {
            "requests": 0,
            "batches": 0,
            "groups": 0,
            "batched_inputs": 0,
            "unique_inputs": 0,
            "deduped_inputs": 0,
            "errors": 0,
            "shed": 0,
            "cost_rejected": 0,
            "timeouts": 0,
            "retries": 0,
            "degraded": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "AsyncEngine":
        """Start the batcher task (idempotent; admission auto-starts too)."""
        if self._batcher is None:
            if self.backend in ("process", "auto"):
                # Fork the worker processes now, from this (usually
                # main) thread — never lazily from an executor thread
                # mid-request (fork-from-thread is deadlock-prone).
                # "auto" warms too: the cost model may route any
                # CPU-bound request to the process backend.
                from repro.engine import BACKENDS, ProcessBackend

                backend = BACKENDS.get("process")
                if isinstance(backend, ProcessBackend):
                    backend.warm()
            self._batcher = asyncio.ensure_future(self._run_batcher())
        return self

    async def close(self) -> None:
        """Refuse new admissions, drain in-flight requests, stop the batcher.

        Requests admitted before ``close`` was called are still served —
        the batcher consumes the whole queue before exiting — so every
        outstanding ``run_json`` future resolves.  Anything that slips
        into the queue *after* the batcher's final drain (an admission
        that raced the shutdown) is failed with :class:`ServerClosed`
        rather than abandoned.
        """
        if self._closed:
            if self._batcher is not None:
                await asyncio.shield(self._batcher)
            self._fail_stragglers()
            return
        self._closed = True
        if self._batcher is None:
            return
        self._queue.put_nowait(_SHUTDOWN)
        await asyncio.shield(self._batcher)
        self._fail_stragglers()

    async def __aenter__(self) -> "AsyncEngine":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _fail_stragglers(self) -> None:
        """Fail every request still sitting in the queue with ServerClosed.

        Only called once the batcher is gone — nothing will ever serve
        these, and an unresolved future would hang its awaiter forever.
        """
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is _SHUTDOWN:
                continue
            if not item.future.done():
                item.future.set_exception(ServerClosed("AsyncEngine is closed"))

    # -- admission ---------------------------------------------------------

    def _admit(self, value_json, timeout: float | None):
        """Shared admission policy: closed -> overload -> cost guard.

        Returns the request's deadline (or ``None``) and registers the
        caller in the pending gauge via the returned future's done
        callback.
        """
        if self._closed:
            raise ServerClosed("AsyncEngine is closed")
        if self._pending >= self.max_pending:
            self._stats["shed"] += 1
            raise Overloaded(
                "server at capacity",
                retry_after=max(2 * self.batch_window, 0.05),
            )
        if self.cost_budget is not None:
            from repro.engine import estimate_json

            estimate = estimate_json(value_json)
            if estimate.norm_size > self.cost_budget:
                self._stats["cost_rejected"] += 1
                raise CostBudgetExceeded(
                    "input over the static cost budget",
                    estimated=estimate.norm_size,
                    budget=self.cost_budget,
                )
        seconds = timeout if timeout is not None else self.default_timeout
        if seconds is None:
            return None
        from repro.engine import Deadline

        return Deadline.after(seconds)

    def _track(self, future) -> None:
        self._pending += 1

        def _done(_f) -> None:
            self._pending -= 1

        future.add_done_callback(_done)

    def _observe_on_done(self, future, request: _Request, start: float) -> None:
        """Record the request's phase latencies when its future resolves.

        Resolution includes failures — a timed-out or errored request's
        latency is exactly what its client felt, so it belongs in the
        percentiles.  (Shed/rejected admissions never create a future and
        are counted separately.)
        """
        metrics = self.metrics
        clock = metrics.clock

        def _record(_f) -> None:
            done = clock()
            admitted = request.admitted if request.admitted is not None else start
            dispatched = request.dispatched
            metrics.observe(
                admission=admitted - start,
                queue=(dispatched if dispatched is not None else done) - admitted,
                execute=(done - dispatched) if dispatched is not None else None,
                total=done - start,
            )

        future.add_done_callback(_record)

    async def run_json(self, program, value_json, *, timeout: float | None = None) -> object:
        """Admit one request and await its result.

        *program* is surface-syntax text (or a pre-resolved Morphism);
        *value_json* is the :func:`repro.io.value_to_json` encoding.
        Structurally equal concurrent requests share one evaluation.
        *timeout* (seconds) overrides the engine's ``default_timeout``
        for this request; past it the evaluation fails with
        :class:`~repro.errors.DeadlineExceeded` at the engine's next
        cooperative checkpoint.
        """
        start = self.metrics.clock() if self.metrics is not None else 0.0
        deadline = self._admit(value_json, timeout)
        await self.start()
        key = (program, _canonical(value_json))
        # Hash the key now: an unhashable program (a list, say, from a
        # malformed stdio request) must fail *this* caller at admission,
        # not explode later inside the shared batcher task.
        hash(key)
        future = asyncio.get_running_loop().create_future()
        self._stats["requests"] += 1
        self._track(future)
        request = _Request(program, value_json, key, future, deadline)
        if self.metrics is not None:
            request.admitted = self.metrics.clock()
            self._observe_on_done(future, request, start)
        self._queue.put_nowait(request)
        if self._batcher is not None and self._batcher.done():
            # The batcher exited (shutdown drain finished) while this
            # admission was in flight — nothing will ever serve the
            # queue again, so fail the stragglers (including ours) now.
            self._fail_stragglers()
        return await future

    async def run_many(
        self, program, values_json: Sequence, *, timeout: float | None = None
    ) -> list:
        """Admit a whole client-side batch concurrently; results in order."""
        return list(
            await asyncio.gather(
                *(self.run_json(program, v, timeout=timeout) for v in values_json)
            )
        )

    async def count_json(
        self, program, value_json, *, timeout: float | None = None
    ) -> dict:
        """Count the output's worlds: exact if the deadline allows.

        Returns ``{"count": n, "approximate": False}`` from the engine's
        exact count (symbolic when supported).  When the count runs out
        of deadline and *degrade* is on, answers with the *static*
        Section 6 upper bound instead — ``{"count": bound,
        "approximate": True}`` (``stats()["degraded"]``): a degraded
        answer with an honest label beats a wedged client.
        """
        from repro.engine import checkpoint, deadline_scope, estimate_json, faults

        start = self.metrics.clock() if self.metrics is not None else 0.0
        deadline = self._admit(value_json, timeout)
        self._stats["requests"] += 1
        future = asyncio.get_running_loop().create_future()
        self._track(future)
        admitted = self.metrics.clock() if self.metrics is not None else 0.0

        def observe() -> None:
            # Counts skip the batcher (admission and dispatch coincide),
            # and record synchronously so ``stats()`` right after the
            # await already shows this request.
            if self.metrics is not None:
                done = self.metrics.clock()
                self.metrics.observe(
                    admission=admitted - start,
                    queue=0.0,
                    execute=done - admitted,
                    total=done - start,
                )

        loop = asyncio.get_running_loop()

        def exact() -> int:
            with deadline_scope(deadline):
                # The symbolic count path is one solver call — make sure
                # an already-spent deadline fails here, not after it.
                checkpoint("count dispatch")
                faults.fire("serve.eval")
                return count_worlds_json(program, value_json)

        try:
            count = await loop.run_in_executor(None, exact)
        except DeadlineExceeded:
            self._stats["timeouts"] += 1
            if not self.degrade:
                future.cancel()
                raise
            self._stats["degraded"] += 1
            result = {"count": estimate_json(value_json).worlds, "approximate": True}
            future.set_result(result)
            observe()
            return result
        except BaseException:
            future.cancel()
            raise
        result = {"count": count, "approximate": False}
        future.set_result(result)
        observe()
        return result

    # -- batching ----------------------------------------------------------

    async def _run_batcher(self) -> None:
        loop = asyncio.get_running_loop()
        shutting_down = False
        while not shutting_down:
            first = await self._queue.get()
            if first is _SHUTDOWN:
                break
            batch = [first]
            shutting_down = self._collect_nowait(batch)
            deadline = loop.time() + self.batch_window
            while not shutting_down and len(batch) < self.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if item is _SHUTDOWN:
                    shutting_down = True
                    break
                batch.append(item)
            await self._dispatch_guarded(batch)
        # Drain everything admitted before the shutdown sentinel — and
        # keep draining: a dispatch suspends the task, and an admission
        # racing close() may enqueue behind a drain pass already taken.
        while True:
            leftovers: list[_Request] = []
            self._collect_nowait(leftovers, limit=None)
            if not leftovers:
                break
            while leftovers:
                head = leftovers[: self.max_batch]
                leftovers = leftovers[self.max_batch :]
                await self._dispatch_guarded(head)

    async def _dispatch_guarded(self, batch: list) -> None:
        """Dispatch a batch; an unexpected error fails *these* futures only.

        The batcher task must survive anything a batch throws at it — a
        dead batcher would hang every later request — so dispatch-level
        failures are delivered to the batch's futures instead of
        propagating.
        """
        try:
            await self._dispatch(batch)
        except Exception as exc:  # noqa: BLE001 — the batcher must not die
            self._stats["errors"] += len(batch)
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)

    def _collect_nowait(
        self, batch: list, limit: "int | None" = _UP_TO_MAX_BATCH
    ) -> bool:
        """Move already-queued requests into *batch*; True on sentinel.

        The default collects up to ``max_batch`` requests; ``None`` means
        no cap (the shutdown drain); an explicit integer — including a
        computed ``0``, which collects nothing — is honored literally.
        """
        cap = self.max_batch if limit is _UP_TO_MAX_BATCH else limit
        while cap is None or len(batch) < cap:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if item is _SHUTDOWN:
                return True
            batch.append(item)
        return False

    def _expire(self, req: _Request) -> bool:
        """Fail *req* with DeadlineExceeded if its deadline already passed."""
        if req.deadline is None or not req.deadline.expired():
            return False
        if not req.future.done():
            self._stats["timeouts"] += 1
            req.future.set_exception(
                DeadlineExceeded("deadline exceeded before dispatch")
            )
        return True

    async def _dispatch(self, batch: list) -> None:
        # A request that spent its whole budget queueing fails here,
        # before any evaluation is wasted on it.
        live = [req for req in batch if not self._expire(req)]
        if not live:
            return
        if self.metrics is not None:
            now = self.metrics.clock()
            for req in live:
                req.dispatched = now
        self._stats["batches"] += 1
        self._stats["batched_inputs"] += len(live)
        groups: dict = {}
        for req in live:
            groups.setdefault(req.program, []).append(req)
        await asyncio.gather(
            *(self._run_group(program, reqs) for program, reqs in groups.items())
        )

    async def _run_group(self, program, reqs: list) -> None:
        """Evaluate one same-program group: dedupe, fan out, deliver.

        The group evaluates under the *tightest* deadline of its
        members (context variables do not cross ``run_in_executor``, so
        the scope is re-entered inside the worker-thread callable).  If
        that trips — or anything else fails — the group falls back to
        :meth:`_run_individually`, where each request runs under its
        *own* deadline: one nearly-expired request must not time out its
        whole batch.
        """
        from repro.engine import deadline_scope, faults

        self._stats["groups"] += 1
        index: dict = {}
        unique: list = []
        for req in reqs:
            if req.key not in index:
                index[req.key] = len(unique)
                unique.append(req.value)
        self._stats["unique_inputs"] += len(unique)
        self._stats["deduped_inputs"] += len(reqs) - len(unique)
        deadlines = [req.deadline for req in reqs if req.deadline is not None]
        group_deadline = min(deadlines, key=lambda d: d.at) if deadlines else None
        loop = asyncio.get_running_loop()

        def evaluate() -> list:
            with deadline_scope(group_deadline):
                faults.fire("serve.eval")
                return run_json_many(
                    program, unique, self.backend, max_workers=self.max_workers
                )

        try:
            results = await loop.run_in_executor(None, evaluate)
        except Exception:
            # One bad input must not poison the batch: retry one by one
            # so only the offending requests see their own error.
            await self._run_individually(program, reqs)
            return
        for req in reqs:
            if not req.future.done():
                req.future.set_result(results[index[req.key]])

    async def _run_individually(self, program, reqs: list) -> None:
        from repro.engine import deadline_scope, faults

        loop = asyncio.get_running_loop()
        resolved: dict = {}
        for req in reqs:
            outcome = resolved.get(req.key)
            if outcome is None:
                if self._expire(req):
                    continue
                self._stats["retries"] += 1

                def evaluate(req=req) -> object:
                    with deadline_scope(req.deadline):
                        faults.fire("serve.eval")
                        return run_json_many(
                            program,
                            [req.value],
                            self.backend,
                            max_workers=self.max_workers,
                        )[0]

                try:
                    outcome = (True, await loop.run_in_executor(None, evaluate))
                except DeadlineExceeded as exc:
                    self._stats["timeouts"] += 1
                    outcome = (False, exc)
                except Exception as exc:
                    self._stats["errors"] += 1
                    outcome = (False, exc)
                resolved[req.key] = outcome
            ok, payload = outcome
            if req.future.done():
                continue
            if ok:
                req.future.set_result(payload)
            else:
                req.future.set_exception(payload)

    # -- diagnostics -------------------------------------------------------

    def stats(self) -> dict:
        """Admission/batching/robustness counters (tests and the REPL).

        Alongside the counter snapshot: ``pending`` (admitted futures
        not yet resolved — the backpressure gauge) and ``breaker_open``
        (is the process pool's circuit breaker currently refusing
        traffic, i.e. has ``backend="auto"`` demoted process → parallel).
        """
        from repro.engine import BACKENDS

        snapshot = dict(self._stats)
        snapshot["pending"] = self._pending
        process = BACKENDS.get("process")
        snapshot["breaker_open"] = bool(process is not None and not process.healthy())
        if self.metrics is not None:
            snapshot["latency"] = self.metrics.snapshot()
        return snapshot


def _canonical(value_json) -> str:
    """A structural dedupe key: canonical JSON text of the input."""
    return json.dumps(value_json, sort_keys=True, separators=(",", ":"))
