"""Random generation of Theorem 5.1-eligible morphisms.

The losslessness theorem quantifies over a *syntactic class* of
morphisms; the benchmark suite exercises a hand-picked sample, and this
module widens the net: :func:`random_lossless_morphism` draws a random
well-typed morphism from the eligible class at a given input type, so
property tests can check ``preserve(f) ∘ normalize ∘ or_eta ==
normalize ∘ or_eta ∘ f`` on arbitrarily composed programs rather than a
fixed suite.

Construction is type-directed: at each step the generator collects every
combinator whose eligibility precondition holds at the current type
(`repro.core.preserve.check_lossless_eligible` is the ground truth and is
re-checked by the tests), picks one at random, and recurses with the new
output type.  ``Id`` is always available, so generation cannot get stuck.
"""

from __future__ import annotations

import random

from repro.lang.morphisms import Bang, Compose, Id, Morphism, Proj1, Proj2
from repro.lang.orset_ops import (
    Alpha,
    OrEta,
    OrMap,
    OrMu,
    OrRho2,
    OrUnion,
)
from repro.lang.set_ops import SetEta, SetMap, SetMu, SetUnion
from repro.types.kinds import (
    OrSetType,
    ProdType,
    SetType,
    Type,
    contains_orset,
)

__all__ = ["random_lossless_morphism", "random_lossless_pipeline"]


def _step_choices(s: Type, rng: random.Random, or_free_depth: int) -> list[Morphism]:
    """Every single eligible combinator applicable at input type *s*."""
    out: list[Morphism] = [Id(), OrEta()]
    if isinstance(s, ProdType):
        out.append(Proj1())
        out.append(Proj2())
        if isinstance(s.right, OrSetType):
            out.append(OrRho2())
        if (
            isinstance(s.left, OrSetType)
            and isinstance(s.right, OrSetType)
            and s.left == s.right
        ):
            out.append(OrUnion())
        if (
            isinstance(s.left, SetType)
            and s.left == s.right
            and not contains_orset(s)
        ):
            out.append(SetUnion())
    if isinstance(s, OrSetType):
        if isinstance(s.elem, OrSetType):
            out.append(OrMu())
        body = random_lossless_morphism(s.elem, rng, or_free_depth)[0]
        out.append(OrMap(body))
    if isinstance(s, SetType):
        if isinstance(s.elem, OrSetType):
            out.append(Alpha())
        if isinstance(s.elem, SetType) and not contains_orset(s):
            out.append(SetMu())
        if not contains_orset(s.elem):
            inner, inner_out = random_lossless_morphism(
                s.elem, rng, or_free_depth, allow_orsets=False
            )
            if not contains_orset(inner_out):
                out.append(SetMap(inner))
    if not contains_orset(s):
        out.append(SetEta())
    out.append(Bang())
    return out


def random_lossless_morphism(
    s: Type,
    rng: random.Random,
    depth: int = 3,
    allow_orsets: bool = True,
) -> tuple[Morphism, Type]:
    """A random morphism from Theorem 5.1's class at input type *s*.

    Returns ``(morphism, output_type)``.  With ``allow_orsets=False`` the
    generated morphism also never *introduces* or-sets (needed for bodies
    of ``map``).
    """
    current: Morphism = Id()
    current_type = s
    for _ in range(rng.randint(0, depth)):
        options = _step_choices(current_type, rng, max(0, depth - 2))
        if not allow_orsets:
            options = [
                m
                for m in options
                if not isinstance(m, (OrEta, OrMap, OrMu, OrRho2, OrUnion, Alpha))
            ]
        step = options[rng.randrange(len(options))]
        try:
            next_type = step.output_type(current_type)
        except Exception:
            continue
        # Keep workloads small: alpha on wide families explodes; the
        # callers bound widths, we bound repeated interaction operators.
        current = step if isinstance(current, Id) else Compose(step, current)
        current_type = next_type
    return current, current_type


def random_lossless_pipeline(
    s: Type, rng: random.Random, steps: int = 3
) -> tuple[Morphism, Type]:
    """Alias with a pipeline-flavoured name (used by benchmarks)."""
    return random_lossless_morphism(s, rng, steps)
