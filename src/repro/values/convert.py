"""Value-level set/bag conversions used by normalization (Section 4).

``to_bags`` is the object translation ``o -> o^d``: every set becomes a
multiset with single multiplicities.  ``to_sets`` is ``o -> o^s``: every
multiset collapses to a set, removing duplicates.  Normalization converts
to bags, rewrites, then converts back — exactly the paper's
``app(t, r)(x) = [dapp(t^d, r^d)(x^d)]^s``.
"""

from __future__ import annotations

from repro.errors import OrNRAValueError
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
)

__all__ = ["to_bags", "to_sets"]


def to_bags(v: Value) -> Value:
    """The translation ``o -> o^d`` (sets become single-multiplicity bags)."""
    if isinstance(v, (Atom, UnitValue)):
        return v
    if isinstance(v, Pair):
        return Pair(to_bags(v.fst), to_bags(v.snd))
    if isinstance(v, Variant):
        return Variant(v.side, to_bags(v.payload))
    if isinstance(v, SetValue):
        return BagValue(to_bags(e) for e in v.elems)
    if isinstance(v, BagValue):
        return BagValue(to_bags(e) for e in v.elems)
    if isinstance(v, OrSetValue):
        return OrSetValue(to_bags(e) for e in v.elems)
    raise OrNRAValueError(f"not a value: {v!r}")


def to_sets(v: Value) -> Value:
    """The translation ``o -> o^s`` (bags collapse to duplicate-free sets)."""
    if isinstance(v, (Atom, UnitValue)):
        return v
    if isinstance(v, Pair):
        return Pair(to_sets(v.fst), to_sets(v.snd))
    if isinstance(v, Variant):
        return Variant(v.side, to_sets(v.payload))
    if isinstance(v, BagValue):
        return SetValue(to_sets(e) for e in v.elems)
    if isinstance(v, SetValue):
        return SetValue(to_sets(e) for e in v.elems)
    if isinstance(v, OrSetValue):
        return OrSetValue(to_sets(e) for e in v.elems)
    raise OrNRAValueError(f"not a value: {v!r}")
