"""Size and structure measures on complex objects (Section 6).

The paper defines, for an object ``x``:

* ``size(x)`` — the number of leaves of the labeled tree ``T(x)``: atomic
  objects have size 1, ``size (x, y) = size x + size y``, and the size of a
  (or-)set is the sum of the sizes of its elements.  Note the empty set and
  empty or-set then have size 0.
* the tree ``T(x)`` — root labeled ``*`` for pairs, ``{}`` / ``<>`` for
  collections, atoms at the leaves.
* the *innermost or-sets* — nodes labeled ``<>`` whose subtrees contain no
  other ``<>`` node; their child counts ``m_i`` drive the Proposition 6.1
  bound ``m(x) <= prod_i (m_i + 1)``.

``m(x)`` itself (the number of conceptual possibilities) needs the
normalization machinery and therefore lives in :mod:`repro.core.costs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OrNRAValueError
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
)

__all__ = [
    "size",
    "depth",
    "count_orsets",
    "has_orset",
    "has_empty_orset",
    "innermost_orset_arities",
    "ValueTree",
    "value_tree",
]


def size(v: Value) -> int:
    """The paper's ``size``: the number of atomic leaves of ``T(v)``."""
    if isinstance(v, (Atom, UnitValue)):
        return 1
    if isinstance(v, Pair):
        return size(v.fst) + size(v.snd)
    if isinstance(v, Variant):
        return size(v.payload)
    if isinstance(v, (SetValue, OrSetValue, BagValue)):
        return sum(size(e) for e in v.elems)
    raise OrNRAValueError(f"not a value: {v!r}")


def depth(v: Value) -> int:
    """Height of the value tree (atoms have depth 1)."""
    if isinstance(v, (Atom, UnitValue)):
        return 1
    if isinstance(v, Pair):
        return 1 + max(depth(v.fst), depth(v.snd))
    if isinstance(v, Variant):
        return 1 + depth(v.payload)
    if isinstance(v, (SetValue, OrSetValue, BagValue)):
        if not v.elems:
            return 1
        return 1 + max(depth(e) for e in v.elems)
    raise OrNRAValueError(f"not a value: {v!r}")


def count_orsets(v: Value) -> int:
    """How many or-set nodes occur in the tree of *v*."""
    if isinstance(v, (Atom, UnitValue)):
        return 0
    if isinstance(v, Pair):
        return count_orsets(v.fst) + count_orsets(v.snd)
    if isinstance(v, Variant):
        return count_orsets(v.payload)
    if isinstance(v, OrSetValue):
        return 1 + sum(count_orsets(e) for e in v.elems)
    if isinstance(v, (SetValue, BagValue)):
        return sum(count_orsets(e) for e in v.elems)
    raise OrNRAValueError(f"not a value: {v!r}")


def has_orset(v: Value) -> bool:
    """Does *v* contain any or-set node?"""
    return count_orsets(v) > 0


def has_empty_orset(v: Value) -> bool:
    """Does *v* contain the empty or-set ``< >`` anywhere?

    Objects containing ``< >`` are conceptually inconsistent (Section 1) and
    are excluded from the losslessness theorem's inputs.
    """
    if isinstance(v, (Atom, UnitValue)):
        return False
    if isinstance(v, Pair):
        return has_empty_orset(v.fst) or has_empty_orset(v.snd)
    if isinstance(v, Variant):
        return has_empty_orset(v.payload)
    if isinstance(v, OrSetValue):
        if not v.elems:
            return True
        return any(has_empty_orset(e) for e in v.elems)
    if isinstance(v, (SetValue, BagValue)):
        return any(has_empty_orset(e) for e in v.elems)
    raise OrNRAValueError(f"not a value: {v!r}")


def innermost_orset_arities(v: Value) -> list[int]:
    """Child counts ``m_i`` of the or-sets closest to the leaves.

    These are the ``v_1, ..., v_k`` of Proposition 6.1: or-set nodes whose
    subtrees contain no further or-set node.
    """
    arities: list[int] = []

    def walk(node: Value) -> None:
        if isinstance(node, (Atom, UnitValue)):
            return
        if isinstance(node, Pair):
            walk(node.fst)
            walk(node.snd)
            return
        if isinstance(node, Variant):
            walk(node.payload)
            return
        if isinstance(node, OrSetValue):
            if all(count_orsets(e) == 0 for e in node.elems):
                arities.append(len(node.elems))
            else:
                for e in node.elems:
                    walk(e)
            return
        if isinstance(node, (SetValue, BagValue)):
            for e in node.elems:
                walk(e)
            return
        raise OrNRAValueError(f"not a value: {node!r}")

    walk(v)
    return arities


@dataclass(frozen=True, slots=True)
class ValueTree:
    """The labeled tree ``T(x)`` of Section 6, for inspection/plotting."""

    label: str
    children: tuple["ValueTree", ...] = ()

    _COLLECTION_LABELS = ("{}", "<>", "[||]", "*")

    def leaves(self) -> int:
        """Number of atomic leaves, i.e. ``size`` of the underlying object.

        An empty collection is a childless node but contributes no leaves,
        matching the paper's ``size`` (sum over elements).
        """
        if not self.children:
            return 0 if self.label in self._COLLECTION_LABELS else 1
        return sum(c.leaves() for c in self.children)

    def render(self, indent: int = 0) -> str:
        """An ASCII rendering, one node per line."""
        lines = [" " * indent + self.label]
        for child in self.children:
            lines.append(child.render(indent + 2))
        return "\n".join(lines)


def value_tree(v: Value) -> ValueTree:
    """Build ``T(v)``.

    Pairs are labeled ``*``, sets ``{}``, or-sets ``<>``, bags ``[||]``;
    atoms carry their printed form.
    """
    if isinstance(v, (Atom, UnitValue)):
        return ValueTree(str(v))
    if isinstance(v, Pair):
        return ValueTree("*", (value_tree(v.fst), value_tree(v.snd)))
    if isinstance(v, Variant):
        tag = "inl" if v.side == 0 else "inr"
        return ValueTree(tag, (value_tree(v.payload),))
    if isinstance(v, SetValue):
        return ValueTree("{}", tuple(value_tree(e) for e in v.elems))
    if isinstance(v, OrSetValue):
        return ValueTree("<>", tuple(value_tree(e) for e in v.elems))
    if isinstance(v, BagValue):
        return ValueTree("[||]", tuple(value_tree(e) for e in v.elems))
    raise OrNRAValueError(f"not a value: {v!r}")
