"""Complex-object values: atoms, pairs, sets, or-sets and internal bags.

Values are immutable and hashable, so sets of sets "just work".  Every
collection stores its elements as a tuple sorted by a canonical total order
(:func:`sort_key`); sets and or-sets additionally deduplicate.  This makes
structural equality, hashing and printing deterministic — the property the
normalization engine and the possible-worlds oracle rely on.

The paper writes ``< >`` for or-sets, ``{ }`` for sets and ``[| |]`` for the
internal multisets of Section 4.  Pairs are written ``( , )``.

Construction helpers accept raw Python scalars and wrap them in
:class:`Atom` automatically::

    vorset(1, 2, 3)                       # <1, 2, 3>
    vset(vpair(1, True), vpair(2, False)) # {(1, true), (2, false)}
"""

from __future__ import annotations

import threading as _threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import OrNRAValueError
from repro.types.kinds import (
    BOOL,
    INT,
    STRING,
    BagType,
    BaseType,
    OrSetType,
    ProdType,
    SetType,
    Type,
    TypeVar,
    UnitType,
    VariantType,
)

__all__ = [
    "Value",
    "Atom",
    "UnitValue",
    "Pair",
    "SetValue",
    "OrSetValue",
    "BagValue",
    "Variant",
    "UNIT_VALUE",
    "TRUE",
    "FALSE",
    "atom",
    "boolean",
    "ensure_value",
    "vpair",
    "vset",
    "vorset",
    "vbag",
    "vinl",
    "vinr",
    "sort_key",
    "use_sort_key_cache",
    "format_value",
    "infer_type",
    "check_type",
    "from_python",
    "to_python",
    "Or",
    "Inl",
    "Inr",
]


class Value:
    """Abstract base class of all complex-object values."""

    __slots__ = ()

    def __str__(self) -> str:
        return format_value(self)


@dataclass(frozen=True, slots=True)
class Atom(Value):
    """An atomic value of a base type.

    ``base`` names the base type (``"int"``, ``"bool"``, ``"string"``, or a
    user-defined name such as ``"module"``); ``value`` is the underlying
    Python scalar, which must be orderable within its base type.
    """

    base: str
    value: object

    def __repr__(self) -> str:
        return f"Atom({self.base}:{self.value!r})"


@dataclass(frozen=True, slots=True)
class UnitValue(Value):
    """The unique element of type ``unit``."""

    def __repr__(self) -> str:
        return "unit"


@dataclass(frozen=True, slots=True)
class Pair(Value):
    """A pair ``(fst, snd)`` of type ``s * t``."""

    fst: Value
    snd: Value

    def __repr__(self) -> str:
        return f"Pair({self.fst!r}, {self.snd!r})"


def _canonical_distinct(elems: Iterable[Value]) -> tuple[Value, ...]:
    distinct = {sort_key(e): e for e in elems}
    return tuple(distinct[k] for k in sorted(distinct))


def _canonical_multi(elems: Iterable[Value]) -> tuple[Value, ...]:
    return tuple(sorted(elems, key=sort_key))


@dataclass(frozen=True, slots=True)
class SetValue(Value):
    """A finite set ``{x1, ..., xn}``; elements are deduplicated and sorted."""

    elems: tuple[Value, ...]

    def __init__(self, elems: Iterable[Value]) -> None:
        object.__setattr__(self, "elems", _canonical_distinct(elems))

    def __iter__(self) -> Iterator[Value]:
        return iter(self.elems)

    def __len__(self) -> int:
        return len(self.elems)

    def __contains__(self, item: Value) -> bool:
        return item in self.elems

    def __repr__(self) -> str:
        return f"SetValue({list(self.elems)!r})"


@dataclass(frozen=True, slots=True)
class OrSetValue(Value):
    """An or-set ``<x1, ..., xn>``; elements are deduplicated and sorted.

    Conceptually it denotes *one* of its elements; the empty or-set ``< >``
    denotes inconsistency (it stands for no object at all).
    """

    elems: tuple[Value, ...]

    def __init__(self, elems: Iterable[Value]) -> None:
        object.__setattr__(self, "elems", _canonical_distinct(elems))

    def __iter__(self) -> Iterator[Value]:
        return iter(self.elems)

    def __len__(self) -> int:
        return len(self.elems)

    def __contains__(self, item: Value) -> bool:
        return item in self.elems

    def __repr__(self) -> str:
        return f"OrSetValue({list(self.elems)!r})"


@dataclass(frozen=True, slots=True)
class Variant(Value):
    """An injection into a variant type ``s + t`` (Section 7 extension).

    ``side`` is 0 for the left injection (``inl``) and 1 for the right
    (``inr``); ``payload`` is the injected value.  Use :func:`vinl` /
    :func:`vinr` to construct.
    """

    side: int
    payload: Value

    def __post_init__(self) -> None:
        if self.side not in (0, 1):
            raise OrNRAValueError(f"variant side must be 0 or 1, got {self.side!r}")

    def __repr__(self) -> str:
        tag = "inl" if self.side == 0 else "inr"
        return f"Variant({tag} {self.payload!r})"


@dataclass(frozen=True, slots=True)
class BagValue(Value):
    """A multiset ``[|x1, ..., xn|]``; duplicates kept, order canonical."""

    elems: tuple[Value, ...]

    def __init__(self, elems: Iterable[Value]) -> None:
        object.__setattr__(self, "elems", _canonical_multi(elems))

    def __iter__(self) -> Iterator[Value]:
        return iter(self.elems)

    def __len__(self) -> int:
        return len(self.elems)

    def __repr__(self) -> str:
        return f"BagValue({list(self.elems)!r})"


UNIT_VALUE = UnitValue()
TRUE = Atom("bool", True)
FALSE = Atom("bool", False)


def atom(value: object, base: str | None = None) -> Value:
    """Wrap a Python scalar into an :class:`Atom` (or pass a Value through).

    Without *base*, the base type is inferred: ``bool`` before ``int``
    (Python's bool is an int subclass), then ``int``, ``string``.
    """
    if isinstance(value, Value):
        return value
    if base is not None:
        return Atom(base, value)
    if isinstance(value, bool):
        return Atom("bool", value)
    if isinstance(value, int):
        return Atom("int", value)
    if isinstance(value, str):
        return Atom("string", value)
    if value is None:
        return UNIT_VALUE
    raise OrNRAValueError(f"cannot make an atom from {value!r}")


def boolean(flag: bool) -> Atom:
    """The boolean atom for *flag*."""
    return TRUE if flag else FALSE


def ensure_value(x: object) -> Value:
    """Coerce *x* to a :class:`Value` (scalars become atoms)."""
    return x if isinstance(x, Value) else atom(x)


def vpair(fst: object, snd: object) -> Pair:
    """Build a pair, wrapping scalars."""
    return Pair(ensure_value(fst), ensure_value(snd))


def vset(*elems: object) -> SetValue:
    """Build a set value, wrapping scalars."""
    return SetValue(ensure_value(e) for e in elems)


def vorset(*elems: object) -> OrSetValue:
    """Build an or-set value, wrapping scalars."""
    return OrSetValue(ensure_value(e) for e in elems)


def vbag(*elems: object) -> BagValue:
    """Build a bag value, wrapping scalars."""
    return BagValue(ensure_value(e) for e in elems)


def vinl(payload: object) -> Variant:
    """Build the left injection ``inl payload``, wrapping scalars."""
    return Variant(0, ensure_value(payload))


def vinr(payload: object) -> Variant:
    """Build the right injection ``inr payload``, wrapping scalars."""
    return Variant(1, ensure_value(payload))


_ATOM_RANK = {"bool": 0, "int": 1, "string": 2}


def _atom_key(a: Atom) -> tuple:
    value = a.value
    if isinstance(value, bool):
        value = int(value)
    rank = _ATOM_RANK.get(a.base, 3)
    return (rank, a.base, value)


# An optional identity-keyed cache of computed sort keys, installed by the
# engine's interning arena (repro.engine.interning).  Entries are keyed by
# id(); the installer must keep the keyed objects alive for the cache's
# lifetime, which the arena guarantees by holding strong references.
# The installation is *per thread* (threading.local), so concurrent
# engine runs — the parallel backend, `run_many` fan-out — never observe
# each other's cache swaps.
_SORT_KEY_TLS = _threading.local()


@contextmanager
def use_sort_key_cache(cache: dict[int, tuple]) -> Iterator[None]:
    """Consult *cache* for precomputed sort keys within the block.

    :func:`sort_key` only *reads* the cache (the installer decides which
    object ids are safe to register); nesting restores the previous cache
    on exit, and the installation is visible only to the calling thread.
    """
    previous = getattr(_SORT_KEY_TLS, "cache", None)
    _SORT_KEY_TLS.cache = cache
    try:
        yield
    finally:
        _SORT_KEY_TLS.cache = previous


def sort_key(v: Value) -> tuple:
    """A canonical total-order key; values of one type compare sensibly.

    Mixed kinds get disjoint key prefixes, so the order is total on all
    values (needed only for canonical storage, never for semantics).
    """
    cache = getattr(_SORT_KEY_TLS, "cache", None)
    if cache is not None:
        hit = cache.get(id(v))
        if hit is not None:
            return hit
    if isinstance(v, UnitValue):
        return (0,)
    if isinstance(v, Atom):
        return (1,) + _atom_key(v)
    if isinstance(v, Pair):
        return (2, sort_key(v.fst), sort_key(v.snd))
    if isinstance(v, SetValue):
        return (3, len(v.elems), tuple(sort_key(e) for e in v.elems))
    if isinstance(v, OrSetValue):
        return (4, len(v.elems), tuple(sort_key(e) for e in v.elems))
    if isinstance(v, BagValue):
        return (5, len(v.elems), tuple(sort_key(e) for e in v.elems))
    if isinstance(v, Variant):
        return (6, v.side, sort_key(v.payload))
    raise OrNRAValueError(f"not a value: {v!r}")


def format_value(v: Value) -> str:
    """Render *v* in the paper's notation (``<..>``, ``{..}``, ``(..)``)."""
    if isinstance(v, UnitValue):
        return "()"
    if isinstance(v, Atom):
        if v.base == "bool":
            return "true" if v.value else "false"
        if v.base == "string":
            return f'"{v.value}"'
        if v.base == "int":
            return str(v.value)
        return f"{v.base}:{v.value}"
    if isinstance(v, Pair):
        return f"({format_value(v.fst)}, {format_value(v.snd)})"
    if isinstance(v, SetValue):
        return "{" + ", ".join(format_value(e) for e in v.elems) + "}"
    if isinstance(v, OrSetValue):
        return "<" + ", ".join(format_value(e) for e in v.elems) + ">"
    if isinstance(v, BagValue):
        return "[|" + ", ".join(format_value(e) for e in v.elems) + "|]"
    if isinstance(v, Variant):
        tag = "inl" if v.side == 0 else "inr"
        return f"{tag} {format_value(v.payload)}"
    raise OrNRAValueError(f"not a value: {v!r}")


_BUILTIN_BASES = {"bool": BOOL, "int": INT, "string": STRING}
_EMPTY_VAR = TypeVar("elem")


def infer_type(v: Value) -> Type:
    """Infer the type of *v*.

    Empty collections get the element type ``'elem`` (a type variable);
    heterogeneous collections raise :class:`OrNRAValueError`.
    """
    if isinstance(v, UnitValue):
        return UnitType()
    if isinstance(v, Atom):
        return _BUILTIN_BASES.get(v.base, BaseType(v.base))
    if isinstance(v, Pair):
        return ProdType(infer_type(v.fst), infer_type(v.snd))
    if isinstance(v, Variant):
        payload = infer_type(v.payload)
        if v.side == 0:
            return VariantType(payload, _EMPTY_VAR)
        return VariantType(_EMPTY_VAR, payload)
    if isinstance(v, (SetValue, OrSetValue, BagValue)):
        wrapper = {SetValue: SetType, OrSetValue: OrSetType, BagValue: BagType}[
            type(v)
        ]
        if not v.elems:
            return wrapper(_EMPTY_VAR)
        merged = infer_type(v.elems[0])
        for e in v.elems[1:]:
            merged = _merge_types(merged, infer_type(e))
        return wrapper(merged)
    raise OrNRAValueError(f"not a value: {v!r}")


def _merge_types(a: Type, b: Type) -> Type:
    """Combine two partial element types, filling ``'elem`` holes.

    Holes arise from empty collections and from the uninhabited side of a
    variant injection; two element types merge when they agree everywhere
    both are concrete.  Raises :class:`OrNRAValueError` on a clash (a
    heterogeneous collection).
    """
    if a == b:
        return a
    if isinstance(a, TypeVar):
        return b
    if isinstance(b, TypeVar):
        return a
    if isinstance(a, ProdType) and isinstance(b, ProdType):
        return ProdType(_merge_types(a.left, b.left), _merge_types(a.right, b.right))
    if isinstance(a, VariantType) and isinstance(b, VariantType):
        return VariantType(
            _merge_types(a.left, b.left), _merge_types(a.right, b.right)
        )
    for kind in (SetType, OrSetType, BagType):
        if isinstance(a, kind) and isinstance(b, kind):
            return kind(_merge_types(a.elem, b.elem))
    raise OrNRAValueError(f"heterogeneous collection: {a!r} vs {b!r}")


def check_type(v: Value, t: Type) -> bool:
    """Does value *v* inhabit type *t*?  (Empty collections inhabit any.)"""
    if isinstance(t, TypeVar):
        return True
    if isinstance(t, UnitType):
        return isinstance(v, UnitValue)
    if isinstance(t, BaseType):
        return isinstance(v, Atom) and v.base == t.name
    if isinstance(t, ProdType):
        return (
            isinstance(v, Pair)
            and check_type(v.fst, t.left)
            and check_type(v.snd, t.right)
        )
    if isinstance(t, VariantType):
        if not isinstance(v, Variant):
            return False
        side_type = t.left if v.side == 0 else t.right
        return check_type(v.payload, side_type)
    if isinstance(t, SetType):
        return isinstance(v, SetValue) and all(check_type(e, t.elem) for e in v)
    if isinstance(t, OrSetType):
        return isinstance(v, OrSetValue) and all(check_type(e, t.elem) for e in v)
    if isinstance(t, BagType):
        return isinstance(v, BagValue) and all(check_type(e, t.elem) for e in v)
    return False


@dataclass(frozen=True, slots=True)
class Or:
    """A plain-Python marker for or-sets, used by :func:`from_python`.

    ``Or(1, 2, 3)`` converts to the or-set ``<1, 2, 3>``; plain frozensets /
    sets convert to ordinary sets.
    """

    items: tuple = field(default=())

    def __init__(self, *items: object) -> None:
        object.__setattr__(self, "items", tuple(items))


@dataclass(frozen=True, slots=True)
class Inl:
    """A plain-Python marker for the left injection, for :func:`from_python`."""

    item: object


@dataclass(frozen=True, slots=True)
class Inr:
    """A plain-Python marker for the right injection, for :func:`from_python`."""

    item: object


def from_python(obj: object) -> Value:
    """Convert nested plain-Python data to a :class:`Value`.

    Conventions: scalars become atoms; 2-tuples become pairs; ``set`` /
    ``frozenset`` become sets; :class:`Or` becomes an or-set; ``list``
    becomes a bag.  (Lists-as-bags only matter internally.)
    """
    if isinstance(obj, Value):
        return obj
    if isinstance(obj, Or):
        return OrSetValue(from_python(i) for i in obj.items)
    if isinstance(obj, Inl):
        return Variant(0, from_python(obj.item))
    if isinstance(obj, Inr):
        return Variant(1, from_python(obj.item))
    if isinstance(obj, (set, frozenset)):
        return SetValue(from_python(i) for i in obj)
    if isinstance(obj, tuple):
        if len(obj) != 2:
            raise OrNRAValueError(
                f"tuples must be pairs (got arity {len(obj)}): {obj!r}"
            )
        return Pair(from_python(obj[0]), from_python(obj[1]))
    if isinstance(obj, list):
        return BagValue(from_python(i) for i in obj)
    return atom(obj)


def to_python(v: Value) -> object:
    """Convert *v* back to plain Python (inverse of :func:`from_python`)."""
    if isinstance(v, UnitValue):
        return None
    if isinstance(v, Atom):
        return v.value
    if isinstance(v, Pair):
        return (to_python(v.fst), to_python(v.snd))
    if isinstance(v, SetValue):
        return frozenset(to_python(e) for e in v)
    if isinstance(v, OrSetValue):
        return Or(*(to_python(e) for e in v))
    if isinstance(v, BagValue):
        return [to_python(e) for e in v]
    if isinstance(v, Variant):
        marker = Inl if v.side == 0 else Inr
        return marker(to_python(v.payload))
    raise OrNRAValueError(f"not a value: {v!r}")
