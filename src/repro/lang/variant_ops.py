"""Variant (sum) types for or-NRA — the Section 7 extension.

The paper's conclusion reports: "Our languages have been extended to
include variant types.  It is known that the coherence result still holds
in the extended languages."  This module provides that extension:

====================  ===========================  ============================
paper (standard)      here                         type
====================  ===========================  ============================
``inl``               :class:`InjectLeft`          ``s -> s + t``
``inr``               :class:`InjectRight`         ``t -> s + t``
``case(f, g)``        :class:`Case`                ``s + t -> r``
``or_kappa_1``        :class:`OrKappa1`            ``<s> + t -> <s + t>``
``or_kappa_2``        :class:`OrKappa2`            ``s + <t> -> <s + t>``
====================  ===========================  ============================

``or_kappa_1`` and ``or_kappa_2`` are the value transformations associated
with the two new type-rewrite rules (``variant_left`` / ``variant_right``):
an injected or-set ``inl <x_1, ..., x_n>`` conceptually denotes one of
``inl x_1, ..., inl x_n``, so it rewrites to ``<inl x_1, ..., inl x_n>``;
an injection from the *other* side carries no or-set at this position and
becomes the singleton ``<inr y>``.  Both preserve conceptual meaning, which
is what keeps Theorem 4.2 (coherence) true for the extended language.

Derived forms: :func:`variant_map` maps a function over whichever side is
present, and :func:`is_left` / :func:`is_right` are boolean discriminators.
"""

from __future__ import annotations

from repro.errors import OrNRATypeError
from repro.types.kinds import FuncType, OrSetType, VariantType
from repro.types.unify import FreshVars, apply_subst, unify
from repro.values.values import OrSetValue, Value, Variant

from repro.lang.morphisms import Compose, Morphism

__all__ = [
    "InjectLeft",
    "InjectRight",
    "Case",
    "OrKappa1",
    "OrKappa2",
    "inl",
    "inr",
    "case",
    "or_kappa1",
    "or_kappa2",
    "variant_map",
    "is_left",
    "is_right",
]


class InjectLeft(Morphism):
    """The left injection ``inl : s -> s + t``."""

    def apply(self, value: Value) -> Value:
        return Variant(0, value)

    def signature(self, fresh: FreshVars) -> FuncType:
        a, b = fresh.fresh(), fresh.fresh()
        return FuncType(a, VariantType(a, b))

    def describe(self) -> str:
        return "inl"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InjectLeft)

    def __hash__(self) -> int:
        return hash("InjectLeft")


class InjectRight(Morphism):
    """The right injection ``inr : t -> s + t``."""

    def apply(self, value: Value) -> Value:
        return Variant(1, value)

    def signature(self, fresh: FreshVars) -> FuncType:
        a, b = fresh.fresh(), fresh.fresh()
        return FuncType(b, VariantType(a, b))

    def describe(self) -> str:
        return "inr"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InjectRight)

    def __hash__(self) -> int:
        return hash("InjectRight")


class Case(Morphism):
    """Case analysis ``case(f, g) : s + t -> r``.

    Applies *on_left* to the payload of a left injection and *on_right*
    to the payload of a right injection; both branches must produce the
    same result type.
    """

    def __init__(self, on_left: Morphism, on_right: Morphism) -> None:
        self.on_left = on_left
        self.on_right = on_right

    def apply(self, value: Value) -> Value:
        if not isinstance(value, Variant):
            raise OrNRATypeError(f"case expects a variant, got {value!r}")
        branch = self.on_left if value.side == 0 else self.on_right
        return branch.apply(value.payload)

    def signature(self, fresh: FreshVars) -> FuncType:
        sig_l = self.on_left.signature(fresh)
        sig_r = self.on_right.signature(fresh)
        subst = unify(sig_l.cod, sig_r.cod)
        return FuncType(
            VariantType(apply_subst(subst, sig_l.dom), apply_subst(subst, sig_r.dom)),
            apply_subst(subst, sig_l.cod),
        )

    def describe(self) -> str:
        return f"case({self.on_left.describe()}, {self.on_right.describe()})"

    def children(self) -> tuple[Morphism, ...]:
        return (self.on_left, self.on_right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Case)
            and self.on_left == other.on_left
            and self.on_right == other.on_right
        )

    def __hash__(self) -> int:
        return hash(("Case", self.on_left, self.on_right))


class OrKappa1(Morphism):
    """``or_kappa_1 : <s> + t -> <s + t>`` — pull an or-set out of ``inl``.

    ``inl <x_1, ..., x_n>`` becomes ``<inl x_1, ..., inl x_n>``; an ``inr``
    input becomes the singleton or-set of itself.  Conceptual meaning is
    preserved in both cases.
    """

    def apply(self, value: Value) -> Value:
        if not isinstance(value, Variant):
            raise OrNRATypeError(f"or_kappa_1 expects a variant, got {value!r}")
        if value.side == 1:
            return OrSetValue((value,))
        if not isinstance(value.payload, OrSetValue):
            raise OrNRATypeError(
                f"or_kappa_1 expects inl of an or-set, got {value.payload!r}"
            )
        return OrSetValue(Variant(0, e) for e in value.payload)

    def signature(self, fresh: FreshVars) -> FuncType:
        a, b = fresh.fresh(), fresh.fresh()
        return FuncType(
            VariantType(OrSetType(a), b), OrSetType(VariantType(a, b))
        )

    def describe(self) -> str:
        return "or_kappa_1"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrKappa1)

    def __hash__(self) -> int:
        return hash("OrKappa1")


class OrKappa2(Morphism):
    """``or_kappa_2 : s + <t> -> <s + t>`` — pull an or-set out of ``inr``."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, Variant):
            raise OrNRATypeError(f"or_kappa_2 expects a variant, got {value!r}")
        if value.side == 0:
            return OrSetValue((value,))
        if not isinstance(value.payload, OrSetValue):
            raise OrNRATypeError(
                f"or_kappa_2 expects inr of an or-set, got {value.payload!r}"
            )
        return OrSetValue(Variant(1, e) for e in value.payload)

    def signature(self, fresh: FreshVars) -> FuncType:
        a, b = fresh.fresh(), fresh.fresh()
        return FuncType(
            VariantType(a, OrSetType(b)), OrSetType(VariantType(a, b))
        )

    def describe(self) -> str:
        return "or_kappa_2"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrKappa2)

    def __hash__(self) -> int:
        return hash("OrKappa2")


def inl() -> InjectLeft:
    """The left injection."""
    return InjectLeft()


def inr() -> InjectRight:
    """The right injection."""
    return InjectRight()


def case(on_left: Morphism, on_right: Morphism) -> Case:
    """Case analysis over a variant."""
    return Case(on_left, on_right)


def or_kappa1() -> OrKappa1:
    """``or_kappa_1 : <s> + t -> <s + t>``."""
    return OrKappa1()


def or_kappa2() -> OrKappa2:
    """``or_kappa_2 : s + <t> -> <s + t>``."""
    return OrKappa2()


def variant_map(on_left: Morphism, on_right: Morphism) -> Morphism:
    """``f + g : s + t -> s' + t'`` — map each side, keeping the tag.

    The standard derived form ``case(inl o f, inr o g)``.
    """
    return Case(Compose(InjectLeft(), on_left), Compose(InjectRight(), on_right))


def is_left() -> Morphism:
    """``s + t -> bool`` — true of left injections."""
    from repro.lang.morphisms import always

    return Case(always(True), always(False))


def is_right() -> Morphism:
    """``s + t -> bool`` — true of right injections."""
    from repro.lang.morphisms import always

    return Case(always(False), always(True))
