"""Lifting linear orders from base types to all types (Section 7, ref [26]).

The OR-SML library ships "a lifting of linear orders from base types to
arbitrary types which is definable in or-NRA".  The construction (Libkin &
Wong [26]) orders:

* pairs lexicographically;
* sets (and or-sets) by comparing their *sorted* element sequences
  lexicographically — equivalently, iterated comparison of least
  distinguishing elements, which is how the algebraic definition works.

We implement the same order semantically and expose it as an or-NRA
primitive of type ``t * t -> bool``; tests verify it is a genuine linear
order (total, antisymmetric, transitive) on random values of every type
and that it restricts to the base order on atoms.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import OrNRAValueError
from repro.types.kinds import BOOL, ProdType, Type
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
)

from repro.lang.morphisms import Primitive

__all__ = ["linear_le", "linear_cmp", "lifted_le_primitive", "sort_values"]

BaseCmp = Callable[[Atom, Atom], int]


def _default_base_cmp(a: Atom, b: Atom) -> int:
    if a.base != b.base:
        raise OrNRAValueError(f"comparing atoms of bases {a.base}/{b.base}")
    left, right = a.value, b.value
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if left < right:  # type: ignore[operator]
        return -1
    if left > right:  # type: ignore[operator]
        return 1
    return 0


def linear_cmp(x: Value, y: Value, base_cmp: BaseCmp = _default_base_cmp) -> int:
    """Three-way comparison under the lifted linear order."""
    if isinstance(x, UnitValue) and isinstance(y, UnitValue):
        return 0
    if isinstance(x, Atom) and isinstance(y, Atom):
        return base_cmp(x, y)
    if isinstance(x, Pair) and isinstance(y, Pair):
        first = linear_cmp(x.fst, y.fst, base_cmp)
        if first != 0:
            return first
        return linear_cmp(x.snd, y.snd, base_cmp)
    if isinstance(x, Variant) and isinstance(y, Variant):
        # Left injections before right ones, then compare payloads — the
        # usual linear sum order.
        if x.side != y.side:
            return -1 if x.side < y.side else 1
        return linear_cmp(x.payload, y.payload, base_cmp)
    if type(x) is type(y) and isinstance(x, (SetValue, OrSetValue, BagValue)):
        xs = sort_values(list(x.elems), base_cmp)
        ys = sort_values(list(y.elems), base_cmp)  # type: ignore[union-attr]
        for a, b in zip(xs, ys, strict=False):
            c = linear_cmp(a, b, base_cmp)
            if c != 0:
                return c
        return (len(xs) > len(ys)) - (len(xs) < len(ys))
    raise OrNRAValueError(f"values of different kinds: {x!r} vs {y!r}")


def linear_le(x: Value, y: Value, base_cmp: BaseCmp = _default_base_cmp) -> bool:
    """``x <= y`` under the lifted linear order."""
    return linear_cmp(x, y, base_cmp) <= 0


def sort_values(values: list[Value], base_cmp: BaseCmp = _default_base_cmp) -> list[Value]:
    """Sort *values* by the lifted linear order."""
    import functools

    return sorted(
        values, key=functools.cmp_to_key(lambda a, b: linear_cmp(a, b, base_cmp))
    )


def lifted_le_primitive(t: Type) -> Primitive:
    """The order as an or-NRA primitive ``leq_t : t * t -> bool``."""
    from repro.values.values import boolean

    def run(v: Value) -> Value:
        if not isinstance(v, Pair):
            raise OrNRAValueError(f"leq expects a pair, got {v!r}")
        return boolean(linear_le(v.fst, v.snd))

    return Primitive("lifted_leq", run, ProdType(t, t), BOOL)
