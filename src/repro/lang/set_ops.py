"""The set fragment NRA (Figure 1, left column).

====================  ===========================  ============================
paper                 here                         type
====================  ===========================  ============================
``eta``               :class:`SetEta`              ``s -> {s}``
``mu``                :class:`SetMu`               ``{{s}} -> {s}``
``map(f)``            :class:`SetMap`              ``{s} -> {t}``
``rho_2``             :class:`SetRho2`             ``s * {t} -> {s * t}``
``U``                 :class:`SetUnion`            ``{s} * {s} -> {s}``
``K{}``               :class:`KEmptySet`           ``unit -> {s}``
====================  ===========================  ============================

Derived forms: :func:`set_rho1`, :func:`flatmap` (the monad extension
``ext f = mu o map f``), :func:`set_cartesian`.
"""

from __future__ import annotations

from repro.errors import OrNRATypeError
from repro.types.kinds import FuncType, ProdType, SetType, UnitType
from repro.types.unify import FreshVars
from repro.values.values import Pair, SetValue, Value

from repro.lang.morphisms import Compose, Morphism, PairOf, Proj1, Proj2

__all__ = [
    "SetEta",
    "SetMu",
    "SetMap",
    "SetRho2",
    "SetUnion",
    "KEmptySet",
    "set_eta",
    "set_mu",
    "set_map",
    "set_rho2",
    "set_rho1",
    "set_union",
    "empty_set",
    "flatmap",
    "set_cartesian",
]


class SetEta(Morphism):
    """Singleton formation ``eta(x) = {x}``."""

    def apply(self, value: Value) -> Value:
        return SetValue((value,))

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(a, SetType(a))

    def describe(self) -> str:
        return "eta"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetEta)

    def __hash__(self) -> int:
        return hash("SetEta")


class SetMu(Morphism):
    """Flattening ``mu : {{s}} -> {s}``."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, SetValue):
            raise OrNRATypeError(f"mu expects a set of sets, got {value!r}")
        out: list[Value] = []
        for inner in value:
            if not isinstance(inner, SetValue):
                raise OrNRATypeError(f"mu expects a set of sets, got {inner!r}")
            out.extend(inner.elems)
        return SetValue(out)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(SetType(SetType(a)), SetType(a))

    def describe(self) -> str:
        return "mu"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetMu)

    def __hash__(self) -> int:
        return hash("SetMu")


class SetMap(Morphism):
    """``map(f) : {s} -> {t}`` applies *f* to every element."""

    def __init__(self, body: Morphism) -> None:
        self.body = body

    def apply(self, value: Value) -> Value:
        if not isinstance(value, SetValue):
            raise OrNRATypeError(f"map expects a set, got {value!r}")
        return SetValue(self.body.apply(e) for e in value)

    def signature(self, fresh: FreshVars) -> FuncType:
        sig = self.body.signature(fresh)
        return FuncType(SetType(sig.dom), SetType(sig.cod))

    def describe(self) -> str:
        return f"map({self.body.describe()})"

    def children(self) -> tuple[Morphism, ...]:
        return (self.body,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetMap) and self.body == other.body

    def __hash__(self) -> int:
        return hash(("SetMap", self.body))


class SetRho2(Morphism):
    """``rho_2 : s * {t} -> {s * t}`` pairs the first component with each
    element of the second."""

    def apply(self, value: Value) -> Value:
        if not (isinstance(value, Pair) and isinstance(value.snd, SetValue)):
            raise OrNRATypeError(f"rho_2 expects (s, {{t}}), got {value!r}")
        return SetValue(Pair(value.fst, e) for e in value.snd)

    def signature(self, fresh: FreshVars) -> FuncType:
        a, b = fresh.fresh(), fresh.fresh()
        return FuncType(ProdType(a, SetType(b)), SetType(ProdType(a, b)))

    def describe(self) -> str:
        return "rho_2"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetRho2)

    def __hash__(self) -> int:
        return hash("SetRho2")


class SetUnion(Morphism):
    """Binary union ``U : {s} * {s} -> {s}``."""

    def apply(self, value: Value) -> Value:
        if not (
            isinstance(value, Pair)
            and isinstance(value.fst, SetValue)
            and isinstance(value.snd, SetValue)
        ):
            raise OrNRATypeError(f"union expects ({{s}}, {{s}}), got {value!r}")
        return SetValue(value.fst.elems + value.snd.elems)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(ProdType(SetType(a), SetType(a)), SetType(a))

    def describe(self) -> str:
        return "union"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetUnion)

    def __hash__(self) -> int:
        return hash("SetUnion")


class KEmptySet(Morphism):
    """``K{} : unit -> {s}`` produces the empty set."""

    def apply(self, value: Value) -> Value:
        return SetValue(())

    def signature(self, fresh: FreshVars) -> FuncType:
        return FuncType(UnitType(), SetType(fresh.fresh()))

    def describe(self) -> str:
        return "K{}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KEmptySet)

    def __hash__(self) -> int:
        return hash("KEmptySet")


def set_eta() -> SetEta:
    """Singleton formation."""
    return SetEta()


def set_mu() -> SetMu:
    """Set flattening."""
    return SetMu()


def set_map(body: Morphism) -> SetMap:
    """``map(body)``."""
    return SetMap(body)


def set_rho2() -> SetRho2:
    """``rho_2``."""
    return SetRho2()


def set_rho1() -> Morphism:
    """``rho_1 : {s} * t -> {s * t}``, derived by swapping around ``rho_2``.

    The paper defines the or-set analog this way; the set version is
    symmetric: ``map((pi_2, pi_1)) o rho_2 o (pi_2, pi_1)``.
    """
    swap = PairOf(Proj2(), Proj1())
    return Compose(SetMap(swap), Compose(SetRho2(), swap))


def set_union() -> SetUnion:
    """Binary set union."""
    return SetUnion()


def empty_set() -> KEmptySet:
    """``K{}``."""
    return KEmptySet()


def flatmap(body: Morphism) -> Morphism:
    """The monad extension ``ext(f) = mu o map(f) : {s} -> {t}``."""
    return Compose(SetMu(), SetMap(body))


def set_cartesian() -> Morphism:
    """Cartesian product ``{s} * {t} -> {s * t}``.

    ``cartprod = mu o map(rho_2 o (pi_1 o pi_1, pi_2)) o rho_1``-style
    composition, expressed here as ``flatmap`` over ``rho_1`` then ``rho_2``.
    """
    # rho_1 : {s} * t' -> {s * t'} with t' = {t}; each pair (x, T) then goes
    # through rho_2 to become {(x, y) | y in T}.
    return Compose(SetMu(), Compose(SetMap(SetRho2()), set_rho1()))
