"""Morphism typing utilities (the inference Section 2 alludes to).

Every :class:`~repro.lang.morphisms.Morphism` can produce its most general
type via unification; this module wraps that into the operations callers
actually want: inference, applicability checks and concrete result types —
plus :func:`elaborate`, which threads a concrete input type through an
expression and reports the type at every composition step (used by error
messages and by the losslessness machinery's explanations).
"""

from __future__ import annotations

from repro.errors import OrNRATypeError
from repro.types.kinds import FuncType, Type
from repro.types.unify import FreshVars
from repro.values.values import Value, check_type

from repro.lang.morphisms import Compose, Morphism

__all__ = [
    "most_general_type",
    "can_apply",
    "result_type",
    "elaborate",
    "check_value_against",
]


def most_general_type(m: Morphism) -> FuncType:
    """The principal ``dom -> cod`` type of *m* (may contain variables)."""
    return m.signature(FreshVars())


def can_apply(m: Morphism, t: Type) -> bool:
    """Does *m* accept an input of type *t*?"""
    try:
        m.output_type(t)
    except OrNRATypeError:
        return False
    return True


def result_type(m: Morphism, t: Type) -> Type:
    """The output type of *m* on inputs of type *t* (raises on mismatch)."""
    return m.output_type(t)


def elaborate(m: Morphism, t: Type) -> list[tuple[str, Type, Type]]:
    """The typed pipeline of a composition chain on input type *t*.

    Returns ``[(description, input_type, output_type)]`` for each stage in
    application order; non-composite morphisms yield a single entry.
    """
    stages: list[Morphism] = []

    def flatten(node: Morphism) -> None:
        if isinstance(node, Compose):
            flatten(node.before)
            flatten(node.after)
        else:
            stages.append(node)

    flatten(m)
    out: list[tuple[str, Type, Type]] = []
    current = t
    for stage in stages:
        produced = stage.output_type(current)
        out.append((stage.describe(), current, produced))
        current = produced
    return out


def check_value_against(value: Value, t: Type) -> None:
    """Raise :class:`OrNRATypeError` when *value* does not inhabit *t*."""
    if not check_type(value, t):
        raise OrNRATypeError(f"value {value!r} does not inhabit {t!r}")
