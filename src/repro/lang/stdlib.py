"""The OR-SML-style derived library (Section 7).

The paper's implementation ships "several libraries of derived functions
... membership test, set difference, inclusion test, cartesian product,
etc., and their analogs for or-sets which ... are definable in or-NRA+".
This module rebuilds that library as *compositions of the Figure 1
primitives* — no Python-level cheating — demonstrating the definability
results of [5] that the paper relies on:

====================  ================================  ======================
function              type                              built from
====================  ================================  ======================
``nonempty``          ``{s} -> bool``                   ``= o (map !, eta o !)``
``is_empty``          ``{s} -> bool``                   ``not o nonempty``
``select(p)``         ``{s} -> {s}``                    ``mu o map(cond(p, eta, K{} o !))``
``set_exists(p)``     ``{s} -> bool``                   ``nonempty o select(p)``
``set_forall(p)``     ``{s} -> bool``                   ``is_empty o select(not o p)``
``member``            ``s * {s} -> bool``               via ``rho_2`` + ``=``
``subset``            ``{s} * {s} -> bool``             via ``rho_1`` + ``member``
``set_intersect``     ``{s} * {s} -> {s}``              select by membership
``set_difference``    ``{s} * {s} -> {s}``              select by non-membership
``set_eq``            ``{s} * {s} -> bool``             mutual inclusion
====================  ================================  ======================

plus the or-set analogs (``or_nonempty``, ``or_select``, ...) obtained by
swapping the collection operators, exactly as Wadler's observation about
collection monads promises.  The or-set selection semantics is the intro's
example: keep the alternatives satisfying ``p``.
"""

from __future__ import annotations

from repro.lang.bag_ops import DMap
from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Eq,
    Id,
    Morphism,
    PairOf,
    Proj1,
    Proj2,
    compose,
)
from repro.lang.orset_ops import (
    KEmptyOrSet,
    OrEta,
    OrMap,
    OrMu,
    OrRho2,
    or_rho1 as _or_rho1,
)
from repro.lang.primitives import bool_not
from repro.lang.set_ops import (
    KEmptySet,
    SetEta,
    SetMap,
    SetMu,
    SetRho2,
    set_rho1 as _set_rho1,
)

__all__ = [
    "nonempty",
    "is_empty",
    "select",
    "set_exists",
    "set_forall",
    "member",
    "subset",
    "set_eq_morphism",
    "set_intersect",
    "set_difference",
    "or_nonempty",
    "or_is_empty",
    "or_select",
    "or_exists",
    "or_forall",
    "or_member",
    "or_subset",
    "or_intersect",
    "or_difference",
    "bag_size_preserving_id",
]


def nonempty() -> Morphism:
    """``{s} -> bool``: ``= o (map(!), eta o !)``.

    ``map(!)`` sends a non-empty set to ``{()}`` and the empty set to
    ``{}``; comparing with the singleton ``{()}`` decides emptiness.
    """
    return Compose(Eq(), PairOf(SetMap(Bang()), Compose(SetEta(), Bang())))


def is_empty() -> Morphism:
    """``{s} -> bool`` — negation of :func:`nonempty`."""
    return Compose(bool_not(), nonempty())


def select(p: Morphism) -> Morphism:
    """``select(p) : {s} -> {s}`` — the intro's filtering idiom
    ``mu o map(cond(p, eta, K{} o !))``."""
    return Compose(SetMu(), SetMap(Cond(p, SetEta(), Compose(KEmptySet(), Bang()))))


def set_exists(p: Morphism) -> Morphism:
    """``{s} -> bool``: some element satisfies *p*."""
    return Compose(nonempty(), select(p))


def set_forall(p: Morphism) -> Morphism:
    """``{s} -> bool``: every element satisfies *p*."""
    return Compose(is_empty(), select(Compose(bool_not(), p)))


def member() -> Morphism:
    """``s * {s} -> bool``: pair the candidate with every element
    (``rho_2``), test equality, ask whether any test succeeded."""
    return compose(set_exists(Id()), SetMap(Eq()), SetRho2())


def subset() -> Morphism:
    """``{s} * {s} -> bool``: every element of the first is a member of the
    second; ``rho_1`` turns ``(X, Y)`` into ``{(x, Y) | x in X}``."""
    return compose(set_forall(Id()), SetMap(member()), _set_rho1())


def set_eq_morphism() -> Morphism:
    """``{s} * {s} -> bool`` — extensional equality via mutual inclusion.

    (Values are canonical, so the primitive ``=`` agrees; this derived form
    demonstrates definability.)
    """
    from repro.lang.primitives import bool_and

    swap = PairOf(Proj2(), Proj1())
    return Compose(bool_and(), PairOf(subset(), Compose(subset(), swap)))


def set_intersect() -> Morphism:
    """``{s} * {s} -> {s}``: keep elements of the first that belong to the
    second."""
    keep = Cond(member(), Compose(SetEta(), Proj1()), Compose(KEmptySet(), Bang()))
    return compose(SetMu(), SetMap(keep), _set_rho1())


def set_difference() -> Morphism:
    """``{s} * {s} -> {s}``: keep elements of the first *not* in the
    second."""
    keep = Cond(
        Compose(bool_not(), member()),
        Compose(SetEta(), Proj1()),
        Compose(KEmptySet(), Bang()),
    )
    return compose(SetMu(), SetMap(keep), _set_rho1())


# ---------------------------------------------------------------------------
# Or-set analogs (swap the collection monad, as in Section 2's observation)
# ---------------------------------------------------------------------------


def or_nonempty() -> Morphism:
    """``<s> -> bool`` — consistency test (non-empty or-set)."""
    return Compose(Eq(), PairOf(OrMap(Bang()), Compose(OrEta(), Bang())))


def or_is_empty() -> Morphism:
    """``<s> -> bool`` — the inconsistency test."""
    return Compose(bool_not(), or_nonempty())


def or_select(p: Morphism) -> Morphism:
    """``<s> -> <s>``: keep the alternatives satisfying *p* — exactly the
    intro's ``or_mu o ormap(cond(p, or_eta, K<> o !))``."""
    return Compose(
        OrMu(), OrMap(Cond(p, OrEta(), Compose(KEmptyOrSet(), Bang())))
    )


def or_exists(p: Morphism) -> Morphism:
    """``<s> -> bool``: some alternative satisfies *p*."""
    return Compose(or_nonempty(), or_select(p))


def or_forall(p: Morphism) -> Morphism:
    """``<s> -> bool``: every alternative satisfies *p*."""
    return Compose(or_is_empty(), or_select(Compose(bool_not(), p)))


def or_member() -> Morphism:
    """``s * <s> -> bool``: is the candidate among the alternatives?"""
    return compose(or_exists(Id()), OrMap(Eq()), OrRho2())


def or_subset() -> Morphism:
    """``<s> * <s> -> bool``: alternatives of the first all occur in the
    second."""
    return compose(or_forall(Id()), OrMap(or_member()), _or_rho1())


def or_intersect() -> Morphism:
    """``<s> * <s> -> <s>``: alternatives common to both."""
    keep = Cond(
        or_member(), Compose(OrEta(), Proj1()), Compose(KEmptyOrSet(), Bang())
    )
    return compose(OrMu(), OrMap(keep), _or_rho1())


def or_difference() -> Morphism:
    """``<s> * <s> -> <s>``: alternatives of the first absent from the
    second (ruling alternatives out — an information *gain* under the
    Smyth reading)."""
    keep = Cond(
        Compose(bool_not(), or_member()),
        Compose(OrEta(), Proj1()),
        Compose(KEmptyOrSet(), Bang()),
    )
    return compose(OrMu(), OrMap(keep), _or_rho1())


def bag_size_preserving_id() -> Morphism:
    """``dmap(id)`` — a bag identity witnessing cardinality preservation
    (used by coherence tests)."""
    return DMap(Id())
