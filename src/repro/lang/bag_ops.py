"""Multiset (bag) operators: the Section 4 internals plus the full nested
bag language of the Section 7 future work.

Normalization must not collapse duplicate or-sets prematurely: the paper's
example is that normalizing ``{<a,b>, <a,b>}`` as a *set* loses the choice
``{a, b}``.  The fix is to translate sets to bags, normalize there, and
collapse duplicates only at the very end.  Two bag operators are needed
for that engine:

* ``dmap(f) : [|s|] -> [|t|]`` — like ``map`` but cardinality-preserving;
* ``alpha_d : [|<s>|] -> <[|s|]>`` — like ``alpha`` but keeping duplicate
  choices, e.g. ``alpha_d [|<1,2>, <1,2>|] = <[|1,1|], [|1,2|], [|2,2|]>``.

The conclusion then proposes "combining the or-set component of or-NRA
and the standard nested bag language such as the one in [25]" (Libkin &
Wong, *Some properties of query languages for bags*).  The remaining
operators here are that standard bag language:

====================  ===========================  ============================
BQL operator          here                         type
====================  ===========================  ============================
``b_eta``             :class:`BagEta`              ``s -> [|s|]``
``b_mu``              :class:`BagMu`               ``[|[|s|]|] -> [|s|]``
``b_map(f)``          :class:`DMap`                ``[|s|] -> [|t|]``
``b_rho_2``           :class:`BagRho2`             ``s * [|t|] -> [|s * t|]``
``⊎`` (additive)      :class:`BagUnion`            ``[|s|] * [|s|] -> [|s|]``
``monus``             :class:`BagMonus`            ``[|s|] * [|s|] -> [|s|]``
``max``               :class:`BagMaxUnion`         ``[|s|] * [|s|] -> [|s|]``
``min``               :class:`BagMinIntersect`     ``[|s|] * [|s|] -> [|s|]``
``unique``            :class:`BagUnique`           ``[|s|] -> [|s|]``
``K[||]``             :class:`KEmptyBag`           ``unit -> [|s|]``
``count``             :class:`BagCount`            ``[|s|] -> int``
``mult``              :class:`BagMultiplicity`     ``s * [|s|] -> int``
``bagtoset``          :class:`BagToSet`            ``[|s|] -> {s}``
``settobag``          :class:`SetToBag`            ``{s} -> [|s|]``
====================  ===========================  ============================

``monus``/``max``/``min`` act on multiplicities (truncated subtraction,
pointwise maximum, pointwise minimum); with ``⊎`` and ``unique`` they
generate the usual BQL relational fragment.  ``alpha_d`` connects bags to
or-sets exactly as ``alpha`` connects sets to or-sets, so the combined
language manipulates disjunctive multiset data directly.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import OrNRATypeError
from repro.types.kinds import INT, BagType, FuncType, OrSetType, ProdType, SetType, UnitType
from repro.types.unify import FreshVars
from repro.values.values import Atom, BagValue, Pair, SetValue, Value

from repro.lang.morphisms import Morphism

__all__ = [
    "DMap",
    "AlphaD",
    "BagRho2",
    "BagEta",
    "BagMu",
    "BagUnion",
    "BagMonus",
    "BagMaxUnion",
    "BagMinIntersect",
    "BagUnique",
    "KEmptyBag",
    "BagCount",
    "BagMultiplicity",
    "BagToSet",
    "SetToBag",
    "dmap",
    "alpha_d",
    "bag_rho2",
    "bag_eta",
    "bag_mu",
    "bag_union",
    "bag_monus",
    "bag_max_union",
    "bag_min_intersect",
    "bag_unique",
    "empty_bag",
    "bag_count",
    "bag_multiplicity",
    "bagtoset",
    "settobag",
    "bag_flatmap",
    "bag_cartesian",
]


class DMap(Morphism):
    """``dmap(f) : [|s|] -> [|t|]`` — map preserving multiplicities."""

    def __init__(self, body: Morphism) -> None:
        self.body = body

    def apply(self, value: Value) -> Value:
        if not isinstance(value, BagValue):
            raise OrNRATypeError(f"dmap expects a bag, got {value!r}")
        return BagValue(self.body.apply(e) for e in value)

    def signature(self, fresh: FreshVars) -> FuncType:
        sig = self.body.signature(fresh)
        return FuncType(BagType(sig.dom), BagType(sig.cod))

    def describe(self) -> str:
        return f"dmap({self.body.describe()})"

    def children(self) -> tuple[Morphism, ...]:
        return (self.body,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DMap) and self.body == other.body

    def __hash__(self) -> int:
        return hash(("DMap", self.body))


class AlphaD(Morphism):
    """``alpha_d : [|<s>|] -> <[|s|]>`` — duplicate-keeping choices."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, BagValue):
            raise OrNRATypeError(f"alpha_d expects a bag of or-sets, got {value!r}")
        from repro.lang.orset_ops import alpha_value

        return alpha_value(value.elems, dedup=False)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(BagType(OrSetType(a)), OrSetType(BagType(a)))

    def describe(self) -> str:
        return "alpha_d"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AlphaD)

    def __hash__(self) -> int:
        return hash("AlphaD")


class BagRho2(Morphism):
    """``bag_rho_2 : s * [|t|] -> [|s * t|]`` (completeness companion)."""

    def apply(self, value: Value) -> Value:
        if not (isinstance(value, Pair) and isinstance(value.snd, BagValue)):
            raise OrNRATypeError(f"bag_rho_2 expects (s, [|t|]), got {value!r}")
        return BagValue(Pair(value.fst, e) for e in value.snd)

    def signature(self, fresh: FreshVars) -> FuncType:
        a, b = fresh.fresh(), fresh.fresh()
        return FuncType(ProdType(a, BagType(b)), BagType(ProdType(a, b)))

    def describe(self) -> str:
        return "bag_rho_2"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagRho2)

    def __hash__(self) -> int:
        return hash("BagRho2")


class BagEta(Morphism):
    """Singleton bag formation ``b_eta(x) = [|x|]``."""

    def apply(self, value: Value) -> Value:
        return BagValue((value,))

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(a, BagType(a))

    def describe(self) -> str:
        return "b_eta"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagEta)

    def __hash__(self) -> int:
        return hash("BagEta")


class BagMu(Morphism):
    """Additive bag flattening ``b_mu : [|[|s|]|] -> [|s|]``.

    Multiplicities add up: flattening ``[|[|1|], [|1|]|]`` gives ``[|1, 1|]``.
    """

    def apply(self, value: Value) -> Value:
        if not isinstance(value, BagValue):
            raise OrNRATypeError(f"b_mu expects a bag of bags, got {value!r}")
        out: list[Value] = []
        for inner in value:
            if not isinstance(inner, BagValue):
                raise OrNRATypeError(
                    f"b_mu expects a bag of bags, got element {inner!r}"
                )
            out.extend(inner.elems)
        return BagValue(out)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(BagType(BagType(a)), BagType(a))

    def describe(self) -> str:
        return "b_mu"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagMu)

    def __hash__(self) -> int:
        return hash("BagMu")


def _expect_bag_pair(op: str, value: Value) -> tuple[BagValue, BagValue]:
    if not (
        isinstance(value, Pair)
        and isinstance(value.fst, BagValue)
        and isinstance(value.snd, BagValue)
    ):
        raise OrNRATypeError(f"{op} expects ([|s|], [|s|]), got {value!r}")
    return value.fst, value.snd


class _BagBinop(Morphism):
    """Shared shell of the binary multiplicity operators."""

    _NAME = "?"

    def _combine(self, left: Counter, right: Counter) -> Counter:
        raise NotImplementedError

    def apply(self, value: Value) -> Value:
        left, right = _expect_bag_pair(self._NAME, value)
        merged = self._combine(Counter(left.elems), Counter(right.elems))
        out: list[Value] = []
        for elem, mult in merged.items():
            out.extend([elem] * mult)
        return BagValue(out)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(ProdType(BagType(a), BagType(a)), BagType(a))

    def describe(self) -> str:
        return self._NAME

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self).__name__)


class BagUnion(_BagBinop):
    """Additive union ``⊎``: multiplicities add."""

    _NAME = "b_union"

    def _combine(self, left: Counter, right: Counter) -> Counter:
        return left + right


class BagMonus(_BagBinop):
    """Bag difference ``monus``: truncated multiplicity subtraction."""

    _NAME = "monus"

    def _combine(self, left: Counter, right: Counter) -> Counter:
        return left - right  # Counter subtraction is already truncated.


class BagMaxUnion(_BagBinop):
    """Maximum union: pointwise max of multiplicities."""

    _NAME = "b_max"

    def _combine(self, left: Counter, right: Counter) -> Counter:
        return left | right


class BagMinIntersect(_BagBinop):
    """Intersection: pointwise min of multiplicities."""

    _NAME = "b_min"

    def _combine(self, left: Counter, right: Counter) -> Counter:
        return left & right


class BagUnique(Morphism):
    """Duplicate elimination ``unique : [|s|] -> [|s|]``.

    BQL's ``unique`` drops every multiplicity to one; it is what separates
    the bag algebra from the relational algebra in expressive power.
    """

    def apply(self, value: Value) -> Value:
        if not isinstance(value, BagValue):
            raise OrNRATypeError(f"unique expects a bag, got {value!r}")
        seen: list[Value] = []
        for e in value:
            if e not in seen:
                seen.append(e)
        return BagValue(seen)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(BagType(a), BagType(a))

    def describe(self) -> str:
        return "unique"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagUnique)

    def __hash__(self) -> int:
        return hash("BagUnique")


class KEmptyBag(Morphism):
    """``K[||] : unit -> [|s|]`` produces the empty bag."""

    def apply(self, value: Value) -> Value:
        return BagValue(())

    def signature(self, fresh: FreshVars) -> FuncType:
        return FuncType(UnitType(), BagType(fresh.fresh()))

    def describe(self) -> str:
        return "K[||]"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KEmptyBag)

    def __hash__(self) -> int:
        return hash("KEmptyBag")


class BagCount(Morphism):
    """``count : [|s|] -> int`` — the bag's total multiplicity."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, BagValue):
            raise OrNRATypeError(f"count expects a bag, got {value!r}")
        return Atom("int", len(value.elems))

    def signature(self, fresh: FreshVars) -> FuncType:
        return FuncType(BagType(fresh.fresh()), INT)

    def describe(self) -> str:
        return "count"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagCount)

    def __hash__(self) -> int:
        return hash("BagCount")


class BagMultiplicity(Morphism):
    """``mult : s * [|s|] -> int`` — how many times the element occurs."""

    def apply(self, value: Value) -> Value:
        if not (isinstance(value, Pair) and isinstance(value.snd, BagValue)):
            raise OrNRATypeError(f"mult expects (s, [|s|]), got {value!r}")
        return Atom("int", sum(1 for e in value.snd if e == value.fst))

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(ProdType(a, BagType(a)), INT)

    def describe(self) -> str:
        return "mult"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagMultiplicity)

    def __hash__(self) -> int:
        return hash("BagMultiplicity")


class BagToSet(Morphism):
    """``bagtoset : [|s|] -> {s}`` — forget multiplicities."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, BagValue):
            raise OrNRATypeError(f"bagtoset expects a bag, got {value!r}")
        return SetValue(value.elems)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(BagType(a), SetType(a))

    def describe(self) -> str:
        return "bagtoset"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BagToSet)

    def __hash__(self) -> int:
        return hash("BagToSet")


class SetToBag(Morphism):
    """``settobag : {s} -> [|s|]`` — single multiplicities."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, SetValue):
            raise OrNRATypeError(f"settobag expects a set, got {value!r}")
        return BagValue(value.elems)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(SetType(a), BagType(a))

    def describe(self) -> str:
        return "settobag"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetToBag)

    def __hash__(self) -> int:
        return hash("SetToBag")


def dmap(body: Morphism) -> DMap:
    """``dmap(body)``."""
    return DMap(body)


def alpha_d() -> AlphaD:
    """``alpha_d``."""
    return AlphaD()


def bag_rho2() -> BagRho2:
    """``bag_rho_2``."""
    return BagRho2()


def bag_eta() -> BagEta:
    """Singleton bag formation."""
    return BagEta()


def bag_mu() -> BagMu:
    """Additive bag flattening."""
    return BagMu()


def bag_union() -> BagUnion:
    """Additive union ``⊎``."""
    return BagUnion()


def bag_monus() -> BagMonus:
    """Truncated bag difference."""
    return BagMonus()


def bag_max_union() -> BagMaxUnion:
    """Pointwise-max union."""
    return BagMaxUnion()


def bag_min_intersect() -> BagMinIntersect:
    """Pointwise-min intersection."""
    return BagMinIntersect()


def bag_unique() -> BagUnique:
    """Duplicate elimination."""
    return BagUnique()


def empty_bag() -> KEmptyBag:
    """``K[||]``."""
    return KEmptyBag()


def bag_count() -> BagCount:
    """Total multiplicity."""
    return BagCount()


def bag_multiplicity() -> BagMultiplicity:
    """Occurrence count of an element."""
    return BagMultiplicity()


def bagtoset() -> BagToSet:
    """``bagtoset``."""
    return BagToSet()


def settobag() -> SetToBag:
    """``settobag``."""
    return SetToBag()


def bag_flatmap(body: Morphism) -> Morphism:
    """``b_ext(f) = b_mu o dmap(f) : [|s|] -> [|t|]``."""
    from repro.lang.morphisms import Compose

    return Compose(BagMu(), DMap(body))


def bag_cartesian() -> Morphism:
    """``[|s|] * [|t|] -> [|s * t|]`` — multiplicities multiply.

    The bag analog of the ``orcp`` composition from the proof of
    Theorem 5.1: ``b_mu o dmap(bag_rho_1) o bag_rho_2`` with the swap-based
    ``bag_rho_1``.
    """
    from repro.lang.morphisms import Compose, PairOf, Proj1, Proj2

    swap = PairOf(Proj2(), Proj1())
    bag_rho1 = Compose(DMap(swap), Compose(BagRho2(), swap))
    return Compose(BagMu(), Compose(DMap(bag_rho1), BagRho2()))
