"""Structural recursion on sets, or-sets and bags (Section 7).

The OR-SML package "includes ... structural recursion on sets and or-sets"
— the insert-presentation recursion of Breazu-Tannen, Buneman & Naqvi
[3, 4]::

    sr(e, i) {}           = e
    sr(e, i) ({x} U X)    = i(x, sr(e, i) X)

For the result to be well defined on *sets* the combinator ``i`` must not
care about insertion order (left-commutativity) or repeated insertions of
the same element (idempotence)::

    i(x, i(y, a)) = i(y, i(x, a))        (left-commutativity)
    i(x, i(x, a)) = i(x, a)              (idempotence)

On *or-sets* the same presentation applies (or-sets are duplicate-free
collections structurally), and on *bags* only left-commutativity is
required.  These preconditions are undecidable in general, so — like
OR-SML — the library offers both an unchecked fold and a *checked* variant
that dynamically verifies the two laws on the elements actually being
folded (a sound runtime approximation: a violated law on the input proves
ill-definedness; see [4]).

Morphism wrappers (:class:`SetSR`, :class:`OrSetSR`, :class:`BagSR`) make
structural recursion available inside or-NRA queries, with the combinator
given as a morphism ``i : s * t -> t`` and the seed as a value ``e : t``.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import EligibilityError, OrNRATypeError
from repro.types.kinds import BagType, FuncType, OrSetType, ProdType, SetType
from repro.types.unify import FreshVars, apply_subst, unify
from repro.values.values import (
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    Value,
    ensure_value,
    infer_type,
)

from repro.lang.morphisms import Morphism

__all__ = [
    "fold_set",
    "fold_orset",
    "fold_bag",
    "check_left_commutative",
    "check_idempotent",
    "SetSR",
    "OrSetSR",
    "BagSR",
    "sr_set",
    "sr_orset",
    "sr_bag",
]

Insert = Callable[[Value, Value], Value]


def check_left_commutative(insert: Insert, elems: Iterable[Value], seed: Value) -> bool:
    """Does ``i(x, i(y, a)) = i(y, i(x, a))`` hold on the given elements?

    Checks every ordered pair of (distinct-position) elements against the
    accumulators reachable from *seed*; a failure proves the recursion is
    ill-defined on this input.
    """
    elems = list(elems)
    accs = [seed]
    for e in elems:
        accs.append(insert(e, accs[-1]))
    for a in accs:
        for x in elems:
            for y in elems:
                if insert(x, insert(y, a)) != insert(y, insert(x, a)):
                    return False
    return True


def check_idempotent(insert: Insert, elems: Iterable[Value], seed: Value) -> bool:
    """Does ``i(x, i(x, a)) = i(x, a)`` hold on the given elements?"""
    elems = list(elems)
    accs = [seed]
    for e in elems:
        accs.append(insert(e, accs[-1]))
    for a in accs:
        for x in elems:
            if insert(x, insert(x, a)) != insert(x, a):
                return False
    return True


def _fold(elems: tuple[Value, ...], seed: Value, insert: Insert) -> Value:
    acc = seed
    for e in reversed(elems):
        acc = insert(e, acc)
    return acc


def fold_set(
    value: Value, seed: object, insert: Insert, checked: bool = False
) -> Value:
    """Structural recursion over a set.

    With ``checked=True`` the left-commutativity and idempotence laws are
    verified on the input's elements first; :class:`EligibilityError` is
    raised on a violation (the fold would depend on the set's arbitrary
    internal order).
    """
    if not isinstance(value, SetValue):
        raise OrNRATypeError(f"fold_set expects a set, got {value!r}")
    seed = ensure_value(seed)
    if checked:
        if not check_left_commutative(insert, value.elems, seed):
            raise EligibilityError(
                "insert combinator is not left-commutative on this input"
            )
        if not check_idempotent(insert, value.elems, seed):
            raise EligibilityError(
                "insert combinator is not idempotent on this input"
            )
    return _fold(value.elems, seed, insert)


def fold_orset(
    value: Value, seed: object, insert: Insert, checked: bool = False
) -> Value:
    """Structural recursion over an or-set (same laws as for sets)."""
    if not isinstance(value, OrSetValue):
        raise OrNRATypeError(f"fold_orset expects an or-set, got {value!r}")
    seed = ensure_value(seed)
    if checked:
        if not check_left_commutative(insert, value.elems, seed):
            raise EligibilityError(
                "insert combinator is not left-commutative on this input"
            )
        if not check_idempotent(insert, value.elems, seed):
            raise EligibilityError(
                "insert combinator is not idempotent on this input"
            )
    return _fold(value.elems, seed, insert)


def fold_bag(
    value: Value, seed: object, insert: Insert, checked: bool = False
) -> Value:
    """Structural recursion over a bag (left-commutativity only)."""
    if not isinstance(value, BagValue):
        raise OrNRATypeError(f"fold_bag expects a bag, got {value!r}")
    seed = ensure_value(seed)
    if checked and not check_left_commutative(insert, value.elems, seed):
        raise EligibilityError(
            "insert combinator is not left-commutative on this input"
        )
    return _fold(value.elems, seed, insert)


class _SRBase(Morphism):
    """Shared shell of the three structural-recursion morphisms."""

    _NAME = "sr"
    _FOLD = staticmethod(fold_set)
    _WRAPPER: type = SetType

    def __init__(self, seed: object, insert: Morphism, checked: bool = False) -> None:
        self.seed = ensure_value(seed)
        self.insert = insert
        self.checked = checked

    def apply(self, value: Value) -> Value:
        def step(x: Value, acc: Value) -> Value:
            return self.insert.apply(Pair(x, acc))

        return type(self)._FOLD(value, self.seed, step, self.checked)

    def signature(self, fresh: FreshVars) -> FuncType:
        sig_i = self.insert.signature(fresh)
        seed_t = infer_type(self.seed)
        a, t = fresh.fresh(), fresh.fresh()
        subst = unify(sig_i.dom, ProdType(a, t))
        subst = unify(apply_subst(subst, sig_i.cod), apply_subst(subst, t), subst)
        subst = unify(apply_subst(subst, t), seed_t, subst)
        elem = apply_subst(subst, a)
        return FuncType(self._WRAPPER(elem), apply_subst(subst, t))

    def describe(self) -> str:
        return f"{self._NAME}({self.seed}, {self.insert.describe()})"

    def children(self) -> tuple[Morphism, ...]:
        return (self.insert,)

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and self.seed == other.seed
            and self.insert == other.insert
            and self.checked == other.checked
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.seed, self.insert, self.checked))


class SetSR(_SRBase):
    """``sr_set(e, i) : {s} -> t`` — structural recursion inside or-NRA."""

    _NAME = "sr_set"
    _FOLD = staticmethod(fold_set)
    _WRAPPER = SetType


class OrSetSR(_SRBase):
    """``sr_orset(e, i) : <s> -> t``."""

    _NAME = "sr_orset"
    _FOLD = staticmethod(fold_orset)
    _WRAPPER = OrSetType


class BagSR(_SRBase):
    """``sr_bag(e, i) : [|s|] -> t``."""

    _NAME = "sr_bag"
    _FOLD = staticmethod(fold_bag)
    _WRAPPER = BagType


def sr_set(seed: object, insert: Morphism, checked: bool = False) -> SetSR:
    """Structural recursion over sets as an or-NRA morphism."""
    return SetSR(seed, insert, checked)


def sr_orset(seed: object, insert: Morphism, checked: bool = False) -> OrSetSR:
    """Structural recursion over or-sets as an or-NRA morphism."""
    return OrSetSR(seed, insert, checked)


def sr_bag(seed: object, insert: Morphism, checked: bool = False) -> BagSR:
    """Structural recursion over bags as an or-NRA morphism."""
    return BagSR(seed, insert, checked)
