"""Monad comprehensions over sets and or-sets, translated to the algebra.

The paper opens with the comprehension-style query
``(x | x <- normalize(DB), ischeap(x))`` and notes (after [5, 33]) that the
same syntax works for any collection monad.  This module implements that
front end: a tiny calculus with variables, compiled to pure or-NRA
morphisms by the standard environment-passing translation —

* the environment is a left-nested tuple of the bound variables;
* a generator ``x <- X`` becomes ``mu o map(...) o rho_2 o (id, [[X]])``
  (or the ``or_`` versions for or-set comprehensions);
* a guard becomes ``cond([[p]], ..., K{} o !)``.

Example — the paper's query::

    q = orcomp(var("x"),
               [gen("x", capply(Normalize(), var("db"))),
                guard(capply(ischeap, var("x")))])
    morphism = compile_comprehension(q, "db")   # an or-NRA+ morphism
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.errors import OrNRAParseError, OrNRATypeError
from repro.values.values import Value, ensure_value

from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Const,
    Eq,
    Id,
    Morphism,
    PairOf,
    Proj1,
    Proj2,
)
from repro.lang.orset_ops import KEmptyOrSet, OrEta, OrMap, OrMu, OrRho2
from repro.lang.set_ops import KEmptySet, SetEta, SetMap, SetMu, SetRho2

__all__ = [
    "CompExpr",
    "Var",
    "Lit",
    "PairExpr",
    "Fst",
    "Snd",
    "Apply",
    "EqExpr",
    "Comprehension",
    "Generator",
    "Guard",
    "var",
    "lit",
    "cpair",
    "fst",
    "snd",
    "capply",
    "ceq",
    "gen",
    "guard",
    "setcomp",
    "orcomp",
    "compile_comprehension",
]


class CompExpr:
    """Abstract base class of comprehension-calculus expressions."""

    def to_morphism(self, scope: Sequence[str]) -> Morphism:
        """Compile against a scope (innermost variable last)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Var(CompExpr):
    """A variable reference."""

    name: str

    def to_morphism(self, scope: Sequence[str]) -> Morphism:
        names = list(scope)
        if self.name not in names:
            raise OrNRAParseError(f"unbound variable {self.name!r}")
        # Environment shape for scope [v0, ..., v_{n-1}] (v0 outermost):
        # n == 1 -> just v0; otherwise ((..(v0, v1).., v_{n-2}), v_{n-1}).
        n = len(names)
        # Innermost binding wins under shadowing: use the last occurrence.
        i = n - 1 - names[::-1].index(self.name)
        if n == 1:
            return Id()
        if i == 0:
            access: Morphism = Proj1()
            for _ in range(n - 2):
                access = Compose(access, Proj1())
            return access
        access = Proj2()
        for _ in range(n - 1 - i):
            access = Compose(access, Proj1())
        return access


@dataclass(frozen=True)
class Lit(CompExpr):
    """A constant value."""

    value: Value

    def to_morphism(self, scope: Sequence[str]) -> Morphism:
        return Compose(Const(self.value), Bang())


@dataclass(frozen=True)
class PairExpr(CompExpr):
    """Pair formation ``(e1, e2)``."""

    left: CompExpr
    right: CompExpr

    def to_morphism(self, scope: Sequence[str]) -> Morphism:
        return PairOf(self.left.to_morphism(scope), self.right.to_morphism(scope))


@dataclass(frozen=True)
class Fst(CompExpr):
    """First projection of an expression."""

    body: CompExpr

    def to_morphism(self, scope: Sequence[str]) -> Morphism:
        return Compose(Proj1(), self.body.to_morphism(scope))


@dataclass(frozen=True)
class Snd(CompExpr):
    """Second projection of an expression."""

    body: CompExpr

    def to_morphism(self, scope: Sequence[str]) -> Morphism:
        return Compose(Proj2(), self.body.to_morphism(scope))


@dataclass(frozen=True)
class Apply(CompExpr):
    """Application of a raw or-NRA morphism to an expression."""

    morphism: Morphism
    body: CompExpr

    def to_morphism(self, scope: Sequence[str]) -> Morphism:
        return Compose(self.morphism, self.body.to_morphism(scope))


@dataclass(frozen=True)
class EqExpr(CompExpr):
    """Equality of two expressions."""

    left: CompExpr
    right: CompExpr

    def to_morphism(self, scope: Sequence[str]) -> Morphism:
        return Compose(
            Eq(), PairOf(self.left.to_morphism(scope), self.right.to_morphism(scope))
        )


@dataclass(frozen=True)
class Generator:
    """A qualifier ``name <- source``."""

    name: str
    source: CompExpr


@dataclass(frozen=True)
class Guard:
    """A boolean qualifier."""

    pred: CompExpr


Qualifier = Union[Generator, Guard]


@dataclass(frozen=True)
class Comprehension(CompExpr):
    """``{head | q1, ..., qn}`` (kind "set") or ``<head | ...>`` ("orset")."""

    head: CompExpr
    qualifiers: tuple[Qualifier, ...]
    kind: str = "set"

    def __post_init__(self) -> None:
        if self.kind not in ("set", "orset"):
            raise OrNRATypeError(f"comprehension kind {self.kind!r}")

    def to_morphism(self, scope: Sequence[str]) -> Morphism:
        if self.kind == "set":
            eta, mu, mapper, rho2, kempty = SetEta, SetMu, SetMap, SetRho2, KEmptySet
        else:
            eta, mu, mapper, rho2, kempty = OrEta, OrMu, OrMap, OrRho2, KEmptyOrSet

        def translate(quals: tuple[Qualifier, ...], scope_now: list[str]) -> Morphism:
            if not quals:
                return Compose(eta(), self.head.to_morphism(scope_now))
            first, rest = quals[0], quals[1:]
            if isinstance(first, Guard):
                body = translate(rest, scope_now)
                return Cond(
                    first.pred.to_morphism(scope_now),
                    body,
                    Compose(kempty(), Bang()),
                )
            source = first.source.to_morphism(scope_now)
            inner_scope = scope_now + [first.name]
            inner = translate(rest, inner_scope)
            return Compose(
                mu(),
                Compose(
                    mapper(inner),
                    Compose(rho2(), PairOf(Id(), source)),
                ),
            )

        return translate(self.qualifiers, list(scope))


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def var(name: str) -> Var:
    """A variable reference."""
    return Var(name)


def lit(value: object) -> Lit:
    """A constant."""
    return Lit(ensure_value(value))


def cpair(left: CompExpr, right: CompExpr) -> PairExpr:
    """Pair two expressions."""
    return PairExpr(left, right)


def fst(body: CompExpr) -> Fst:
    """First projection."""
    return Fst(body)


def snd(body: CompExpr) -> Snd:
    """Second projection."""
    return Snd(body)


def capply(morphism: Morphism, body: CompExpr) -> Apply:
    """Apply an or-NRA morphism inside the calculus."""
    return Apply(morphism, body)


def ceq(left: CompExpr, right: CompExpr) -> EqExpr:
    """Equality test."""
    return EqExpr(left, right)


def gen(name: str, source: CompExpr) -> Generator:
    """The qualifier ``name <- source``."""
    return Generator(name, source)


def guard(pred: CompExpr) -> Guard:
    """A filter qualifier."""
    return Guard(pred)


def setcomp(head: CompExpr, qualifiers: Sequence[Qualifier]) -> Comprehension:
    """A set comprehension ``{head | qualifiers}``."""
    return Comprehension(head, tuple(qualifiers), "set")


def orcomp(head: CompExpr, qualifiers: Sequence[Qualifier]) -> Comprehension:
    """An or-set comprehension ``<head | qualifiers>`` — the paper's
    ``( x | x <- ..., p(x) )`` notation."""
    return Comprehension(head, tuple(qualifiers), "orset")


def compile_comprehension(expr: CompExpr, input_var: str) -> Morphism:
    """Compile *expr* to a morphism whose input is bound to *input_var*."""
    return expr.to_morphism([input_var])
