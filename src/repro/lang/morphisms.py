"""Morphisms (expressions) of or-NRA — the common core (Figure 1).

A morphism is a typed function between object types, built from the
combinators of the paper.  This module holds the base class and the
category/product fragment shared by the set and or-set halves:

====================  ===========================  =======================
paper                 here                         type
====================  ===========================  =======================
``id``                :class:`Id`                  ``s -> s``
``f o g``             :class:`Compose`             compose (``f`` after ``g``)
``(f, g)``            :class:`PairOf`              ``r -> s * t``
``pi_1``, ``pi_2``    :class:`Proj1`/:class:`Proj2`  projections
``!``                 :class:`Bang`                ``s -> unit``
``K c``               :class:`Const`               ``unit -> b``
``=``                 :class:`Eq`                  ``s * s -> bool``
``cond(p, t, f)``     :class:`Cond`                ``s -> t``
``p``                 :class:`Primitive`           ``Type(p)``
====================  ===========================  =======================

Every morphism supports:

* ``m(value)`` — evaluation (dynamic, with structural type checks);
* ``m.signature(fresh)`` — its most general type as a :class:`FuncType`
  possibly containing type variables (unification-based inference, the
  reason the paper can omit type superscripts);
* ``m.output_type(t)`` — the concrete output type on input type *t*;
* ``f @ g`` — composition (``f`` after ``g``), mirroring ``f o g``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import OrNRATypeError
from repro.types.kinds import BOOL, FuncType, ProdType, Type, UnitType
from repro.types.unify import FreshVars, apply_subst, rename_apart, unify
from repro.values.values import (
    UNIT_VALUE,
    Atom,
    Pair,
    Value,
    boolean,
    ensure_value,
)

__all__ = [
    "Morphism",
    "Id",
    "Compose",
    "PairOf",
    "Proj1",
    "Proj2",
    "Bang",
    "Const",
    "Eq",
    "Cond",
    "Primitive",
    "infer_signature",
    "compose",
    "identity",
    "pair_of",
    "p1",
    "p2",
    "bang",
    "const",
    "always",
    "eq",
    "cond",
]


class Morphism:
    """Abstract base class of or-NRA morphisms."""

    def apply(self, value: Value) -> Value:
        """Evaluate the morphism on *value*."""
        raise NotImplementedError

    def signature(self, fresh: FreshVars) -> FuncType:
        """The most general ``dom -> cod`` type, with fresh type variables."""
        raise NotImplementedError

    def describe(self) -> str:
        """A compact, paper-style rendering of the expression."""
        raise NotImplementedError

    # -- conveniences -----------------------------------------------------

    def __call__(self, value: object) -> Value:
        return self.apply(ensure_value(value))

    def __matmul__(self, other: "Morphism") -> "Compose":
        """``f @ g`` is ``f o g`` (apply *g* first)."""
        if not isinstance(other, Morphism):
            return NotImplemented
        return Compose(self, other)

    def __repr__(self) -> str:
        return self.describe()

    def output_type(self, input_type: Type) -> Type:
        """The concrete output type on input type *input_type*.

        Raises :class:`OrNRATypeError` when the morphism cannot accept the
        input type.
        """
        sig = self.signature(FreshVars("i"))
        subst = unify(sig.dom, input_type)
        result = apply_subst(subst, sig.cod)
        return result

    def children(self) -> tuple["Morphism", ...]:
        """Immediate sub-morphisms (for structural traversals)."""
        return ()


def infer_signature(m: Morphism) -> FuncType:
    """The most general type of *m* (Section 2's type inference)."""
    return m.signature(FreshVars())


class Id(Morphism):
    """The identity ``id : s -> s``."""

    def apply(self, value: Value) -> Value:
        return value

    def signature(self, fresh: FreshVars) -> FuncType:
        var = fresh.fresh()
        return FuncType(var, var)

    def describe(self) -> str:
        return "id"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Id)

    def __hash__(self) -> int:
        return hash("Id")


class Compose(Morphism):
    """Composition ``after o before`` (apply *before* first)."""

    def __init__(self, after: Morphism, before: Morphism) -> None:
        self.after = after
        self.before = before

    def apply(self, value: Value) -> Value:
        return self.after.apply(self.before.apply(value))

    def signature(self, fresh: FreshVars) -> FuncType:
        sig_before = self.before.signature(fresh)
        sig_after = self.after.signature(fresh)
        subst = unify(sig_after.dom, sig_before.cod)
        return FuncType(
            apply_subst(subst, sig_before.dom), apply_subst(subst, sig_after.cod)
        )

    def describe(self) -> str:
        return f"{self.after.describe()} o {self.before.describe()}"

    def children(self) -> tuple[Morphism, ...]:
        return (self.after, self.before)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Compose)
            and self.after == other.after
            and self.before == other.before
        )

    def __hash__(self) -> int:
        return hash(("Compose", self.after, self.before))


class PairOf(Morphism):
    """Pair formation ``(f, g) : r -> s * t``."""

    def __init__(self, left: Morphism, right: Morphism) -> None:
        self.left = left
        self.right = right

    def apply(self, value: Value) -> Value:
        return Pair(self.left.apply(value), self.right.apply(value))

    def signature(self, fresh: FreshVars) -> FuncType:
        sig_left = self.left.signature(fresh)
        sig_right = self.right.signature(fresh)
        subst = unify(sig_left.dom, sig_right.dom)
        dom = apply_subst(subst, sig_left.dom)
        cod = ProdType(
            apply_subst(subst, sig_left.cod), apply_subst(subst, sig_right.cod)
        )
        return FuncType(dom, cod)

    def describe(self) -> str:
        return f"({self.left.describe()}, {self.right.describe()})"

    def children(self) -> tuple[Morphism, ...]:
        return (self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PairOf)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("PairOf", self.left, self.right))


class Proj1(Morphism):
    """First projection ``pi_1 : s * t -> s``."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, Pair):
            raise OrNRATypeError(f"pi_1 expects a pair, got {value!r}")
        return value.fst

    def signature(self, fresh: FreshVars) -> FuncType:
        a, b = fresh.fresh(), fresh.fresh()
        return FuncType(ProdType(a, b), a)

    def describe(self) -> str:
        return "pi_1"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Proj1)

    def __hash__(self) -> int:
        return hash("Proj1")


class Proj2(Morphism):
    """Second projection ``pi_2 : s * t -> t``."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, Pair):
            raise OrNRATypeError(f"pi_2 expects a pair, got {value!r}")
        return value.snd

    def signature(self, fresh: FreshVars) -> FuncType:
        a, b = fresh.fresh(), fresh.fresh()
        return FuncType(ProdType(a, b), b)

    def describe(self) -> str:
        return "pi_2"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Proj2)

    def __hash__(self) -> int:
        return hash("Proj2")


class Bang(Morphism):
    """``! : s -> unit`` — maps everything to the unique unit element."""

    def apply(self, value: Value) -> Value:
        return UNIT_VALUE

    def signature(self, fresh: FreshVars) -> FuncType:
        return FuncType(fresh.fresh(), UnitType())

    def describe(self) -> str:
        return "!"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bang)

    def __hash__(self) -> int:
        return hash("Bang")


class Const(Morphism):
    """A constant ``K c : unit -> b`` for an atom *c* of base type *b*.

    Use :func:`always` for the any-domain version ``K c o !``.
    """

    def __init__(self, value: object, base: str | None = None) -> None:
        wrapped = ensure_value(value) if base is None else Atom(base, value)
        if not isinstance(wrapped, Atom):
            raise OrNRATypeError(f"Const expects an atom, got {wrapped!r}")
        self.value: Atom = wrapped

    def apply(self, value: Value) -> Value:
        return self.value

    def signature(self, fresh: FreshVars) -> FuncType:
        from repro.values.values import infer_type

        return FuncType(UnitType(), infer_type(self.value))

    def describe(self) -> str:
        return f"K{self.value}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class Eq(Morphism):
    """Structural equality ``=_s : s * s -> bool``.

    The paper stresses that equality at or-set types is *structural*
    (conceptually equivalent but differently represented objects compare
    unequal); this is why ``Eq`` at or-set types is excluded from the
    losslessness theorem.
    """

    def apply(self, value: Value) -> Value:
        if not isinstance(value, Pair):
            raise OrNRATypeError(f"= expects a pair, got {value!r}")
        return boolean(value.fst == value.snd)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(ProdType(a, a), BOOL)

    def describe(self) -> str:
        return "="

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Eq)

    def __hash__(self) -> int:
        return hash("Eq")


class Cond(Morphism):
    """``cond(p, t, f)(x) = t(x)`` if ``p(x)`` is true, else ``f(x)``."""

    def __init__(self, pred: Morphism, then: Morphism, orelse: Morphism) -> None:
        self.pred = pred
        self.then = then
        self.orelse = orelse

    def apply(self, value: Value) -> Value:
        verdict = self.pred.apply(value)
        if not (isinstance(verdict, Atom) and verdict.base == "bool"):
            raise OrNRATypeError(
                f"cond predicate returned non-boolean {verdict!r}"
            )
        branch = self.then if verdict.value else self.orelse
        return branch.apply(value)

    def signature(self, fresh: FreshVars) -> FuncType:
        sig_p = self.pred.signature(fresh)
        sig_t = self.then.signature(fresh)
        sig_f = self.orelse.signature(fresh)
        subst = unify(sig_p.cod, BOOL)
        subst = unify(sig_p.dom, sig_t.dom, subst)
        subst = unify(
            apply_subst(subst, sig_t.dom), apply_subst(subst, sig_f.dom), subst
        )
        subst = unify(
            apply_subst(subst, sig_t.cod), apply_subst(subst, sig_f.cod), subst
        )
        return FuncType(apply_subst(subst, sig_t.dom), apply_subst(subst, sig_t.cod))

    def describe(self) -> str:
        return (
            f"cond({self.pred.describe()}, {self.then.describe()}, "
            f"{self.orelse.describe()})"
        )

    def children(self) -> tuple[Morphism, ...]:
        return (self.pred, self.then, self.orelse)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cond)
            and self.pred == other.pred
            and self.then == other.then
            and self.orelse == other.orelse
        )

    def __hash__(self) -> int:
        return hash(("Cond", self.pred, self.then, self.orelse))


class Primitive(Morphism):
    """An uninterpreted primitive ``p`` with a declared type ``Type(p)``.

    The language is parameterized by a signature ``Sigma`` of such
    primitives (arithmetic, application-specific predicates like the intro's
    ``ischeap``).  The declared type may contain type variables.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Value], Value],
        dom: Type,
        cod: Type,
    ) -> None:
        self.name = name
        self.fn = fn
        self.dom = dom
        self.cod = cod

    def apply(self, value: Value) -> Value:
        return ensure_value(self.fn(value))

    def signature(self, fresh: FreshVars) -> FuncType:
        return rename_apart(FuncType(self.dom, self.cod), fresh)  # type: ignore[return-value]

    def describe(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Primitive)
            and self.name == other.name
            and self.dom == other.dom
            and self.cod == other.cod
        )

    def __hash__(self) -> int:
        return hash(("Primitive", self.name, self.dom, self.cod))


def rename_apart(t: FuncType, fresh: FreshVars) -> Type:
    """Rename type variables in a declared primitive type apart."""
    from repro.types.unify import rename_apart as _rename

    return _rename(t, fresh)


# ---------------------------------------------------------------------------
# Factory helpers (lowercase, paper-flavoured names)
# ---------------------------------------------------------------------------


def compose(*morphisms: Morphism) -> Morphism:
    """``compose(f, g, h)`` is ``f o g o h`` (rightmost applied first)."""
    if not morphisms:
        return Id()
    result = morphisms[-1]
    for m in reversed(morphisms[:-1]):
        result = Compose(m, result)
    return result


def identity() -> Id:
    """The identity morphism."""
    return Id()


def pair_of(left: Morphism, right: Morphism) -> PairOf:
    """Pair formation ``(left, right)``."""
    return PairOf(left, right)


def p1() -> Proj1:
    """First projection."""
    return Proj1()


def p2() -> Proj2:
    """Second projection."""
    return Proj2()


def bang() -> Bang:
    """The terminal morphism ``!``."""
    return Bang()


def const(value: object, base: str | None = None) -> Const:
    """``K c : unit -> b``."""
    return Const(value, base)


def always(value: object, base: str | None = None) -> Morphism:
    """``K c o ! : s -> b`` — the constant function from any type."""
    return Compose(Const(value, base), Bang())


def eq() -> Eq:
    """Structural equality test."""
    return Eq()


def cond(pred: Morphism, then: Morphism, orelse: Morphism) -> Cond:
    """The conditional ``cond(p, t, f)``."""
    return Cond(pred, then, orelse)
