"""The or-set fragment NRA_or plus the interaction operator ``alpha``
(Figure 1, right column and Section 2).

====================  ===========================  ============================
paper                 here                         type
====================  ===========================  ============================
``or_eta``            :class:`OrEta`               ``s -> <s>``
``or_mu``             :class:`OrMu`                ``<<s>> -> <s>``
``ormap(f)``          :class:`OrMap`               ``<s> -> <t>``
``or_rho_2``          :class:`OrRho2`              ``s * <t> -> <s * t>``
``or_U``              :class:`OrUnion`             ``<s> * <s> -> <s>``
``K<>``               :class:`KEmptyOrSet`         ``unit -> <s>``
``alpha``             :class:`Alpha`               ``{<s>} -> <{s}>``
``ortoset``           :class:`OrToSet`             ``<s> -> {s}``
``settoor``           :class:`SetToOr`             ``{s} -> <s>``
====================  ===========================  ============================

``or_rho_1`` is *not* a primitive: the paper notes it is definable as
``ormap((pi_2, pi_1)) o or_rho_2 o (pi_2, pi_1)``; :func:`or_rho1` builds
exactly that composition.

``alpha`` combines an ordinary set of or-sets into an or-set of sets by
choosing one element from each member in all possible ways; if any member
is the empty or-set the result is the empty or-set (conceptual
inconsistency).  It is the engine of normalization and, by Proposition 2.1,
carries the expressive power of ``powerset``.
"""

from __future__ import annotations

from itertools import product as iter_product

from repro.errors import OrNRATypeError
from repro.types.kinds import FuncType, OrSetType, ProdType, SetType, UnitType
from repro.types.unify import FreshVars
from repro.values.values import OrSetValue, Pair, SetValue, Value

from repro.lang.morphisms import Compose, Morphism, PairOf, Proj1, Proj2

__all__ = [
    "OrEta",
    "OrMu",
    "OrMap",
    "OrRho2",
    "OrUnion",
    "KEmptyOrSet",
    "Alpha",
    "OrToSet",
    "SetToOr",
    "or_eta",
    "or_mu",
    "ormap",
    "or_rho2",
    "or_rho1",
    "or_union",
    "empty_orset",
    "alpha",
    "ortoset",
    "settoor",
    "or_flatmap",
    "or_cartesian",
    "alpha_value",
]


class OrEta(Morphism):
    """Singleton or-set formation ``or_eta(x) = <x>``."""

    def apply(self, value: Value) -> Value:
        return OrSetValue((value,))

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(a, OrSetType(a))

    def describe(self) -> str:
        return "or_eta"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrEta)

    def __hash__(self) -> int:
        return hash("OrEta")


class OrMu(Morphism):
    """Or-set flattening ``or_mu : <<s>> -> <s>``.

    Preserves conceptual meaning: an or-set of or-sets denotes one element
    of one of its members.
    """

    def apply(self, value: Value) -> Value:
        if not isinstance(value, OrSetValue):
            raise OrNRATypeError(f"or_mu expects an or-set of or-sets, got {value!r}")
        out: list[Value] = []
        for inner in value:
            if not isinstance(inner, OrSetValue):
                raise OrNRATypeError(
                    f"or_mu expects an or-set of or-sets, got element {inner!r}"
                )
            out.extend(inner.elems)
        return OrSetValue(out)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(OrSetType(OrSetType(a)), OrSetType(a))

    def describe(self) -> str:
        return "or_mu"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrMu)

    def __hash__(self) -> int:
        return hash("OrMu")


class OrMap(Morphism):
    """``ormap(f) : <s> -> <t>`` applies *f* to every element."""

    def __init__(self, body: Morphism) -> None:
        self.body = body

    def apply(self, value: Value) -> Value:
        if not isinstance(value, OrSetValue):
            raise OrNRATypeError(f"ormap expects an or-set, got {value!r}")
        return OrSetValue(self.body.apply(e) for e in value)

    def signature(self, fresh: FreshVars) -> FuncType:
        sig = self.body.signature(fresh)
        return FuncType(OrSetType(sig.dom), OrSetType(sig.cod))

    def describe(self) -> str:
        return f"ormap({self.body.describe()})"

    def children(self) -> tuple[Morphism, ...]:
        return (self.body,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrMap) and self.body == other.body

    def __hash__(self) -> int:
        return hash(("OrMap", self.body))


class OrRho2(Morphism):
    """``or_rho_2 : s * <t> -> <s * t>``.

    ``or_rho_2 (1, <2, 3>) = <(1, 2), (1, 3)>`` — the input is conceptually
    a pair whose second component is either 2 or 3, which is exactly what
    the output denotes.
    """

    def apply(self, value: Value) -> Value:
        if not (isinstance(value, Pair) and isinstance(value.snd, OrSetValue)):
            raise OrNRATypeError(f"or_rho_2 expects (s, <t>), got {value!r}")
        return OrSetValue(Pair(value.fst, e) for e in value.snd)

    def signature(self, fresh: FreshVars) -> FuncType:
        a, b = fresh.fresh(), fresh.fresh()
        return FuncType(ProdType(a, OrSetType(b)), OrSetType(ProdType(a, b)))

    def describe(self) -> str:
        return "or_rho_2"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrRho2)

    def __hash__(self) -> int:
        return hash("OrRho2")


class OrUnion(Morphism):
    """Binary or-set union ``<s> * <s> -> <s>`` (more alternatives)."""

    def apply(self, value: Value) -> Value:
        if not (
            isinstance(value, Pair)
            and isinstance(value.fst, OrSetValue)
            and isinstance(value.snd, OrSetValue)
        ):
            raise OrNRATypeError(f"or_union expects (<s>, <s>), got {value!r}")
        return OrSetValue(value.fst.elems + value.snd.elems)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(ProdType(OrSetType(a), OrSetType(a)), OrSetType(a))

    def describe(self) -> str:
        return "or_union"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrUnion)

    def __hash__(self) -> int:
        return hash("OrUnion")


class KEmptyOrSet(Morphism):
    """``K<> : unit -> <s>`` produces the empty or-set (inconsistency)."""

    def apply(self, value: Value) -> Value:
        return OrSetValue(())

    def signature(self, fresh: FreshVars) -> FuncType:
        return FuncType(UnitType(), OrSetType(fresh.fresh()))

    def describe(self) -> str:
        return "K<>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KEmptyOrSet)

    def __hash__(self) -> int:
        return hash("KEmptyOrSet")


def alpha_value(elems: tuple[Value, ...], dedup: bool) -> OrSetValue:
    """The combinatorial core of ``alpha``/``alpha_d``.

    Takes the member or-sets of the input collection and returns the or-set
    of all componentwise choices; *dedup* selects set (True) versus bag
    (False) output elements.  An empty member or-set forces the empty
    result, and the empty input collection yields ``< {} >`` (one choice:
    the empty set), matching the paper's semantics.
    """
    from repro.values.values import BagValue

    for member in elems:
        if not isinstance(member, OrSetValue):
            raise OrNRATypeError(f"alpha expects or-set members, got {member!r}")
        if not member.elems:
            return OrSetValue(())
    wrapper = SetValue if dedup else BagValue
    choices = iter_product(*(member.elems for member in elems))
    return OrSetValue(wrapper(choice) for choice in choices)


class Alpha(Morphism):
    """``alpha : {<s>} -> <{s}>`` — all componentwise choices.

    Example (Section 1): ``alpha {<2,3>, <4,5,3>}`` is
    ``<{2,4}, {2,5}, {2,3}, {3,4}, {3,5}, {3}>``; note ``{3}`` arises when
    both members choose 3, and an empty member yields ``< >``.
    """

    def apply(self, value: Value) -> Value:
        if not isinstance(value, SetValue):
            raise OrNRATypeError(f"alpha expects a set of or-sets, got {value!r}")
        return alpha_value(value.elems, dedup=True)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(SetType(OrSetType(a)), OrSetType(SetType(a)))

    def describe(self) -> str:
        return "alpha"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Alpha)

    def __hash__(self) -> int:
        return hash("Alpha")


class OrToSet(Morphism):
    """``ortoset : <s> -> {s}`` — forget the disjunctive reading.

    Introduced "for technical purposes only" to state Proposition 2.1.
    """

    def apply(self, value: Value) -> Value:
        if not isinstance(value, OrSetValue):
            raise OrNRATypeError(f"ortoset expects an or-set, got {value!r}")
        return SetValue(value.elems)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(OrSetType(a), SetType(a))

    def describe(self) -> str:
        return "ortoset"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrToSet)

    def __hash__(self) -> int:
        return hash("OrToSet")


class SetToOr(Morphism):
    """``settoor : {s} -> <s>`` — impose the disjunctive reading."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, SetValue):
            raise OrNRATypeError(f"settoor expects a set, got {value!r}")
        return OrSetValue(value.elems)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(SetType(a), OrSetType(a))

    def describe(self) -> str:
        return "settoor"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetToOr)

    def __hash__(self) -> int:
        return hash("SetToOr")


def or_eta() -> OrEta:
    """Singleton or-set formation."""
    return OrEta()


def or_mu() -> OrMu:
    """Or-set flattening."""
    return OrMu()


def ormap(body: Morphism) -> OrMap:
    """``ormap(body)``."""
    return OrMap(body)


def or_rho2() -> OrRho2:
    """``or_rho_2``."""
    return OrRho2()


def or_rho1() -> Morphism:
    """``or_rho_1 : <s> * t -> <s * t>``, the paper's derived definition:
    ``ormap((pi_2, pi_1)) o or_rho_2 o (pi_2, pi_1)``."""
    swap = PairOf(Proj2(), Proj1())
    return Compose(OrMap(swap), Compose(OrRho2(), swap))


def or_union() -> OrUnion:
    """Binary or-set union."""
    return OrUnion()


def empty_orset() -> KEmptyOrSet:
    """``K<>``."""
    return KEmptyOrSet()


def alpha() -> Alpha:
    """The set/or-set interaction operator."""
    return Alpha()


def ortoset() -> OrToSet:
    """``ortoset``."""
    return OrToSet()


def settoor() -> SetToOr:
    """``settoor``."""
    return SetToOr()


def or_flatmap(body: Morphism) -> Morphism:
    """``or_ext(f) = or_mu o ormap(f) : <s> -> <t>``."""
    return Compose(OrMu(), OrMap(body))


def or_cartesian() -> Morphism:
    """``or_cp : <s> * <t> -> <s * t>`` — pair every choice with every choice.

    This is the ``orcp = or_mu o ormap(or_rho_1) o or_rho_2`` composition
    used in the proof of Theorem 5.1.
    """
    return Compose(OrMu(), Compose(OrMap(or_rho1()), OrRho2()))
