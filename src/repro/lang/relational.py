"""The relational derived layer: nest, unnest, join, semijoin.

Continues the OR-SML library of Section 7 with the nested-relational
classics, each a pure composition of Figure 1 primitives (no Python-level
cheating), demonstrating the definability results of [5] the paper builds
on:

====================  =====================================  ===============
function              type                                   idea
====================  =====================================  ===============
``unnest``            ``{s * {t}} -> {s * t}``               ``mu o map(rho_2)``
``nest``              ``{s * t} -> {s * {t}}``               group by first
``join``              ``{s * t} * {t * u} -> {s * (t * u)}`` filter cartesian
``semijoin``          ``{s * t} * {t} -> {s * t}``           rows with match
``or_unnest``         ``<s * <t>> -> <s * t>``               or-set analog
====================  =====================================  ===============

``nest`` is the interesting one: grouping needs each row to see the whole
relation, which is exactly what ``rho_1 o (id, id)`` provides —
``R |-> {(r, R) | r in R}`` — after which the group of a row is a
``select`` over its copy of ``R``.  Duplicate groups collapse by set
semantics, so the result is the usual nesting.
"""

from __future__ import annotations

from repro.lang.morphisms import Compose, Eq, Id, Morphism, PairOf, Proj1, Proj2, compose
from repro.lang.orset_ops import OrMap, OrMu, OrRho2
from repro.lang.set_ops import SetMap, SetMu, SetRho2, set_cartesian, set_rho1
from repro.lang.stdlib import member, select

__all__ = ["unnest", "nest", "join", "semijoin", "or_unnest"]


def unnest() -> Morphism:
    """``{s * {t}} -> {s * t}`` — flatten one level of nesting:
    ``mu o map(rho_2)``."""
    return Compose(SetMu(), SetMap(SetRho2()))


def nest() -> Morphism:
    """``{s * t} -> {s * {t}}`` — group second components by first.

    ``nest {(1,a), (1,b), (2,c)} = {(1, {a,b}), (2, {c})}``.
    """
    # (a, R) -> {b' | (a', b') in R, a' = a}:
    # rho_2 pairs a with every row, select keeps matching rows, and the
    # final map projects the grouped payloads.
    key_matches = Compose(Eq(), PairOf(Proj1(), Compose(Proj1(), Proj2())))
    group_of_key = compose(
        SetMap(Compose(Proj2(), Proj2())),
        select(key_matches),
        SetRho2(),
    )
    row_key = Compose(Proj1(), Proj1())
    build_group = Compose(group_of_key, PairOf(row_key, Proj2()))
    per_row = PairOf(row_key, build_group)
    return compose(SetMap(per_row), set_rho1(), PairOf(Id(), Id()))


def join() -> Morphism:
    """``{s * t} * {t * u} -> {s * (t * u)}`` — natural join on the shared
    middle component: filter the cartesian product, then reassociate."""
    middles_equal = Compose(
        Eq(), PairOf(Compose(Proj2(), Proj1()), Compose(Proj1(), Proj2()))
    )
    reassociate = PairOf(Compose(Proj1(), Proj1()), Proj2())
    return compose(SetMap(reassociate), select(middles_equal), set_cartesian())


def semijoin() -> Morphism:
    """``{s * t} * {t} -> {s * t}`` — rows whose second component occurs in
    the filter set."""
    # rho_1 gives {((s, t), {t})}; keep rows with a membership hit.
    has_match = Compose(member(), PairOf(Compose(Proj2(), Proj1()), Proj2()))
    keep_row = Compose(
        SetMu(),
        SetMap(
            _cond_keep(has_match)
        ),
    )
    return Compose(keep_row, set_rho1())


def _cond_keep(pred: Morphism) -> Morphism:
    from repro.lang.morphisms import Bang, Cond
    from repro.lang.set_ops import KEmptySet, SetEta

    return Cond(
        pred,
        Compose(SetEta(), Proj1()),
        Compose(KEmptySet(), Bang()),
    )


def or_unnest() -> Morphism:
    """``<s * <t>> -> <s * t>`` — the or-set analog of :func:`unnest`."""
    return Compose(OrMu(), OrMap(OrRho2()))
