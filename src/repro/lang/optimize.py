"""Equational optimization of or-NRA morphisms (Section 7).

The conclusion observes that combining the collection monads "gives rise
to interesting equational theories which can lead to useful optimizations.
In addition to the monad equations of [5], every diagram in the proof of
Theorem 4.2 gives rise to a new equation."

The rewrite rules themselves now live in :mod:`repro.engine.passes` as
composable, individually toggleable optimizer passes (category laws,
monad laws, the Theorem 4.2 coherence-diagram equations, conditional
folding and normalize-aware or-set rewrites); this module keeps the
original convenience API on top of the default pipeline:

* :func:`optimize` — rewrite to a fixpoint of the default passes;
* :func:`optimize_once` — a single bottom-up sweep;
* :func:`cost` — the static operator count (used by the never-grows
  property test and the ablation benchmark);
* :func:`equations_applied` — names of the rules that fire (diagnostics).

Every rule is oriented toward the cheaper side, so
``cost(optimize(m)) <= cost(m)``; the dynamic win is measured by
``benchmarks/bench_optimizer.py`` and ``benchmarks/bench_engine.py``.
"""

from __future__ import annotations

from repro.lang.morphisms import Morphism

__all__ = ["optimize", "optimize_once", "cost", "equations_applied"]


def _pipeline():
    # Imported lazily: repro.engine.passes imports the lang operator
    # modules, so a module-level import would be circular when this
    # module is loaded first via `repro.lang`.
    from repro.engine.passes import default_pipeline

    return default_pipeline()


def optimize(m: Morphism, max_passes: int = 50) -> Morphism:
    """Rewrite *m* to a fixpoint of the default equational passes.

    Every rule either removes an operator or pushes a map inside an
    exponential operator, so the fixpoint exists; *max_passes* is a
    safety net.
    """
    return _pipeline().run(m, max_passes=max_passes)


def optimize_once(m: Morphism) -> Morphism:
    """One bottom-up pass: rewrite children, then try each rule at the root."""
    return _pipeline().rewrite_once(m)


def cost(m: Morphism) -> int:
    """Static operator count (nodes in the morphism AST)."""
    from repro.engine.passes import morphism_cost

    return morphism_cost(m)


def equations_applied(m: Morphism) -> list[str]:
    """Names of the rules that fire anywhere while optimizing *m*.

    Diagnostic helper for tests and the ablation benchmark.
    """
    pipeline = _pipeline()
    pipeline.run(m)
    return pipeline.fired
