"""Equational optimization of or-NRA morphisms (Section 7).

The conclusion observes that combining the collection monads "gives rise
to interesting equational theories which can lead to useful optimizations.
In addition to the monad equations of [5], every diagram in the proof of
Theorem 4.2 gives rise to a new equation."  This module implements that
optimizer: a terminating bottom-up rewriter over morphism ASTs whose rules
are exactly those equations, oriented toward the cheaper side.

Rule groups (each is a semantic identity on well-typed inputs):

**Category laws**::

    f o id = f            id o f = f
    pi_1 o (f, g) = f     pi_2 o (f, g) = g
    (pi_1, pi_2) = id     ! o f = !
    (f, g) o h = (f o h, g o h)   -- NOT used: duplicates h; the reverse
                                     (shared-subexpression) direction is.

**Monad laws** (for each of the three collection monads)::

    mu o eta = id                 mu o map(eta) = id
    map(id) = id                  map(f) o map(g) = map(f o g)
    map(f) o eta = eta o f        mu o map(map(f)) = map(f) o mu

**Coherence-diagram equations** (Theorem 4.2's commuting squares,
oriented to push work *before* the exponential interaction operators)::

    ormap(map(f)) o alpha     = alpha o map(ormap(f))
    ormap(dmap(f)) o alpha_d  = alpha_d o dmap(ormap(f))
    ormap((f o pi_1, pi_2)) o or_rho_2 = or_rho_2 o (f o pi_1, pi_2)
    ormap(f) o or_mu          = or_mu o ormap(ormap(f))   [left is cheaper]

The left-hand sides of the alpha equations apply ``f`` once per element of
every *choice* (exponentially many); the right-hand sides apply ``f`` once
per element of the *input*.  :func:`optimize` rewrites to a fixpoint;
:func:`cost` is the static operator count used to prove termination
locally, and ``benchmarks/bench_optimizer.py`` measures the dynamic win.
"""

from __future__ import annotations

from typing import Callable

from repro.lang.bag_ops import AlphaD, BagEta, BagMu, DMap
from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Id,
    Morphism,
    PairOf,
    Proj1,
    Proj2,
)
from repro.lang.orset_ops import Alpha, OrEta, OrMap, OrMu
from repro.lang.set_ops import SetEta, SetMap, SetMu
from repro.lang.variant_ops import Case, InjectLeft, InjectRight

__all__ = ["optimize", "optimize_once", "cost", "equations_applied"]

# (map-combinator, eta, mu) triples for the three collection monads.
_MONADS = (
    (SetMap, SetEta, SetMu),
    (OrMap, OrEta, OrMu),
    (DMap, BagEta, BagMu),
)

Rule = Callable[[Morphism], "Morphism | None"]


def _rule_compose_id(m: Morphism) -> Morphism | None:
    if isinstance(m, Compose):
        if isinstance(m.after, Id):
            return m.before
        if isinstance(m.before, Id):
            return m.after
    return None


def _rule_proj_pair(m: Morphism) -> Morphism | None:
    if isinstance(m, Compose) and isinstance(m.before, PairOf):
        if isinstance(m.after, Proj1):
            return m.before.left
        if isinstance(m.after, Proj2):
            return m.before.right
    return None


def _rule_pair_of_projections(m: Morphism) -> Morphism | None:
    if (
        isinstance(m, PairOf)
        and isinstance(m.left, Proj1)
        and isinstance(m.right, Proj2)
    ):
        return Id()
    return None


def _rule_bang_absorbs(m: Morphism) -> Morphism | None:
    if isinstance(m, Compose) and isinstance(m.after, Bang):
        if not isinstance(m.before, Id):
            return Bang()
    return None


def _rule_map_id(m: Morphism) -> Morphism | None:
    for map_cls, _eta, _mu in _MONADS:
        if isinstance(m, map_cls) and isinstance(m.body, Id):
            return Id()
    return None


def _rule_map_fusion(m: Morphism) -> Morphism | None:
    if not isinstance(m, Compose):
        return None
    for map_cls, _eta, _mu in _MONADS:
        if isinstance(m.after, map_cls) and isinstance(m.before, map_cls):
            return map_cls(Compose(m.after.body, m.before.body))
    return None


def _rule_mu_eta(m: Morphism) -> Morphism | None:
    if not isinstance(m, Compose):
        return None
    for map_cls, eta_cls, mu_cls in _MONADS:
        if isinstance(m.after, mu_cls):
            # mu o eta = id
            if isinstance(m.before, eta_cls):
                return Id()
            # mu o map(eta) = id
            if isinstance(m.before, map_cls) and isinstance(m.before.body, eta_cls):
                return Id()
    return None


def _rule_map_after_eta(m: Morphism) -> Morphism | None:
    if not isinstance(m, Compose):
        return None
    for map_cls, eta_cls, _mu in _MONADS:
        if isinstance(m.after, map_cls) and isinstance(m.before, eta_cls):
            return Compose(eta_cls(), m.after.body)
    return None


def _rule_mu_naturality(m: Morphism) -> Morphism | None:
    # mu o map(map(f))  ->  map(f) o mu  (one traversal less)
    if not isinstance(m, Compose):
        return None
    for map_cls, _eta, mu_cls in _MONADS:
        if (
            isinstance(m.after, mu_cls)
            and isinstance(m.before, map_cls)
            and isinstance(m.before.body, map_cls)
        ):
            return Compose(map_cls(m.before.body.body), mu_cls())
    return None


def _rule_alpha_diagram(m: Morphism) -> Morphism | None:
    # ormap(map(f)) o alpha  ->  alpha o map(ormap(f))       (Theorem 4.2)
    # ormap(dmap(f)) o alpha_d -> alpha_d o dmap(ormap(f))
    if not (isinstance(m, Compose) and isinstance(m.after, OrMap)):
        return None
    body = m.after.body
    if isinstance(m.before, Alpha) and isinstance(body, SetMap):
        return Compose(Alpha(), SetMap(OrMap(body.body)))
    if isinstance(m.before, AlphaD) and isinstance(body, DMap):
        return Compose(AlphaD(), DMap(OrMap(body.body)))
    return None


def _rule_or_mu_diagram(m: Morphism) -> Morphism | None:
    # or_mu o ormap(ormap(f)) -> ormap(f) o or_mu  (covered by naturality)
    # plus the rho square:
    # ormap((f o pi_1, pi_2)) o or_rho_2  ->  or_rho_2 o (f o pi_1, pi_2)
    from repro.lang.orset_ops import OrRho2

    if not (isinstance(m, Compose) and isinstance(m.before, OrRho2)):
        return None
    if not isinstance(m.after, OrMap):
        return None
    body = m.after.body
    if (
        isinstance(body, PairOf)
        and isinstance(body.right, Proj2)
        and _factors_through_proj1(body.left)
    ):
        return Compose(OrRho2(), body)
    return None


def _factors_through_proj1(m: Morphism) -> bool:
    """Is *m* of the shape ``h o pi_1`` (under right-nested composition)?"""
    if isinstance(m, Proj1):
        return True
    return isinstance(m, Compose) and _factors_through_proj1(m.before)


def _rule_assoc_right(m: Morphism) -> Morphism | None:
    # (f o g) o h -> f o (g o h): canonical right-nesting so that the
    # binary composition rules see adjacent operators.
    if isinstance(m, Compose) and isinstance(m.after, Compose):
        return Compose(m.after.after, Compose(m.after.before, m.before))
    return None


def _rule_rho_eta(m: Morphism) -> Morphism | None:
    # or_rho_2 o (f, or_eta o g)  ->  or_eta o (f, g):  pairing with a
    # singleton or-set is conceptually just pairing.  (Dually for sets.)
    from repro.lang.orset_ops import OrRho2
    from repro.lang.set_ops import SetRho2

    if not (isinstance(m, Compose) and isinstance(m.before, PairOf)):
        return None
    right = m.before.right
    if isinstance(m.after, OrRho2):
        if isinstance(right, OrEta):
            return Compose(OrEta(), PairOf(m.before.left, Id()))
        if isinstance(right, Compose) and isinstance(right.after, OrEta):
            return Compose(OrEta(), PairOf(m.before.left, right.before))
    if isinstance(m.after, SetRho2):
        if isinstance(right, SetEta):
            return Compose(SetEta(), PairOf(m.before.left, Id()))
        if isinstance(right, Compose) and isinstance(right.after, SetEta):
            return Compose(SetEta(), PairOf(m.before.left, right.before))
    return None


def _rule_case_eta(m: Morphism) -> Morphism | None:
    # case(f, g) o inl = f o id ... : case with a known injection.
    if isinstance(m, Compose) and isinstance(m.after, Case):
        if isinstance(m.before, InjectLeft):
            return m.after.on_left
        if isinstance(m.before, InjectRight):
            return m.after.on_right
    return None


def _rule_cond_same_branches(m: Morphism) -> Morphism | None:
    if isinstance(m, Cond) and m.then == m.orelse:
        return m.then
    return None


_RULES: tuple[Rule, ...] = (
    _rule_assoc_right,
    _rule_compose_id,
    _rule_proj_pair,
    _rule_pair_of_projections,
    _rule_bang_absorbs,
    _rule_map_id,
    _rule_map_fusion,
    _rule_mu_eta,
    _rule_map_after_eta,
    _rule_mu_naturality,
    _rule_alpha_diagram,
    _rule_or_mu_diagram,
    _rule_rho_eta,
    _rule_case_eta,
    _rule_cond_same_branches,
)


def _rebuild(m: Morphism, kids: tuple[Morphism, ...]) -> Morphism:
    """Reconstruct *m* with new children (same class, same other state)."""
    if isinstance(m, Compose):
        return Compose(kids[0], kids[1])
    if isinstance(m, PairOf):
        return PairOf(kids[0], kids[1])
    if isinstance(m, Cond):
        return Cond(kids[0], kids[1], kids[2])
    if isinstance(m, Case):
        return Case(kids[0], kids[1])
    for map_cls, _eta, _mu in _MONADS:
        if isinstance(m, map_cls):
            return map_cls(kids[0])
    raise TypeError(f"cannot rebuild {m!r} with children")


def optimize_once(m: Morphism) -> Morphism:
    """One bottom-up pass: rewrite children, then try each rule at the root."""
    kids = m.children()
    if kids:
        new_kids = tuple(optimize_once(k) for k in kids)
        if new_kids != kids:
            m = _rebuild(m, new_kids)
    changed = True
    while changed:
        changed = False
        for rule in _RULES:
            out = rule(m)
            if out is not None and out != m:
                m = out
                changed = True
                break
    return m


def optimize(m: Morphism, max_passes: int = 50) -> Morphism:
    """Rewrite *m* to a fixpoint of the equational rules.

    Every rule either removes an operator or pushes a map inside an
    exponential operator, so the fixpoint exists; *max_passes* is a
    safety net.
    """
    for _ in range(max_passes):
        out = optimize_once(m)
        if out == m:
            return out
        m = out
    return m


def cost(m: Morphism) -> int:
    """Static operator count (nodes in the morphism AST)."""
    return 1 + sum(cost(k) for k in m.children())


def equations_applied(m: Morphism) -> list[str]:
    """Names of the rules that fire anywhere while optimizing *m*.

    Diagnostic helper for tests and the ablation benchmark.
    """
    fired: list[str] = []

    def walk(current: Morphism) -> Morphism:
        kids = current.children()
        if kids:
            new_kids = tuple(walk(k) for k in kids)
            if new_kids != kids:
                current = _rebuild(current, new_kids)
        changed = True
        while changed:
            changed = False
            for rule in _RULES:
                out = rule(current)
                if out is not None and out != current:
                    fired.append(rule.__name__.removeprefix("_rule_"))
                    current = out
                    changed = True
                    break
        return current

    previous = None
    current = m
    while previous != current:
        previous = current
        current = walk(current)
    return fired
