"""Surface syntax for values and morphism expressions.

The OR-SML implementation (Section 7) provides "creation and destruction
of objects, ... input and output facilities"; this module is that front
end.  Values use the paper's notation; morphisms use the algebraic syntax
with ``o`` for composition::

    parse_value("({<1, 2>, <3>}, <1, 2>)")
    parse_morphism("or_mu o ormap(cond(ischeap, or_eta, K<> o !))",
                   env={"ischeap": some_primitive})

Grammar (values)::

    v ::= int | true | false | "string" | () | base:ident
        | (v, v) | {v, ...} | <v, ...> | [|v, ...|] | inl v | inr v

Grammar (morphisms)::

    m ::= m o m                      composition (right associative)
        | (m, m)                     pair formation
        | (m)                        grouping
        | name(m, ...)               map/ormap/dmap/cond/select/...
        | K(v) | K{} | K<>           constants
        | id | pi_1 | pi_2 | ! | = | eta | mu | union | rho_1 | rho_2
        | or_eta | or_mu | or_union | or_rho_1 | or_rho_2 | alpha
        | ortoset | settoor | powerset | normalize | name-from-env
        | inl | inr | case(m, m) | or_kappa_1 | or_kappa_2
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import OrNRAParseError
from repro.values.values import (
    UNIT_VALUE,
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    Value,
    Variant,
    boolean,
)

from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Const,
    Eq,
    Id,
    Morphism,
    PairOf,
    Proj1,
    Proj2,
)
from repro.lang.orset_ops import (
    Alpha,
    KEmptyOrSet,
    OrEta,
    OrMap,
    OrMu,
    OrRho2,
    OrToSet,
    OrUnion,
    SetToOr,
    or_rho1,
)
from repro.lang.set_ops import (
    KEmptySet,
    SetEta,
    SetMap,
    SetMu,
    SetRho2,
    SetUnion,
    set_rho1,
)
from repro.lang.bag_ops import (
    AlphaD,
    BagCount,
    BagEta,
    BagMaxUnion,
    BagMinIntersect,
    BagMonus,
    BagMu,
    BagMultiplicity,
    BagRho2,
    BagToSet,
    BagUnion,
    BagUnique,
    DMap,
    KEmptyBag,
    SetToBag,
)
from repro.lang.variant_ops import Case, InjectLeft, InjectRight, OrKappa1, OrKappa2

__all__ = ["parse_value", "parse_morphism"]


class _Cursor:
    """Shared lexing helpers for both parsers."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def consume(self, token: str) -> bool:
        if self.startswith(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.consume(token):
            raise OrNRAParseError(
                f"expected {token!r} at {self.text[self.pos:self.pos + 20]!r}",
                self.pos,
            )

    def identifier(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        if self.pos == start:
            raise OrNRAParseError(
                f"expected identifier at {self.text[self.pos:self.pos + 20]!r}",
                self.pos,
            )
        return self.text[start : self.pos]

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


def _parse_value(cur: _Cursor) -> Value:
    ch = cur.peek()
    if ch == "(":
        cur.expect("(")
        if cur.consume(")"):
            return UNIT_VALUE
        first = _parse_value(cur)
        if cur.consume(","):
            second = _parse_value(cur)
            cur.expect(")")
            return Pair(first, second)
        cur.expect(")")
        return first
    if ch == "{":
        cur.expect("{")
        return SetValue(_parse_elements(cur, "}"))
    if cur.startswith("[|"):
        cur.expect("[|")
        return BagValue(_parse_elements(cur, "|]"))
    if ch == "<":
        cur.expect("<")
        return OrSetValue(_parse_elements(cur, ">"))
    if ch == '"':
        cur.expect('"')
        start = cur.pos
        while cur.pos < len(cur.text) and cur.text[cur.pos] != '"':
            cur.pos += 1
        if cur.pos >= len(cur.text):
            raise OrNRAParseError("unterminated string literal", start)
        literal = cur.text[start : cur.pos]
        cur.pos += 1
        return Atom("string", literal)
    if ch == "-" or ch.isdigit():
        cur.skip_ws()
        start = cur.pos
        if cur.text[cur.pos] == "-":
            cur.pos += 1
        while cur.pos < len(cur.text) and cur.text[cur.pos].isdigit():
            cur.pos += 1
        if cur.pos == start or cur.text[start:cur.pos] == "-":
            raise OrNRAParseError("malformed number", start)
        return Atom("int", int(cur.text[start : cur.pos]))
    name = cur.identifier()
    if name == "true":
        return boolean(True)
    if name == "false":
        return boolean(False)
    if name == "inl":
        return Variant(0, _parse_value(cur))
    if name == "inr":
        return Variant(1, _parse_value(cur))
    if cur.consume(":"):
        # A user-base atom: base:label or base:123.
        if cur.peek().isdigit() or cur.peek() == "-":
            literal = _parse_value(cur)
            assert isinstance(literal, Atom)
            return Atom(name, literal.value)
        label = cur.identifier()
        return Atom(name, label)
    raise OrNRAParseError(f"unexpected token {name!r} in value", cur.pos)


def _parse_elements(cur: _Cursor, closer: str) -> list[Value]:
    elems: list[Value] = []
    if cur.consume(closer):
        return elems
    while True:
        elems.append(_parse_value(cur))
        if cur.consume(closer):
            return elems
        cur.expect(",")


def parse_value(text: str) -> Value:
    """Parse a value literal in the paper's notation."""
    cur = _Cursor(text)
    value = _parse_value(cur)
    if not cur.at_end():
        raise OrNRAParseError(
            f"trailing input after value: {cur.text[cur.pos:]!r}", cur.pos
        )
    return value


# ---------------------------------------------------------------------------
# Morphisms
# ---------------------------------------------------------------------------

_NULLARY: Mapping[str, Callable[[], Morphism]] = {
    "id": Id,
    "pi_1": Proj1,
    "pi_2": Proj2,
    "eq": Eq,
    "eta": SetEta,
    "mu": SetMu,
    "union": SetUnion,
    "rho_1": set_rho1,
    "rho_2": SetRho2,
    "or_eta": OrEta,
    "or_mu": OrMu,
    "or_union": OrUnion,
    "or_rho_1": or_rho1,
    "or_rho_2": OrRho2,
    "alpha": Alpha,
    "ortoset": OrToSet,
    "settoor": SetToOr,
    "inl": InjectLeft,
    "inr": InjectRight,
    "or_kappa_1": OrKappa1,
    "or_kappa_2": OrKappa2,
    "b_eta": BagEta,
    "b_mu": BagMu,
    "b_union": BagUnion,
    "b_rho_2": BagRho2,
    "monus": BagMonus,
    "b_max": BagMaxUnion,
    "b_min": BagMinIntersect,
    "unique": BagUnique,
    "count": BagCount,
    "mult": BagMultiplicity,
    "alpha_d": AlphaD,
    "bagtoset": BagToSet,
    "settobag": SetToBag,
}

_UNARY: Mapping[str, Callable[[Morphism], Morphism]] = {
    "map": SetMap,
    "ormap": OrMap,
    "dmap": DMap,
}


def _parse_morphism(cur: _Cursor, env: Mapping[str, Morphism]) -> Morphism:
    left = _parse_term(cur, env)
    # Composition: `f o g` — parse iteratively (associative).
    while True:
        save = cur.pos
        cur.skip_ws()
        if cur.text.startswith("o", cur.pos) and not (
            cur.pos + 1 < len(cur.text)
            and (cur.text[cur.pos + 1].isalnum() or cur.text[cur.pos + 1] == "_")
        ):
            cur.pos += 1
            right = _parse_term(cur, env)
            left = Compose(left, right)
        else:
            cur.pos = save
            return left


def _parse_term(cur: _Cursor, env: Mapping[str, Morphism]) -> Morphism:
    ch = cur.peek()
    if ch == "(":
        cur.expect("(")
        first = _parse_morphism(cur, env)
        if cur.consume(","):
            second = _parse_morphism(cur, env)
            cur.expect(")")
            return PairOf(first, second)
        cur.expect(")")
        return first
    if ch == "!":
        cur.expect("!")
        return Bang()
    if ch == "=":
        cur.expect("=")
        return Eq()
    name = cur.identifier()
    if name == "K":
        if cur.consume("{"):
            cur.expect("}")
            return KEmptySet()
        if cur.consume("<"):
            cur.expect(">")
            return KEmptyOrSet()
        if cur.consume("[|"):
            cur.expect("|]")
            return KEmptyBag()
        cur.expect("(")
        value = _parse_value(cur)
        cur.expect(")")
        return Const(value)
    if name == "cond":
        cur.expect("(")
        pred = _parse_morphism(cur, env)
        cur.expect(",")
        then = _parse_morphism(cur, env)
        cur.expect(",")
        orelse = _parse_morphism(cur, env)
        cur.expect(")")
        return Cond(pred, then, orelse)
    if name == "case":
        cur.expect("(")
        on_left = _parse_morphism(cur, env)
        cur.expect(",")
        on_right = _parse_morphism(cur, env)
        cur.expect(")")
        return Case(on_left, on_right)
    if name in _UNARY:
        cur.expect("(")
        body = _parse_morphism(cur, env)
        cur.expect(")")
        return _UNARY[name](body)
    if name in _NULLARY:
        return _NULLARY[name]()
    if name == "normalize":
        from repro.core.normalize import Normalize

        return Normalize()
    if name == "powerset":
        from repro.core.powerset import Powerset

        return Powerset()
    if name in env:
        return env[name]
    raise OrNRAParseError(f"unknown morphism {name!r}", cur.pos)


def parse_morphism(
    text: str, env: Mapping[str, Morphism] | None = None
) -> Morphism:
    """Parse a morphism expression; *env* supplies named primitives."""
    cur = _Cursor(text)
    morphism = _parse_morphism(cur, env or {})
    if not cur.at_end():
        raise OrNRAParseError(
            f"trailing input after morphism: {cur.text[cur.pos:]!r}", cur.pos
        )
    return morphism
