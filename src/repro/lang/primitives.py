"""The primitive signature ``Sigma`` — arithmetic, comparisons, booleans.

or-NRA is parameterized by a collection of primitives ``p`` with declared
types ``Type(p)`` (Section 2).  This module provides the standard ones for
the built-in base types plus factories for user primitives (the intro's
``ischeap`` would be ``predicate("ischeap", fn, dom)``).

Primitives whose declared type mentions or-sets are legal in or-NRA but are
excluded from the losslessness theorem's syntactic class; the factories
here record the declared type so :mod:`repro.core.preserve` can check it.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import OrNRATypeError
from repro.types.kinds import BOOL, INT, ProdType, Type
from repro.values.values import Atom, Pair, Value, boolean, ensure_value

from repro.lang.morphisms import Primitive

__all__ = [
    "int_binop",
    "plus",
    "minus",
    "times",
    "int_le",
    "int_lt",
    "bool_and",
    "bool_or",
    "bool_not",
    "predicate",
    "unary_primitive",
]


def _unwrap_int(v: Value, op: str) -> int:
    if not (isinstance(v, Atom) and v.base == "int"):
        raise OrNRATypeError(f"{op} expects int atoms, got {v!r}")
    return int(v.value)  # type: ignore[arg-type]


def _unwrap_bool(v: Value, op: str) -> bool:
    if not (isinstance(v, Atom) and v.base == "bool"):
        raise OrNRATypeError(f"{op} expects bool atoms, got {v!r}")
    return bool(v.value)


def _binop_value(v: Value, op: str) -> tuple[Value, Value]:
    if not isinstance(v, Pair):
        raise OrNRATypeError(f"{op} expects a pair, got {v!r}")
    return v.fst, v.snd


def int_binop(name: str, fn: Callable[[int, int], int]) -> Primitive:
    """An integer operator ``int * int -> int``."""

    def run(v: Value) -> Value:
        a, b = _binop_value(v, name)
        return Atom("int", fn(_unwrap_int(a, name), _unwrap_int(b, name)))

    return Primitive(name, run, ProdType(INT, INT), INT)


def plus() -> Primitive:
    """Integer addition."""
    return int_binop("plus", lambda a, b: a + b)


def minus() -> Primitive:
    """Integer subtraction."""
    return int_binop("minus", lambda a, b: a - b)


def times() -> Primitive:
    """Integer multiplication."""
    return int_binop("times", lambda a, b: a * b)


def int_le() -> Primitive:
    """Integer ``<=`` test: ``int * int -> bool``."""

    def run(v: Value) -> Value:
        a, b = _binop_value(v, "leq")
        return boolean(_unwrap_int(a, "leq") <= _unwrap_int(b, "leq"))

    return Primitive("leq", run, ProdType(INT, INT), BOOL)


def int_lt() -> Primitive:
    """Integer ``<`` test: ``int * int -> bool``."""

    def run(v: Value) -> Value:
        a, b = _binop_value(v, "lt")
        return boolean(_unwrap_int(a, "lt") < _unwrap_int(b, "lt"))

    return Primitive("lt", run, ProdType(INT, INT), BOOL)


def bool_and() -> Primitive:
    """Boolean conjunction ``bool * bool -> bool``."""

    def run(v: Value) -> Value:
        a, b = _binop_value(v, "and")
        return boolean(_unwrap_bool(a, "and") and _unwrap_bool(b, "and"))

    return Primitive("and", run, ProdType(BOOL, BOOL), BOOL)


def bool_or() -> Primitive:
    """Boolean disjunction ``bool * bool -> bool``."""

    def run(v: Value) -> Value:
        a, b = _binop_value(v, "or")
        return boolean(_unwrap_bool(a, "or") or _unwrap_bool(b, "or"))

    return Primitive("or", run, ProdType(BOOL, BOOL), BOOL)


def bool_not() -> Primitive:
    """Boolean negation ``bool -> bool``."""

    def run(v: Value) -> Value:
        return boolean(not _unwrap_bool(v, "not"))

    return Primitive("not", run, BOOL, BOOL)


def predicate(name: str, fn: Callable[[Value], bool], dom: Type) -> Primitive:
    """A user predicate ``dom -> bool`` from a plain Python function."""

    def run(v: Value) -> Value:
        return boolean(bool(fn(v)))

    return Primitive(name, run, dom, BOOL)


def unary_primitive(
    name: str, fn: Callable[[Value], object], dom: Type, cod: Type
) -> Primitive:
    """A user primitive ``dom -> cod``; the result is coerced to a value."""

    def run(v: Value) -> Value:
        return ensure_value(fn(v))

    return Primitive(name, run, dom, cod)
