"""The primitive signature ``Sigma`` — arithmetic, comparisons, booleans.

or-NRA is parameterized by a collection of primitives ``p`` with declared
types ``Type(p)`` (Section 2).  This module provides the standard ones for
the built-in base types plus factories for user primitives (the intro's
``ischeap`` would be ``predicate("ischeap", fn, dom)``).

Primitives whose declared type mentions or-sets are legal in or-NRA but are
excluded from the losslessness theorem's syntactic class; the factories
here record the declared type so :mod:`repro.core.preserve` can check it.

The evaluator functions built by the factories are module-level callable
classes (not nested closures), so every standard primitive — and any user
primitive whose underlying Python function is itself picklable — survives
``pickle``.  That is what lets compiled plans containing arithmetic travel
to the process backend's workers (``repro/engine/process.py``).
"""

from __future__ import annotations

import operator
from typing import Callable

from repro.errors import OrNRATypeError
from repro.types.kinds import BOOL, INT, ProdType, Type
from repro.values.values import Atom, Pair, Value, boolean, ensure_value

from repro.lang.morphisms import Primitive

__all__ = [
    "int_binop",
    "plus",
    "minus",
    "times",
    "int_le",
    "int_lt",
    "bool_and",
    "bool_or",
    "bool_not",
    "predicate",
    "unary_primitive",
]


def _unwrap_int(v: Value, op: str) -> int:
    if not (isinstance(v, Atom) and v.base == "int"):
        raise OrNRATypeError(f"{op} expects int atoms, got {v!r}")
    return int(v.value)  # type: ignore[arg-type]


def _unwrap_bool(v: Value, op: str) -> bool:
    if not (isinstance(v, Atom) and v.base == "bool"):
        raise OrNRATypeError(f"{op} expects bool atoms, got {v!r}")
    return bool(v.value)


def _binop_value(v: Value, op: str) -> tuple[Value, Value]:
    if not isinstance(v, Pair):
        raise OrNRATypeError(f"{op} expects a pair, got {v!r}")
    return v.fst, v.snd


class _IntBinOp:
    """Pickle-safe evaluator for an integer operator ``int * int -> int``."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[int, int], int]) -> None:
        self.name = name
        self.fn = fn

    def __call__(self, v: Value) -> Value:
        a, b = _binop_value(v, self.name)
        return Atom("int", self.fn(_unwrap_int(a, self.name), _unwrap_int(b, self.name)))

    def __getstate__(self):
        return (self.name, self.fn)

    def __setstate__(self, state):
        self.name, self.fn = state


class _IntCompare:
    """Pickle-safe evaluator for an integer test ``int * int -> bool``."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[int, int], bool]) -> None:
        self.name = name
        self.fn = fn

    def __call__(self, v: Value) -> Value:
        a, b = _binop_value(v, self.name)
        return boolean(self.fn(_unwrap_int(a, self.name), _unwrap_int(b, self.name)))

    def __getstate__(self):
        return (self.name, self.fn)

    def __setstate__(self, state):
        self.name, self.fn = state


def _bool_and_value(v: Value) -> Value:
    # Python's `and` short-circuits: a false left operand returns
    # without unwrapping (or type-checking) the right one — observable
    # behavior the original closure had, preserved here.
    a, b = _binop_value(v, "and")
    return boolean(_unwrap_bool(a, "and") and _unwrap_bool(b, "and"))


def _bool_or_value(v: Value) -> Value:
    a, b = _binop_value(v, "or")
    return boolean(_unwrap_bool(a, "or") or _unwrap_bool(b, "or"))


def _bool_not_value(v: Value) -> Value:
    return boolean(not _unwrap_bool(v, "not"))


class _PredicateFn:
    """Pickle-safe wrapper coercing a user predicate's result to a boolean."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Value], bool]) -> None:
        self.fn = fn

    def __call__(self, v: Value) -> Value:
        return boolean(bool(self.fn(v)))

    def __getstate__(self):
        return self.fn

    def __setstate__(self, state):
        self.fn = state


class _UnaryFn:
    """Pickle-safe wrapper coercing a user primitive's result to a value."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Value], object]) -> None:
        self.fn = fn

    def __call__(self, v: Value) -> Value:
        return ensure_value(self.fn(v))

    def __getstate__(self):
        return self.fn

    def __setstate__(self, state):
        self.fn = state


def int_binop(name: str, fn: Callable[[int, int], int]) -> Primitive:
    """An integer operator ``int * int -> int``."""
    return Primitive(name, _IntBinOp(name, fn), ProdType(INT, INT), INT)


def plus() -> Primitive:
    """Integer addition."""
    return int_binop("plus", operator.add)


def minus() -> Primitive:
    """Integer subtraction."""
    return int_binop("minus", operator.sub)


def times() -> Primitive:
    """Integer multiplication."""
    return int_binop("times", operator.mul)


def int_le() -> Primitive:
    """Integer ``<=`` test: ``int * int -> bool``."""
    return Primitive("leq", _IntCompare("leq", operator.le), ProdType(INT, INT), BOOL)


def int_lt() -> Primitive:
    """Integer ``<`` test: ``int * int -> bool``."""
    return Primitive("lt", _IntCompare("lt", operator.lt), ProdType(INT, INT), BOOL)


def bool_and() -> Primitive:
    """Boolean conjunction ``bool * bool -> bool`` (left short-circuits)."""
    return Primitive("and", _bool_and_value, ProdType(BOOL, BOOL), BOOL)


def bool_or() -> Primitive:
    """Boolean disjunction ``bool * bool -> bool`` (left short-circuits)."""
    return Primitive("or", _bool_or_value, ProdType(BOOL, BOOL), BOOL)


def bool_not() -> Primitive:
    """Boolean negation ``bool -> bool``."""
    return Primitive("not", _bool_not_value, BOOL, BOOL)


def predicate(name: str, fn: Callable[[Value], bool], dom: Type) -> Primitive:
    """A user predicate ``dom -> bool`` from a plain Python function.

    The wrapper pickles whenever *fn* does (module-level functions do;
    lambdas do not) — relevant when a plan containing the predicate is
    shipped to the process backend's workers.
    """
    return Primitive(name, _PredicateFn(fn), dom, BOOL)


def unary_primitive(
    name: str, fn: Callable[[Value], object], dom: Type, cod: Type
) -> Primitive:
    """A user primitive ``dom -> cod``; the result is coerced to a value."""
    return Primitive(name, _UnaryFn(fn), dom, cod)
