"""repro — a reproduction of Libkin & Wong,
"Semantic Representations and Query Languages for Or-Sets" (PODS 1993 /
JCSS 52(1), 1996).

The package implements the paper end to end:

* :mod:`repro.types` — the type system and the normalization rewrite
  system on types (Section 2, Proposition 4.1);
* :mod:`repro.values` — complex objects mixing tuples, sets and or-sets;
* :mod:`repro.lang` — or-NRA, the structural query language (Figure 1),
  with type inference, a surface parser, comprehensions and the OR-SML
  derived library (Section 7);
* :mod:`repro.core` — normalization and the conceptual language or-NRA+
  (Theorem 4.2, Corollaries 4.3/6.4, Theorems 5.1/6.2/6.3/6.5,
  Propositions 2.1/5.2/6.1), possible-worlds oracle, lazy streams;
* :mod:`repro.engine` — the compile-and-run engine: plan IR, pass-based
  optimizer, interned values and the eager/streaming backends behind
  ``engine.run(program, value)``;
* :mod:`repro.orders` — the partial-information semantics (Section 3):
  posets, Hoare/Smyth/Plotkin, update closures, the ``alpha_a``
  isomorphism (Theorem 3.3) and modal theories (Proposition 3.4);
* :mod:`repro.sat` — the Section 6 NP-hardness reduction.

Quick start::

    from repro import vset, vorset, vpair, normalize, possibilities

    design = vpair(vset(vorset(1, 2), vorset(3)), vorset(1, 2))
    print(normalize(design))          # <({1,3},1), ({1,3},2), ...>
"""

from repro.core import (
    Normalize,
    coherence_witness,
    conceptual_eq,
    exists_query,
    forall_query,
    m_value,
    normalize,
    normalize_morphism,
    normalize_via_tagging,
    possibilities,
    preserve,
    witness,
    worlds,
)
from repro.errors import (
    EligibilityError,
    NormalizationError,
    OrNRAError,
    OrNRAParseError,
    OrNRATypeError,
    OrNRAValueError,
)
from repro.types import (
    BOOL,
    INT,
    STRING,
    UNIT,
    Type,
    format_type,
    nf_type,
    orset_of,
    parse_type,
    prod,
    set_of,
)
from repro import engine
from repro.engine import Engine, compile_plan
from repro.engine import run as run_program
from repro.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    Value,
    atom,
    format_value,
    from_python,
    infer_type,
    to_python,
    vbag,
    vorset,
    vpair,
    vset,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "OrNRAError", "OrNRATypeError", "OrNRAValueError", "OrNRAParseError",
    "NormalizationError", "EligibilityError",
    # types
    "Type", "BOOL", "INT", "STRING", "UNIT",
    "prod", "set_of", "orset_of", "parse_type", "format_type", "nf_type",
    # values
    "Value", "Atom", "Pair", "SetValue", "OrSetValue", "BagValue",
    "atom", "vpair", "vset", "vorset", "vbag",
    "format_value", "infer_type", "from_python", "to_python",
    # core
    # engine
    "engine", "Engine", "run_program", "compile_plan",
    "normalize", "possibilities", "conceptual_eq", "coherence_witness",
    "Normalize", "normalize_morphism", "normalize_via_tagging",
    "worlds", "m_value", "preserve",
    "exists_query", "forall_query", "witness",
]
