"""Theorem 3.3: ``alpha_a`` is an order isomorphism between the antichain
semantic domains ``[{<t>}]_a`` and ``[<{t}>]_a``, with inverse ``beta_a``.

For an antichain family ``A = {A_1, ..., A_n}`` (each ``A_i`` a
``min``-antichain or-set, the family itself a ``⊑♯``-antichain)::

    alpha_a(A) = min_{⊑♭} { max f(A) : f ∈ F_A }
    beta_a(B)  = max_{⊑♯} { min f(B) : f ∈ F_B }

where ``F_A`` ranges over choice functions picking one element from every
member.  This gives Flannery–Martin / Heckmann's "iterated powerdomains
commute" a very simple description (the paper's [20]).

These functions operate on values (``SetValue`` of ``OrSetValue`` and
vice versa) under a supplied family of base orders.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Callable, Sequence

from repro.errors import OrNRAValueError
from repro.orders.powerdomains import hoare_le, smyth_le
from repro.orders.semantics import (
    BaseOrders,
    max_antichain_values,
    min_antichain_values,
    value_le,
)
from repro.values.values import OrSetValue, SetValue, Value

__all__ = ["alpha_antichain", "beta_antichain", "choice_functions"]


def choice_functions(
    members: Sequence[tuple[Value, ...]]
) -> "iter_product[tuple[Value, ...]]":
    """All choice tuples ``(f(1), ..., f(n))`` over the member tuples —
    the paper's ``F_A``."""
    return iter_product(*members)


def _family_min(
    sets: list[tuple[Value, ...]],
    family_le: Callable[[tuple[Value, ...], tuple[Value, ...]], bool],
) -> list[tuple[Value, ...]]:
    """Minimal elements of a family of element-tuples under *family_le*."""
    out: list[tuple[Value, ...]] = []
    for cand in sets:
        if not any(
            family_le(other, cand) and not family_le(cand, other)
            for other in sets
        ):
            out.append(cand)
    return out


def _family_max(
    sets: list[tuple[Value, ...]],
    family_le: Callable[[tuple[Value, ...], tuple[Value, ...]], bool],
) -> list[tuple[Value, ...]]:
    """Maximal elements of a family of element-tuples under *family_le*."""
    out: list[tuple[Value, ...]] = []
    for cand in sets:
        if not any(
            family_le(cand, other) and not family_le(other, cand)
            for other in sets
        ):
            out.append(cand)
    return out


def alpha_antichain(
    family: SetValue, base_orders: BaseOrders | None = None
) -> OrSetValue:
    """``alpha_a : [{<t>}]_a -> [<{t}>]_a``.

    Each member must be an or-set; the result is the or-set of
    ``⊑♭``-minimal ``max``-antichains of all componentwise choices.
    """
    if not isinstance(family, SetValue):
        raise OrNRAValueError(f"alpha_a expects a set of or-sets, got {family!r}")
    members: list[tuple[Value, ...]] = []
    for member in family.elems:
        if not isinstance(member, OrSetValue):
            raise OrNRAValueError(f"alpha_a expects or-set members, got {member!r}")
        if not member.elems:
            return OrSetValue(())
        members.append(member.elems)

    def elem_le(a: Value, b: Value) -> bool:
        return value_le(a, b, base_orders)

    candidates = [
        max_antichain_values(tuple(choice), base_orders)
        for choice in choice_functions(members)
    ]
    # Deduplicate (choices may normalize to the same antichain).
    unique = list({SetValue(c): tuple(SetValue(c).elems) for c in candidates}.values())

    def family_le(a: tuple[Value, ...], b: tuple[Value, ...]) -> bool:
        return hoare_le(a, b, elem_le)

    minimal = _family_min(unique, family_le)
    return OrSetValue(SetValue(c) for c in minimal)


def beta_antichain(
    family: OrSetValue, base_orders: BaseOrders | None = None
) -> SetValue:
    """``beta_a : [<{t}>]_a -> [{<t>}]_a`` — the inverse of ``alpha_a``."""
    if not isinstance(family, OrSetValue):
        raise OrNRAValueError(f"beta_a expects an or-set of sets, got {family!r}")
    members: list[tuple[Value, ...]] = []
    for member in family.elems:
        if not isinstance(member, SetValue):
            raise OrNRAValueError(f"beta_a expects set members, got {member!r}")
        members.append(member.elems)
    if not members:
        # The inconsistent or-set corresponds to the family containing <>.
        return SetValue((OrSetValue(()),))
    if any(not m for m in members):
        # A choice function needs every member non-empty; the empty set as a
        # member means the only "choice" is the empty or-set... the paper's
        # domains use finite antichains where this arises only at <{}>,
        # whose beta-image is {} (no or-sets to recombine).
        if all(not m for m in members):
            return SetValue(())
        members = [m for m in members if m]

    def elem_le(a: Value, b: Value) -> bool:
        return value_le(a, b, base_orders)

    candidates = [
        min_antichain_values(tuple(choice), base_orders)
        for choice in choice_functions(members)
    ]
    unique = list(
        {OrSetValue(c): tuple(OrSetValue(c).elems) for c in candidates}.values()
    )

    def family_le(a: tuple[Value, ...], b: tuple[Value, ...]) -> bool:
        return smyth_le(a, b, elem_le)

    maximal = _family_max(unique, family_le)
    return SetValue(OrSetValue(c) for c in maximal)
