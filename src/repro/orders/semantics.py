"""The semantics of types as ordered sets (Section 3).

Given posets on base values, the order lifts to complex objects::

    pairs        componentwise
    sets   {t}   Hoare ordering  ⊑♭
    or-sets <t>  Smyth ordering  ⊑♯   (empty or-set comparable only to itself)

Two semantics are defined: the *plain* one (all finite subsets) and the
*antichain* one ``[.]_a`` where set values are kept as ``max``-antichains
and or-set values as ``min``-antichains.  :func:`antichain_normal`
re-normalizes a value into the antichain semantics, and
:func:`value_le` decides the order in either semantics (the paper notes
``X ⊑♭ Y iff max X ⊑♭ max Y`` and dually, so one comparison function
serves both).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import OrNRAValueError
from repro.orders.poset import Poset
from repro.orders.powerdomains import hoare_le, smyth_le
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
)

__all__ = [
    "BaseOrders",
    "value_le",
    "value_lt",
    "antichain_normal",
    "is_antichain_value",
    "max_antichain_values",
    "min_antichain_values",
]

BaseOrders = Mapping[str, Poset]


def value_le(x: Value, y: Value, base_orders: BaseOrders | None = None) -> bool:
    """Is ``x <= y`` in the Section 3 order on complex objects?

    *base_orders* maps base-type names to posets over the raw atom values;
    base types without an entry are totally unordered (equality only).
    """
    base_orders = base_orders or {}
    if isinstance(x, UnitValue) and isinstance(y, UnitValue):
        return True
    if isinstance(x, Atom) and isinstance(y, Atom):
        if x.base != y.base:
            raise OrNRAValueError(f"comparing atoms of bases {x.base}/{y.base}")
        poset = base_orders.get(x.base)
        if poset is None:
            return x.value == y.value
        return poset.le(x.value, y.value)
    if isinstance(x, Pair) and isinstance(y, Pair):
        return value_le(x.fst, y.fst, base_orders) and value_le(
            x.snd, y.snd, base_orders
        )
    if isinstance(x, Variant) and isinstance(y, Variant):
        # Injections of different sides are incomparable; same side compares
        # payloads (the coalesced-sum order of the variant extension).
        if x.side != y.side:
            return False
        return value_le(x.payload, y.payload, base_orders)
    if isinstance(x, SetValue) and isinstance(y, SetValue):
        return hoare_le(
            x.elems, y.elems, lambda a, b: value_le(a, b, base_orders)
        )
    if isinstance(x, OrSetValue) and isinstance(y, OrSetValue):
        return smyth_le(
            x.elems, y.elems, lambda a, b: value_le(a, b, base_orders)
        )
    if isinstance(x, BagValue) and isinstance(y, BagValue):
        # Bags are internal; order them as their set collapses (Hoare).
        return hoare_le(
            x.elems, y.elems, lambda a, b: value_le(a, b, base_orders)
        )
    raise OrNRAValueError(f"values of different kinds: {x!r} vs {y!r}")


def value_lt(x: Value, y: Value, base_orders: BaseOrders | None = None) -> bool:
    """Strict order: ``x <= y`` and not ``y <= x``.

    Note Hoare/Smyth are preorders on arbitrary sets, so ``x != y`` does
    not imply strictness; this uses the order-theoretic definition.
    """
    return value_le(x, y, base_orders) and not value_le(y, x, base_orders)


def max_antichain_values(
    elems: tuple[Value, ...], base_orders: BaseOrders | None
) -> tuple[Value, ...]:
    """The ``max`` antichain of *elems* under the value order."""
    return tuple(
        e
        for e in elems
        if not any(
            value_le(e, other, base_orders) and not value_le(other, e, base_orders)
            for other in elems
        )
    )


def min_antichain_values(
    elems: tuple[Value, ...], base_orders: BaseOrders | None
) -> tuple[Value, ...]:
    """The ``min`` antichain of *elems* under the value order."""
    return tuple(
        e
        for e in elems
        if not any(
            value_le(other, e, base_orders) and not value_le(e, other, base_orders)
            for other in elems
        )
    )


def antichain_normal(v: Value, base_orders: BaseOrders | None = None) -> Value:
    """Re-normalize *v* into the antichain semantics ``[.]_a``:
    sets keep their maximal elements, or-sets their minimal elements."""
    if isinstance(v, (Atom, UnitValue)):
        return v
    if isinstance(v, Pair):
        return Pair(
            antichain_normal(v.fst, base_orders),
            antichain_normal(v.snd, base_orders),
        )
    if isinstance(v, Variant):
        return Variant(v.side, antichain_normal(v.payload, base_orders))
    if isinstance(v, SetValue):
        elems = tuple(antichain_normal(e, base_orders) for e in v.elems)
        return SetValue(max_antichain_values(elems, base_orders))
    if isinstance(v, OrSetValue):
        elems = tuple(antichain_normal(e, base_orders) for e in v.elems)
        return OrSetValue(min_antichain_values(elems, base_orders))
    if isinstance(v, BagValue):
        return BagValue(antichain_normal(e, base_orders) for e in v.elems)
    raise OrNRAValueError(f"not a value: {v!r}")


def is_antichain_value(v: Value, base_orders: BaseOrders | None = None) -> bool:
    """Is *v* already in the antichain semantics (hereditarily)?"""
    return antichain_normal(v, base_orders) == v
