"""Partial information: posets, powerdomains, update closures, the
antichain isomorphism, and modal theories (Section 3)."""

from repro.orders.approx import (
    Mix,
    Sandwich,
    Snack,
    consistent_witness,
    mix_le,
    object_to_sandwich,
    sandwich_le,
    sandwich_to_object,
    snack_le,
)
from repro.orders.iso import alpha_antichain, beta_antichain, choice_functions
from repro.orders.poset import (
    Poset,
    chain,
    diamond,
    discrete,
    flat_domain,
    random_poset,
)
from repro.orders.powerdomains import (
    hoare_equivalent,
    hoare_le,
    plotkin_le,
    smyth_equivalent,
    smyth_le,
)
from repro.orders.semantics import (
    BaseOrders,
    antichain_normal,
    is_antichain_value,
    max_antichain_values,
    min_antichain_values,
    value_le,
    value_lt,
)
from repro.orders.theories import (
    Box,
    Diamond,
    Disj,
    Formula,
    PairForm,
    PropAtom,
    TruthConst,
    formulas_for,
    satisfies,
    theory_superset,
)
from repro.orders.updates import (
    hoare_reachable,
    hoare_reachable_antichain,
    hoare_steps,
    hoare_steps_antichain,
    reachable,
    smyth_reachable,
    smyth_reachable_antichain,
    smyth_steps,
    smyth_steps_antichain,
)

__all__ = [
    "Poset", "flat_domain", "chain", "discrete", "diamond", "random_poset",
    "hoare_le", "smyth_le", "plotkin_le", "hoare_equivalent", "smyth_equivalent",
    "BaseOrders", "value_le", "value_lt", "antichain_normal",
    "is_antichain_value", "max_antichain_values", "min_antichain_values",
    "alpha_antichain", "beta_antichain", "choice_functions",
    "Formula", "PropAtom", "TruthConst", "PairForm", "Disj", "Box", "Diamond",
    "satisfies", "formulas_for", "theory_superset",
    "hoare_steps", "smyth_steps", "hoare_steps_antichain",
    "smyth_steps_antichain", "reachable", "hoare_reachable", "smyth_reachable",
    "hoare_reachable_antichain", "smyth_reachable_antichain",
    # approximation models (Section 7)
    "Sandwich", "Mix", "Snack", "sandwich_le", "mix_le", "snack_le",
    "sandwich_to_object", "object_to_sandwich", "consistent_witness",
]
