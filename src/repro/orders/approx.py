"""Order-theoretic approximation models: sandwiches, mixes, snacks
(Section 7; refs [6] Buneman–Davidson–Watters, [10] Gunter, [31] Puhlmann,
[22] Libkin).

These structures arise "when a real world situation can be approximated
from below and above by information in a database".  A *sandwich* over a
poset ``(X, <=)`` is a pair ``(L, U)`` of finite antichains approximating
an unknown finite set ``S`` of objects:

* ``L`` approximates from below — ``L ⊑♭ S`` (Hoare): everything certain
  is confirmed by ``S``;
* ``U`` approximates from above — ``U ⊑♯ S`` (Smyth): every member of
  ``S`` refines one of the listed possibilities.

``(L, U)`` is *consistent* when such an ``S`` exists; over a finite poset
this has the closed form "every certain element has an upper bound in the
up-set of ``U``" (take ``S`` to be that set of upper bounds), which
:meth:`Sandwich.is_consistent` implements and the tests cross-check
against a brute-force witness search.

A *mix* (Gunter's mixed powerdomain) is a sandwich satisfying the stronger
support condition that every certain element already refines a listed
possibility: ``forall l in L exists u in U: u <= l``.  A *snack*
(Puhlmann) generalizes a sandwich to a finite set of consistent pairs,
ordered here by the Hoare lift of the sandwich order.  (The exact
formulation of snacks varies across [31, 30, 22]; this reconstruction
keeps the property that single-pair snacks order exactly like sandwiches.)

The paper's Section 7 says the "intimate connection between or-sets and
the Smyth powerdomain can help us use or-sets for a suitable
representation of those approximation models".  That claim is made
executable by :func:`sandwich_to_object`, which renders a sandwich as the
complex object ``({L}, <U>) : {b} * <b>`` — the sandwich order then *is*
the Section 3 object order (Hoare on the set component, Smyth on the
or-set component), verified by ``tests/orders/test_approx.py`` and
``benchmarks/bench_approximation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from repro.errors import OrNRAValueError
from repro.orders.poset import Item, Poset
from repro.orders.powerdomains import hoare_le, smyth_le
from repro.values.values import Atom, OrSetValue, Pair, SetValue, Value

__all__ = [
    "Sandwich",
    "Mix",
    "Snack",
    "sandwich_le",
    "mix_le",
    "snack_le",
    "sandwich_to_object",
    "object_to_sandwich",
    "consistent_witness",
]


@dataclass(frozen=True)
class Sandwich:
    """A sandwich ``(L, U)`` over *poset*: lower/upper approximations.

    Both components are normalized to antichains (``max`` of the lower
    part, ``min`` of the upper part — the informative representatives, as
    in Section 3's antichain semantics).
    """

    lower: frozenset
    upper: frozenset
    poset: Poset

    def __init__(self, lower: Iterable[Item], upper: Iterable[Item], poset: Poset) -> None:
        lo = frozenset(lower)
        up = frozenset(upper)
        for x in lo | up:
            if x not in poset.carrier:
                raise OrNRAValueError(f"sandwich element {x!r} outside carrier")
        object.__setattr__(self, "lower", frozenset(poset.maximal(lo)))
        object.__setattr__(self, "upper", frozenset(poset.minimal(up)))
        object.__setattr__(self, "poset", poset)

    def is_consistent(self) -> bool:
        """Does some finite set ``S`` satisfy ``L ⊑♭ S`` and ``U ⊑♯ S``?

        Closed form: every ``l`` in the lower part must have an upper bound
        lying above some member of the upper part.  (The up-set of ``U`` is
        the largest candidate for ``S``.)
        """
        if not self.lower:
            return True
        up_of_upper = {
            x
            for x in self.poset.carrier
            if any(self.poset.le(u, x) for u in self.upper)
        }
        if not up_of_upper:
            return False
        return all(
            any(self.poset.le(l, x) for x in up_of_upper) for l in self.lower
        )

    def is_mix(self) -> bool:
        """Gunter's support condition: each certain element refines a
        listed possibility."""
        return all(
            any(self.poset.le(u, l) for u in self.upper) for l in self.lower
        )

    def __le__(self, other: "Sandwich") -> bool:
        return sandwich_le(self, other)


class Mix(Sandwich):
    """A mix: a sandwich satisfying the support condition ``U ⊑♯-below L``.

    Construction raises :class:`OrNRAValueError` when the condition fails,
    so every :class:`Mix` instance is a valid element of the mixed
    powerdomain.
    """

    def __init__(self, lower: Iterable[Item], upper: Iterable[Item], poset: Poset) -> None:
        super().__init__(lower, upper, poset)
        if not self.is_mix():
            raise OrNRAValueError(
                f"not a mix: lower part {set(self.lower)!r} not supported by "
                f"upper part {set(self.upper)!r}"
            )


def sandwich_le(a: Sandwich, b: Sandwich) -> bool:
    """The sandwich order: Hoare on lower parts, Smyth on upper parts.

    ``a <= b`` means *b* is a better approximation: it is certain about
    more (Hoare) and allows fewer possibilities (Smyth).
    """
    le = a.poset.le
    return hoare_le(a.lower, b.lower, le) and smyth_le(a.upper, b.upper, le)


def mix_le(a: Mix, b: Mix) -> bool:
    """The mix order (the sandwich order restricted to mixes)."""
    return sandwich_le(a, b)


@dataclass(frozen=True)
class Snack:
    """A snack: a finite set of consistent sandwiches over one poset."""

    pairs: frozenset
    poset: Poset

    def __init__(self, pairs: Iterable[Sandwich], poset: Poset) -> None:
        frozen = frozenset(pairs)
        for p in frozen:
            if p.poset is not poset:
                raise OrNRAValueError("snack members must share the poset")
        object.__setattr__(self, "pairs", frozen)
        object.__setattr__(self, "poset", poset)

    def __le__(self, other: "Snack") -> bool:
        return snack_le(self, other)


def snack_le(a: Snack, b: Snack) -> bool:
    """Hoare lift of the sandwich order: every pair of *a* is improved by
    some pair of *b*."""
    return all(any(sandwich_le(p, q) for q in b.pairs) for p in a.pairs)


def consistent_witness(s: Sandwich, max_size: int = 3) -> frozenset | None:
    """Brute-force search for a witness set ``S`` (tests cross-check the
    closed form of :meth:`Sandwich.is_consistent` against this)."""
    carrier = sorted(s.poset.carrier, key=repr)
    le = s.poset.le
    for k in range(0, max_size + 1):
        for combo in combinations(carrier, k):
            candidate = frozenset(combo)
            if hoare_le(s.lower, candidate, le) and smyth_le(
                s.upper, candidate, le
            ):
                return candidate
    return None


def sandwich_to_object(s: Sandwich, base: str = "d") -> Value:
    """The or-set representation of a sandwich (Libkin [22]):
    ``({l_1, ...}, <u_1, ...>) : {b} * <b>``.

    Under the Section 3 semantics with *base* ordered by ``s.poset``, the
    object order on these representations coincides with
    :func:`sandwich_le` — the executable form of "or-sets ... a suitable
    representation of those approximation models".
    """
    return Pair(
        SetValue(Atom(base, l) for l in sorted(s.lower, key=repr)),
        OrSetValue(Atom(base, u) for u in sorted(s.upper, key=repr)),
    )


def object_to_sandwich(v: Value, poset: Poset) -> Sandwich:
    """Inverse of :func:`sandwich_to_object`."""
    if not (
        isinstance(v, Pair)
        and isinstance(v.fst, SetValue)
        and isinstance(v.snd, OrSetValue)
    ):
        raise OrNRAValueError(f"not a sandwich object: {v!r}")
    lower = []
    upper = []
    for e in v.fst:
        if not isinstance(e, Atom):
            raise OrNRAValueError(f"sandwich object must hold atoms, got {e!r}")
        lower.append(e.value)
    for e in v.snd:
        if not isinstance(e, Atom):
            raise OrNRAValueError(f"sandwich object must hold atoms, got {e!r}")
        upper.append(e.value)
    return Sandwich(lower, upper, poset)
