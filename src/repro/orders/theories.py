"""Modal-logic theories of complex objects (Proposition 3.4).

Following Winskel [34] and Rounds [32], each object gets a *theory* — the
set of formulas it satisfies — built from:

* primitive propositions ``P_e`` for base elements ``e``, with
  ``P_e ∈ Th(x)  iff  x <= e`` (so the theory of a more partial element is
  *larger*: bottom implies everything);
* pairing: ``(phi_1, phi_2) ∈ Th((x_1, x_2)) iff phi_i ∈ Th(x_i)``;
* disjunction-weakening: ``phi ∨ psi ∈ Th(x)`` whenever ``phi ∈ Th(x)`` or
  ``psi ∈ Th(x)`` (the minimal closure of the paper's condition);
* ``□ phi`` — true of a set when every member satisfies ``phi``;
* ``◇ phi`` — true of an or-set when some member satisfies ``phi``.

Proposition 3.4: ``x <= y  iff  Th(x) ⊇ Th(y)``.

Theories are infinite (closed under ∨-weakening), so containment is tested
against a *bounded enumeration* of formulas shaped by the compared type:
:func:`formulas_for` generates all structural formulas over the finite
carriers plus bounded disjunctions, and :func:`theory_superset` checks the
containment over that universe.  For objects whose depth fits the bound,
this is exactly the proposition's criterion (the proof only ever needs
disjunctions of theories of the sibling elements, which the bounded
universe covers for small instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from repro.errors import OrNRAValueError
from repro.orders.poset import Poset
from repro.orders.semantics import BaseOrders
from repro.types.kinds import (
    BaseType,
    OrSetType,
    ProdType,
    SetType,
    Type,
    UnitType,
    VariantType,
)
from repro.values.values import Atom, OrSetValue, Pair, SetValue, Value, Variant

__all__ = [
    "Formula",
    "PropAtom",
    "TruthConst",
    "Falsum",
    "PairForm",
    "InlForm",
    "InrForm",
    "Disj",
    "Box",
    "Diamond",
    "satisfies",
    "formulas_for",
    "theory_superset",
]


class Formula:
    """Abstract base class of modal formulas."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class PropAtom(Formula):
    """The primitive proposition ``P_e`` for base element *e* of base *base*."""

    base: str
    elem: object

    def __repr__(self) -> str:
        return f"P[{self.base}:{self.elem!r}]"


@dataclass(frozen=True, slots=True)
class TruthConst(Formula):
    """The trivially true proposition (theory of the unit element)."""

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True)
class Falsum(Formula):
    """An unsatisfiable base proposition.

    The paper's unspecified language ``L`` must contain one: without it,
    ``Th({bottom})`` and ``Th({})`` coincide (every box holds of both),
    contradicting Proposition 3.4 — ``box falsum`` is the formula that
    holds of the empty set only.
    """

    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True, slots=True)
class PairForm(Formula):
    """The pairing connective: a pair of statements about the components."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r}, {self.right!r})"


@dataclass(frozen=True, slots=True)
class Disj(Formula):
    """Disjunction ``left ∨ right``."""

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} v {self.right!r})"


@dataclass(frozen=True, slots=True)
class InlForm(Formula):
    """``inl phi`` — the object is a left injection whose payload
    satisfies *phi* (Section 7 variant extension)."""

    body: Formula

    def __repr__(self) -> str:
        return f"inl.{self.body!r}"


@dataclass(frozen=True, slots=True)
class InrForm(Formula):
    """``inr phi`` — the object is a right injection whose payload
    satisfies *phi*."""

    body: Formula

    def __repr__(self) -> str:
        return f"inr.{self.body!r}"


@dataclass(frozen=True, slots=True)
class Box(Formula):
    """``□ phi`` — every member of the set satisfies *phi*."""

    body: Formula

    def __repr__(self) -> str:
        return f"[]{self.body!r}"


@dataclass(frozen=True, slots=True)
class Diamond(Formula):
    """``◇ phi`` — some member of the or-set satisfies *phi*."""

    body: Formula

    def __repr__(self) -> str:
        return f"<>{self.body!r}"


def satisfies(
    phi: Formula, x: Value, base_orders: BaseOrders | None = None
) -> bool:
    """Decide ``phi ∈ Th(x)``.

    Raises :class:`OrNRAValueError` when the formula's shape does not match
    the object's kind (e.g. ``□`` against a pair).
    """
    base_orders = base_orders or {}
    if isinstance(phi, TruthConst):
        return True
    if isinstance(phi, Falsum):
        return False
    if isinstance(phi, Disj):
        return satisfies(phi.left, x, base_orders) or satisfies(
            phi.right, x, base_orders
        )
    if isinstance(phi, PropAtom):
        if not isinstance(x, Atom):
            raise OrNRAValueError(f"P_e against non-atom {x!r}")
        if x.base != phi.base:
            raise OrNRAValueError(
                f"P_e of base {phi.base} against atom of base {x.base}"
            )
        poset = base_orders.get(x.base)
        if poset is None:
            return x.value == phi.elem
        return poset.le(x.value, phi.elem)
    if isinstance(phi, PairForm):
        if not isinstance(x, Pair):
            raise OrNRAValueError(f"pair formula against non-pair {x!r}")
        return satisfies(phi.left, x.fst, base_orders) and satisfies(
            phi.right, x.snd, base_orders
        )
    if isinstance(phi, (InlForm, InrForm)):
        if not isinstance(x, Variant):
            raise OrNRAValueError(f"injection formula against non-variant {x!r}")
        wanted = 0 if isinstance(phi, InlForm) else 1
        if x.side != wanted:
            return False
        return satisfies(phi.body, x.payload, base_orders)
    if isinstance(phi, Box):
        if not isinstance(x, SetValue):
            raise OrNRAValueError(f"box formula against non-set {x!r}")
        return all(satisfies(phi.body, e, base_orders) for e in x.elems)
    if isinstance(phi, Diamond):
        if not isinstance(x, OrSetValue):
            raise OrNRAValueError(f"diamond formula against non-or-set {x!r}")
        return any(satisfies(phi.body, e, base_orders) for e in x.elems)
    raise OrNRAValueError(f"not a formula: {phi!r}")


def _with_disjunctions(base: list[Formula], width: int) -> Iterator[Formula]:
    """The base formulas plus all disjunctions of up to *width* of them."""
    yield from base
    for k in range(2, width + 1):
        for combo in combinations(base, k):
            phi = combo[0]
            for psi in combo[1:]:
                phi = Disj(phi, psi)
            yield phi


def formulas_for(
    t: Type,
    base_orders: BaseOrders | None = None,
    disj_width: int = 2,
) -> list[Formula]:
    """A bounded universe of formulas for objects of type *t*.

    Base types contribute ``P_e`` for every carrier element plus ``false``
    (a base type with no registered poset contributes only ``false`` — its
    elements are totally unordered and the carrier is unknown, so no ``P_e``
    can be enumerated).  Disjunctions of up to *disj_width* formulas are
    added directly under every ``□`` and at the root, which is exactly
    where the proposition's proof needs them.
    """
    base_orders = base_orders or {}

    def build(s: Type) -> list[Formula]:
        if isinstance(s, UnitType):
            return [TruthConst()]
        if isinstance(s, BaseType):
            poset: Poset | None = base_orders.get(s.name)
            if poset is None:
                return [Falsum()]
            return [Falsum()] + [
                PropAtom(s.name, e) for e in sorted(poset.carrier, key=repr)
            ]
        if isinstance(s, ProdType):
            lefts = build(s.left)
            rights = build(s.right)
            return [PairForm(a, b) for a in lefts for b in rights]
        if isinstance(s, SetType):
            # Disjunctions are taken *here* and nowhere else inside the
            # universe: the proof of Proposition 3.4 discriminates sets with
            # formulas box(phi_1 v ... v phi_m), while a disjunction at any
            # other position is witnessed by one of its disjuncts already
            # (diamond, pairing and the root all distribute over v).  Taking
            # the closure at every level instead makes the universe grow as
            # an iterated binomial and is infeasible for nested types.
            inner = list(_with_disjunctions(build(s.elem), disj_width))
            return [Box(phi) for phi in inner]
        if isinstance(s, OrSetType):
            return [Diamond(phi) for phi in build(s.elem)]
        if isinstance(s, VariantType):
            return [InlForm(phi) for phi in build(s.left)] + [
                InrForm(phi) for phi in build(s.right)
            ]
        raise OrNRAValueError(f"formulas_for: unsupported type {s!r}")

    return list(_with_disjunctions(build(t), disj_width))


def theory_superset(
    x: Value,
    y: Value,
    t: Type,
    base_orders: BaseOrders | None = None,
    disj_width: int = 2,
) -> bool:
    """Bounded check of ``Th(x) ⊇ Th(y)``.

    Proposition 3.4 says this holds iff ``x <= y``; tests compare the two
    sides on random small objects.
    """
    return not any(
        satisfies(phi, y, base_orders) and not satisfies(phi, x, base_orders)
        for phi in formulas_for(t, base_orders, disj_width)
    )
