"""The Hoare, Smyth and Plotkin orderings on subsets of a poset (Section 3).

For a poset ``(X, <=)`` and ``A, B ⊆ X``::

    A ⊑♭ B  (Hoare)   iff  ∀a ∈ A ∃b ∈ B : a <= b
    A ⊑♯ B  (Smyth)   iff  (∀b ∈ B ∃a ∈ A : a <= b)  and  (B = ∅ ⇒ A = ∅)
    A ⊑♮ B  (Plotkin) iff  A ⊑♭ B and A ⊑♯ B

The paper keeps the usually-omitted ``B = ∅ ⇒ A = ∅`` clause so the empty
or-set is comparable only with itself — matching its reading as
*inconsistency*.  On a totally unordered ``X``, Hoare is the subset order
and Smyth the superset order on non-empty sets.

The functions are generic in the element order: pass any ``le(a, b)``
predicate (a :class:`~repro.orders.poset.Poset` method, or the recursive
value order of :mod:`repro.orders.semantics`).
"""

from __future__ import annotations

from typing import Callable, Collection, Hashable, TypeVar

__all__ = [
    "hoare_le",
    "smyth_le",
    "plotkin_le",
    "hoare_equivalent",
    "smyth_equivalent",
]

T = TypeVar("T", bound=Hashable)
LePredicate = Callable[[T, T], bool]


def hoare_le(a: Collection[T], b: Collection[T], le: LePredicate) -> bool:
    """The Hoare ordering ``A ⊑♭ B`` (used for ordinary set types)."""
    return all(any(le(x, y) for y in b) for x in a)


def smyth_le(a: Collection[T], b: Collection[T], le: LePredicate) -> bool:
    """The Smyth ordering ``A ⊑♯ B`` with the paper's empty-set clause
    (used for or-set types; ``<>`` is comparable only with itself)."""
    if len(b) == 0 and len(a) != 0:
        return False
    return all(any(le(x, y) for x in a) for y in b)


def plotkin_le(a: Collection[T], b: Collection[T], le: LePredicate) -> bool:
    """The Plotkin (Egli–Milner) ordering ``A ⊑♮ B`` used in the proofs of
    Proposition 3.2 and Theorem 3.3."""
    return hoare_le(a, b, le) and smyth_le(a, b, le)


def hoare_equivalent(a: Collection[T], b: Collection[T], le: LePredicate) -> bool:
    """Hoare-equivalence (both directions) — sets with equal ``max``."""
    return hoare_le(a, b, le) and hoare_le(b, a, le)


def smyth_equivalent(a: Collection[T], b: Collection[T], le: LePredicate) -> bool:
    """Smyth-equivalence (both directions) — sets with equal ``min``."""
    return smyth_le(a, b, le) and smyth_le(b, a, le)
