"""Finite partially ordered sets (Section 3 substrate).

Partial information is modeled by a partial order on database objects:
``x <= y`` means *y is more informative than x*.  Base types carry posets
(a database without partial information has totally unordered base values);
Codd-style nulls are captured by *flat domains* — an unordered carrier plus
a bottom element below everything.

:class:`Poset` is a small, explicit finite poset over hashable items with
the operations the rest of Section 3 needs: up/down sets, maximal/minimal
elements of subsets, antichain tests, and generators for the standard
shapes (flat, chain, antichain, diamond, random).
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Hashable, Iterable

from repro.errors import OrNRAValueError

__all__ = ["Poset", "flat_domain", "chain", "discrete", "diamond", "random_poset"]

Item = Hashable


class Poset:
    """A finite poset given by its carrier and order pairs.

    The constructor takes the carrier and a collection of ``(lo, hi)``
    pairs; the reflexive-transitive closure is computed and antisymmetry is
    verified.
    """

    def __init__(self, carrier: Iterable[Item], pairs: Iterable[tuple[Item, Item]]) -> None:
        self._carrier: frozenset[Item] = frozenset(carrier)
        up: dict[Item, set[Item]] = {x: {x} for x in self._carrier}
        edges = list(pairs)
        for lo, hi in edges:
            if lo not in self._carrier or hi not in self._carrier:
                raise OrNRAValueError(f"order pair {(lo, hi)!r} outside carrier")
            up[lo].add(hi)
        # Transitive closure (Floyd–Warshall style on the small carrier).
        changed = True
        while changed:
            changed = False
            for x in self._carrier:
                grown = set(up[x])
                for y in up[x]:
                    grown |= up[y]
                if grown != up[x]:
                    up[x] = grown
                    changed = True
        for x in self._carrier:
            for y in up[x]:
                if x != y and x in up[y]:
                    raise OrNRAValueError(f"not antisymmetric: {x!r} ~ {y!r}")
        self._up = {x: frozenset(s) for x, s in up.items()}

    # ----- basic queries ---------------------------------------------------

    @property
    def carrier(self) -> frozenset[Item]:
        """The underlying set of elements."""
        return self._carrier

    def le(self, a: Item, b: Item) -> bool:
        """Is ``a <= b``?"""
        if a not in self._carrier or b not in self._carrier:
            raise OrNRAValueError(f"{a!r} or {b!r} not in carrier")
        return b in self._up[a]

    def lt(self, a: Item, b: Item) -> bool:
        """Is ``a < b``?"""
        return a != b and self.le(a, b)

    def up_set(self, a: Item) -> frozenset[Item]:
        """All elements above *a* (inclusive)."""
        if a not in self._carrier:
            raise OrNRAValueError(f"{a!r} not in carrier")
        return self._up[a]

    def down_set(self, a: Item) -> frozenset[Item]:
        """All elements below *a* (inclusive)."""
        return frozenset(x for x in self._carrier if self.le(x, a))

    def comparable(self, a: Item, b: Item) -> bool:
        """Are *a* and *b* comparable?"""
        return self.le(a, b) or self.le(b, a)

    # ----- antichain machinery --------------------------------------------

    def maximal(self, subset: Iterable[Item]) -> frozenset[Item]:
        """``max A`` — the maximal elements of *subset*."""
        items = list(subset)
        return frozenset(
            a for a in items if not any(self.lt(a, b) for b in items)
        )

    def minimal(self, subset: Iterable[Item]) -> frozenset[Item]:
        """``min A`` — the minimal elements of *subset*."""
        items = list(subset)
        return frozenset(
            a for a in items if not any(self.lt(b, a) for b in items)
        )

    def is_antichain(self, subset: Iterable[Item]) -> bool:
        """No two distinct elements of *subset* are comparable."""
        items = list(subset)
        return all(
            not self.comparable(a, b)
            for a, b in combinations(items, 2)
        )

    def antichains(self, max_size: int | None = None) -> list[frozenset[Item]]:
        """All antichains of the poset (small carriers only)."""
        found: list[frozenset[Item]] = []
        items = sorted(self._carrier, key=repr)
        limit = len(items) if max_size is None else max_size
        for k in range(limit + 1):
            for combo in combinations(items, k):
                if self.is_antichain(combo):
                    found.append(frozenset(combo))
        return found

    def __repr__(self) -> str:
        relations = sorted(
            f"{a!r}<{b!r}"
            for a in self._carrier
            for b in self._up[a]
            if a != b
        )
        return f"Poset({sorted(map(repr, self._carrier))}, [{', '.join(relations)}])"


def flat_domain(values: Iterable[Item], bottom: Item = "_bot") -> Poset:
    """A flat domain: unordered *values* plus a bottom (null) below all.

    This captures Codd tables: the bottom is the unknown null.
    """
    carrier = list(values)
    if bottom in carrier:
        raise OrNRAValueError(f"bottom {bottom!r} clashes with a carrier value")
    return Poset(carrier + [bottom], [(bottom, v) for v in carrier])


def chain(n: int) -> Poset:
    """The linear order ``0 < 1 < ... < n-1``."""
    return Poset(range(n), [(i, i + 1) for i in range(n - 1)])


def discrete(values: Iterable[Item]) -> Poset:
    """A totally unordered carrier (no partial information)."""
    return Poset(values, [])


def diamond() -> Poset:
    """The four-element diamond ``bot < a, b < top``."""
    return Poset(
        ["bot", "a", "b", "top"],
        [("bot", "a"), ("bot", "b"), ("a", "top"), ("b", "top")],
    )


def random_poset(n: int, edge_prob: float, rng: random.Random) -> Poset:
    """A random poset on ``0..n-1``: edges only from lower to higher labels,
    so acyclicity (hence antisymmetry after closure) is guaranteed."""
    pairs = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_prob
    ]
    return Poset(range(n), pairs)
