"""Update transformations and their closures (Propositions 3.1 and 3.2).

Section 3 justifies the Hoare/Smyth orderings operationally.  Knowledge in
a *set* improves by

* replacing an element ``a`` by a non-empty set ``A'`` of elements above it
  (refinement), or
* adding a new element (more facts);

knowledge in an *or-set* improves by

* replacing an element by a non-empty set of elements above it, or
* removing an element (fewer alternatives), as long as the or-set stays
  non-empty.

Proposition 3.1: the reflexive-transitive closures of these step relations
are exactly ``⊑♭`` and ``⊑♯``.  Proposition 3.2: the same holds on
antichains when every step re-normalizes with ``max`` (sets) or ``min``
(or-sets).

The closures are computed by breadth-first search over the (finite) family
of subsets of the carrier — exponential, but these functions exist to
*verify* the propositions on small posets, not to be fast.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Hashable, Iterable, Iterator

from repro.orders.poset import Poset

__all__ = [
    "hoare_steps",
    "smyth_steps",
    "hoare_steps_antichain",
    "smyth_steps_antichain",
    "reachable",
    "hoare_reachable",
    "smyth_reachable",
    "hoare_reachable_antichain",
    "smyth_reachable_antichain",
]

Item = Hashable
State = frozenset


def _nonempty_up_subsets(poset: Poset, a: Item) -> Iterator[frozenset[Item]]:
    ups = sorted(poset.up_set(a), key=repr)
    for k in range(1, len(ups) + 1):
        for combo in combinations(ups, k):
            yield frozenset(combo)


def hoare_steps(poset: Poset, state: State) -> Iterator[State]:
    """One-step successors of *state* under the set update relation ``⇝``."""
    # Replace a by a non-empty A' with a <= a' for all a' in A'.
    for a in state:
        rest = state - {a}
        for subset in _nonempty_up_subsets(poset, a):
            yield rest | subset
    # Add any element.
    for x in poset.carrier:
        if x not in state:
            yield state | {x}


def smyth_steps(poset: Poset, state: State) -> Iterator[State]:
    """One-step successors of *state* under the or-set relation ``↪``."""
    for a in state:
        rest = state - {a}
        for subset in _nonempty_up_subsets(poset, a):
            yield rest | subset
    # Remove any element, provided the result is non-empty.
    if len(state) > 1:
        for a in state:
            yield state - {a}


def hoare_steps_antichain(poset: Poset, state: State) -> Iterator[State]:
    """The antichain variant ``⇝_a``: every step followed by ``max``."""
    for successor in hoare_steps(poset, state):
        yield frozenset(poset.maximal(successor))


def smyth_steps_antichain(poset: Poset, state: State) -> Iterator[State]:
    """The antichain variant ``↪_a``: every step followed by ``min``.

    Removal is allowed whenever the *normalized* result stays non-empty;
    since ``min`` never empties a non-empty set, the guard is unchanged.
    """
    for successor in smyth_steps(poset, state):
        yield frozenset(poset.minimal(successor))


def reachable(
    start: Iterable[Item],
    step: "callable[[State], Iterator[State]]",
    max_states: int | None = None,
) -> set[State]:
    """Reflexive-transitive closure of a step relation from *start* (BFS).

    The frontier is a FIFO queue, so states are expanded in breadth-first
    (level) order; *max_states* is a hard cap on the states ever admitted —
    the budget is checked *before* a new state is recorded, so the closure
    never holds more than ``max_states`` states, even transiently.
    """
    origin = frozenset(start)
    seen: set[State] = {origin}
    frontier: deque[State] = deque([origin])
    while frontier:
        state = frontier.popleft()
        for nxt in step(state):
            if nxt not in seen:
                if max_states is not None and len(seen) >= max_states:
                    raise RuntimeError(
                        f"reachable: state budget exceeded ({max_states})"
                    )
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def hoare_reachable(poset: Poset, start: Iterable[Item]) -> set[State]:
    """All sets reachable from *start* via ``⇝*`` (Proposition 3.1 says:
    exactly the Hoare-upper sets of *start*)."""
    return reachable(start, lambda s: hoare_steps(poset, s))


def smyth_reachable(poset: Poset, start: Iterable[Item]) -> set[State]:
    """All sets reachable from *start* via ``↪*`` (exactly the Smyth-upper
    sets, by Proposition 3.1)."""
    return reachable(start, lambda s: smyth_steps(poset, s))


def hoare_reachable_antichain(poset: Poset, start: Iterable[Item]) -> set[State]:
    """All antichains reachable via ``⇝_a*`` (Proposition 3.2)."""
    origin = frozenset(poset.maximal(start))
    return reachable(origin, lambda s: hoare_steps_antichain(poset, s))


def smyth_reachable_antichain(poset: Poset, start: Iterable[Item]) -> set[State]:
    """All antichains reachable via ``↪_a*`` (Proposition 3.2)."""
    origin = frozenset(poset.minimal(start))
    return reachable(origin, lambda s: smyth_steps_antichain(poset, s))
