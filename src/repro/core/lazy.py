"""Lazy (stream) normalization — the Section 7 optimization.

The conclusion sketches evaluating existential queries without producing
the whole normal form: "elements of a normal form are produced as elements
of a stream ... if the test is satisfied, the evaluation stops".  This
module implements that design on top of the possible-worlds recursion:

* :func:`iter_possibilities` streams the conceptual values of an object,
  deduplicated on the fly, in the same canonical order-free fashion as
  ``normalize`` (the *set* of yielded values equals the normal form's
  elements);
* :func:`exists_lazy` / :func:`find_first` short-circuit on the first
  witness — the benchmark ``bench_lazy_normalization`` measures the
  speedup over eager normalization on satisfiable existential queries.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.values.values import Value

from repro.core.worlds import iter_worlds

__all__ = [
    "iter_possibilities",
    "exists_lazy",
    "forall_lazy",
    "find_first",
    "take_possibilities",
]


def iter_possibilities(value: Value) -> Iterator[Value]:
    """Stream the conceptual values of *value* without duplicates.

    Equivalent to iterating over ``possibilities(value)`` but produces
    each element as soon as it is discovered.
    """
    seen: set[Value] = set()
    for world in iter_worlds(value):
        if world not in seen:
            seen.add(world)
            yield world


def exists_lazy(pred: Callable[[Value], bool], value: Value) -> bool:
    """Does some conceptual value of *value* satisfy *pred*?

    Short-circuits on the first witness; this is the lazy evaluation of
    the existential queries of Section 6.
    """
    return any(pred(world) for world in iter_worlds(value))


def forall_lazy(pred: Callable[[Value], bool], value: Value) -> bool:
    """Do all conceptual values of *value* satisfy *pred*?

    Vacuously true for inconsistent objects (no conceptual values).
    """
    return all(pred(world) for world in iter_worlds(value))


def find_first(pred: Callable[[Value], bool], value: Value) -> Value | None:
    """The first conceptual value satisfying *pred*, or ``None``."""
    for world in iter_worlds(value):
        if pred(world):
            return world
    return None


def take_possibilities(value: Value, k: int) -> list[Value]:
    """At most *k* distinct conceptual values (cheap peek at a normal form)."""
    out: list[Value] = []
    for world in iter_possibilities(value):
        out.append(world)
        if len(out) >= k:
            break
    return out
