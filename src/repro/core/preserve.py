"""Losslessness of normalization (Theorem 5.1) and conceptual analogs
(Proposition 5.2, Figure 2).

Normalization erases structural differences; Theorem 5.1 shows that for a
syntactic class of morphisms ``f : s -> t`` nothing essential is lost:
there is ``preserve(f) : nf(<s>) -> nf(<t>)`` with

    preserve(f) o normalize o or_eta  =  normalize o or_eta o f

on inputs without empty or-sets.  ``preserve`` is built by structural
induction on ``f`` (this module follows the proof's case table verbatim);
the excluded constructs are exactly the ones that can collapse or-sets or
observe their structure:

* ``K<>`` anywhere;
* primitives ``p`` whose declared type mentions or-sets (including ``=_t``
  at or-set types — equality is structural);
* ``rho_2``, ``mu``, ``U`` at element types with or-sets;
* ``map(g) : {u} -> {v}`` with or-sets in ``u`` or ``v``;
* pair formation ``(g, h) : r -> u * v`` with or-sets in ``r``, ``u`` or
  ``v``.

Proposition 5.2 weakens the requirement to *conceptual analogs* —
``preserve(f)`` whose image is only *included* in the normalization of the
output — for pure or-types, re-admitting ``K<>``, pair formation and
``rho_2``.  The analog is map-like, and onto unless ``K<>``, pair
formation or ``rho_2`` occur; the paper's two counterexamples
(``or_union`` is not map-like, ``rho_2`` is not onto) are reproduced in
the tests and the losslessness benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EligibilityError, OrNRATypeError
from repro.types.kinds import (
    BaseType,
    OrSetType,
    ProdType,
    SetType,
    Type,
    UnitType,
    contains_orset,
)
from repro.values.measure import has_empty_orset
from repro.values.values import Atom, OrSetValue, Pair, SetValue, UnitValue, Value

from repro.core.normalize import normalize, possibilities
from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Const,
    Eq,
    Id,
    Morphism,
    PairOf,
    Primitive,
    Proj1,
    Proj2,
)
from repro.lang.orset_ops import (
    Alpha,
    KEmptyOrSet,
    OrEta,
    OrMap,
    OrMu,
    OrRho2,
    OrToSet,
    OrUnion,
    SetToOr,
    or_cartesian,
)
from repro.lang.set_ops import (
    KEmptySet,
    SetEta,
    SetMap,
    SetMu,
    SetRho2,
    SetUnion,
)

__all__ = [
    "check_lossless_eligible",
    "check_analog_eligible",
    "preserve",
    "conceptual_analog",
    "analog_is_maplike",
    "analog_is_onto",
    "verify_losslessness",
    "verify_analog_inclusion",
    "preserve_type",
    "preserve_value",
    "is_pure_or_type",
]


# ---------------------------------------------------------------------------
# Eligibility (the theorem's syntactic class)
# ---------------------------------------------------------------------------

_SIMPLE_LIFTED = (
    Proj1,
    Proj2,
    Bang,
    Const,
    SetEta,
    KEmptySet,
)


def _out_type(f: Morphism, s: Type) -> Type:
    try:
        return f.output_type(s)
    except OrNRATypeError as exc:
        raise EligibilityError(f"{f.describe()} cannot accept {s!r}: {exc}") from exc


def check_lossless_eligible(f: Morphism, s: Type) -> Type:
    """Verify *f* at input type *s* is in Theorem 5.1's class.

    Returns the output type; raises :class:`EligibilityError` otherwise.
    """
    if isinstance(f, Id):
        return s
    if isinstance(f, Compose):
        mid = check_lossless_eligible(f.before, s)
        return check_lossless_eligible(f.after, mid)
    if isinstance(f, PairOf):
        u = check_lossless_eligible(f.left, s)
        v = check_lossless_eligible(f.right, s)
        if contains_orset(s) or contains_orset(u) or contains_orset(v):
            raise EligibilityError(
                "pair formation at or-set-bearing types is excluded from "
                f"Theorem 5.1 (r={s!r}, u={u!r}, v={v!r})"
            )
        return ProdType(u, v)
    if isinstance(f, KEmptyOrSet):
        raise EligibilityError("K<> is excluded from Theorem 5.1")
    if isinstance(f, Eq):
        if contains_orset(s):
            raise EligibilityError(
                f"equality at or-set type {s!r} is structural, hence excluded"
            )
        return _out_type(f, s)
    if isinstance(f, Primitive):
        if contains_orset(f.dom) or contains_orset(f.cod):
            raise EligibilityError(
                f"primitive {f.name} has or-sets in Type(p): "
                f"{f.dom!r} -> {f.cod!r}"
            )
        return _out_type(f, s)
    if isinstance(f, SetRho2):
        if contains_orset(s):
            raise EligibilityError(f"rho_2 at or-set-bearing type {s!r}")
        return _out_type(f, s)
    if isinstance(f, SetMu):
        if contains_orset(s):
            raise EligibilityError(f"mu at or-set-bearing type {s!r}")
        return _out_type(f, s)
    if isinstance(f, SetUnion):
        if contains_orset(s):
            raise EligibilityError(f"union at or-set-bearing type {s!r}")
        return _out_type(f, s)
    if isinstance(f, SetMap):
        if not isinstance(s, SetType):
            raise EligibilityError(f"map applied to non-set {s!r}")
        v = check_lossless_eligible(f.body, s.elem)
        if contains_orset(s.elem) or contains_orset(v):
            raise EligibilityError(
                f"map(g) : {s!r} -> {{{v!r}}} with or-sets is excluded"
            )
        return SetType(v)
    if isinstance(f, OrMap):
        if not isinstance(s, OrSetType):
            raise EligibilityError(f"ormap applied to non-or-set {s!r}")
        return OrSetType(check_lossless_eligible(f.body, s.elem))
    if isinstance(f, _SIMPLE_LIFTED) or isinstance(
        f, (Alpha, OrEta, OrMu, OrRho2, OrUnion)
    ):
        return _out_type(f, s)
    if isinstance(f, (Cond, OrToSet, SetToOr)):
        raise EligibilityError(
            f"{f.describe()} is outside the or-NRA fragment of Theorem 5.1"
        )
    raise EligibilityError(f"no Theorem 5.1 case for {f.describe()}")


def check_analog_eligible(f: Morphism, s: Type) -> Type:
    """Proposition 5.2's weaker class: ``K<>``, pair formation and
    ``rho_2`` are re-admitted; other exclusions stand."""
    if isinstance(f, KEmptyOrSet):
        return _out_type(f, s)
    if isinstance(f, PairOf):
        u = check_analog_eligible(f.left, s)
        v = check_analog_eligible(f.right, s)
        return ProdType(u, v)
    if isinstance(f, SetRho2):
        return _out_type(f, s)
    if isinstance(f, Compose):
        mid = check_analog_eligible(f.before, s)
        return check_analog_eligible(f.after, mid)
    if isinstance(f, SetMap):
        if not isinstance(s, SetType):
            raise EligibilityError(f"map applied to non-set {s!r}")
        v = check_analog_eligible(f.body, s.elem)
        if contains_orset(s.elem) or contains_orset(v):
            raise EligibilityError(
                f"map(g) : {s!r} -> {{{v!r}}} with or-sets is excluded"
            )
        return SetType(v)
    if isinstance(f, OrMap):
        if not isinstance(s, OrSetType):
            raise EligibilityError(f"ormap applied to non-or-set {s!r}")
        return OrSetType(check_analog_eligible(f.body, s.elem))
    return check_lossless_eligible(f, s)


# ---------------------------------------------------------------------------
# The preserve(f) construction (proof of Theorem 5.1)
# ---------------------------------------------------------------------------


def _orcp() -> Morphism:
    """``or_mu o ormap(or_rho_1) o or_rho_2`` — the pairing combinator."""
    return or_cartesian()


def _build(f: Morphism, s: Type, analog: bool) -> tuple[Morphism, Type]:
    """Return ``(preserve(f), t)`` for ``f : s -> t``."""
    if isinstance(f, Id):
        return Id(), s
    if isinstance(f, Compose):
        pf_before, mid = _build(f.before, s, analog)
        pf_after, out = _build(f.after, mid, analog)
        return Compose(pf_after, pf_before), out
    if isinstance(f, PairOf):
        pg, u = _build(f.left, s, analog)
        ph, v = _build(f.right, s, analog)
        return Compose(_orcp(), PairOf(pg, ph)), ProdType(u, v)
    if isinstance(f, SetMap):
        assert isinstance(s, SetType)
        pg, v = _build(f.body, s.elem, analog)
        built = Compose(
            OrMu(),
            Compose(
                OrMap(Alpha()),
                OrMap(SetMap(Compose(pg, OrEta()))),
            ),
        )
        return built, SetType(v)
    if isinstance(f, OrMap):
        # The paper writes preserve(ormap(g)) = preserve(g), using the
        # induction hypothesis that preserve(g) is map-like.  When g uses
        # pair formation (admitted by Prop 5.2) its analog is *not*
        # map-like, so we use the robust equivalent
        # or_mu o ormap(preserve(g) o or_eta), which coincides with
        # preserve(g) exactly when the latter is map-like.
        assert isinstance(s, OrSetType)
        pg, v = _build(f.body, s.elem, analog)
        robust = Compose(OrMu(), OrMap(Compose(pg, OrEta())))
        return robust, OrSetType(v)
    if isinstance(f, (Alpha, OrEta, OrRho2, OrMu)):
        return Id(), _out_type(f, s)
    if isinstance(f, OrUnion):
        lifted = Compose(
            OrMu(),
            OrMap(
                Compose(
                    OrUnion(),
                    PairOf(Compose(OrEta(), Proj1()), Compose(OrEta(), Proj2())),
                )
            ),
        )
        return lifted, _out_type(f, s)
    if isinstance(f, KEmptyOrSet):
        if not analog:
            raise EligibilityError("K<> only has a conceptual analog (Prop 5.2)")
        return (
            Compose(OrMu(), OrMap(Compose(KEmptyOrSet(), Bang()))),
            _out_type(f, s),
        )
    if isinstance(
        f,
        (
            Proj1,
            Proj2,
            Bang,
            Const,
            Eq,
            SetEta,
            SetMu,
            SetRho2,
            SetUnion,
            KEmptySet,
            Primitive,
        ),
    ):
        return OrMap(f), _out_type(f, s)
    raise EligibilityError(f"no preserve case for {f.describe()}")


def preserve(f: Morphism, s: Type) -> Morphism:
    """``preserve(f) : nf(<s>) -> nf(<t>)`` per Theorem 5.1.

    Checks eligibility first; raises :class:`EligibilityError` when *f* is
    outside the theorem's class.
    """
    check_lossless_eligible(f, s)
    built, _ = _build(f, s, analog=False)
    return built


def conceptual_analog(f: Morphism, s: Type) -> Morphism:
    """A conceptual analog of *f* per Proposition 5.2 (inclusion only)."""
    check_analog_eligible(f, s)
    built, _ = _build(f, s, analog=True)
    return built


@dataclass(frozen=True)
class _UsageFlags:
    uses_k_empty_orset: bool
    uses_or_union: bool
    uses_pairing: bool
    uses_rho2: bool


def _usage(f: Morphism) -> _UsageFlags:
    k = isinstance(f, KEmptyOrSet)
    u = isinstance(f, OrUnion)
    p = isinstance(f, PairOf)
    r = isinstance(f, SetRho2)
    for child in f.children():
        sub = _usage(child)
        k = k or sub.uses_k_empty_orset
        u = u or sub.uses_or_union
        p = p or sub.uses_pairing
        r = r or sub.uses_rho2
    return _UsageFlags(k, u, p, r)


def analog_is_maplike(f: Morphism) -> bool:
    """Proposition 5.2: the analog has the form ``ormap(.)`` unless *f*
    uses ``K<>``, ``or_union`` or pair formation."""
    flags = _usage(f)
    return not (flags.uses_k_empty_orset or flags.uses_or_union or flags.uses_pairing)


def analog_is_onto(f: Morphism) -> bool:
    """Proposition 5.2: the analog is onto (accounts for every conceptual
    output) unless *f* uses ``K<>``, pair formation or ``rho_2``."""
    flags = _usage(f)
    return not (flags.uses_k_empty_orset or flags.uses_pairing or flags.uses_rho2)


# ---------------------------------------------------------------------------
# Verification helpers (used by tests and the losslessness benchmark)
# ---------------------------------------------------------------------------


def verify_losslessness(f: Morphism, x: Value, s: Type) -> bool:
    """Check ``preserve(f)(normalize <x>) == normalize <f x>`` for *x*
    without empty or-sets (the theorem's commuting square)."""
    if has_empty_orset(x):
        raise OrNRATypeError("losslessness inputs must not contain < >")
    pf = preserve(f, s)
    lhs = pf.apply(OrSetValue(possibilities(x, s)))
    t = check_lossless_eligible(f, s)
    rhs = OrSetValue(possibilities(f.apply(x), t))
    return normalize(lhs) == rhs


def verify_analog_inclusion(f: Morphism, x: Value, s: Type) -> bool:
    """Check the Proposition 5.2 inclusion
    ``analog(f)(normalize <x>) ⊆ normalize <f x>``."""
    analog = conceptual_analog(f, s)
    lhs = normalize(analog.apply(OrSetValue(possibilities(x, s))))
    t = check_analog_eligible(f, s)
    rhs = OrSetValue(possibilities(f.apply(x), t))
    if not isinstance(lhs, OrSetValue):
        lhs = OrSetValue((lhs,))
    return set(lhs.elems) <= set(rhs.elems)


# ---------------------------------------------------------------------------
# Pure or-types (the simplified setting of Section 5's second half)
# ---------------------------------------------------------------------------


def preserve_type(t: Type) -> Type:
    """The translation ``t -> preserve t``: every base type ``b`` becomes
    ``<b>`` (pure or-types: ``t ::= <b> | t*t | {t} | <t>``)."""
    if isinstance(t, (BaseType, UnitType)):
        return OrSetType(t)
    if isinstance(t, ProdType):
        return ProdType(preserve_type(t.left), preserve_type(t.right))
    if isinstance(t, SetType):
        return SetType(preserve_type(t.elem))
    if isinstance(t, OrSetType):
        return OrSetType(preserve_type(t.elem))
    raise OrNRATypeError(f"preserve_type: not an object type {t!r}")


def preserve_value(x: Value) -> Value:
    """``preserve_t(x)``: wrap every base-type atom in a singleton or-set
    (conceptually equivalent to *x* whenever *x* has or-sets)."""
    if isinstance(x, (Atom, UnitValue)):
        return OrSetValue((x,))
    if isinstance(x, Pair):
        return Pair(preserve_value(x.fst), preserve_value(x.snd))
    if isinstance(x, SetValue):
        return SetValue(preserve_value(e) for e in x.elems)
    if isinstance(x, OrSetValue):
        return OrSetValue(preserve_value(e) for e in x.elems)
    raise OrNRATypeError(f"preserve_value: unsupported value {x!r}")


def is_pure_or_type(t: Type) -> bool:
    """Is *t* generated by ``t ::= <b> | t*t | {t} | <t>``?"""
    if isinstance(t, OrSetType):
        inner = t.elem
        if isinstance(inner, (BaseType, UnitType)):
            return True
        return is_pure_or_type(inner)
    if isinstance(t, ProdType):
        return is_pure_or_type(t.left) and is_pure_or_type(t.right)
    if isinstance(t, SetType):
        return is_pure_or_type(t.elem)
    return False
