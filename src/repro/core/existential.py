"""Existential queries over normal forms (Section 6, last result).

If ``nf(s) = <t>`` and ``p : t -> bool`` is a predicate, then
``exists(p) : <t> -> bool`` holds of an or-set when some element satisfies
``p``; the conceptual query is ``exists(p) o normalize``.  The paper shows
these queries cannot in general be answered in time polynomial in the
*input* (the normal form can be exponential, and SAT reduces to an
existential query over a functional-dependency test — see
:mod:`repro.sat`).

Three backends are provided; they must agree (tests check this):

* ``eager``  — materialize the normal form, then scan (the paper's
  baseline semantics);
* ``lazy``   — stream conceptual values, short-circuit (Section 7's
  future-work optimization, ref [23]);
* ``worlds`` — the independent possible-worlds oracle.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import OrNRATypeError
from repro.types.kinds import Type
from repro.values.values import Atom, Value

from repro.core.lazy import exists_lazy, find_first
from repro.core.normalize import possibilities
from repro.core.worlds import iter_worlds
from repro.lang.morphisms import Morphism

__all__ = ["as_predicate", "exists_query", "forall_query", "witness"]

PredicateLike = Morphism | Callable[[Value], bool]


def as_predicate(p: PredicateLike) -> Callable[[Value], bool]:
    """Coerce a morphism returning ``bool`` (or a Python function) into a
    plain predicate on values."""
    if isinstance(p, Morphism):

        def run(v: Value) -> bool:
            result = p.apply(v)
            if not (isinstance(result, Atom) and result.base == "bool"):
                raise OrNRATypeError(
                    f"existential predicate returned non-boolean {result!r}"
                )
            return bool(result.value)

        return run
    return p


def exists_query(
    p: PredicateLike,
    x: Value,
    x_type: Type | None = None,
    backend: str = "lazy",
) -> bool:
    """``exists(p)(normalize(<x>))`` — does some possibility satisfy *p*?"""
    pred = as_predicate(p)
    if backend == "eager":
        return any(pred(v) for v in possibilities(x, x_type))
    if backend == "lazy":
        return exists_lazy(pred, x)
    if backend == "worlds":
        seen = set()
        for world in iter_worlds(x):
            if world in seen:
                continue
            seen.add(world)
            if pred(world):
                return True
        return False
    raise ValueError(f"unknown backend {backend!r}")


def forall_query(
    p: PredicateLike,
    x: Value,
    x_type: Type | None = None,
    backend: str = "lazy",
) -> bool:
    """Does every possibility satisfy *p*?  (Vacuously true when
    inconsistent.)"""
    pred = as_predicate(p)
    if backend == "eager":
        return all(pred(v) for v in possibilities(x, x_type))
    return not exists_query(lambda v: not pred(v), x, x_type, backend)


def witness(
    p: PredicateLike, x: Value, x_type: Type | None = None
) -> Value | None:
    """A possibility satisfying *p*, or ``None`` (lazy search)."""
    return find_first(as_predicate(p), x)
