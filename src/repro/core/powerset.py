"""Proposition 2.1: ``alpha`` and ``powerset`` are interdefinable.

``NRA(ortoset, settoor, alpha) == NRA(ortoset, settoor, powerset)``.

Direction 1 (powerset from alpha) is the paper's one-liner, with one
correction: composing ``ortoset o alpha o map(or_U o (or_eta o K{} o !,
or_eta o eta))`` produces a set of *sets of singletons-or-empties*; a final
``map(mu)`` is needed to flatten each choice into the subset it denotes.
:func:`powerset_from_alpha` builds exactly that corrected composition out
of genuine or-NRA morphisms.

Direction 2 (alpha from powerset) is given in the paper as a proof sketch
whose stated membership criterion — "cardinality at most ``|X|`` and
non-empty intersection with every member" — admits false positives: for
``X = {<1,2>, <3>, <3,4>}`` the set ``{1,2,3}`` meets both conditions but
is not a choice image (no choice function can produce both 1 and 2).
:func:`alpha_via_powerset` therefore implements the *choice-relation*
construction instead: enumerate (via ``powerset``) all subsets of the
membership relation ``{(O, e) | O ∈ X, e ∈ O}``, keep those that are
graphs of total choice functions on ``X``, and take their element images.
Every step (flatten/pairing/selection/equality/totality test) is
NRA(``powerset``)-definable by the results of Buneman–Naqvi–Tannen–Wong
cited in the proof, so definability is preserved.  The discrepancy is
recorded in EXPERIMENTS.md, and the counterexample is a regression test.
"""

from __future__ import annotations

from itertools import chain, combinations

from repro.errors import OrNRATypeError
from repro.types.kinds import FuncType, SetType
from repro.types.unify import FreshVars
from repro.values.values import OrSetValue, Pair, SetValue, Value

from repro.lang.morphisms import Bang, Compose, Morphism, PairOf
from repro.lang.orset_ops import OrEta, OrToSet, OrUnion, Alpha
from repro.lang.set_ops import KEmptySet, SetEta, SetMap, SetMu

__all__ = ["Powerset", "powerset", "powerset_from_alpha", "alpha_via_powerset"]


class Powerset(Morphism):
    """The Abiteboul–Beeri primitive ``powerset : {t} -> {{t}}``."""

    def apply(self, value: Value) -> Value:
        if not isinstance(value, SetValue):
            raise OrNRATypeError(f"powerset expects a set, got {value!r}")
        elems = value.elems
        subsets = chain.from_iterable(
            combinations(elems, k) for k in range(len(elems) + 1)
        )
        return SetValue(SetValue(s) for s in subsets)

    def signature(self, fresh: FreshVars) -> FuncType:
        a = fresh.fresh()
        return FuncType(SetType(a), SetType(SetType(a)))

    def describe(self) -> str:
        return "powerset"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Powerset)

    def __hash__(self) -> int:
        return hash("Powerset")


def powerset() -> Powerset:
    """The ``powerset`` primitive."""
    return Powerset()


def powerset_from_alpha() -> Morphism:
    """``powerset`` defined from ``alpha`` (Proposition 2.1, direction 1).

    ``map(mu) o ortoset o alpha o map(or_U o (or_eta o K{} o !, or_eta o eta))``

    Each element ``x`` is replaced by the two-way choice ``<{}, {x}>``;
    ``alpha`` enumerates all combinations; each combination is a set of
    singletons/empties whose union (``mu``) is one subset.
    """
    two_way = Compose(
        OrUnion(),
        PairOf(
            Compose(OrEta(), Compose(KEmptySet(), Bang())),
            Compose(OrEta(), SetEta()),
        ),
    )
    return Compose(
        SetMap(SetMu()),
        Compose(OrToSet(), Compose(Alpha(), SetMap(two_way))),
    )


def alpha_via_powerset(value: Value) -> Value:
    """``alpha`` computed using only NRA(``powerset``)-definable steps
    (Proposition 2.1, direction 2, corrected — see module docstring).

    Input: a set of or-sets.  Output: the or-set of all choice images.
    """
    if not isinstance(value, SetValue):
        raise OrNRATypeError(f"alpha expects a set of or-sets, got {value!r}")
    members = []
    for member in value.elems:
        if not isinstance(member, OrSetValue):
            raise OrNRATypeError(f"alpha expects or-set members, got {member!r}")
        members.append(member)
    if any(not m.elems for m in members):
        return OrSetValue(())

    # Membership relation {(O, e)} — definable as mu o map(rho_2 o (id, ortoset)).
    membership = SetValue(
        Pair(member, e) for member in members for e in member.elems
    )

    # powerset of the membership relation.
    relations = Powerset().apply(membership)

    images: list[Value] = []
    for relation in relations:
        assert isinstance(relation, SetValue)
        pairs = list(relation.elems)
        # Total: every member or-set appears exactly once (functional+total).
        firsts = [p.fst for p in pairs if isinstance(p, Pair)]
        if len(firsts) != len(members):
            continue
        if SetValue(firsts) != SetValue(members):
            continue
        if len(set(firsts)) != len(firsts):
            continue
        images.append(SetValue(p.snd for p in pairs if isinstance(p, Pair)))

    return OrSetValue(images)
