"""Corollary 4.3: ``normalize`` expressed inside or-NRA via tagging.

The coherence proof works with multisets; Corollary 4.3 shows multisets can
be *simulated* in or-NRA by tagging set elements with unique identifiers —
the paper takes the tag of an element to be the element itself
(``[x_1, ..., x_n]' = [(x_1', x_1), ..., (x_n', x_n)]``), which is unique
within a set by set semantics.  Rewriting then uses

* ``alpha' = alpha o map(or_rho_1) : [<s'> * u] -> <[s' * u]>`` in place of
  ``alpha_d`` (the tags keep duplicate or-sets apart, so plain ``alpha``
  loses nothing), and
* ``map(g)' = map((g o pi_1, pi_2))`` in place of ``dmap(g)``;

at the end all tags are projected away.  Every step below is the
application of one of these or-NRA morphisms at a type position (the
``dapp`` discipline), so the function realizes the corollary's claim that
``normalize_t`` is or-NRA-expressible for each fixed ``t``.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import OrNRATypeError
from repro.types.kinds import (
    OrSetType,
    ProdType,
    SetType,
    Type,
    VariantType,
)
from repro.types.rewrite import (
    OR_FLATTEN,
    PAIR_LEFT,
    PAIR_RIGHT,
    Position,
    Redex,
    SET_ALPHA,
    VARIANT_LEFT,
    VARIANT_RIGHT,
    apply_rewrite,
    innermost_strategy,
    redexes,
    subtype_at,
)
from repro.values.values import (
    Atom,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
    infer_type,
)

from repro.lang.morphisms import Morphism
from repro.lang.orset_ops import Alpha, OrMu, OrRho2, or_rho1
from repro.lang.set_ops import SetMap
from repro.lang.variant_ops import OrKappa1, OrKappa2

__all__ = ["tag_value", "untag_value", "normalize_via_tagging"]

_OR_RHO1: Morphism = or_rho1()
_OR_RHO2 = OrRho2()
_OR_MU = OrMu()
_ALPHA = Alpha()
_MAP_OR_RHO1 = SetMap(_OR_RHO1)
_OR_KAPPA1 = OrKappa1()
_OR_KAPPA2 = OrKappa2()


def tag_value(x: Value) -> Value:
    """The translation ``o -> o'``: each set element becomes ``(e', e)``.

    The tag (second component) is the original, untranslated element — the
    or-NRA-definable choice from the proof of Corollary 4.3.
    """
    if isinstance(x, (Atom, UnitValue)):
        return x
    if isinstance(x, Pair):
        return Pair(tag_value(x.fst), tag_value(x.snd))
    if isinstance(x, OrSetValue):
        return OrSetValue(tag_value(e) for e in x.elems)
    if isinstance(x, Variant):
        return Variant(x.side, tag_value(x.payload))
    if isinstance(x, SetValue):
        return SetValue(Pair(tag_value(e), e) for e in x.elems)
    raise OrNRATypeError(f"tag_value: unsupported value {x!r}")


def untag_value(v: Value, t: Type) -> Value:
    """Project all tags away, guided by the *untagged* type *t*."""
    if isinstance(t, (ProdType,)):
        if not isinstance(v, Pair):
            raise OrNRATypeError(f"untag: expected pair at {t!r}, got {v!r}")
        return Pair(untag_value(v.fst, t.left), untag_value(v.snd, t.right))
    if isinstance(t, OrSetType):
        if not isinstance(v, OrSetValue):
            raise OrNRATypeError(f"untag: expected or-set at {t!r}, got {v!r}")
        return OrSetValue(untag_value(e, t.elem) for e in v.elems)
    if isinstance(t, VariantType):
        if not isinstance(v, Variant):
            raise OrNRATypeError(f"untag: expected variant at {t!r}, got {v!r}")
        side_type = t.left if v.side == 0 else t.right
        return Variant(v.side, untag_value(v.payload, side_type))
    if isinstance(t, SetType):
        if not isinstance(v, SetValue):
            raise OrNRATypeError(f"untag: expected set at {t!r}, got {v!r}")
        payloads = []
        for e in v.elems:
            if not isinstance(e, Pair):
                raise OrNRATypeError(f"untag: expected tagged pair, got {e!r}")
            payloads.append(untag_value(e.fst, t.elem))
        return SetValue(payloads)
    return v


def _transform_tagged(v: Value, rule: str, redex_type: Type) -> Value:
    """Apply the primed morphism for *rule* at a redex of *redex_type*."""
    if rule == PAIR_RIGHT:
        return _OR_RHO2.apply(v)
    if rule == PAIR_LEFT:
        return _OR_RHO1.apply(v)
    if rule == OR_FLATTEN:
        return _OR_MU.apply(v)
    if rule == VARIANT_LEFT:
        return _OR_KAPPA1.apply(v)
    if rule == VARIANT_RIGHT:
        return _OR_KAPPA2.apply(v)
    if rule == SET_ALPHA:
        # alpha' = alpha o map(or_rho_1): push each tag inside its or-set,
        # then combine; tags keep equal or-sets distinct.
        return _ALPHA.apply(_MAP_OR_RHO1.apply(v))
    raise OrNRATypeError(f"unknown rule {rule!r}")


def _apply_tagged_at(v: Value, t: Type, pos: Position, rule: str) -> Value:
    """``dapp`` for tagged values: positions refer to the untagged type;
    set layers carry ``(payload, tag)`` pairs and map on the payload."""
    if not pos:
        return _transform_tagged(v, rule, t)
    head, rest = pos[0], pos[1:]
    if isinstance(t, ProdType):
        if not isinstance(v, Pair):
            raise OrNRATypeError(f"expected pair at {t!r}, got {v!r}")
        if head == 0:
            return Pair(_apply_tagged_at(v.fst, t.left, rest, rule), v.snd)
        return Pair(v.fst, _apply_tagged_at(v.snd, t.right, rest, rule))
    if isinstance(t, OrSetType):
        if not isinstance(v, OrSetValue):
            raise OrNRATypeError(f"expected or-set at {t!r}, got {v!r}")
        return OrSetValue(
            _apply_tagged_at(e, t.elem, rest, rule) for e in v.elems
        )
    if isinstance(t, VariantType):
        if not isinstance(v, Variant):
            raise OrNRATypeError(f"expected variant at {t!r}, got {v!r}")
        if head != v.side:
            return v
        side_type = t.left if head == 0 else t.right
        return Variant(v.side, _apply_tagged_at(v.payload, side_type, rest, rule))
    if isinstance(t, SetType):
        if not isinstance(v, SetValue):
            raise OrNRATypeError(f"expected set at {t!r}, got {v!r}")
        out = []
        for e in v.elems:
            if not isinstance(e, Pair):
                raise OrNRATypeError(f"expected tagged pair, got {e!r}")
            out.append(
                Pair(_apply_tagged_at(e.fst, t.elem, rest, rule), e.snd)
            )
        # map((g o pi_1, pi_2)) — tags make the results distinct, so no
        # information is lost to set collapse.
        return SetValue(out)
    raise OrNRATypeError(f"cannot descend {pos} into {t!r}")


def normalize_via_tagging(
    x: Value,
    x_type: Type | None = None,
    strategy=innermost_strategy,
) -> Value:
    """Normalize *x* using the Corollary 4.3 tagging simulation.

    Must agree with :func:`repro.core.normalize.normalize` on every input
    (the tests check this on random objects, including ones engineered to
    create duplicate or-sets mid-rewrite).
    """
    if x_type is None:
        x_type = infer_type(x)
    current_type = x_type
    current = tag_value(x)
    while True:
        options: Sequence[Redex] = redexes(current_type)
        if not options:
            return untag_value(current, current_type)
        pos, rule = strategy(options)
        redex_type = subtype_at(current_type, pos)
        if rule == SET_ALPHA and not isinstance(redex_type, SetType):
            raise OrNRATypeError(
                f"tagged normalization: set_alpha at non-set {redex_type!r}"
            )
        current = _apply_tagged_at(current, current_type, pos, rule)
        current_type = apply_rewrite(current_type, pos, rule)
