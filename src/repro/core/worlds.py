"""Possible-worlds semantics: an independent oracle for normalization.

An object containing or-sets conceptually denotes a collection of ordinary
(or-set-free) objects — the paper's ``x_1, ..., x_n`` such that
``normalize(x) = <x_1, ..., x_n>``.  This module computes that denotation
*directly* by structural recursion, without the rewrite machinery:

* an atom denotes itself;
* a pair denotes all pairs of denotations;
* an or-set denotes the union of its members' denotations (so ``< >``
  denotes nothing — inconsistency);
* a set denotes all sets formed by choosing a denotation of every member
  (duplicates collapsing by set semantics).

Tests and benchmarks compare ``worlds(x)`` with ``possibilities(x)``; their
agreement is a strong end-to-end check of the normalization engine
(Theorem 4.2's coherent normal form really is the conceptual meaning).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Iterator

from repro.errors import OrNRAValueError
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
)

__all__ = ["iter_worlds", "worlds", "world_count"]


def iter_worlds(v: Value) -> Iterator[Value]:
    """Yield the or-set-free objects denoted by *v* (may repeat)."""
    if isinstance(v, (Atom, UnitValue)):
        yield v
        return
    if isinstance(v, Pair):
        for fst in iter_worlds(v.fst):
            for snd in iter_worlds(v.snd):
                yield Pair(fst, snd)
        return
    if isinstance(v, OrSetValue):
        for member in v.elems:
            yield from iter_worlds(member)
        return
    if isinstance(v, Variant):
        for payload in iter_worlds(v.payload):
            yield Variant(v.side, payload)
        return
    if isinstance(v, SetValue):
        # A choice per member; the result is a set, so choices collapse.
        member_worlds = [tuple(iter_worlds(m)) for m in v.elems]
        for choice in iter_product(*member_worlds):
            yield SetValue(choice)
        return
    if isinstance(v, BagValue):
        member_worlds = [tuple(iter_worlds(m)) for m in v.elems]
        for choice in iter_product(*member_worlds):
            yield BagValue(choice)
        return
    raise OrNRAValueError(f"not a value: {v!r}")


def worlds(v: Value) -> frozenset[Value]:
    """The set of or-set-free objects denoted by *v*.

    Empty iff *v* is conceptually inconsistent (contains ``< >`` in a
    position with no alternative).
    """
    return frozenset(iter_worlds(v))


def world_count(v: Value) -> int:
    """``|worlds(v)|`` — the paper's ``m(x)`` when *v* has or-sets."""
    return len(worlds(v))
