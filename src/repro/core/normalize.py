"""Normalization of complex objects (Section 4) and the ``normalize``
primitive of or-NRA+.

The engine follows the paper exactly:

1. translate the object ``x : t`` into the multiset world
   (``x^d : t^d``) so duplicate or-sets are not collapsed prematurely;
2. repeatedly pick a redex of the *type* ``t^d`` (any strategy) and apply
   the associated value transformation at the same position via ``dapp`` —
   ``or_rho_2`` / ``or_rho_1`` / ``or_mu`` / ``alpha_d``;
3. when the type is in normal form, translate back (``(.)^s``), removing
   duplicates.

Theorem 4.2 (Coherence) guarantees the result is independent of the
strategy; :func:`normalize_with_strategy` and :func:`coherence_witness`
let tests and benchmarks check this directly.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.errors import NormalizationError, OrNRATypeError
from repro.types.kinds import (
    BagType,
    OrSetType,
    ProdType,
    SetType,
    Type,
    VariantType,
    sets_to_bags,
)
from repro.types.rewrite import (
    OR_FLATTEN,
    PAIR_LEFT,
    PAIR_RIGHT,
    Position,
    Redex,
    SET_ALPHA,
    VARIANT_LEFT,
    VARIANT_RIGHT,
    apply_rewrite,
    innermost_strategy,
    nf_type,
    outermost_strategy,
    random_strategy,
    redexes,
)
from repro.types.unify import FreshVars
from repro.values.convert import to_bags, to_sets
from repro.values.values import (
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    Value,
    Variant,
    infer_type,
)

from repro.lang.bag_ops import AlphaD
from repro.lang.morphisms import Morphism
from repro.lang.orset_ops import Alpha, OrMu, OrRho2, or_rho1
from repro.lang.variant_ops import OrKappa1, OrKappa2

__all__ = [
    "rule_transformer",
    "apply_at",
    "normalize",
    "normalize_with_strategy",
    "normalize_with_trace",
    "possibilities",
    "conceptual_eq",
    "coherence_witness",
    "Normalize",
    "normalize_morphism",
]

_OR_RHO1 = or_rho1()
_OR_RHO2 = OrRho2()
_OR_MU = OrMu()
_ALPHA_D = AlphaD()
_ALPHA = Alpha()
_OR_KAPPA1 = OrKappa1()
_OR_KAPPA2 = OrKappa2()

Transformer = Callable[[Value], Value]


def rule_transformer(rule: str, redex_type: Type) -> Transformer:
    """The value transformation associated with a type-rewrite rule.

    ``pair_right -> or_rho_2``, ``pair_left -> or_rho_1``,
    ``or_flatten -> or_mu``, ``variant_left/right -> or_kappa_1/2``
    (the Section 7 variant extension) and ``set_alpha -> alpha_d``
    (or ``alpha`` when the redex is a genuine set rather than an
    internal bag).
    """
    if rule == PAIR_RIGHT:
        return _OR_RHO2.apply
    if rule == PAIR_LEFT:
        return _OR_RHO1.apply
    if rule == OR_FLATTEN:
        return _OR_MU.apply
    if rule == VARIANT_LEFT:
        return _OR_KAPPA1.apply
    if rule == VARIANT_RIGHT:
        return _OR_KAPPA2.apply
    if rule == SET_ALPHA:
        if isinstance(redex_type, BagType):
            return _ALPHA_D.apply
        if isinstance(redex_type, SetType):
            return _ALPHA.apply
        raise NormalizationError(f"set_alpha redex at non-collection {redex_type!r}")
    raise NormalizationError(f"unknown rule {rule!r}")


def apply_at(value: Value, at_type: Type, pos: Position, fn: Transformer) -> Value:
    """The paper's ``dapp``: apply *fn* at position *pos* of ``value : at_type``.

    Pairs descend into the named component; bags use ``dmap``; or-sets use
    ``ormap`` (ordinary sets use ``map``, though during normalization all
    sets have been turned into bags).
    """
    if not pos:
        return fn(value)
    head, rest = pos[0], pos[1:]
    if isinstance(at_type, ProdType):
        if not isinstance(value, Pair):
            raise OrNRATypeError(f"expected pair at {at_type!r}, got {value!r}")
        if head == 0:
            return Pair(apply_at(value.fst, at_type.left, rest, fn), value.snd)
        return Pair(value.fst, apply_at(value.snd, at_type.right, rest, fn))
    if isinstance(at_type, VariantType):
        if not isinstance(value, Variant):
            raise OrNRATypeError(f"expected variant at {at_type!r}, got {value!r}")
        if head != value.side:
            # The position lies in the side this injection does not carry;
            # the value has no subobject there, so nothing to transform.
            return value
        side_type = at_type.left if head == 0 else at_type.right
        return Variant(value.side, apply_at(value.payload, side_type, rest, fn))
    if isinstance(at_type, BagType):
        if not isinstance(value, BagValue):
            raise OrNRATypeError(f"expected bag at {at_type!r}, got {value!r}")
        return BagValue(apply_at(e, at_type.elem, rest, fn) for e in value)
    if isinstance(at_type, SetType):
        if not isinstance(value, SetValue):
            raise OrNRATypeError(f"expected set at {at_type!r}, got {value!r}")
        return SetValue(apply_at(e, at_type.elem, rest, fn) for e in value)
    if isinstance(at_type, OrSetType):
        if not isinstance(value, OrSetValue):
            raise OrNRATypeError(f"expected or-set at {at_type!r}, got {value!r}")
        return OrSetValue(apply_at(e, at_type.elem, rest, fn) for e in value)
    raise OrNRATypeError(f"cannot descend position {pos} into {at_type!r}")


Strategy = Callable[[Sequence[Redex]], Redex]


def normalize_with_trace(
    value: Value, value_type: Type | None = None, strategy: Strategy = innermost_strategy
) -> tuple[Value, list[Redex]]:
    """Normalize, also returning the (position, rule) trace that was used."""
    if value_type is None:
        value_type = infer_type(value)
    current_type = sets_to_bags(value_type)
    current = to_bags(value)
    trace: list[Redex] = []
    while True:
        options = redexes(current_type)
        if not options:
            return to_sets(current), trace
        pos, rule = strategy(options)
        trace.append((pos, rule))
        redex_type = _subtype(current_type, pos)
        current = apply_at(current, current_type, pos, rule_transformer(rule, redex_type))
        current_type = apply_rewrite(current_type, pos, rule)


def _subtype(t: Type, pos: Position) -> Type:
    from repro.types.rewrite import subtype_at

    return subtype_at(t, pos)


def normalize(value: Value, value_type: Type | None = None) -> Value:
    """``normalize_t : t -> nf(t)`` with the default (innermost) strategy."""
    result, _ = normalize_with_trace(value, value_type)
    return result


def normalize_with_strategy(
    value: Value, value_type: Type | None, strategy: Strategy
) -> Value:
    """Normalize under an explicit rewrite strategy (for coherence checks)."""
    result, _ = normalize_with_trace(value, value_type, strategy)
    return result


def possibilities(value: Value, value_type: Type | None = None) -> tuple[Value, ...]:
    """The conceptual values of *value*: elements of ``normalize(<value>)``.

    Wrapping in a singleton or-set first (the paper's ``or_eta`` trick from
    Section 5) guarantees the normal form is an or-set even when *value*
    contains no or-sets.  An object containing ``< >`` has no possibilities.
    """
    if value_type is None:
        value_type = infer_type(value)
    wrapped = OrSetValue((value,))
    result = normalize(wrapped, OrSetType(value_type))
    if not isinstance(result, OrSetValue):
        raise NormalizationError(f"normal form is not an or-set: {result!r}")
    return result.elems


def conceptual_eq(
    x: Value, y: Value, x_type: Type | None = None, y_type: Type | None = None
) -> bool:
    """Are *x* and *y* conceptually equivalent (same normal form)?

    Section 4 defines conceptual meaning *as* the normal form, so this is
    normal-form equality after the ``or_eta`` embedding.
    """
    return possibilities(x, x_type) == possibilities(y, y_type)


def coherence_witness(
    value: Value,
    value_type: Type | None = None,
    samples: int = 10,
    seed: int = 0,
) -> set[Value]:
    """Normalize under several strategies; Theorem 4.2 says the returned
    set has exactly one element.

    Includes the deterministic innermost and outermost strategies plus
    *samples* random ones.
    """
    if value_type is None:
        value_type = infer_type(value)
    results = {
        normalize_with_strategy(value, value_type, innermost_strategy),
        normalize_with_strategy(value, value_type, outermost_strategy),
    }
    for i in range(samples):
        rng = random.Random(seed + i)
        results.add(
            normalize_with_strategy(value, value_type, random_strategy(rng))
        )
    return results


class Normalize(Morphism):
    """The or-NRA+ primitive ``normalize_t : t -> nf(t)``.

    Not polymorphic: its output type depends on the full shape of the input
    type (Corollary 4.3 notes it "cannot be defined in a polymorphic way"),
    so its ``signature`` requires a declared input type; without one it can
    still be *applied* (the input's type is inferred dynamically).
    """

    def __init__(self, input_type: Type | None = None) -> None:
        self.input_type = input_type

    def apply(self, value: Value) -> Value:
        declared = self.input_type
        return normalize(value, declared)

    def signature(self, fresh: FreshVars):
        from repro.types.kinds import FuncType

        if self.input_type is None:
            raise OrNRATypeError(
                "normalize has no polymorphic type; construct it as "
                "Normalize(input_type) to typecheck"
            )
        return FuncType(self.input_type, nf_type(self.input_type))

    def describe(self) -> str:
        return "normalize"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Normalize) and self.input_type == other.input_type

    def __hash__(self) -> int:
        return hash(("Normalize", self.input_type))


def normalize_morphism(input_type: Type | None = None) -> Normalize:
    """The ``normalize`` primitive, optionally with a declared input type."""
    return Normalize(input_type)
