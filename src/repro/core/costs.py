"""Costs of normalization (Section 6).

Implements the measured quantities and the paper's bounds:

* ``m(x)`` — the number of conceptual possibilities,
  ``m(x) = |normalize(<x>)|`` (Proposition 6.1 / Theorem 6.2);
* ``size(normalize(x))`` (Theorems 6.3 and 6.5);
* the bound functions ``prod_i (m_i + 1)``, ``3^(n/3)``,
  ``(n/2) 3^(n/3)`` and ``(n/3) 3^(n/3)``;
* the *tight witness family* ``{<b_1,b_2,b_3>, <b_4,b_5,b_6>, ...}`` whose
  normal form attains ``m = 3^(n/3)`` and ``size = (n/3) 3^(n/3)``;
* the *choice graph* of Theorem 6.2's Case 3 — the complete multipartite
  graph whose maximal cliques are exactly the elements of ``alpha``;
  :func:`alpha_outputs_are_cliques` cross-checks against networkx's clique
  enumeration, connecting the bound to Moon–Moser's ``3^(n/3)`` theorem.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import NamedTuple

from repro.errors import OrNRAValueError
from repro.types.kinds import INT, OrSetType, SetType, Type
from repro.values.measure import innermost_orset_arities, size
from repro.values.values import Atom, OrSetValue, SetValue, Value

from repro.core.normalize import possibilities

__all__ = [
    "NormalizationMeasures",
    "normalization_measures",
    "m_value",
    "normalized_size",
    "estimate_m_value",
    "estimate_normalized_size",
    "prop61_bound",
    "thm62_bound",
    "thm63_bound",
    "thm65_bound",
    "moon_moser",
    "tight_family",
    "choice_graph_edges",
    "alpha_outputs_are_cliques",
    "log_lower_bound_holds",
]


class NormalizationMeasures(NamedTuple):
    """Both Section 6 measured quantities from one normalization."""

    m: int  # |normalize(<x>)| — the world count
    size: int  # size(normalize(<x>)) — sum of the world sizes


@lru_cache(maxsize=256)
def normalization_measures(
    x: Value, x_type: Type | None = None
) -> NormalizationMeasures:
    """``m(x)`` and ``size(normalize(<x>))`` from one shared traversal.

    :func:`m_value` and :func:`normalized_size` both need the possible
    worlds; computing them separately used to normalize the same value
    twice.  This materializes the possibilities once and reads both
    numbers off them; the small LRU memo makes the second accessor free
    when both are called on the same value (values are immutable and
    hashable, so caching on them is sound).
    """
    worlds = possibilities(x, x_type)
    return NormalizationMeasures(len(worlds), sum(size(p) for p in worlds))


def m_value(x: Value, x_type: Type | None = None) -> int:
    """The paper's ``m(x)``: the cardinality of ``normalize(<x>)``."""
    return normalization_measures(x, x_type).m


def normalized_size(x: Value, x_type: Type | None = None) -> int:
    """``size(normalize(x))`` computed via the conceptual possibilities.

    The normal form of ``<x>`` is the or-set of possibilities, whose size
    is the sum of the element sizes.
    """
    return normalization_measures(x, x_type).size


def estimate_m_value(x: Value) -> int:
    """Static upper bound on ``m(x)`` — never materializes a world.

    Delegates to the engine's cost model
    (:func:`repro.engine.cost_model.estimate_value`), which combines the
    compositional world-count recursion with Proposition 6.1's
    ``prod_i (m_i + 1)`` cap.  Exact on :func:`tight_family` witnesses.
    """
    from repro.engine.cost_model import estimate_m_value as _estimate

    return _estimate(x)


def estimate_normalized_size(x: Value) -> int:
    """Static upper bound on ``size(normalize(<x>))`` — never normalizes."""
    from repro.engine.cost_model import estimate_normalized_size as _estimate

    return _estimate(x)


def prop61_bound(x: Value) -> int:
    """Proposition 6.1's bound ``prod_i (m_i + 1)`` over innermost or-sets.

    Only defined when *x* contains at least one or-set (``k != 0``).
    """
    arities = innermost_orset_arities(x)
    if not arities:
        raise OrNRAValueError("prop61_bound needs an object with or-sets")
    product = 1
    for m_i in arities:
        product *= m_i + 1
    return product


def thm62_bound(n: int) -> float:
    """Theorem 6.2's bound ``3^(n/3)`` on ``m(x)`` for ``size(x) = n``."""
    return 3.0 ** (n / 3.0)


def thm63_bound(n: int) -> float:
    """Theorem 6.3's bound ``(n/2) 3^(n/3)`` on ``size(normalize(x))``."""
    return (n / 2.0) * 3.0 ** (n / 3.0)


def thm65_bound(n: int) -> float:
    """Theorem 6.5's tight bound ``(n/3) 3^(n/3)`` for its object class."""
    return (n / 3.0) * 3.0 ** (n / 3.0)


def moon_moser(n: int) -> int:
    """Moon–Moser: the maximum number of maximal cliques in an ``n``-vertex
    graph — ``3^(n/3)`` adjusted for the remainder."""
    if n <= 0:
        return 1 if n == 0 else 0
    q, r = divmod(n, 3)
    if r == 0:
        return 3**q
    if r == 1:
        return 4 * 3 ** (q - 1) if q >= 1 else 1
    return 2 * 3**q


def tight_family(k: int) -> tuple[Value, Type]:
    """The witness ``x = {<b_1,b_2,b_3>, ..., <b_{3k-2},b_{3k-1},b_{3k}>}``.

    ``size(x) = 3k`` and ``normalize(x) = alpha(x)`` has exactly ``3^k``
    elements of ``k`` atoms each — attaining Theorems 6.2 and 6.5.
    """
    if k <= 0:
        raise OrNRAValueError("tight_family needs k >= 1")
    members = [
        OrSetValue(Atom("int", 3 * i + j) for j in range(3)) for i in range(k)
    ]
    return SetValue(members), SetType(OrSetType(INT))


def choice_graph_edges(x: SetValue) -> tuple[list[tuple[int, int]], list[list[int]]]:
    """The graph ``G = (X, E)`` of Theorem 6.2's Case 3.

    Vertices are numbered leaf occurrences (assumed distinct atoms);
    an edge joins elements from *different* member or-sets.  Returns
    ``(edges, groups)`` where ``groups[i]`` lists the vertex ids of member
    ``i`` — a complete multipartite graph.
    """
    if not isinstance(x, SetValue):
        raise OrNRAValueError(f"choice_graph expects a set of or-sets, got {x!r}")
    groups: list[list[int]] = []
    counter = 0
    for member in x.elems:
        if not isinstance(member, OrSetValue):
            raise OrNRAValueError(f"expected or-set member, got {member!r}")
        group = []
        for _ in member.elems:
            group.append(counter)
            counter += 1
        groups.append(group)
    edges = [
        (u, v)
        for i, gi in enumerate(groups)
        for j in range(i + 1, len(groups))
        for u in gi
        for v in groups[j]
    ]
    return edges, groups


def alpha_outputs_are_cliques(x: SetValue) -> bool:
    """Cross-check Theorem 6.2 Case 3: the elements of ``alpha(x)`` are
    exactly the maximal cliques of the choice graph (networkx).

    Requires all leaf atoms of *x* distinct (as in the theorem's reduction).
    """
    import networkx as nx

    from repro.lang.orset_ops import Alpha

    edges, groups = choice_graph_edges(x)
    vertex_value: dict[int, Value] = {}
    index = 0
    for member in x.elems:
        assert isinstance(member, OrSetValue)
        for e in member.elems:
            vertex_value[index] = e
            index += 1
    graph = nx.Graph()
    graph.add_nodes_from(range(index))
    graph.add_edges_from(edges)
    cliques = {
        SetValue(vertex_value[v] for v in clique)
        for clique in nx.find_cliques(graph)
    }
    alpha_out = Alpha().apply(x)
    assert isinstance(alpha_out, OrSetValue)
    return set(alpha_out.elems) == cliques


def log_lower_bound_holds(x: Value, x_type: Type | None = None) -> bool:
    """Corollary 6.4's envelope: for ``y = normalize(x)`` with
    ``size(y) = n``, the preimage satisfies ``Ω(log n) <= size(x) <= n``
    ... i.e. ``size(x) >= log_3(n) / C`` for the constant implied by
    Theorem 6.3 and ``size(x) <= n`` whenever ``n >= size(x)``.

    Returns True when both inequalities hold for this instance; the upper
    inequality ``size(x) <= n`` can genuinely fail when normalization
    *shrinks* an object (e.g. duplicate collapse), which the corollary's
    ``<= n`` direction tolerates only for ``n >= 1``; we check the paper's
    statement ``O(log n) <= size(x)``, plus ``size(normalize(x)) <=
    (size(x)/2) 3^(size(x)/3)`` which is its contrapositive source.
    """
    n_in = size(x)
    n_out = normalization_measures(x, x_type).size or 1
    upper = n_out <= thm63_bound(max(n_in, 2))
    lower = n_in >= math.log(max(n_out, 1), 3) * 0.5
    return upper and lower
