"""Complexity-tailored refinement of or-set data (Section 7; ref [16]).

The conclusion points at Imielinski, van der Meyden and Vadaparty's
complexity-tailored design, "when queries are forced to run in polynomial
time by, for instance, obtaining additional information about some of the
or-sets, thus reducing the size of the normal form".  This module makes
that idea executable for or-NRA:

* or-set occurrences inside an object are addressed by *paths*
  (:func:`orset_paths`, :func:`subvalue_at`);
* an *oracle* answers "which alternative is the real one?" for a chosen
  or-set; :func:`resolve` applies the answer by shrinking the or-set to
  the chosen singleton (the type is unchanged, the possibility count
  drops by the or-set's arity);
* :func:`plan_questions` chooses which or-sets to ask about — greedily by
  arity, the factor each question removes from the Proposition 6.1 bound
  ``m(x) <= prod_i (m_i + 1)`` — until the predicted number of
  possibilities fits a budget;
* :func:`refine_to_budget` runs the plan against an oracle and returns
  the refined object, whose normal form is then small enough to query
  eagerly in polynomial time.

:class:`GroundTruthOracle` simulates a domain expert: it fixes one
possible world of the object up front and answers every question
consistently with it, so refinement provably never loses the real world
(``tests/core/test_refine.py`` checks exactly that).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import OrNRAValueError
from repro.values.values import BagValue, OrSetValue, Pair, SetValue, Value, Variant

__all__ = [
    "Path",
    "orset_paths",
    "subvalue_at",
    "replace_subvalue",
    "resolve",
    "predicted_possibilities",
    "plan_questions",
    "refine_to_budget",
    "GroundTruthOracle",
    "RefinementReport",
]

# A path step is ("pair", 0|1), ("variant",), or ("elem", i) into the
# canonical element tuple of a collection.
Step = tuple
Path = tuple[Step, ...]


def _steps(v: Value) -> Iterator[tuple[Step, Value]]:
    if isinstance(v, Pair):
        yield ("pair", 0), v.fst
        yield ("pair", 1), v.snd
    elif isinstance(v, Variant):
        yield ("variant",), v.payload
    elif isinstance(v, (SetValue, OrSetValue, BagValue)):
        for i, e in enumerate(v.elems):
            yield ("elem", i), e


def orset_paths(v: Value, _prefix: Path = ()) -> list[Path]:
    """Paths of every or-set node in *v*, outermost first (pre-order)."""
    found: list[Path] = []
    if isinstance(v, OrSetValue):
        found.append(_prefix)
    for step, child in _steps(v):
        found.extend(orset_paths(child, _prefix + (step,)))
    return found


def subvalue_at(v: Value, path: Path) -> Value:
    """The subobject of *v* at *path*."""
    for step in path:
        if step[0] == "pair" and isinstance(v, Pair):
            v = v.fst if step[1] == 0 else v.snd
        elif step[0] == "variant" and isinstance(v, Variant):
            v = v.payload
        elif step[0] == "elem" and isinstance(v, (SetValue, OrSetValue, BagValue)):
            index = step[1]
            if index >= len(v.elems):
                raise OrNRAValueError(f"path step {step!r} out of range in {v!r}")
            v = v.elems[index]
        else:
            raise OrNRAValueError(f"path step {step!r} does not match {v!r}")
    return v


def replace_subvalue(v: Value, path: Path, new: Value) -> Value:
    """*v* with the subobject at *path* replaced by *new*.

    Note collections re-canonicalize, so element indices in *other* paths
    may shift; resolve one question at a time and recompute paths.
    """
    if not path:
        return new
    step, rest = path[0], path[1:]
    if step[0] == "pair" and isinstance(v, Pair):
        if step[1] == 0:
            return Pair(replace_subvalue(v.fst, rest, new), v.snd)
        return Pair(v.fst, replace_subvalue(v.snd, rest, new))
    if step[0] == "variant" and isinstance(v, Variant):
        return Variant(v.side, replace_subvalue(v.payload, rest, new))
    if step[0] == "elem" and isinstance(v, (SetValue, OrSetValue, BagValue)):
        index = step[1]
        elems = list(v.elems)
        if index >= len(elems):
            raise OrNRAValueError(f"path step {step!r} out of range in {v!r}")
        elems[index] = replace_subvalue(elems[index], rest, new)
        return type(v)(elems)
    raise OrNRAValueError(f"path step {step!r} does not match {v!r}")


def resolve(v: Value, path: Path, choice: Value) -> Value:
    """Apply an oracle answer: the or-set at *path* becomes ``<choice>``.

    Raises :class:`OrNRAValueError` when *choice* is not one of the
    alternatives — an oracle cannot invent information.
    """
    target = subvalue_at(v, path)
    if not isinstance(target, OrSetValue):
        raise OrNRAValueError(f"no or-set at {path!r}: {target!r}")
    if choice not in target.elems:
        raise OrNRAValueError(
            f"{choice!r} is not among the alternatives of {target!r}"
        )
    return replace_subvalue(v, path, OrSetValue((choice,)))


def predicted_possibilities(v: Value) -> int:
    """The Proposition 6.1 product bound ``prod_i (arity of or-set v_i)``
    over *innermost* or-sets — the planner's effort estimate.

    (The paper's bound has ``m_i + 1`` to account for or-sets of
    non-atomic objects; for planning, the bare product is the sharper
    heuristic and exact for independent choices.)
    """
    if isinstance(v, OrSetValue):
        inner = [predicted_possibilities(e) for e in v.elems]
        return sum(inner) if inner else 0
    total = 1
    for _step, child in _steps(v):
        total *= predicted_possibilities(child)
    return total


def plan_questions(v: Value, budget: int) -> list[Path]:
    """Greedy question plan: resolve widest or-sets first until the
    predicted possibility count fits *budget*.

    Returns the chosen paths in ask-order.  Asking about an or-set of
    arity ``k`` divides the predicted count by ``k`` — the largest
    available factor is the locally optimal question, which for a product
    of independent factors is also globally optimal (sorting factors).
    """
    if budget < 1:
        raise OrNRAValueError("budget must be at least 1")
    candidates = [
        (len(subvalue_at(v, p).elems), p)
        for p in orset_paths(v)
        if len(subvalue_at(v, p).elems) > 1
    ]
    # Only independent (non-nested) or-sets divide the product cleanly;
    # prefer outermost on ties so nested duplicates are skipped naturally.
    candidates.sort(key=lambda item: (-item[0], len(item[1])))
    plan: list[Path] = []
    predicted = predicted_possibilities(v)
    for arity, path in candidates:
        if predicted <= budget:
            break
        if any(path[: len(p)] == p or p[: len(path)] == path for p in plan):
            continue  # nested under an already-planned question
        plan.append(path)
        predicted = max(1, predicted // arity)
    return plan


Oracle = Callable[[Path, OrSetValue], Value]


@dataclass
class GroundTruthOracle:
    """An oracle that answers consistently with one fixed possible world.

    The ground truth is sampled up front by making one choice inside
    every or-set (using *rng*); every subsequent question about any
    or-set is answered with the alternative consistent with those
    choices.
    """

    rng: random.Random
    _memo: dict = field(default_factory=dict)

    def __call__(self, path: Path, orset: OrSetValue) -> Value:
        if not orset.elems:
            raise OrNRAValueError("cannot resolve the empty or-set (inconsistent)")
        key = (path, orset)
        if key not in self._memo:
            self._memo[key] = orset.elems[self.rng.randrange(len(orset.elems))]
        return self._memo[key]


@dataclass(frozen=True)
class RefinementReport:
    """What :func:`refine_to_budget` did: the questions asked, and the
    possibility counts before/after."""

    refined: Value
    questions: tuple[Path, ...]
    predicted_before: int
    predicted_after: int


def refine_to_budget(v: Value, budget: int, oracle: Oracle) -> RefinementReport:
    """Ask the planned questions against *oracle* until the predicted
    possibility count fits *budget*; return the refined object.

    Paths are recomputed after every answer (resolving an or-set inside a
    set can merge elements and shift indices), so the plan is replanned
    greedily one question at a time.
    """
    before = predicted_possibilities(v)
    asked: list[Path] = []
    while predicted_possibilities(v) > budget:
        plan = plan_questions(v, budget)
        if not plan:
            break
        path = plan[0]
        target = subvalue_at(v, path)
        assert isinstance(target, OrSetValue)
        v = resolve(v, path, oracle(path, target))
        asked.append(path)
    return RefinementReport(
        refined=v,
        questions=tuple(asked),
        predicted_before=before,
        predicted_after=predicted_possibilities(v),
    )
