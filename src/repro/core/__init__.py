"""The paper's primary contribution: normalization, conceptual queries,
losslessness, costs (Sections 4–6)."""

from repro.core.costs import (
    alpha_outputs_are_cliques,
    choice_graph_edges,
    log_lower_bound_holds,
    m_value,
    moon_moser,
    normalized_size,
    prop61_bound,
    thm62_bound,
    thm63_bound,
    thm65_bound,
    tight_family,
)
from repro.core.existential import (
    as_predicate,
    exists_query,
    forall_query,
    witness,
)
from repro.core.lazy import (
    exists_lazy,
    find_first,
    forall_lazy,
    iter_possibilities,
    take_possibilities,
)
from repro.core.normalize import (
    Normalize,
    apply_at,
    coherence_witness,
    conceptual_eq,
    normalize,
    normalize_morphism,
    normalize_with_strategy,
    normalize_with_trace,
    possibilities,
    rule_transformer,
)
from repro.core.powerset import (
    Powerset,
    alpha_via_powerset,
    powerset,
    powerset_from_alpha,
)
from repro.core.preserve import (
    analog_is_maplike,
    analog_is_onto,
    check_analog_eligible,
    check_lossless_eligible,
    conceptual_analog,
    is_pure_or_type,
    preserve,
    preserve_type,
    preserve_value,
    verify_analog_inclusion,
    verify_losslessness,
)
from repro.core.refine import (
    GroundTruthOracle,
    RefinementReport,
    orset_paths,
    plan_questions,
    predicted_possibilities,
    refine_to_budget,
    resolve,
)
from repro.core.tagged import normalize_via_tagging, tag_value, untag_value
from repro.core.worlds import iter_worlds, world_count, worlds

__all__ = [
    "normalize", "normalize_with_strategy", "normalize_with_trace",
    "possibilities", "conceptual_eq", "coherence_witness",
    "Normalize", "normalize_morphism", "apply_at", "rule_transformer",
    "worlds", "iter_worlds", "world_count",
    "iter_possibilities", "exists_lazy", "forall_lazy", "find_first",
    "take_possibilities",
    "Powerset", "powerset", "powerset_from_alpha", "alpha_via_powerset",
    "preserve", "conceptual_analog", "check_lossless_eligible",
    "check_analog_eligible", "analog_is_maplike", "analog_is_onto",
    "verify_losslessness", "verify_analog_inclusion",
    "preserve_type", "preserve_value", "is_pure_or_type",
    "normalize_via_tagging", "tag_value", "untag_value",
    "m_value", "normalized_size", "prop61_bound", "thm62_bound",
    "thm63_bound", "thm65_bound", "moon_moser", "tight_family",
    "choice_graph_edges", "alpha_outputs_are_cliques",
    "log_lower_bound_holds",
    "exists_query", "forall_query", "witness", "as_predicate",
    # complexity-tailored refinement (Section 7, [16])
    "GroundTruthOracle", "RefinementReport", "orset_paths",
    "plan_questions", "predicted_possibilities", "refine_to_budget",
    "resolve",
]
