"""Random workload generators for experiments and tests.

The paper has no datasets; its results quantify over all complex objects,
types and morphisms.  Benchmarks therefore sample:

* random object *types* (with or without or-sets, bounded depth);
* random *values* of a given type (bounded width);
* random or-set-bearing objects with a bounded leaf count (``size``), the
  quantity the Section 6 bounds are stated in.

Generators take an explicit :class:`random.Random` so every experiment is
reproducible from its seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import OrNRAValueError
from repro.types.kinds import (
    BOOL,
    INT,
    BagType,
    BaseType,
    OrSetType,
    ProdType,
    SetType,
    Type,
    UnitType,
    VariantType,
)
from repro.values.values import (
    Atom,
    BagValue,
    OrSetValue,
    Pair,
    SetValue,
    UnitValue,
    Value,
    Variant,
    boolean,
)

__all__ = [
    "random_type",
    "random_value",
    "random_orset_value",
    "random_variant_value",
    "random_atom",
]

_DEFAULT_BASES: tuple[Type, ...] = (INT, BOOL)


def random_type(
    rng: random.Random,
    max_depth: int = 3,
    bases: Sequence[Type] = _DEFAULT_BASES,
    allow_orset: bool = True,
    allow_set: bool = True,
    allow_variant: bool = False,
) -> Type:
    """A random object type of derivation depth at most *max_depth*.

    Variant types (the Section 7 extension) are only generated when
    *allow_variant* is set, so the core experiments keep their
    paper-faithful workloads.
    """
    if max_depth <= 1:
        return rng.choice(list(bases))
    choices = ["base", "prod"]
    if allow_set:
        choices.append("set")
    if allow_orset:
        choices.append("orset")
    if allow_variant:
        choices.append("variant")
    kind = rng.choice(choices)
    if kind == "base":
        return rng.choice(list(bases))
    if kind == "prod":
        return ProdType(
            random_type(rng, max_depth - 1, bases, allow_orset, allow_set, allow_variant),
            random_type(rng, max_depth - 1, bases, allow_orset, allow_set, allow_variant),
        )
    if kind == "variant":
        return VariantType(
            random_type(rng, max_depth - 1, bases, allow_orset, allow_set, allow_variant),
            random_type(rng, max_depth - 1, bases, allow_orset, allow_set, allow_variant),
        )
    if kind == "set":
        return SetType(
            random_type(rng, max_depth - 1, bases, allow_orset, allow_set, allow_variant)
        )
    return OrSetType(
        random_type(rng, max_depth - 1, bases, allow_orset, allow_set, allow_variant)
    )


def random_atom(base: Type, rng: random.Random, domain: int = 6) -> Value:
    """A random atom of the given base type (small domains so collisions —
    and hence duplicate-collapse effects — actually occur)."""
    if isinstance(base, UnitType):
        return UnitValue()
    if base == BOOL:
        return boolean(rng.random() < 0.5)
    if base == INT:
        return Atom("int", rng.randrange(domain))
    if isinstance(base, BaseType):
        if base.name == "string":
            return Atom("string", chr(ord("a") + rng.randrange(domain)))
        return Atom(base.name, rng.randrange(domain))
    raise OrNRAValueError(f"random_atom: not a base type {base!r}")


def random_value(
    t: Type,
    rng: random.Random,
    max_width: int = 3,
    min_width: int = 0,
    domain: int = 6,
) -> Value:
    """A random value of type *t* with collections of width
    ``min_width..max_width``."""
    if isinstance(t, (BaseType, UnitType)):
        return random_atom(t, rng, domain)
    if isinstance(t, ProdType):
        return Pair(
            random_value(t.left, rng, max_width, min_width, domain),
            random_value(t.right, rng, max_width, min_width, domain),
        )
    if isinstance(t, SetType):
        width = rng.randint(min_width, max_width)
        return SetValue(
            random_value(t.elem, rng, max_width, min_width, domain)
            for _ in range(width)
        )
    if isinstance(t, OrSetType):
        width = rng.randint(min_width, max_width)
        return OrSetValue(
            random_value(t.elem, rng, max_width, min_width, domain)
            for _ in range(width)
        )
    if isinstance(t, BagType):
        width = rng.randint(min_width, max_width)
        return BagValue(
            random_value(t.elem, rng, max_width, min_width, domain)
            for _ in range(width)
        )
    if isinstance(t, VariantType):
        side = rng.randrange(2)
        payload_type = t.left if side == 0 else t.right
        return Variant(
            side, random_value(payload_type, rng, max_width, min_width, domain)
        )
    raise OrNRAValueError(f"random_value: unsupported type {t!r}")


def random_orset_value(
    rng: random.Random,
    max_depth: int = 3,
    max_width: int = 3,
    min_width: int = 1,
    domain: int = 6,
) -> tuple[Value, Type]:
    """A random ``(value, type)`` guaranteed to contain an or-set type
    constructor and no empty collections (``min_width >= 1`` keeps the
    Section 5/6 experiments in the consistent fragment by default)."""
    while True:
        t = random_type(rng, max_depth)
        if isinstance(t, (BaseType, UnitType)):
            continue
        from repro.types.kinds import contains_orset

        if not contains_orset(t):
            continue
        value = random_value(t, rng, max_width, min_width, domain)
        return value, t


def random_variant_value(
    rng: random.Random,
    max_depth: int = 3,
    max_width: int = 3,
    min_width: int = 1,
    domain: int = 6,
) -> tuple[Value, Type]:
    """A random ``(value, type)`` containing both a variant and an or-set
    constructor — the workload for the Section 7 extension experiments."""
    from repro.types.kinds import contains_orset, contains_variant

    while True:
        t = random_type(rng, max_depth, allow_variant=True)
        if isinstance(t, (BaseType, UnitType)):
            continue
        if not contains_orset(t) or not contains_variant(t):
            continue
        value = random_value(t, rng, max_width, min_width, domain)
        return value, t
