"""Unification over or-NRA types.

The paper (Section 2) omits type superscripts on morphisms because "the most
general type of any given morphism can be inferred", citing ML-style
inference.  This module provides the standard machinery: substitutions,
occurs-check unification, and fresh-variable renaming.  The morphism
typechecker in :mod:`repro.lang.typecheck` builds on it.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.errors import OrNRATypeError
from repro.types.kinds import (
    BagType,
    BaseType,
    FuncType,
    OrSetType,
    ProdType,
    SetType,
    Type,
    TypeVar,
    UnitType,
    VariantType,
)

__all__ = [
    "Substitution",
    "apply_subst",
    "compose_subst",
    "unify",
    "unify_many",
    "free_type_vars",
    "FreshVars",
    "rename_apart",
]

Substitution = dict[TypeVar, Type]


def free_type_vars(t: Type) -> set[TypeVar]:
    """All type variables occurring in *t*."""
    if isinstance(t, TypeVar):
        return {t}
    out: set[TypeVar] = set()
    for child in t.children():
        out |= free_type_vars(child)
    return out


def apply_subst(subst: Substitution, t: Type) -> Type:
    """Apply *subst* to *t* (idempotent substitutions assumed)."""
    if isinstance(t, TypeVar):
        replacement = subst.get(t)
        if replacement is None:
            return t
        return apply_subst(subst, replacement)
    if isinstance(t, (BaseType, UnitType)):
        return t
    if isinstance(t, ProdType):
        return ProdType(apply_subst(subst, t.left), apply_subst(subst, t.right))
    if isinstance(t, VariantType):
        return VariantType(apply_subst(subst, t.left), apply_subst(subst, t.right))
    if isinstance(t, SetType):
        return SetType(apply_subst(subst, t.elem))
    if isinstance(t, OrSetType):
        return OrSetType(apply_subst(subst, t.elem))
    if isinstance(t, BagType):
        return BagType(apply_subst(subst, t.elem))
    if isinstance(t, FuncType):
        return FuncType(apply_subst(subst, t.dom), apply_subst(subst, t.cod))
    raise OrNRATypeError(f"apply_subst: not a type: {t!r}")


def compose_subst(outer: Substitution, inner: Substitution) -> Substitution:
    """The substitution equivalent to applying *inner* then *outer*."""
    combined: Substitution = {
        var: apply_subst(outer, t) for var, t in inner.items()
    }
    for var, t in outer.items():
        combined.setdefault(var, t)
    return combined


def _occurs(var: TypeVar, t: Type) -> bool:
    return var in free_type_vars(t)


def unify(a: Type, b: Type, subst: Substitution | None = None) -> Substitution:
    """Most general unifier of *a* and *b*, extending *subst*.

    Raises :class:`OrNRATypeError` when the types clash or the occurs check
    fails.
    """
    subst = dict(subst) if subst else {}
    stack: list[tuple[Type, Type]] = [(a, b)]
    while stack:
        left, right = stack.pop()
        left = apply_subst(subst, left)
        right = apply_subst(subst, right)
        if left == right:
            continue
        if isinstance(left, TypeVar):
            if _occurs(left, right):
                raise OrNRATypeError(f"occurs check: {left!r} in {right!r}")
            subst[left] = right
            continue
        if isinstance(right, TypeVar):
            if _occurs(right, left):
                raise OrNRATypeError(f"occurs check: {right!r} in {left!r}")
            subst[right] = left
            continue
        if isinstance(left, ProdType) and isinstance(right, ProdType):
            stack.append((left.left, right.left))
            stack.append((left.right, right.right))
            continue
        if isinstance(left, VariantType) and isinstance(right, VariantType):
            stack.append((left.left, right.left))
            stack.append((left.right, right.right))
            continue
        if isinstance(left, SetType) and isinstance(right, SetType):
            stack.append((left.elem, right.elem))
            continue
        if isinstance(left, OrSetType) and isinstance(right, OrSetType):
            stack.append((left.elem, right.elem))
            continue
        if isinstance(left, BagType) and isinstance(right, BagType):
            stack.append((left.elem, right.elem))
            continue
        if isinstance(left, FuncType) and isinstance(right, FuncType):
            stack.append((left.dom, right.dom))
            stack.append((left.cod, right.cod))
            continue
        raise OrNRATypeError(f"cannot unify {left!r} with {right!r}")
    return subst


def unify_many(pairs: Iterable[tuple[Type, Type]]) -> Substitution:
    """Unify every pair in *pairs* under a single substitution."""
    subst: Substitution = {}
    for a, b in pairs:
        subst = unify(a, b, subst)
    return subst


class FreshVars:
    """A supply of fresh type variables (``'t0``, ``'t1``, ...)."""

    def __init__(self, prefix: str = "t") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self) -> TypeVar:
        """A type variable never produced before by this supply."""
        return TypeVar(f"{self._prefix}{next(self._counter)}")


def rename_apart(t: Type, fresh: FreshVars) -> Type:
    """*t* with every type variable consistently replaced by a fresh one."""
    mapping: Substitution = {var: fresh.fresh() for var in free_type_vars(t)}
    return apply_subst(mapping, t)
