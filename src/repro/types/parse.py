"""Parsing and pretty-printing of type expressions.

The concrete syntax mirrors the paper's notation as closely as ASCII
allows::

    bool | int | string | unit      base types
    s * t                           product (right-associative)
    s + t                           variant (right-associative, binds looser)
    {t}                             set
    <t>                             or-set
    [|t|]                           internal bag
    s -> t                          function type (only at top level)
    'a                              type variable

Examples::

    parse_type("{<int * bool>}")
    parse_type("<int> * string -> <int * string>")
"""

from __future__ import annotations

from repro.errors import OrNRAParseError
from repro.types.kinds import (
    BOOL,
    INT,
    STRING,
    UNIT,
    BagType,
    BaseType,
    FuncType,
    OrSetType,
    ProdType,
    SetType,
    Type,
    TypeVar,
    UnitType,
    VariantType,
)

__all__ = ["parse_type", "format_type"]

_BASE_NAMES = {"bool": BOOL, "int": INT, "string": STRING, "unit": UNIT}


class _TypeParser:
    """A hand-written recursive-descent parser for type expressions."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> Type:
        t = self._function()
        self._skip_ws()
        if self.pos != len(self.text):
            raise OrNRAParseError(
                f"unexpected trailing input in type: {self.text[self.pos:]!r}",
                self.pos,
            )
        return t

    # ----- grammar levels -------------------------------------------------

    def _function(self) -> Type:
        left = self._sum()
        self._skip_ws()
        if self._try_consume("->"):
            right = self._function()
            return FuncType(left, right)
        return left

    def _sum(self) -> Type:
        left = self._product()
        self._skip_ws()
        if self._try_consume("+"):
            right = self._sum()
            return VariantType(left, right)
        return left

    def _product(self) -> Type:
        left = self._atom()
        self._skip_ws()
        if self._try_consume("*"):
            right = self._product()
            return ProdType(left, right)
        return left

    def _atom(self) -> Type:
        self._skip_ws()
        if self.pos >= len(self.text):
            raise OrNRAParseError("unexpected end of type expression", self.pos)
        ch = self.text[self.pos]
        if ch == "(":
            self.pos += 1
            inner = self._function()
            self._expect(")")
            return inner
        if ch == "{":
            self.pos += 1
            inner = self._function()
            self._expect("}")
            return SetType(inner)
        if ch == "<":
            self.pos += 1
            inner = self._function()
            self._expect(">")
            return OrSetType(inner)
        if self.text.startswith("[|", self.pos):
            self.pos += 2
            inner = self._function()
            self._expect("|]")
            return BagType(inner)
        if ch == "'":
            self.pos += 1
            name = self._identifier()
            return TypeVar(name)
        name = self._identifier()
        if name in _BASE_NAMES:
            return _BASE_NAMES[name]
        # Unknown names become user-defined base types, so examples can say
        # e.g. "module" or "part" without registering anything.
        return BaseType(name)

    # ----- lexing helpers -------------------------------------------------

    def _identifier(self) -> str:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        if self.pos == start:
            raise OrNRAParseError(
                f"expected identifier in type at {self.text[self.pos:]!r}", self.pos
            )
        return self.text[start : self.pos]

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _try_consume(self, token: str) -> bool:
        self._skip_ws()
        if self.text.startswith(token, self.pos):
            # Guard: "*" must not swallow the "*" inside "*)" etc.; tokens
            # here are unambiguous so a prefix check suffices.
            self.pos += len(token)
            return True
        return False

    def _expect(self, token: str) -> None:
        if not self._try_consume(token):
            raise OrNRAParseError(
                f"expected {token!r} at {self.text[self.pos:]!r}", self.pos
            )


def parse_type(text: str) -> Type:
    """Parse a type expression such as ``"{<int * bool>}"``."""
    return _TypeParser(text).parse()


def format_type(t: Type) -> str:
    """Render *t* in the concrete syntax accepted by :func:`parse_type`."""
    if isinstance(t, UnitType):
        return "unit"
    if isinstance(t, BaseType):
        return t.name
    if isinstance(t, TypeVar):
        return f"'{t.name}"
    if isinstance(t, ProdType):
        left = format_type(t.left)
        if isinstance(t.left, (ProdType, VariantType, FuncType)):
            left = f"({left})"
        right = format_type(t.right)
        if isinstance(t.right, (VariantType, FuncType)):
            right = f"({right})"
        return f"{left} * {right}"
    if isinstance(t, VariantType):
        left = format_type(t.left)
        if isinstance(t.left, (VariantType, FuncType)):
            left = f"({left})"
        right = format_type(t.right)
        if isinstance(t.right, FuncType):
            right = f"({right})"
        return f"{left} + {right}"
    if isinstance(t, SetType):
        return f"{{{format_type(t.elem)}}}"
    if isinstance(t, OrSetType):
        return f"<{format_type(t.elem)}>"
    if isinstance(t, BagType):
        return f"[|{format_type(t.elem)}|]"
    if isinstance(t, FuncType):
        dom = format_type(t.dom)
        if isinstance(t.dom, FuncType):
            dom = f"({dom})"
        return f"{dom} -> {format_type(t.cod)}"
    raise TypeError(f"not a type: {t!r}")
