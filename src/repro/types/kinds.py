"""Object and function types of or-NRA.

The grammar of object types (Section 2 of the paper) is::

    t ::= b | unit | t * t | {t} | <t>

where ``b`` ranges over base types (``bool``, ``int``, ``string``), ``{t}``
is the ordinary finite-set type and ``<t>`` is the or-set type.  For the
normalization machinery of Section 4 the paper additionally uses an internal
multiset ("bag") type written ``[|t|]``; it never appears in user-facing
types but the rewrite engine manipulates it, so it is a first-class citizen
here.

Types are immutable and hashable; they compare structurally.  A small
:class:`TypeVar` kind is provided for the unification-based inference of
``repro.types.unify`` (the paper relies on ML-style inference to omit type
superscripts on morphisms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import OrNRATypeError

__all__ = [
    "Type",
    "BaseType",
    "UnitType",
    "ProdType",
    "SetType",
    "OrSetType",
    "BagType",
    "VariantType",
    "FuncType",
    "TypeVar",
    "BOOL",
    "INT",
    "STRING",
    "UNIT",
    "prod",
    "set_of",
    "orset_of",
    "bag_of",
    "variant",
    "func",
    "contains_orset",
    "contains_bag",
    "contains_set",
    "contains_variant",
    "strip_orsets",
    "sets_to_bags",
    "bags_to_sets",
    "subtypes",
    "type_height",
    "is_object_type",
]


class Type:
    """Abstract base class of all or-NRA types."""

    __slots__ = ()

    def __mul__(self, other: "Type") -> "ProdType":
        """``s * t`` builds the product type, mirroring the paper's syntax."""
        return ProdType(self, other)

    # Subclasses are frozen dataclasses; identity-based equality would be
    # wrong, so each subclass defines eq/hash via dataclass machinery.

    def children(self) -> tuple["Type", ...]:
        """The immediate component types (empty for leaves)."""
        return ()


@dataclass(frozen=True, slots=True)
class BaseType(Type):
    """A base type such as ``int`` or ``bool``.

    The special one-element base type ``unit`` is represented by the
    distinct :class:`UnitType` class so that pattern matching on kinds is
    unambiguous.
    """

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class UnitType(Type):
    """The base type ``unit`` containing precisely one element."""

    def __repr__(self) -> str:
        return "unit"


@dataclass(frozen=True, slots=True)
class ProdType(Type):
    """The product type ``s * t``."""

    left: Type
    right: Type

    def __repr__(self) -> str:
        return f"({self.left!r} * {self.right!r})"

    def children(self) -> tuple[Type, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class SetType(Type):
    """The finite-set type ``{t}``."""

    elem: Type

    def __repr__(self) -> str:
        return f"{{{self.elem!r}}}"

    def children(self) -> tuple[Type, ...]:
        return (self.elem,)


@dataclass(frozen=True, slots=True)
class OrSetType(Type):
    """The or-set type ``<t>`` of Imielinski–Naqvi–Vadaparty."""

    elem: Type

    def __repr__(self) -> str:
        return f"<{self.elem!r}>"

    def children(self) -> tuple[Type, ...]:
        return (self.elem,)


@dataclass(frozen=True, slots=True)
class BagType(Type):
    """The internal multiset type ``[|t|]`` used during normalization.

    Section 4: "Multiset types will only be used internally for the
    normalization process and should not be considered as a part of the
    language."
    """

    elem: Type

    def __repr__(self) -> str:
        return f"[|{self.elem!r}|]"

    def children(self) -> tuple[Type, ...]:
        return (self.elem,)


@dataclass(frozen=True, slots=True)
class VariantType(Type):
    """The variant (sum) type ``s + t`` of the Section 7 extension.

    The paper's conclusion notes the languages "have been extended to
    include variant types" and that coherence still holds; this
    reproduction implements that extension (values are :class:`Variant`
    injections, the rewrite system gains the two rules
    ``<s> + t -> <s + t>`` and ``s + <t> -> <s + t>``).
    """

    left: Type
    right: Type

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"

    def children(self) -> tuple[Type, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class FuncType(Type):
    """A function type ``s -> t`` between object types."""

    dom: Type
    cod: Type

    def __repr__(self) -> str:
        return f"({self.dom!r} -> {self.cod!r})"

    def children(self) -> tuple[Type, ...]:
        return (self.dom, self.cod)


@dataclass(frozen=True, slots=True)
class TypeVar(Type):
    """A type variable for unification-based inference."""

    name: str

    def __repr__(self) -> str:
        return f"'{self.name}"


# Canonical shared instances of the built-in base types.
BOOL = BaseType("bool")
INT = BaseType("int")
STRING = BaseType("string")
UNIT = UnitType()


def prod(left: Type, right: Type) -> ProdType:
    """Build the product type ``left * right``."""
    return ProdType(left, right)


def set_of(elem: Type) -> SetType:
    """Build the set type ``{elem}``."""
    return SetType(elem)


def orset_of(elem: Type) -> OrSetType:
    """Build the or-set type ``<elem>``."""
    return OrSetType(elem)


def bag_of(elem: Type) -> BagType:
    """Build the internal bag type ``[|elem|]``."""
    return BagType(elem)


def variant(left: Type, right: Type) -> VariantType:
    """Build the variant type ``left + right``."""
    return VariantType(left, right)


def func(dom: Type, cod: Type) -> FuncType:
    """Build the function type ``dom -> cod``."""
    return FuncType(dom, cod)


def is_object_type(t: Type) -> bool:
    """True when *t* is an object type (no function types, no variables)."""
    if isinstance(t, (FuncType, TypeVar)):
        return False
    return all(is_object_type(c) for c in t.children())


def subtypes(t: Type) -> Iterator[Type]:
    """Yield every subterm of *t*, including *t* itself (pre-order)."""
    yield t
    for child in t.children():
        yield from subtypes(child)


def type_height(t: Type) -> int:
    """Height of the type's derivation tree (leaves have height 1)."""
    kids = t.children()
    if not kids:
        return 1
    return 1 + max(type_height(c) for c in kids)


def contains_orset(t: Type) -> bool:
    """True when the or-set constructor ``< >`` occurs anywhere in *t*."""
    return any(isinstance(s, OrSetType) for s in subtypes(t))


def contains_set(t: Type) -> bool:
    """True when the set constructor ``{ }`` occurs anywhere in *t*."""
    return any(isinstance(s, SetType) for s in subtypes(t))


def contains_bag(t: Type) -> bool:
    """True when the bag constructor ``[| |]`` occurs anywhere in *t*."""
    return any(isinstance(s, BagType) for s in subtypes(t))


def contains_variant(t: Type) -> bool:
    """True when the variant constructor ``+`` occurs anywhere in *t*."""
    return any(isinstance(s, VariantType) for s in subtypes(t))


def strip_orsets(t: Type) -> Type:
    """Remove every or-set constructor from *t* ("remove all angle brackets").

    This is the operation used by Proposition 4.1 to describe normal forms:
    if ``t`` mentions or-sets then ``nf(t) = <strip_orsets(t)>``.
    """
    if isinstance(t, OrSetType):
        return strip_orsets(t.elem)
    if isinstance(t, ProdType):
        return ProdType(strip_orsets(t.left), strip_orsets(t.right))
    if isinstance(t, VariantType):
        return VariantType(strip_orsets(t.left), strip_orsets(t.right))
    if isinstance(t, SetType):
        return SetType(strip_orsets(t.elem))
    if isinstance(t, BagType):
        return BagType(strip_orsets(t.elem))
    if isinstance(t, (BaseType, UnitType, TypeVar)):
        return t
    raise OrNRATypeError(f"strip_orsets: not an object type: {t!r}")


def sets_to_bags(t: Type) -> Type:
    """The translation ``t -> t^d`` replacing every ``{ }`` with ``[| |]``.

    Section 4 uses it to move normalization into the multiset world where
    duplicates are not collapsed prematurely.
    """
    if isinstance(t, SetType):
        return BagType(sets_to_bags(t.elem))
    if isinstance(t, BagType):
        return BagType(sets_to_bags(t.elem))
    if isinstance(t, OrSetType):
        return OrSetType(sets_to_bags(t.elem))
    if isinstance(t, ProdType):
        return ProdType(sets_to_bags(t.left), sets_to_bags(t.right))
    if isinstance(t, VariantType):
        return VariantType(sets_to_bags(t.left), sets_to_bags(t.right))
    if isinstance(t, (BaseType, UnitType, TypeVar)):
        return t
    raise OrNRATypeError(f"sets_to_bags: not an object type: {t!r}")


def bags_to_sets(t: Type) -> Type:
    """The translation ``t -> t^s`` replacing every ``[| |]`` with ``{ }``."""
    if isinstance(t, BagType):
        return SetType(bags_to_sets(t.elem))
    if isinstance(t, SetType):
        return SetType(bags_to_sets(t.elem))
    if isinstance(t, OrSetType):
        return OrSetType(bags_to_sets(t.elem))
    if isinstance(t, ProdType):
        return ProdType(bags_to_sets(t.left), bags_to_sets(t.right))
    if isinstance(t, VariantType):
        return VariantType(bags_to_sets(t.left), bags_to_sets(t.right))
    if isinstance(t, (BaseType, UnitType, TypeVar)):
        return t
    raise OrNRATypeError(f"bags_to_sets: not an object type: {t!r}")
