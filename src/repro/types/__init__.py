"""Types of or-NRA: kinds, parsing, the normalization rewrite system.

See the paper's Section 2 (type grammar) and Section 4 (rewrite system).
"""

from repro.types.kinds import (
    BOOL,
    INT,
    STRING,
    UNIT,
    BagType,
    BaseType,
    FuncType,
    OrSetType,
    ProdType,
    SetType,
    Type,
    TypeVar,
    UnitType,
    VariantType,
    bag_of,
    bags_to_sets,
    contains_bag,
    contains_orset,
    contains_set,
    contains_variant,
    func,
    is_object_type,
    orset_of,
    prod,
    set_of,
    variant,
    sets_to_bags,
    strip_orsets,
    subtypes,
    type_height,
)
from repro.types.parse import format_type, parse_type
from repro.types.rewrite import (
    OR_FLATTEN,
    PAIR_LEFT,
    PAIR_RIGHT,
    RULES,
    SET_ALPHA,
    VARIANT_LEFT,
    VARIANT_RIGHT,
    all_normal_forms,
    apply_rewrite,
    innermost_strategy,
    is_normal_type,
    nf_type,
    normalize_type,
    outermost_strategy,
    phi,
    random_strategy,
    redexes,
    replace_at,
    rewrite_graph,
    subtype_at,
)
from repro.types.unify import (
    FreshVars,
    Substitution,
    apply_subst,
    compose_subst,
    free_type_vars,
    rename_apart,
    unify,
    unify_many,
)

__all__ = [
    # kinds
    "Type", "BaseType", "UnitType", "ProdType", "SetType", "OrSetType",
    "BagType", "VariantType", "FuncType", "TypeVar",
    "BOOL", "INT", "STRING", "UNIT",
    "prod", "set_of", "orset_of", "bag_of", "variant", "func",
    "contains_orset", "contains_bag", "contains_set", "contains_variant",
    "strip_orsets", "sets_to_bags", "bags_to_sets",
    "subtypes", "type_height", "is_object_type",
    # parse
    "parse_type", "format_type",
    # rewrite
    "PAIR_RIGHT", "PAIR_LEFT", "OR_FLATTEN", "SET_ALPHA",
    "VARIANT_LEFT", "VARIANT_RIGHT", "RULES",
    "subtype_at", "replace_at", "redexes", "apply_rewrite", "phi",
    "nf_type", "is_normal_type", "normalize_type",
    "innermost_strategy", "outermost_strategy", "random_strategy",
    "rewrite_graph", "all_normal_forms",
    # unify
    "Substitution", "apply_subst", "compose_subst", "unify", "unify_many",
    "free_type_vars", "FreshVars", "rename_apart",
]
