"""The type rewrite system of Section 4 (Proposition 4.1).

The four rules are::

    pair_right :  t * <s>    ->  <t * s>
    pair_left  :  <t> * s    ->  <t * s>
    or_flatten :  <<t>>      ->  <t>
    set_alpha  :  {<t>}      ->  <{t}>     (and   [|<t>|] -> <[|t|]>)

plus, for the Section 7 variant-type extension::

    variant_left  :  <s> + t  ->  <s + t>
    variant_right :  s + <t>  ->  <s + t>

Positions in a type's derivation tree are tuples of child indices: for a
product, ``0`` is the left and ``1`` the right component; the unary
constructors have a single child ``0``.  A *redex* is a pair
``(position, rule)`` where the rule is applicable to the subterm at that
position.

Proposition 4.1 states the system is terminating and Church–Rosser with
normal forms ``nf(t) = t`` when ``t`` has no or-sets, and
``nf(t) = <strip(t)>`` otherwise.  :func:`phi` implements a termination
measure (a variant of the paper's level-weighted count of ``< >``
occurrences) that strictly decreases under every rule, and
:func:`rewrite_graph` explores every rewriting path so tests can verify
confluence exhaustively on small types.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.errors import NormalizationError, OrNRATypeError
from repro.types.kinds import (
    BagType,
    BaseType,
    OrSetType,
    ProdType,
    SetType,
    Type,
    UnitType,
    VariantType,
    contains_orset,
    strip_orsets,
)

__all__ = [
    "PAIR_RIGHT",
    "PAIR_LEFT",
    "OR_FLATTEN",
    "SET_ALPHA",
    "VARIANT_LEFT",
    "VARIANT_RIGHT",
    "RULES",
    "Position",
    "Redex",
    "subtype_at",
    "replace_at",
    "rule_applicable",
    "redexes",
    "apply_rewrite",
    "phi",
    "nf_type",
    "is_normal_type",
    "normalize_type",
    "innermost_strategy",
    "outermost_strategy",
    "random_strategy",
    "rewrite_graph",
    "all_normal_forms",
]

PAIR_RIGHT = "pair_right"
PAIR_LEFT = "pair_left"
OR_FLATTEN = "or_flatten"
SET_ALPHA = "set_alpha"
# Section 7 variant extension: or-sets commute past either injection.
VARIANT_LEFT = "variant_left"    # <s> + t  ->  <s + t>
VARIANT_RIGHT = "variant_right"  # s + <t>  ->  <s + t>
RULES = (PAIR_RIGHT, PAIR_LEFT, OR_FLATTEN, SET_ALPHA, VARIANT_LEFT, VARIANT_RIGHT)

Position = tuple[int, ...]
Redex = tuple[Position, str]


def subtype_at(t: Type, pos: Position) -> Type:
    """The subterm of *t* at *pos*."""
    for index in pos:
        kids = t.children()
        if index >= len(kids):
            raise OrNRATypeError(f"position {pos} not valid in {t!r}")
        t = kids[index]
    return t


def replace_at(t: Type, pos: Position, new: Type) -> Type:
    """*t* with the subterm at *pos* replaced by *new*."""
    if not pos:
        return new
    head, rest = pos[0], pos[1:]
    if isinstance(t, ProdType):
        if head == 0:
            return ProdType(replace_at(t.left, rest, new), t.right)
        if head == 1:
            return ProdType(t.left, replace_at(t.right, rest, new))
    elif isinstance(t, VariantType):
        if head == 0:
            return VariantType(replace_at(t.left, rest, new), t.right)
        if head == 1:
            return VariantType(t.left, replace_at(t.right, rest, new))
    elif isinstance(t, SetType) and head == 0:
        return SetType(replace_at(t.elem, rest, new))
    elif isinstance(t, OrSetType) and head == 0:
        return OrSetType(replace_at(t.elem, rest, new))
    elif isinstance(t, BagType) and head == 0:
        return BagType(replace_at(t.elem, rest, new))
    raise OrNRATypeError(f"position {pos} not valid in {t!r}")


def rule_applicable(t: Type, rule: str) -> bool:
    """Does *rule* apply to the term *t* at its root?"""
    if rule == PAIR_RIGHT:
        return isinstance(t, ProdType) and isinstance(t.right, OrSetType)
    if rule == PAIR_LEFT:
        return isinstance(t, ProdType) and isinstance(t.left, OrSetType)
    if rule == OR_FLATTEN:
        return isinstance(t, OrSetType) and isinstance(t.elem, OrSetType)
    if rule == SET_ALPHA:
        return isinstance(t, (SetType, BagType)) and isinstance(t.elem, OrSetType)
    if rule == VARIANT_LEFT:
        return isinstance(t, VariantType) and isinstance(t.left, OrSetType)
    if rule == VARIANT_RIGHT:
        return isinstance(t, VariantType) and isinstance(t.right, OrSetType)
    raise OrNRATypeError(f"unknown rewrite rule {rule!r}")


def _rewrite_root(t: Type, rule: str) -> Type:
    if not rule_applicable(t, rule):
        raise NormalizationError(f"rule {rule!r} does not apply to {t!r}")
    if rule == PAIR_RIGHT:
        assert isinstance(t, ProdType) and isinstance(t.right, OrSetType)
        return OrSetType(ProdType(t.left, t.right.elem))
    if rule == PAIR_LEFT:
        assert isinstance(t, ProdType) and isinstance(t.left, OrSetType)
        return OrSetType(ProdType(t.left.elem, t.right))
    if rule == OR_FLATTEN:
        assert isinstance(t, OrSetType) and isinstance(t.elem, OrSetType)
        return OrSetType(t.elem.elem)
    if rule == VARIANT_LEFT:
        assert isinstance(t, VariantType) and isinstance(t.left, OrSetType)
        return OrSetType(VariantType(t.left.elem, t.right))
    if rule == VARIANT_RIGHT:
        assert isinstance(t, VariantType) and isinstance(t.right, OrSetType)
        return OrSetType(VariantType(t.left, t.right.elem))
    assert isinstance(t, (SetType, BagType)) and isinstance(t.elem, OrSetType)
    inner = t.elem.elem
    wrapper = SetType if isinstance(t, SetType) else BagType
    return OrSetType(wrapper(inner))


def redexes(t: Type, _prefix: Position = ()) -> list[Redex]:
    """All redexes of *t*, in pre-order (outermost first)."""
    found: list[Redex] = []
    for rule in RULES:
        if rule_applicable(t, rule):
            found.append((_prefix, rule))
    for index, child in enumerate(t.children()):
        found.extend(redexes(child, _prefix + (index,)))
    return found


def apply_rewrite(t: Type, pos: Position, rule: str) -> Type:
    """Apply *rule* at *pos* in *t* and return the rewritten type."""
    target = subtype_at(t, pos)
    return replace_at(t, pos, _rewrite_root(target, rule))


def phi(t: Type, _non_or_ancestors: int = 0) -> int:
    """A termination measure that strictly decreases under every rule.

    Each occurrence of ``< >`` contributes ``1 + (number of proper ancestors
    that are not or-set constructors)``.  The pair and set rules move one
    or-set past one non-or-set constructor (``-1``); ``or_flatten`` deletes
    one occurrence (``-1`` at least).  This is a simplification of the
    paper's level-indexed sum that enjoys the same strict-decrease property.
    """
    total = 0
    if isinstance(t, OrSetType):
        total += 1 + _non_or_ancestors
        total += phi(t.elem, _non_or_ancestors)
        return total
    for child in t.children():
        total += phi(child, _non_or_ancestors + 1)
    return total


def nf_type(t: Type) -> Type:
    """The normal form of *t*, by the closed form of Proposition 4.1.

    ``nf(t) = t`` if *t* has no or-sets; otherwise ``nf(t) = <t'>`` where
    ``t'`` is *t* with all angle brackets removed.
    """
    if not contains_orset(t):
        return t
    return OrSetType(strip_orsets(t))


def is_normal_type(t: Type) -> bool:
    """True when no rewrite rule applies anywhere in *t*."""
    return not redexes(t)


Strategy = Callable[[Sequence[Redex]], Redex]


def innermost_strategy(options: Sequence[Redex]) -> Redex:
    """Pick a redex of maximal depth (leftmost-innermost)."""
    return max(options, key=lambda r: (len(r[0]), r[0]))


def outermost_strategy(options: Sequence[Redex]) -> Redex:
    """Pick a redex of minimal depth (leftmost-outermost)."""
    return min(options, key=lambda r: (len(r[0]), r[0]))


def random_strategy(rng: random.Random) -> Strategy:
    """A strategy choosing a uniformly random redex using *rng*."""

    def choose(options: Sequence[Redex]) -> Redex:
        return options[rng.randrange(len(options))]

    return choose


def normalize_type(
    t: Type, strategy: Strategy = innermost_strategy
) -> tuple[Type, list[Redex]]:
    """Rewrite *t* to its normal form, returning ``(nf, trace)``.

    The trace lists the ``(position, rule)`` choices in order; the object
    normalizer replays such traces on values.
    """
    trace: list[Redex] = []
    current = t
    while True:
        options = redexes(current)
        if not options:
            return current, trace
        pos, rule = strategy(options)
        trace.append((pos, rule))
        current = apply_rewrite(current, pos, rule)


def rewrite_graph(t: Type, max_nodes: int = 10_000) -> dict[Type, list[Type]]:
    """The full one-step rewrite graph reachable from *t*.

    Used by tests to verify confluence exhaustively: every path must end in
    the same normal form.  Raises :class:`NormalizationError` if the graph
    exceeds *max_nodes* (it cannot diverge by termination, but it can be
    large).
    """
    graph: dict[Type, list[Type]] = {}
    frontier = [t]
    while frontier:
        current = frontier.pop()
        if current in graph:
            continue
        successors = [
            apply_rewrite(current, pos, rule) for pos, rule in redexes(current)
        ]
        graph[current] = successors
        if len(graph) > max_nodes:
            raise NormalizationError("rewrite graph exceeded max_nodes")
        frontier.extend(s for s in successors if s not in graph)
    return graph


def all_normal_forms(t: Type, max_nodes: int = 10_000) -> set[Type]:
    """Every normal form reachable from *t* (singleton iff confluent)."""
    graph = rewrite_graph(t, max_nodes)
    return {node for node, succ in graph.items() if not succ}


def _is_base(t: Type) -> bool:
    return isinstance(t, (BaseType, UnitType))
