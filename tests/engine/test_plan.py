"""Tests for the plan IR: compilation, sharing, typing, round-trips."""

import random

import pytest

from repro.engine.plan import compile_plan
from repro.errors import OrNRATypeError
from repro.gen import random_orset_value
from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Id,
    PairOf,
    Proj1,
    Proj2,
    always,
    compose,
)
from repro.lang.orset_ops import Alpha, OrEta, OrMap
from repro.lang.primitives import plus
from repro.lang.set_ops import SetMap, SetMu
from repro.lang.variant_ops import case
from repro.morphgen import random_lossless_morphism
from repro.types.parse import format_type, parse_type
from repro.values.values import vinl, vinr, vorset, vpair, vset

DOUBLE = Compose(plus(), PairOf(Id(), Id()))


class TestCompilation:
    def test_compose_chain_flattens(self):
        m = compose(Alpha(), SetMap(OrMap(DOUBLE)), Id())
        plan = compile_plan(m)
        root = plan.nodes[plan.root]
        assert root.op == "chain"
        # id is pruned; the chain holds the two real steps in
        # application order (map first, alpha second).
        assert [plan.nodes[k].op for k in root.kids] == ["map", "leaf"]

    def test_shared_subtrees_compile_once(self):
        m = PairOf(DOUBLE, DOUBLE)
        plan = compile_plan(m)
        root = plan.nodes[plan.root]
        assert root.kids[0] == root.kids[1]

    def test_identity_only_program(self):
        plan = compile_plan(Compose(Id(), Id()))
        assert plan.execute(vpair(1, 2)) == vpair(1, 2)

    def test_execute_matches_direct_interpretation(self):
        m = Compose(OrMap(SetMap(DOUBLE)), Alpha())
        v = vset(vorset(1, 2), vorset(3))
        assert compile_plan(m).execute(v) == m(v)

    def test_cond_and_case_semantics(self):
        m = Cond(always(True), Proj1(), Proj2())
        assert compile_plan(m).execute(vpair(1, 2)) == m(vpair(1, 2))
        c = case(DOUBLE, Bang())
        plan = compile_plan(c)
        assert plan.execute(vinl(3)) == c(vinl(3))
        assert plan.execute(vinr(vpair(1, 2))) == c(vinr(vpair(1, 2)))

    def test_type_errors_preserved(self):
        plan = compile_plan(SetMap(DOUBLE))
        with pytest.raises(OrNRATypeError):
            plan.execute(vorset(1))

    def test_random_programs_agree(self):
        rng = random.Random(7)
        for _ in range(60):
            v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
            f, _ = random_lossless_morphism(t, rng, depth=4)
            assert compile_plan(f).execute(v) == f(v), f.describe()


class TestTyping:
    def test_infer_types_annotates_nodes(self):
        m = Compose(OrMap(SetMap(Proj1())), Alpha())
        plan = compile_plan(m)
        out = plan.infer_types(parse_type("{<int * bool>}"))
        assert format_type(out) == "<{int}>"
        leaf_types = {
            plan.nodes[i].source.describe(): (
                format_type(plan.nodes[i].dom),
                format_type(plan.nodes[i].cod),
            )
            for i in range(len(plan.nodes))
            if plan.nodes[i].op == "leaf"
        }
        assert leaf_types["alpha"] == ("{<int * bool>}", "<{int * bool}>")

    def test_infer_types_survives_untypeable_leaves(self):
        from repro.core.normalize import Normalize

        plan = compile_plan(Compose(OrMap(Id()), Normalize()))
        assert plan.infer_types(parse_type("<<int>>")) is None

    def test_describe_mentions_every_node(self):
        plan = compile_plan(Compose(SetMu(), SetMap(OrEta())))
        text = plan.describe()
        for node in plan.nodes:
            assert f"n{node.idx}" in text


class TestRoundTrip:
    def test_to_morphism_evaluates_identically(self):
        rng = random.Random(11)
        for _ in range(40):
            v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
            f, _ = random_lossless_morphism(t, rng, depth=4)
            back = compile_plan(f).to_morphism()
            assert back(v) == f(v)

    def test_bind_is_cached(self):
        plan = compile_plan(OrMap(DOUBLE))
        assert plan.bind() is plan.bind()
