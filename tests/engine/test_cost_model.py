"""Tests for the cost model: estimator soundness, plan annotation,
cost-guided pass scheduling and adaptive backend selection."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine
from repro.core.costs import (
    estimate_m_value,
    estimate_normalized_size,
    m_value,
    normalized_size,
    prop61_bound,
    tight_family,
)
from repro.core.normalize import Normalize
from repro.engine import Engine
from repro.engine.cost_model import (
    SMALL_WORLDS,
    WIDE_SPINE,
    estimate_morphism_cost,
    estimate_value,
    plan_profile,
    select_backend,
)
from repro.engine.passes import (
    CONDITIONALS,
    LATE_NORMALIZE,
    Pipeline,
    default_pipeline,
    operator_census,
)
from repro.engine.plan import compile_plan
from repro.gen import random_orset_value
from repro.lang.morphisms import Compose, Cond, Id, Proj1, Proj2
from repro.lang.orset_ops import OrMap, OrMu, OrToSet, SetToOr
from repro.lang.set_ops import SetMap, SetMu
from repro.morphgen import random_lossless_morphism
from repro.types.parse import parse_type
from repro.values.values import vorset, vpair, vset


class TestEstimatorSoundness:
    """The static estimator must be a sound upper bound on the measured
    Section 6 quantities — checked against full normalization."""

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 100_000))
    def test_estimate_bounds_m_value(self, seed):
        rng = random.Random(seed)
        v, t = random_orset_value(rng, max_depth=3, max_width=3, min_width=0)
        assert estimate_m_value(v) >= m_value(v, t), str(v)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 100_000))
    def test_estimate_bounds_normalized_size(self, seed):
        rng = random.Random(seed)
        v, t = random_orset_value(rng, max_depth=3, max_width=3, min_width=0)
        assert estimate_normalized_size(v) >= normalized_size(v, t), str(v)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_estimate_at_most_prop61(self, seed):
        """The combined bound never exceeds Proposition 6.1's cap."""
        from repro.values.measure import has_orset

        rng = random.Random(seed)
        v, _t = random_orset_value(rng, max_depth=3, max_width=3, min_width=1)
        if has_orset(v):
            assert estimate_m_value(v) <= prop61_bound(v)

    def test_exact_on_tight_family(self):
        """Theorem 6.5's witnesses: the estimate is not just sound but
        exact — m = 3^k worlds of k atoms each."""
        for k in range(1, 6):
            x, t = tight_family(k)
            est = estimate_value(x)
            assert est.worlds == 3**k == m_value(x, t)
            assert est.norm_size == k * 3**k == normalized_size(x, t)
            assert est.size == 3 * k
            assert est.width == k

    def test_estimation_never_normalizes(self, monkeypatch):
        """The acceptance guard: estimating must not call the
        normalization machinery at all."""
        import sys

        # `repro.core` re-exports a `normalize` *function*, shadowing the
        # submodule attribute — go through sys.modules for the module.
        normalize_mod = sys.modules["repro.core.normalize"]

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("estimator called the normalizer")

        monkeypatch.setattr(normalize_mod, "normalize", boom)
        monkeypatch.setattr(normalize_mod, "normalize_with_trace", boom)
        monkeypatch.setattr(normalize_mod, "possibilities", boom)
        x, _t = tight_family(5)
        assert estimate_value(x).worlds == 3**5
        assert estimate_m_value(vpair(vorset(1, 2), vset(vorset(3, 4)))) == 4

    def test_empty_orset_means_no_worlds(self):
        assert estimate_m_value(vpair(1, vorset())) == 0
        assert estimate_m_value(vset()) == 1  # the empty set is one world


class TestSharedTraversal:
    def test_m_value_and_normalized_size_share_one_normalization(self):
        from repro.core.costs import normalization_measures

        normalization_measures.cache_clear()
        x, t = tight_family(3)
        assert m_value(x, t) == 27
        assert normalized_size(x, t) == 81
        info = normalization_measures.cache_info()
        assert info.misses == 1 and info.hits == 1


class TestPlanAnnotation:
    def test_explain_with_value_shows_estimates_and_backend(self):
        out = engine.explain(
            Normalize(), value=vset(vorset(1, 2), vorset(3, 4))
        )
        assert "~worlds<=4" in out
        assert "backend: eager" in out

    def test_settoor_annotation_accounts_for_disjunction(self):
        # settoor turns a k-member set into a k-way disjunction; the
        # annotation must not carry the set's world count through.
        plan = compile_plan(SetToOr())
        est = plan.annotate_estimates(vset(1, 2, 3))
        assert est.worlds >= 3

    def test_annotate_estimates_on_chain(self):
        q = Compose(OrMap(Id()), SetToOr())
        plan = compile_plan(q)
        x, t = tight_family(4)
        root_est = plan.annotate_estimates(x)
        # The root prediction stays above the output's true world count.
        assert root_est.worlds >= m_value(q(x))
        assert plan.nodes[plan.root].est_worlds == root_est.worlds


class TestBackendSelection:
    def test_small_inputs_stay_eager(self):
        plan = compile_plan(OrMap(Id()))
        choice = select_backend(plan, vorset(1, 2))
        assert choice.backend == "eager"

    def test_existential_blowup_streams(self):
        x, _t = tight_family(SMALL_WORLDS)  # 3^64 estimated worlds
        plan = compile_plan(Compose(OrMap(Normalize()), SetToOr()))
        choice = select_backend(plan, x, existential=True)
        assert choice.backend == "streaming"

    def test_wide_spine_goes_parallel_with_shard_hint(self):
        x, _t = tight_family(WIDE_SPINE + 8)
        plan = compile_plan(Compose(SetMu(), SetMap(OrToSet())))
        choice = select_backend(plan, x)
        assert choice.backend == "parallel"
        assert choice.shards is not None and 2 <= choice.shards <= WIDE_SPINE + 8

    def test_profile_counts_spine_stages(self):
        plan = compile_plan(Compose(SetMu(), SetMap(OrToSet())))
        profile = plan_profile(plan)
        assert profile.spine_maps == 1
        assert profile.spine_stages == 2  # map(ortoset) then mu

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_auto_matches_every_backend(self, seed):
        """The regression gate: adaptive selection must return results
        structurally equal to all three fixed backends."""
        rng = random.Random(seed)
        v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
        f, _ = random_lossless_morphism(t, rng, depth=4)
        eng = Engine()
        auto = eng.run(f, v, backend="auto")
        for name in ("eager", "streaming", "parallel"):
            assert eng.run(f, v, backend=name) == auto, (name, f.describe())

    def test_auto_is_the_default(self):
        x, _t = tight_family(3)
        eng = Engine()
        assert eng.run(Normalize(), x) == eng.run(
            Normalize(), x, backend="eager"
        )

    def test_choose_backend_reports_reason(self):
        eng = Engine()
        choice = eng.choose_backend(OrMap(Id()), vorset(1, 2))
        assert choice.backend == "eager"
        assert choice.reason


class TestCostGuidedScheduling:
    def test_census_skips_irrelevant_passes(self):
        m = Compose(SetMap(Proj1()), SetMap(Proj2()))
        present = operator_census(m)
        assert not CONDITIONALS.relevant(present)
        assert Cond in operator_census(Cond(Proj1(), Proj1(), Proj2()))

    def test_run_matches_fixed_order_semantics(self):
        rng = random.Random(7)
        for _ in range(25):
            v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
            f, _ = random_lossless_morphism(t, rng, depth=4)
            guided = default_pipeline().run(f)
            fixed = default_pipeline().run_fixed_order(f)
            assert guided(v) == fixed(v) == f(v), f.describe()

    def test_budget_zero_is_identity(self):
        m = Compose(Id(), Compose(SetMap(Proj1()), SetMap(Proj2())))
        pipeline = Pipeline(budget=0)
        assert pipeline.run(m) == m
        assert pipeline.fired == []

    def test_budget_caps_rule_applications(self):
        m = Compose(Id(), Compose(SetMap(Proj1()), SetMap(Proj2())))
        pipeline = Pipeline(budget=1)
        pipeline.run(m)
        assert len(pipeline.fired) == 1

    def test_schedule_records_cost_deltas(self):
        pipeline = default_pipeline()
        pipeline.run(Compose(Id(), SetMap(Id())))
        assert pipeline.schedule
        for _label, before, after in pipeline.schedule:
            assert after <= before

    def test_weighted_cost_ranks_normalize_heaviest(self):
        assert estimate_morphism_cost(Normalize()) > estimate_morphism_cost(
            Compose(SetMap(Proj1()), SetMu())
        )

    def test_cost_scales_with_input_worlds(self):
        x, _t = tight_family(20)
        big = estimate_morphism_cost(Normalize(), estimate_value(x))
        small = estimate_morphism_cost(Normalize(), estimate_value(vorset(1)))
        assert big > small


class TestLateNormalization:
    def test_drops_elementwise_prenormalization(self):
        m = Compose(Normalize(), SetMap(Normalize()))
        out = LATE_NORMALIZE.run(m)
        assert out == Normalize()
        v = vset(vpair(1, vorset(1, 2)), vpair(3, vorset(4, 5)))
        assert out(v) == m(v)

    def test_delays_normalize_past_or_mu(self):
        t = parse_type("<int>")
        m = Compose(OrMu(), OrMap(Normalize(t)))
        out = LATE_NORMALIZE.run(m)
        assert out == Compose(Normalize(t), OrMu())
        v = vorset(vorset(1, 2), vorset(2, 3))
        assert out(v) == m(v)

    def test_untyped_normalize_not_moved_past_mu(self):
        # Without a declared or-set input type the rewritten or_mu could
        # receive a non-or-set element type, so the rule must not fire.
        m = Compose(OrMu(), OrMap(Normalize()))
        assert LATE_NORMALIZE.run(m) == m

    def test_in_default_pipeline(self):
        m = Compose(Normalize(), OrMap(Normalize()))
        assert default_pipeline().run(m) == Normalize()


class TestInternerLRU:
    def test_hot_entries_survive_eviction(self):
        from repro.engine.interning import Interner

        interner = Interner(max_size=8)
        hot = interner.intern(vorset(777))
        for i in range(50):
            interner.intern(vorset(i, i + 1))
            interner.intern(vorset(777))  # touch: keeps the entry MRU
        assert interner.intern(vorset(777)) is hot
        assert interner.stats()["evictions"] >= 1

    def test_cold_entries_leave_first(self):
        from repro.engine.interning import Interner

        interner = Interner(max_size=4)
        cold = interner.intern(vorset(1000))
        for i in range(20):
            interner.intern(vorset(i))
        assert not interner.is_interned(cold)

    def test_normalize_memo_survives_large_normal_form(self):
        # Interning a normal form with more nested entries than the
        # arena holds must not evict the memo that was just written.
        from repro.engine.interning import Interner

        interner = Interner(max_size=4)
        v = vset(vorset(1, 2), vorset(3, 4))
        first = interner.normalize(v)
        assert interner.normalize(v) is first
        assert interner.normalize_misses == 1

    def test_normalize_memo_survives_touches(self):
        from repro.engine.interning import Interner

        interner = Interner(max_size=16)
        v = vpair(vset(vorset(1, 2), vorset(3)), vorset(1, 2))
        first = interner.normalize(v)
        for i in range(6):
            interner.intern(vorset(5000 + i))
            interner.normalize(v)  # touches v's entry each round
        assert interner.normalize(v) is first
        assert interner.normalize_misses == 1
