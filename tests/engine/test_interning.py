"""Tests for the hash-consing arena and its derived-result caches."""

from repro.core.normalize import normalize
from repro.engine.interning import Interner
from repro.values.values import (
    sort_key,
    vbag,
    vorset,
    vpair,
    vset,
)


def big_value():
    return vpair(vset(vorset(1, 2), vorset(3)), vorset(1, 2))


class TestHashConsing:
    def test_equal_values_intern_to_same_object(self):
        interner = Interner()
        a = interner.intern(big_value())
        b = interner.intern(big_value())
        assert a is b
        assert a == big_value()

    def test_shared_substructure_is_physically_shared(self):
        interner = Interner()
        a = interner.intern(vpair(vorset(1, 2), 9))
        b = interner.intern(vpair(vorset(1, 2), 10))
        assert a.fst is b.fst

    def test_all_value_kinds_round_trip(self):
        from repro.values.values import UNIT_VALUE, vinl, vinr

        interner = Interner()
        for v in (
            UNIT_VALUE,
            vpair(1, "x"),
            vset(1, 2),
            vorset(True),
            vbag(1, 1, 2),
            vinl(1),
            vinr(vset(2)),
        ):
            assert interner.intern(v) == v

    def test_is_interned(self):
        interner = Interner()
        raw = big_value()
        canon = interner.intern(raw)
        assert interner.is_interned(canon)
        assert not interner.is_interned(big_value())


class TestDerivedCaches:
    def test_sort_key_matches_uncached(self):
        interner = Interner()
        v = big_value()
        assert interner.sort_key(v) == sort_key(v)

    def test_normalize_memoizes_on_identity(self):
        interner = Interner()
        v = big_value()
        first = interner.normalize(v)
        again = interner.normalize(big_value())
        assert first is again
        assert interner.normalize_hits == 1
        assert interner.normalize_misses == 1

    def test_memoized_normalize_matches_direct(self):
        interner = Interner()
        v = big_value()
        assert interner.normalize(v) == normalize(v)

    def test_normalize_key_includes_declared_type(self):
        from repro.types.parse import parse_type

        interner = Interner()
        v = vorset(1, 2)
        untyped = interner.normalize(v)
        typed = interner.normalize(v, parse_type("<int>"))
        assert untyped == typed
        assert interner.normalize_misses == 2

    def test_clear_resets_arena(self):
        interner = Interner()
        interner.normalize(big_value())
        assert len(interner) > 0
        interner.clear()
        assert len(interner) == 0
        stats = interner.stats()
        assert stats["arena_size"] == 0

    def test_stats_counters(self):
        interner = Interner()
        interner.intern(vset(1))
        interner.intern(vset(1))
        stats = interner.stats()
        assert stats["intern_hits"] >= 1
        assert stats["intern_misses"] >= 1


class TestBoundedArena:
    """Regression: the arena must not grow without bound in a
    long-running process (the REPL and DEFAULT_ENGINE previously pinned
    every value ever interned)."""

    def test_eviction_fires_at_capacity(self):
        interner = Interner(max_size=8)
        for i in range(100):
            interner.intern(vorset(i, i + 1))
        stats = interner.stats()
        assert stats["evictions"] >= 1
        # Bounded: at capacity the arena clears, then refills; a single
        # intern can overshoot by at most its own node count.
        assert stats["arena_size"] < 8 + 8

    def test_eviction_clears_derived_caches_together(self):
        interner = Interner(max_size=4)
        v = big_value()
        first = interner.normalize(v)
        for i in range(50):
            interner.intern(vorset(1000 + i))
        # The memo went with the arena, but the recomputed result is
        # still structurally equal.
        assert interner.normalize(v) == first

    def test_evicted_objects_stay_valid_values(self):
        interner = Interner(max_size=4)
        canon = interner.intern(big_value())
        for i in range(50):
            interner.intern(vorset(2000 + i))
        assert canon == big_value()
        assert normalize(canon) == normalize(big_value())

    def test_unbounded_when_max_size_none(self):
        interner = Interner(max_size=None)
        for i in range(200):
            interner.intern(vorset(i))
        assert interner.stats()["evictions"] == 0
        assert len(interner) >= 200

    def test_stats_surface_policy(self):
        stats = Interner(max_size=128).stats()
        assert stats["max_size"] == 128
        assert stats["evictions"] == 0

    def test_default_is_bounded(self):
        from repro.engine.interning import DEFAULT_MAX_ARENA_SIZE

        assert Interner().max_size == DEFAULT_MAX_ARENA_SIZE
