"""Tests for the columnar arena and the fused kernel pipeline.

The headline properties: the arena encoding is lossless
(``Arena.from_value(v, ...).to_value() == v`` structurally, for every
collection shape the strategies generate, nested or-sets included), and
the ``fused`` backend is structurally equal to eager on random programs
— with the same error behavior on ill-kinded spines.  Unit tests pin
the fusion pass's plan rewrite, the raw scalar-kernel compiler, the
transient-duplicate conventions and pickling of fused plans.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BACKENDS, Engine
from repro.engine.columnar import Arena, compile_scalar, raw_kernels
from repro.engine.passes import fuse_plan, fusible_spans
from repro.engine.plan import compile_plan
from repro.errors import OrNRATypeError
from repro.lang.bag_ops import bag_unique, settobag
from repro.lang.morphisms import Bang, Compose, Cond, Id, PairOf, const
from repro.lang.orset_ops import OrMap
from repro.lang.primitives import int_le, int_lt, plus, times
from repro.lang.set_ops import SetMap, SetMu
from repro.morphgen import random_lossless_morphism
from repro.values.values import vbag, vorset, vpair, vset

from tests.strategies import typed_orset_values, typed_values

DOUBLE = Compose(plus(), PairOf(Id(), Id()))
FUSED_CHAIN = Compose(SetMap(DOUBLE), Compose(SetMap(DOUBLE), SetMap(DOUBLE)))


class TestArenaRoundTrip:
    @given(pair=typed_values(max_depth=3, max_width=3))
    @settings(max_examples=60, deadline=None)
    def test_flat_round_trip_on_random_collections(self, pair):
        value, _t = pair
        for kind, ctor in (("set", vset), ("orset", vorset), ("bag", vbag)):
            wrapped = ctor(value, value)
            arena = Arena.from_value(wrapped, kind, "noun")
            assert arena.to_value() == wrapped

    @given(pair=typed_orset_values(max_depth=3, max_width=3))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_with_nested_orsets(self, pair):
        value, _t = pair
        wrapped = vorset(value)
        assert Arena.from_value(wrapped, "orset", "noun").to_value() == wrapped

    def test_segmented_round_trip(self):
        nested = vset(vset(1, 2), vset(3), vset())
        arena = Arena.segmented(nested, "set", "mu expects a set of sets")
        assert len(arena) == 3
        assert arena.to_value() == nested

    def test_from_value_kind_mismatch_raises(self):
        with pytest.raises(OrNRATypeError, match="map expects a set"):
            Arena.from_value(vorset(1), "set", "map expects a set")

    def test_segmented_rejects_non_nested_elements(self):
        with pytest.raises(OrNRATypeError, match="got element"):
            Arena.segmented(vset(1, 2), "set", "mu expects a set of sets")

    def test_slice_covers_ranges(self):
        arena = Arena.from_value(vset(*range(10)), "set", "noun")
        left, right = arena.slice(0, 4), arena.slice(4, 10)
        assert len(left) + len(right) == len(arena)
        merged = Arena("set", left.bases + right.bases, left.raws + right.raws)
        assert merged.to_value() == vset(*range(10))


class TestScalarCompiler:
    def test_arithmetic_chain_compiles_raw(self):
        compiled = compile_scalar(Compose(DOUBLE, DOUBLE), "int")
        assert compiled is not None
        fn, out = compiled
        assert out == "int" and fn(3) == 12

    def test_comparison_produces_bool(self):
        compiled = compile_scalar(
            Compose(int_lt(), PairOf(const(2, "int"), Id())), "int"
        )
        assert compiled is not None
        fn, out = compiled
        assert out == "bool" and fn(3) is True and fn(1) is False

    def test_cond_compiles_when_branches_agree(self):
        m = Cond(
            Compose(int_le(), PairOf(Id(), const(0, "int"))),
            const(1, "int"),
            Compose(times(), PairOf(Id(), Id())),
        )
        compiled = compile_scalar(m, "int")
        assert compiled is not None
        fn, out = compiled
        assert out == "int" and fn(0) == 1 and fn(3) == 9

    def test_const_after_bang_is_raw(self):
        compiled = compile_scalar(Compose(const(7, "int"), Bang()), "bool")
        assert compiled is not None
        fn, out = compiled
        assert out == "int" and fn(True) == 7

    def test_unfusible_body_returns_none(self):
        assert compile_scalar(OrMap(Id()), "int") is None
        assert raw_kernels(OrMap(Id())) == {}


class TestFusePlan:
    def test_map_chain_collapses_to_one_fused_node(self):
        plan = compile_plan(FUSED_CHAIN)
        fused = fuse_plan(plan)
        assert fused is not plan
        assert fused.nodes[fused.root].op == "fused"
        assert [s[0] for s in fused.nodes[fused.root].spec] == ["map"] * 3
        assert "fused[set]" in fused.describe()

    def test_mixed_spine_fuses_map_mu_and_coercions(self):
        q = Compose(bag_unique(), Compose(settobag(), Compose(SetMu(), SetMap(Id()))))
        fused = fuse_plan(compile_plan(q))
        spec = fused.nodes[fused.root].spec
        assert [s[0] for s in spec] == ["map", "mu", "retag", "unique"]

    def test_unfusible_plan_returned_unchanged(self):
        plan = compile_plan(SetMap(OrMap(Id())))  # body has no raw kernel
        assert fuse_plan(plan) is plan
        assert fusible_spans(plan) == []

    def test_fuse_is_cached_and_idempotent(self):
        plan = compile_plan(FUSED_CHAIN)
        fused = fuse_plan(plan)
        assert fuse_plan(plan) is fused
        assert fuse_plan(fused) is fused

    def test_fused_plan_pickles_and_executes(self):
        fused = fuse_plan(compile_plan(FUSED_CHAIN))
        clone = pickle.loads(pickle.dumps(fused))
        assert clone.bind()(vset(1, 2)) == vset(8, 16)


class TestFusedBackend:
    def test_registered(self):
        assert "fused" in BACKENDS
        eng = Engine()
        assert eng.run(FUSED_CHAIN, vset(1, 2, 3), backend="fused") == vset(8, 16, 24)

    @given(pair=typed_orset_values(max_depth=3, max_width=3), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_random_programs_match_eager(self, pair, seed):
        value, t = pair
        program, _out = random_lossless_morphism(t, random.Random(seed), depth=4)
        eng = Engine()
        assert eng.run(program, value, backend="fused") == eng.run(
            program, value, backend="eager"
        )

    def test_error_propagation_matches_eager(self):
        eng = Engine()
        for program, bad in (
            (FUSED_CHAIN, vorset(1, 2)),
            (Compose(SetMu(), SetMap(Id())), vset(1, 2)),
            (Compose(bag_unique(), settobag()), vorset(1)),
        ):
            with pytest.raises(OrNRATypeError) as eager_err:
                eng.run(program, bad, backend="eager")
            with pytest.raises(OrNRATypeError) as fused_err:
                eng.run(program, bad, backend="fused")
            assert str(fused_err.value) == str(eager_err.value)

    def test_transient_duplicates_do_not_become_multiplicities(self):
        # map collapses everything to one atom; the set->bag coercion
        # must not observe the transient duplicates as multiplicity 3.
        q = Compose(settobag(), SetMap(Compose(const(0, "int"), Bang())))
        eng = Engine()
        assert eng.run(q, vset(1, 2, 3), backend="fused") == vbag(0)

    def test_mixed_atom_and_boxed_elements_fall_back_per_element(self):
        q = SetMap(Compose(plus(), PairOf(Id(), Id())))
        eng = Engine()
        mixed = vset(1, 2)  # raw path
        assert eng.run(q, mixed, backend="fused") == vset(2, 4)
        with pytest.raises(OrNRATypeError):  # boxed fallback raises like eager
            eng.run(SetMap(DOUBLE), vset(vpair(1, 2)), backend="fused")

    def test_auto_routes_wide_flat_spine_to_fused(self):
        eng = Engine()
        choice = eng.choose_backend(FUSED_CHAIN, vset(*range(500)))
        assert choice.backend == "fused"
        assert "fused" in choice.reason

    def test_explain_reports_fusion(self):
        eng = Engine()
        out = eng.explain(FUSED_CHAIN, value=vset(*range(500)))
        assert "fusion: 1 spine stage(s) collapse into 1 fused kernel(s)" in out
        assert "backend: fused" in out
