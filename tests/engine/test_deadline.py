"""Deadlines, cooperative checkpoints, and the supervision policies.

The robustness layer's timing contract: a request carrying a
:class:`~repro.engine.deadline.Deadline` fails with
:class:`~repro.errors.DeadlineExceeded` at the engine's next cooperative
checkpoint — in every backend's evaluation loop — instead of wedging a
worker thread.  Alongside it, the policy objects the process backend's
supervised recovery is built from: the seeded-backoff
:class:`~repro.engine.supervisor.Supervisor` and the
:class:`~repro.engine.supervisor.CircuitBreaker`.
"""

from __future__ import annotations

import pytest

from repro import engine as E
from repro.engine import (
    BACKENDS,
    CircuitBreaker,
    Deadline,
    Supervisor,
    checkpoint,
    current_deadline,
    deadline_scope,
)
from repro.engine.plan import compile_plan
from repro.errors import DeadlineExceeded
from repro.io import run_json, run_json_many, run_text, value_to_json
from repro.lang.morphisms import Compose, Id, PairOf
from repro.lang.orset_ops import OrToSet
from repro.lang.primitives import plus
from repro.lang.set_ops import SetMap, SetMu
from repro.values.values import vorset, vset

DOUBLE = Compose(plus(), PairOf(Id(), Id()))


class TestDeadlineObject:
    def test_after_and_remaining(self):
        d = Deadline.after(60.0)
        assert 0.0 < d.remaining() <= 60.0
        assert not d.expired()

    def test_expired_deadline(self):
        d = Deadline.after(0.0)
        assert d.expired()
        assert d.remaining() == 0.0
        with pytest.raises(DeadlineExceeded):
            d.check("unit test")

    def test_scope_sets_and_restores(self):
        assert current_deadline() is None
        outer = Deadline.after(60.0)
        inner = Deadline.after(30.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_scope_none_clears_inherited_deadline(self):
        with deadline_scope(Deadline.after(0.0)):
            with deadline_scope(None):
                assert current_deadline() is None
                checkpoint("cleared scope")  # must not raise

    def test_checkpoint_is_noop_without_deadline(self):
        checkpoint("no ambient deadline")

    def test_checkpoint_names_the_site(self):
        with deadline_scope(Deadline.after(0.0)):
            with pytest.raises(DeadlineExceeded, match="during symbolic probe"):
                checkpoint("symbolic probe")


class TestBackendCheckpoints:
    """An already-expired deadline fails in every backend's loop."""

    @pytest.mark.parametrize("name", ["eager", "streaming", "parallel", "fused"])
    def test_execute_raises_under_expired_deadline(self, name):
        plan = compile_plan(Compose(SetMu(), SetMap(OrToSet())))
        value = vset(vorset(1, 2), vorset(3, 4))
        backend = BACKENDS[name]
        assert backend.execute(plan, value)  # sanity: runs fine unbounded
        with deadline_scope(Deadline.after(0.0)):
            with pytest.raises(DeadlineExceeded):
                backend.execute(plan, value)

    def test_engine_dispatch_checkpoint(self):
        with deadline_scope(Deadline.after(0.0)):
            with pytest.raises(DeadlineExceeded):
                E.run(SetMap(DOUBLE), vset(1, 2, 3))

    def test_symbolic_world_query_raises(self):
        from repro.core.costs import tight_family

        x, _t = tight_family(6)
        eng = E.Engine()
        assert eng.count_worlds(Id(), x, backend="symbolic") > 1  # sanity
        with deadline_scope(Deadline.after(0.0)):
            with pytest.raises(DeadlineExceeded):
                eng.certain(Id(), x, backend="symbolic")

    def test_result_identical_when_deadline_is_generous(self):
        plan_input = vset(vorset(1, 2), vorset(3, 4))
        program = Compose(SetMu(), SetMap(OrToSet()))
        unbounded = E.run(program, plan_input)
        with deadline_scope(Deadline.after(60.0)):
            assert E.run(program, plan_input) == unbounded


class TestIoTimeouts:
    def test_run_text_timeout(self):
        with pytest.raises(DeadlineExceeded):
            run_text("map(id)", "{1, 2, 3}", timeout=0.0)

    def test_run_json_timeout(self):
        payload = value_to_json(vset(1, 2, 3))
        with pytest.raises(DeadlineExceeded):
            run_json("map(id)", payload, timeout=0.0)

    def test_run_json_many_timeout(self):
        payload = value_to_json(vset(1, 2, 3))
        with pytest.raises(DeadlineExceeded):
            run_json_many("map(id)", [payload, payload], timeout=0.0)

    def test_no_timeout_still_works(self):
        payload = value_to_json(vset(1, 2))
        assert run_json("map(id)", payload) == payload

    def test_generous_timeout_returns_result(self):
        payload = value_to_json(vset(1, 2))
        assert run_json("map(id)", payload, timeout=60.0) == payload


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, reset_after=10.0, clock=clock)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_heals_or_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_after=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        assert breaker.state == "half-open" and breaker.allow()
        # A failed probe re-opens for a fresh window...
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(5.0)
        # ...and a successful probe closes the breaker for good.
        breaker.record_success()
        assert breaker.state == "closed"


class TestSupervisor:
    def test_backoff_grows_and_caps(self):
        sup = Supervisor(restarts=5, base_delay=0.1, max_delay=0.4, seed=7)
        delays = [sup.backoff(i) for i in range(5)]
        # Jitter is in [0.5, 1.0): each delay is bounded by the raw curve.
        raw = [0.1, 0.2, 0.4, 0.4, 0.4]
        for got, bound in zip(delays, raw, strict=True):
            assert bound * 0.5 <= got < bound

    def test_seeded_schedule_is_deterministic(self):
        a = Supervisor(seed=42)
        b = Supervisor(seed=42)
        assert [a.backoff(i) for i in range(4)] == [b.backoff(i) for i in range(4)]

    def test_wait_uses_injected_sleep(self):
        slept: list[float] = []
        sup = Supervisor(restarts=1, base_delay=0.25, sleep=slept.append)
        sup.wait(0)
        assert slept and slept[0] == pytest.approx(sup_backoff_bound(sup, 0), abs=0.25)


def sup_backoff_bound(sup: Supervisor, attempt: int) -> float:
    return min(sup.max_delay, sup.base_delay * (2**attempt))


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now
