"""Tests for the sharded parallel backend.

The headline property: ``ParallelBackend`` output is structurally equal
to ``EagerBackend`` output on random programs (values from
``tests/strategies.py``, programs from :mod:`repro.morphgen`), whatever
the pool width or chunking.  The unit tests pin each spine stage —
sharded map, mu flattening, coercion retagging, transient-duplicate
handling — and the eager fallback.
"""

import random
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine
from repro.engine import BACKENDS, Engine, ParallelBackend
from repro.engine.plan import compile_plan
from repro.errors import OrNRATypeError
from repro.gen import random_orset_value
from repro.lang.bag_ops import bag_unique, settobag
from repro.lang.morphisms import Bang, Compose, Id, PairOf
from repro.lang.orset_ops import Alpha, OrMap, OrToSet, SetToOr
from repro.lang.primitives import plus
from repro.lang.set_ops import SetMap, SetMu
from repro.morphgen import random_lossless_morphism
from repro.values.values import vbag, vorset, vset

from tests.strategies import typed_orset_values

DOUBLE = Compose(plus(), PairOf(Id(), Id()))


class TestRegistration:
    def test_registered_in_backends(self):
        assert isinstance(BACKENDS["parallel"], ParallelBackend)

    def test_engine_accepts_parallel(self):
        assert engine.run(Id(), vset(1, 2), backend="parallel") == vset(1, 2)


class TestStructuralEqualityWithEager:
    @settings(max_examples=60, deadline=None)
    @given(typed_orset_values(max_depth=3, max_width=3, min_width=1), st.integers(0, 10_000))
    def test_random_programs_from_strategies(self, pair, seed):
        value, t = pair
        f, _ = random_lossless_morphism(t, random.Random(seed), depth=4)
        eng = Engine()
        assert eng.run(f, value, backend="parallel") == eng.run(f, value, backend="eager")

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_random_programs_from_morphgen(self, seed):
        rng = random.Random(seed)
        v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
        f, _ = random_lossless_morphism(t, rng, depth=4)
        eng = Engine()
        assert eng.run(f, v, backend="parallel") == f(v), f.describe()

    def test_single_worker_backend_agrees(self):
        # max_workers=1 disables the pool entirely: single inline shard.
        backend = ParallelBackend(max_workers=1)
        rng = random.Random(11)
        eng = Engine()
        eng.backends["serial-parallel"] = backend
        for _ in range(25):
            v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
            f, _ = random_lossless_morphism(t, rng, depth=4)
            assert eng.run(f, v, backend="serial-parallel") == f(v)

    def test_tiny_chunks_agree(self):
        # min_shard=1 with many workers forces maximal sharding.
        backend = ParallelBackend(max_workers=8, min_shard=1)
        q = Compose(SetMu(), SetMap(SetMap(DOUBLE)))
        v = vset(vset(1, 2), vset(3, 4), vset(5))
        plan = compile_plan(q)
        assert backend.execute(plan, v) == q(v)
        backend.close()


class TestSpineStages:
    def test_sharded_map(self):
        q = SetMap(DOUBLE)
        v = vset(*range(50))
        assert engine.run(q, v, backend="parallel") == q(v)

    def test_mu_flattening(self):
        q = Compose(SetMu(), SetMap(SetMap(DOUBLE)))
        v = vset(*(vset(3 * i, 3 * i + 1, 3 * i + 2) for i in range(10)))
        assert engine.run(q, v, backend="parallel") == q(v)

    def test_coercion_chain(self):
        q = Compose(OrToSet(), SetToOr())
        v = vset(1, 2, 2, 3)
        assert engine.run(q, v, backend="parallel", optimize=False) == q(v)

    def test_settobag_dedups_transient_shard_duplicates(self):
        # map over a set may emit colliding outputs across shards; the
        # set->bag coercion must not expose them as multiplicities.
        from repro.lang.bag_ops import SetToBag

        q = Compose(SetToBag(), SetMap(Bang()))
        v = vset(*range(20))
        assert q(v) == vbag(None)
        assert engine.run(q, v, backend="parallel", optimize=False) == q(v)

    def test_bag_unique_dedups_across_shards(self):
        q = Compose(bag_unique(), settobag())
        v = vset(*range(20))
        assert engine.run(q, v, backend="parallel") == q(v)

    def test_eager_fallback_for_alpha(self):
        q = Compose(OrMap(SetMap(DOUBLE)), Alpha())
        v = vset(vorset(1, 2), vorset(3, 4))
        assert engine.run(q, v, backend="parallel") == q(v)

    def test_mismatched_shard_kind_raises(self):
        with pytest.raises(OrNRATypeError):
            engine.run(
                Compose(SetMu(), SetToOr()), vset(vset(1)), backend="parallel"
            )

    def test_map_body_errors_propagate_from_workers(self):
        backend = ParallelBackend(max_workers=4, min_shard=1)
        eng = Engine()
        eng.backends["p"] = backend
        with pytest.raises(OrNRATypeError):
            eng.run(SetMap(plus()), vset(*range(20)), backend="p")
        backend.close()

    def test_interned_execution(self):
        eng = Engine()
        q = Compose(SetMap(DOUBLE), SetMap(DOUBLE))
        v = vset(*range(30))
        out = eng.run(q, v, backend="parallel")
        assert out == q(v)
        assert eng.interner.is_interned(out)


class TestPool:
    def test_close_and_reopen(self):
        backend = ParallelBackend(max_workers=4, min_shard=1)
        plan = compile_plan(SetMap(DOUBLE))
        v = vset(*range(16))
        assert backend.execute(plan, v) == SetMap(DOUBLE)(v)
        backend.close()
        assert backend._pool is None
        assert backend.execute(plan, v) == SetMap(DOUBLE)(v)
        backend.close()

    def test_sharding_covers_all_elements(self):
        backend = ParallelBackend(max_workers=4, min_shard=1)
        chunks = backend._shard(range(11))
        flat = [e for chunk in chunks for e in chunk]
        assert flat == list(range(11))
        assert len(chunks) > 1

    def test_possibilities_matches_eager(self):
        eng = Engine()
        v = vset(vorset(1, 2), vorset(3))
        q = SetToOr()
        assert set(eng.possibilities(q, v, backend="parallel")) == set(
            eng.possibilities(q, v, backend="eager")
        )


class TestBreakEvenGating:
    """The BENCH_parallel 0.78x regression: trivial per-element work used
    to shard anyway and lose to eager on chunk bookkeeping and pool
    dispatch.  Below the cost model's break-even the backend now keeps
    one inline shard (and fused spines run as one columnar kernel)."""

    CHAIN = Compose(SetMap(DOUBLE), Compose(SetMap(DOUBLE), SetMap(DOUBLE)))

    def test_shard_refuses_below_break_even(self):
        backend = ParallelBackend(max_workers=4, min_shard=1, break_even_work=4)
        assert backend._shard(range(500), elem_work=1) == [list(range(500))]
        assert len(backend._shard(range(500), elem_work=8)) > 1

    def test_shard_ungated_without_estimate(self):
        backend = ParallelBackend(max_workers=4, min_shard=1, break_even_work=4)
        assert len(backend._shard(range(500))) > 1

    def test_parallel_not_slower_than_eager_on_shard_workload(self):
        eng = Engine()
        xs = vset(*range(500))
        assert eng.run(self.CHAIN, xs, backend="parallel") == eng.run(
            self.CHAIN, xs, backend="eager"
        )

        def best(fn, repeats=3):
            b = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                b = min(b, time.perf_counter() - start)
            return b

        t_eager = best(lambda: eng.run(self.CHAIN, xs, backend="eager", intern=False))
        t_parallel = best(
            lambda: eng.run(self.CHAIN, xs, backend="parallel", intern=False)
        )
        # The pre-fix backend measured ~1.3x of eager here; the fused
        # inline kernel makes this a win, 1.2 absorbs CI timing noise.
        assert t_parallel <= t_eager * 1.2, (t_parallel, t_eager)
