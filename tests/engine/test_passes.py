"""Tests for the pass-based optimizer: individual passes, pipelines,
toggleability, and the new rule groups."""

from repro.core.normalize import Normalize
from repro.engine.passes import (
    CANONICALIZE,
    COND_PUSHDOWN,
    CONDITIONALS,
    DEFAULT_PASSES,
    IDENTITY_ELIMINATION,
    INTERACTION,
    MAP_FUSION,
    NORMALIZE_AWARE,
    PROJECTION,
    Pipeline,
    default_pipeline,
    morphism_cost,
    optimize_morphism,
)
from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Id,
    PairOf,
    Proj1,
    Proj2,
    always,
)
from repro.lang.orset_ops import Alpha, OrMap, OrMu, OrRho2, OrToSet, SetToOr
from repro.lang.primitives import plus
from repro.lang.set_ops import SetMap
from repro.values.values import vorset, vpair

DOUBLE = Compose(plus(), PairOf(Id(), Id()))


class TestIndividualPasses:
    def test_fusion_pass_alone_fuses_maps(self):
        m = Compose(SetMap(plus()), SetMap(plus()))
        out = MAP_FUSION.run(m)
        assert out == SetMap(Compose(plus(), plus()))

    def test_fusion_pass_alone_leaves_identities(self):
        m = Compose(Id(), DOUBLE)
        assert MAP_FUSION.run(m) == m
        assert IDENTITY_ELIMINATION.run(m) == DOUBLE

    def test_projection_pass_eliminates_dead_pair_component(self):
        # pi_1 o ((f, g) o h): g is dead even though the pairing is
        # buried inside the chain.
        m = Compose(Proj1(), Compose(PairOf(plus(), Bang()), Proj2()))
        out = PROJECTION.run(m)
        assert out == Compose(plus(), Proj2())

    def test_interaction_pass_rewrites_alpha_diagram(self):
        m = Compose(OrMap(SetMap(DOUBLE)), Alpha())
        out = INTERACTION.run(m)
        assert out == Compose(Alpha(), SetMap(OrMap(DOUBLE)))


class TestConditionals:
    def test_constant_true_predicate_folds(self):
        m = Cond(always(True), Proj1(), Proj2())
        assert CONDITIONALS.run(m) == Proj1()

    def test_constant_false_predicate_folds(self):
        m = Cond(always(False), Proj1(), Proj2())
        assert CONDITIONALS.run(m) == Proj2()

    def test_common_suffix_factors_out(self):
        from repro.lang.primitives import predicate
        from repro.types.kinds import INT
        from repro.values.values import atom

        even = predicate("even", lambda v: v.value % 2 == 0, INT)
        widen = PairOf(Id(), Id())
        narrow = PairOf(Id(), always(1))
        m = Cond(even, Compose(plus(), widen), Compose(plus(), narrow))
        out = CONDITIONALS.run(m)
        assert out == Compose(plus(), Cond(even, widen, narrow))
        for v in (atom(4), atom(3)):
            assert out(v) == m(v)

    def test_cond_pushdown_not_default_but_sound(self):
        swap = PairOf(Proj2(), Proj1())
        m = Compose(Cond(Proj1(), Proj1(), Proj2()), swap)
        assert all(p.name != COND_PUSHDOWN.name for p in DEFAULT_PASSES)
        pushed = COND_PUSHDOWN.run(m)
        assert isinstance(pushed, Cond)
        for v in (vpair(1, True), vpair(2, False)):
            assert pushed(v) == m(v)


class TestNormalizeAware:
    def test_normalize_absorbs_or_mu(self):
        m = Compose(Normalize(), OrMu())
        assert NORMALIZE_AWARE.run(m) == Normalize()
        v = vorset(vorset(vpair(1, vorset(2, 3))))
        assert NORMALIZE_AWARE.run(m)(v) == m(v)

    def test_normalize_absorbs_or_rho2(self):
        m = Compose(Normalize(), OrRho2())
        assert NORMALIZE_AWARE.run(m) == Normalize()
        v = vpair(1, vorset(2, 3))
        assert NORMALIZE_AWARE.run(m)(v) == m(v)

    def test_normalize_idempotent(self):
        inner = Normalize()
        m = Compose(Normalize(), inner)
        assert NORMALIZE_AWARE.run(m) == inner

    def test_declared_input_type_blocks_rewrite(self):
        from repro.types.parse import parse_type

        declared = Normalize(parse_type("<int>"))
        m = Compose(declared, OrMu())
        assert NORMALIZE_AWARE.run(m) == m

    def test_orset_set_roundtrip_is_identity(self):
        assert NORMALIZE_AWARE.run(Compose(OrToSet(), SetToOr())) == Id()
        assert NORMALIZE_AWARE.run(Compose(SetToOr(), OrToSet())) == Id()


class TestPipeline:
    def test_default_pipeline_matches_lang_optimize(self):
        from repro.lang.optimize import optimize

        m = Compose(OrMap(SetMap(DOUBLE)), Compose(Alpha(), SetMap(Id())))
        assert default_pipeline().run(m) == optimize(m)

    def test_without_disables_a_pass(self):
        m = Compose(SetMap(plus()), SetMap(plus()))
        crippled = default_pipeline().without("fusion")
        assert crippled.run(m) == m
        assert default_pipeline().run(m) == SetMap(Compose(plus(), plus()))

    def test_with_pass_appends(self):
        extended = default_pipeline().with_pass(COND_PUSHDOWN)
        assert extended.passes[-1] is COND_PUSHDOWN

    def test_fired_records_rule_names(self):
        pipeline = default_pipeline()
        pipeline.run(Compose(OrMap(SetMap(DOUBLE)), Alpha()))
        assert "alpha_diagram" in pipeline.fired

    def test_default_never_grows_cost(self):
        m = Compose(OrMap(SetMap(DOUBLE)), Alpha())
        assert morphism_cost(optimize_morphism(m)) <= morphism_cost(m)

    def test_canonicalize_right_nests(self):
        m = Compose(Compose(Proj1(), Proj2()), plus())
        out = Pipeline((CANONICALIZE,)).run(m)
        assert out == Compose(Proj1(), Compose(Proj2(), plus()))
