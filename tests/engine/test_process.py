"""Tests for the multiprocess backend: transport, fallbacks, selection.

Conformance with the other backends is covered by
``test_backend_conformance.py``; here we pin the process-specific
machinery — pickle-safe plan transport with worker-side caching, the
``run_values`` batch hook behind ``Engine.run_many``, graceful
degradation on unpicklable plans, and the cost model's process-vs-thread
decision.
"""

from __future__ import annotations

import pytest

from repro import engine
from repro.core.costs import tight_family
from repro.core.normalize import Normalize
from repro.engine import BACKENDS, Engine, ProcessBackend
from repro.engine.cost_model import WIDE_SPINE, select_backend
from repro.engine.plan import compile_plan
from repro.errors import OrNRATypeError
from repro.lang.morphisms import Compose, Id, PairOf
from repro.lang.orset_ops import OrToSet
from repro.lang.primitives import plus, predicate
from repro.lang.set_ops import SetMap, SetMu
from repro.types.kinds import INT
from repro.values.values import vorset, vset

DOUBLE = Compose(plus(), PairOf(Id(), Id()))


@pytest.fixture(scope="module")
def pooled() -> Engine:
    """An engine whose process backend genuinely crosses the pool."""
    eng = Engine()
    eng.backends["process"] = ProcessBackend(max_workers=2, min_shard=4)
    return eng


class TestRegistration:
    def test_registered_in_backends(self):
        assert isinstance(BACKENDS["process"], ProcessBackend)

    def test_engine_accepts_process(self):
        assert engine.run(Id(), vset(1, 2), backend="process") == vset(1, 2)

    def test_repl_accepts_process(self):
        from repro.repl import Repl

        repl = Repl()
        assert repl.eval_line("backend process") == "backend = process"
        repl.eval_line("let xs = {1, 2, 3}")
        assert repl.eval_line("apply map(id) xs").startswith("{1, 2, 3}")


class TestRemoteExecution:
    def test_map_stage_crosses_the_pool(self, pooled):
        backend = pooled.backends["process"]
        before = backend.remote_chunks
        xs = vset(*range(100))
        assert pooled.run(SetMap(DOUBLE), xs, backend="process") == pooled.run(
            SetMap(DOUBLE), xs, backend="eager"
        )
        assert backend.remote_chunks > before

    def test_worker_errors_propagate(self, pooled):
        with pytest.raises(OrNRATypeError):
            pooled.run(SetMap(plus()), vset(*range(50)), backend="process")

    def test_worker_plan_cache_reuses_payload(self, pooled):
        backend = pooled.backends["process"]
        xs = vset(*range(64))
        first = pooled.run(SetMap(DOUBLE), xs, backend="process")
        again = pooled.run(SetMap(DOUBLE), xs, backend="process")
        assert first == again
        # The coordinator caches one payload per plan object.
        plan = pooled.compile(SetMap(DOUBLE), True)
        assert backend._payload(plan) is backend._payload(plan)

    def test_normalize_through_workers(self, pooled):
        x, _t = tight_family(6)
        assert pooled.run(Normalize(), x, backend="process") == pooled.run(
            Normalize(), x, backend="eager"
        )


class TestRunValuesBatchHook:
    def test_run_many_fans_whole_inputs(self, pooled):
        backend = pooled.backends["process"]
        before = backend.remote_chunks
        batch = [vset(*range(i, i + 30)) for i in range(8)]
        out = pooled.run_many(SetMap(DOUBLE), batch, backend="process")
        assert out == [pooled.run(SetMap(DOUBLE), v, backend="eager") for v in batch]
        assert backend.remote_chunks > before

    def test_order_and_dedupe_preserved(self, pooled):
        batch = [vset(1, 2), vset(3, 4), vset(1, 2), vset(5, 6), vset(3, 4)]
        out = pooled.run_many(SetMap(DOUBLE), batch, backend="process")
        assert out == [pooled.run(SetMap(DOUBLE), v, backend="eager") for v in batch]
        assert out[0] == out[2] and out[1] == out[4]

    def test_single_input_stays_local(self, pooled):
        out = pooled.run_many(SetMap(DOUBLE), [vset(1, 2, 3)], backend="process")
        assert out == [pooled.run(SetMap(DOUBLE), vset(1, 2, 3), backend="eager")]

    def test_max_workers_bounds_process_fanout(self, pooled):
        # Regression: run_many's max_workers must cap the chunk count
        # handed to the process pool, not just the thread pool.
        backend = pooled.backends["process"]
        batch = [vset(*range(i, i + 20)) for i in range(10)]
        before = backend.remote_chunks
        out = pooled.run_many(SetMap(DOUBLE), batch, backend="process", max_workers=2)
        assert out == [pooled.run(SetMap(DOUBLE), v, backend="eager") for v in batch]
        assert backend.remote_chunks - before <= 2
        # max_workers=1 means strictly sequential: no pool at all.
        before = backend.remote_chunks
        out = pooled.run_many(SetMap(DOUBLE), batch, backend="process", max_workers=1)
        assert out == [pooled.run(SetMap(DOUBLE), v, backend="eager") for v in batch]


class TestGracefulDegradation:
    def test_unpicklable_plan_falls_back_to_eager(self, pooled):
        backend = pooled.backends["process"]
        before = backend.pickle_fallbacks
        evil = SetMap(predicate("evil", lambda v: True, INT))
        out = pooled.run(evil, vset(*range(50)), backend="process")
        assert out == pooled.run(evil, vset(*range(50)), backend="eager")
        assert backend.pickle_fallbacks > before

    def test_single_worker_backend_is_inline(self):
        eng = Engine()
        eng.backends["process"] = ProcessBackend(max_workers=1)
        xs = vset(*range(40))
        assert eng.run(SetMap(DOUBLE), xs, backend="process") == eng.run(
            SetMap(DOUBLE), xs, backend="eager"
        )

    def test_warm_starts_workers_up_front(self):
        backend = ProcessBackend(max_workers=2, min_shard=4)
        backend.warm()
        try:
            pool = backend._executor()
            assert pool is not None and len(pool._processes) == 2
        finally:
            backend.close()

    def test_warm_on_inline_backend_is_a_noop(self):
        backend = ProcessBackend(max_workers=1)
        backend.warm()  # no pool to start
        backend.close()

    def test_async_engine_process_backend_warms_on_start(self):
        import asyncio

        from repro.io import value_to_json
        from repro.serve import AsyncEngine
        from repro.values.values import vorset

        async def main():
            async with AsyncEngine(backend="process") as engine:
                return await engine.run_json(
                    "normalize", value_to_json(vorset(1, 2))
                )

        assert asyncio.run(main()) == value_to_json(vorset(1, 2))

    def test_close_then_reuse_reopens_pool(self, pooled):
        backend = pooled.backends["process"]
        backend.close()
        xs = vset(*range(80))
        assert pooled.run(SetMap(DOUBLE), xs, backend="process") == pooled.run(
            SetMap(DOUBLE), xs, backend="eager"
        )

    def test_stats_shape(self, pooled):
        stats = pooled.backends["process"].stats()
        for key in ("remote_chunks", "pickle_fallbacks", "pool_fallbacks", "max_workers"):
            assert key in stats


class TestSelection:
    def test_cpu_bound_wide_spine_selects_process(self):
        x, _t = tight_family(WIDE_SPINE + 8)
        plan = compile_plan(Compose(SetMu(), SetMap(OrToSet())))
        choice = select_backend(plan, x, available={"eager", "parallel", "process"})
        assert choice.backend == "process"
        assert choice.shards is not None
        assert "CPU-bound" in choice.reason

    def test_direct_callers_never_get_process_by_default(self):
        # select_backend without `available` keeps the pre-process
        # contract: eager/streaming/parallel only.
        x, _t = tight_family(WIDE_SPINE + 8)
        plan = compile_plan(Compose(SetMu(), SetMap(OrToSet())))
        choice = select_backend(plan, x)
        assert choice.backend == "parallel"

    def test_engine_auto_reaches_process(self):
        eng = Engine()
        x, _t = tight_family(WIDE_SPINE + 8)
        choice = eng.choose_backend(Compose(SetMu(), SetMap(OrToSet())), x)
        assert choice.backend == "process"
        assert "CPU-bound" in choice.reason

    def test_small_inputs_still_eager(self):
        eng = Engine()
        choice = eng.choose_backend(SetMap(DOUBLE), vset(1, 2, 3))
        assert choice.backend == "eager"

    def test_restricted_registry_never_names_missing_backends(self):
        # Regression: `available` must gate every non-eager choice, not
        # just process — a registry without parallel/streaming falls
        # back to eager instead of a KeyError in Engine._execute.
        x, _t = tight_family(WIDE_SPINE + 8)
        plan = compile_plan(Compose(SetMu(), SetMap(OrToSet())))
        for names in ({"eager"}, {"eager", "process"}):
            choice = select_backend(plan, x, available=names)
            assert choice.backend in names
        choice = select_backend(plan, x, existential=True, available={"eager"})
        assert choice.backend == "eager"
