"""Tests for engine.run(): backends, equivalence with direct
interpretation, interning integration and the possibilities stream."""

import random

import pytest

from repro import engine
from repro.core.normalize import Normalize, possibilities
from repro.engine import Engine
from repro.errors import OrNRATypeError
from repro.gen import random_orset_value
from repro.lang.bag_ops import bag_unique, settobag
from repro.lang.morphisms import Compose, Id, PairOf, Proj1
from repro.lang.orset_ops import Alpha, OrMap, OrToSet, SetToOr
from repro.lang.primitives import plus
from repro.lang.set_ops import SetMap, SetMu
from repro.lang.stdlib import select
from repro.lang.primitives import predicate
from repro.morphgen import random_lossless_morphism
from repro.types.kinds import INT
from repro.values.values import vbag, vorset, vpair, vset

DOUBLE = Compose(plus(), PairOf(Id(), Id()))


@pytest.fixture(params=["eager", "streaming", "parallel"])
def backend(request):
    return request.param


class TestEquivalenceWithDirectInterpretation:
    def test_structural_query(self, backend):
        q = Compose(OrMap(SetMap(DOUBLE)), Alpha())
        v = vset(vorset(1, 2), vorset(3, 4))
        assert engine.run(q, v, backend=backend) == q(v)

    def test_random_programs(self, backend):
        rng = random.Random(23)
        eng = Engine()
        for _ in range(50):
            v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
            f, _ = random_lossless_morphism(t, rng, depth=4)
            assert eng.run(f, v, backend=backend) == f(v), f.describe()

    def test_unoptimized_and_uninterned(self, backend):
        q = Compose(SetMu(), SetMap(SetMap(DOUBLE)))
        v = vset(vset(1, 2), vset(3))
        expected = q(v)
        assert engine.run(q, v, backend=backend, optimize=False) == expected
        assert engine.run(q, v, backend=backend, intern=False) == expected

    def test_normalize_program(self, backend):
        v = vpair(vset(vorset(1, 2), vorset(3)), vorset(1, 2))
        assert engine.run(Normalize(), v, backend=backend) == Normalize()(v)

    def test_python_scalars_are_coerced(self, backend):
        assert engine.run(DOUBLE, 2, backend=backend) == DOUBLE(2)

    def test_type_errors_propagate(self, backend):
        with pytest.raises(OrNRATypeError):
            engine.run(Alpha(), vorset(1), backend=backend)


class TestStreamingSpine:
    def test_filter_pipeline(self, backend):
        keep = predicate("big", lambda v: v.value >= 2, INT)
        q = Compose(SetMap(DOUBLE), select(keep))
        v = vset(1, 2, 3)
        assert engine.run(q, v, backend=backend) == q(v)

    def test_coercion_chain(self, backend):
        q = Compose(OrToSet(), SetToOr())
        v = vset(1, 2, 2, 3)
        assert engine.run(q, v, backend=backend, optimize=False) == q(v)

    def test_bag_unique_stream(self):
        q = Compose(bag_unique(), settobag())
        v = vset(1, 2)
        assert engine.run(q, v, backend="streaming") == q(v)

    def test_settobag_dedups_transient_stream_duplicates(self):
        # map over a set may stream colliding outputs; converting the
        # (conceptually deduplicated) set to a bag must not expose them
        # as multiplicities.
        from repro.lang.bag_ops import SetToBag
        from repro.lang.morphisms import Bang

        q = Compose(SetToBag(), SetMap(Bang()))
        v = vset(1, 2, 3)
        assert q(v) == vbag(None)
        assert engine.run(q, v, backend="streaming", optimize=False) == q(v)

    def test_mismatched_stream_kind_raises(self):
        with pytest.raises(OrNRATypeError):
            engine.run(Compose(SetMu(), SetToOr()), vset(vset(1)), backend="streaming")


class TestEngineObject:
    def test_plan_cache_reused(self):
        eng = Engine()
        q = OrMap(DOUBLE)
        assert eng.compile(q) is eng.compile(q)
        assert eng.compile(q, optimize=False) is not eng.compile(q)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Engine().run(Id(), vset(1), backend="warp")

    def test_interned_results_are_canonical(self):
        eng = Engine()
        out1 = eng.run(OrMap(DOUBLE), vorset(1, 2))
        out2 = eng.run(OrMap(DOUBLE), vorset(1, 2))
        assert out1 is out2

    def test_repeated_normalize_hits_memo(self):
        eng = Engine()
        v = vpair(vset(vorset(1, 2), vorset(3)), vorset(1, 2))
        eng.run(Normalize(), v)
        eng.run(Normalize(), v)
        assert eng.interner.normalize_hits >= 1

    def test_clear_caches(self):
        eng = Engine()
        eng.run(OrMap(DOUBLE), vorset(1, 2))
        eng.clear_caches()
        assert len(eng.interner) == 0

    def test_possibilities_stream(self):
        eng = Engine()
        v = vset(vorset(1, 2), vorset(3))
        streamed = set(eng.possibilities(Id(), v))
        assert streamed == set(possibilities(v))

    def test_possibilities_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Engine().possibilities(Id(), vset(1), backend="streming")

    def test_possibilities_respects_intern_flag(self):
        eng = Engine()
        list(eng.possibilities(Id(), vset(vorset(1, 2)), intern=False))
        assert len(eng.interner) == 0

    def test_explain_produces_typed_plan(self):
        from repro.types.parse import parse_type

        eng = Engine()
        text = eng.explain(Compose(OrMap(Proj1()), Alpha()), parse_type("{<int * bool>}"))
        assert "chain" in text and "->" in text

    def test_explain_does_not_annotate_cached_plan(self):
        # Regression: a typed explain must not leak annotations into the
        # shared cached plan (or into a later untyped explain).
        from repro.types.parse import parse_type

        eng = Engine()
        q = Compose(OrMap(Proj1()), Alpha())
        assert "->" in eng.explain(q, parse_type("{<int * bool>}"))
        assert "->" not in eng.explain(q)
        plan = eng.compile(q)
        assert all(n.dom is None and n.cod is None for n in plan.nodes)

    def test_plan_cache_is_lru_bounded(self):
        from repro.lang.primitives import int_binop

        eng = Engine(max_plans=3)
        programs = [OrMap(int_binop(f"op{i}", lambda a, b: a)) for i in range(6)]
        for q in programs:
            eng.compile(q)
        assert len(eng._plans) == 3
        # The most recent programs survive; the oldest were evicted.
        assert (programs[5], True) in eng._plans
        assert (programs[0], True) not in eng._plans


class TestRunMany:
    def test_matches_run_elementwise(self, backend):
        q = Compose(OrMap(SetMap(DOUBLE)), Alpha())
        batch = [vset(vorset(1, 2), vorset(3 + i)) for i in range(6)]
        eng = Engine()
        assert eng.run_many(q, batch, backend=backend) == [
            eng.run(q, v, backend=backend) for v in batch
        ]

    def test_preserves_input_order_with_duplicates(self):
        eng = Engine()
        batch = [vorset(1, 2), vorset(3), vorset(1, 2), vorset(3), vorset(1, 2)]
        results = eng.run_many(OrMap(DOUBLE), batch)
        assert results == [eng.run(OrMap(DOUBLE), v) for v in batch]
        # Duplicates come back as the same interned object.
        assert results[0] is results[2] is results[4]

    def test_empty_batch(self):
        assert Engine().run_many(Id(), []) == []

    def test_sequential_mode(self):
        eng = Engine()
        batch = [vorset(i, i + 1) for i in range(5)]
        assert eng.run_many(OrMap(DOUBLE), batch, max_workers=0) == [
            eng.run(OrMap(DOUBLE), v) for v in batch
        ]

    def test_batch_scoped_interner_pins_nothing(self):
        from repro.engine import Interner

        eng = Engine()
        before = len(eng.interner)
        batch_arena = Interner()
        eng.run_many(OrMap(DOUBLE), [vorset(1, 2)] * 4, interner=batch_arena)
        assert len(eng.interner) == before
        assert len(batch_arena) > 0

    def test_batch_scoped_interner_is_garbage_collected(self):
        # Regression: the cached plan must not pin a batch arena — the
        # bound-closure memo lives on the interner, not on the plan.
        import gc
        import weakref

        from repro.engine import Interner

        eng = Engine()
        q = OrMap(DOUBLE)
        batch_arena = Interner()
        eng.run_many(q, [vorset(1, 2)] * 4, interner=batch_arena)
        plan = eng.compile(q)
        assert all(not isinstance(k, tuple) for k in plan._bound)
        ref = weakref.ref(batch_arena)
        del batch_arena
        gc.collect()
        assert ref() is None

    def test_module_level_run_many(self):
        batch = [vorset(1, 2), vorset(3)]
        assert engine.run_many(OrMap(DOUBLE), batch) == [
            engine.run(OrMap(DOUBLE), v) for v in batch
        ]

    def test_python_scalars_are_coerced(self):
        assert engine.run_many(DOUBLE, [1, 2]) == [DOUBLE(1), DOUBLE(2)]


class TestStreamingPossibilitiesLaziness:
    """Regression: `possibilities` on the streaming backend must yield
    its first value without materializing the full normal form."""

    def _tracking_query(self):
        from repro.lang.primitives import unary_primitive
        from repro.values.values import Atom

        calls = []

        def body(v):
            calls.append(v)
            return Atom("int", v.value + 1)

        return OrMap(unary_primitive("track", body, INT, INT)), calls

    def test_first_value_short_circuits(self):
        q, calls = self._tracking_query()
        eng = Engine()
        it = eng.possibilities(q, vorset(*range(100)), backend="streaming")
        first = next(it)
        assert first is not None
        assert len(calls) < 100

    def test_eager_backend_materializes(self):
        # The contrast case: the base implementation executes first.
        q, calls = self._tracking_query()
        eng = Engine()
        next(eng.possibilities(q, vorset(*range(100)), backend="eager"))
        assert len(calls) == 100

    def test_streamed_set_equals_eager_set(self):
        q = Compose(OrMap(DOUBLE), SetToOr())
        v = vset(*range(10))
        eng = Engine()
        assert set(eng.possibilities(q, v, backend="streaming")) == set(
            eng.possibilities(q, v, backend="eager")
        )

    def test_exhausting_the_stream_matches_normal_form(self):
        from repro.core.normalize import possibilities as eager_possibilities

        eng = Engine()
        v = vset(vorset(1, 2), vorset(3))
        q = Compose(SetToOr(), Id())
        streamed = list(eng.possibilities(q, v, backend="streaming"))
        assert set(streamed) == set(eager_possibilities(q(v)))
        assert len(streamed) == len(set(streamed))
