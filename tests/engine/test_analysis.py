"""The unified plan analysis: adapter equivalence and fact semantics.

The four historical whole-plan predicates — ``cost_model.plan_profile``,
``symbolic.plan_supports_symbolic``, ``passes.fusible_spans`` and
``ProcessBackend.can_transport`` — are now thin adapters over the single
:func:`repro.engine.analysis.plan_facts` record.  Each pre-refactor
implementation is preserved *verbatim* in this file (modulo caching) and
compared against its adapter on randomly generated optimized programs:
the refactor must change zero routing decisions.
"""

import pickle
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalize import Normalize
from repro.engine import Engine, columnar
from repro.engine.analysis import (
    ALPHA_OPS,
    CHEAP_REAL_OPS,
    TRAVERSAL_OPS,
    compute_plan_facts,
    format_facts,
    plan_facts,
)
from repro.engine.cost_model import PlanProfile, plan_profile
from repro.engine.passes import default_pipeline, fusible_spans
from repro.engine.plan import Plan, compile_plan
from repro.engine.process import ProcessBackend
from repro.engine.symbolic import plan_supports_symbolic
from repro.gen import random_orset_value
from repro.lang.morphisms import Compose, Id, Primitive
from repro.lang.orset_ops import Alpha, OrEta, OrMap, OrMu, OrToSet, SetToOr
from repro.lang.primitives import plus, unary_primitive
from repro.lang.set_ops import SetMap, SetMu
from repro.morphgen import random_lossless_morphism
from repro.types.kinds import INT
from repro.values.values import vorset, vset


# -- the pre-refactor predicates, verbatim (caching stripped) -----------------


def legacy_plan_profile(plan: Plan) -> PlanProfile:
    spine_maps = spine_stages = 0
    top = plan.nodes[plan.root]
    steps = top.kids if top.op == "chain" else (plan.root,)
    for idx in steps:
        node = plan.nodes[idx]
        if node.op == "map":
            spine_maps += 1
            spine_stages += 1
        elif node.op == "leaf" and isinstance(node.source, TRAVERSAL_OPS):
            spine_stages += 1
    has_normalize = any(
        node.op == "leaf" and isinstance(node.source, (Normalize,) + ALPHA_OPS)
        for node in plan.nodes
    )
    fused_stages = 0
    if spine_stages:
        fused_stages = max(
            (len(stages) for _start, _stop, stages in legacy_fusible_spans(plan)),
            default=0,
        )
    return PlanProfile(
        spine_maps, spine_stages, has_normalize, len(plan.nodes), fused_stages
    )


def _legacy_body_is_world_preserving(plan: Plan, idx: int) -> bool:
    node = plan.nodes[idx]
    if node.op == "id":
        return True
    if node.op == "leaf" and isinstance(node.source, Normalize):
        return True
    if node.op == "chain":
        return all(_legacy_body_is_world_preserving(plan, kid) for kid in node.kids)
    return False


def legacy_plan_supports_symbolic(plan: Plan) -> bool:
    top = plan.nodes[plan.root]
    steps = list(top.kids) if top.op == "chain" else [plan.root]
    for idx in steps:
        node = plan.nodes[idx]
        if node.op == "id":
            continue
        if node.op == "leaf" and isinstance(
            node.source, CHEAP_REAL_OPS + (Normalize, Alpha)
        ):
            continue
        if (
            node.op == "map"
            and isinstance(node.source, OrMap)
            and _legacy_body_is_world_preserving(plan, node.kids[0])
        ):
            continue
        return False
    return True


def legacy_fusible_spans(plan: Plan) -> list:
    root = plan.nodes[plan.root]
    steps = list(root.kids) if root.op == "chain" else [plan.root]
    spans: list = []
    i = 0
    while i < len(steps):
        stages: list = []
        j = i
        while j < len(steps):
            stage = columnar.stage_of(plan.nodes[steps[j]])
            if stage is None:
                break
            stages.append(stage)
            j += 1
        if len(stages) >= 2:
            spans.append((i, j, stages))
        elif len(stages) == 1 and stages[0][0] == "map":
            if columnar.raw_kernels(stages[0][3]):
                spans.append((i, j, stages))
        i = max(j, i + 1)
    return spans


def legacy_can_transport(plan: Plan) -> bool:
    try:
        pickle.dumps(plan)
    except Exception:
        return False
    return True


def _random_plans(seed: int) -> list[Plan]:
    """Compiled plans for one random program: raw and engine-optimized."""
    rng = random.Random(seed)
    _v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
    f, _ = random_lossless_morphism(t, rng, depth=4)
    return [compile_plan(f), compile_plan(default_pipeline().run(f))]


class TestAdapterEquivalence:
    """Every routing decision matches the pre-refactor predicate exactly."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100_000))
    def test_plan_profile_matches_legacy(self, seed):
        for plan in _random_plans(seed):
            assert plan_profile(plan) == legacy_plan_profile(plan), (
                plan.source.describe()
            )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100_000))
    def test_symbolic_support_matches_legacy(self, seed):
        for plan in _random_plans(seed):
            assert plan_supports_symbolic(plan) == legacy_plan_supports_symbolic(
                plan
            ), plan.source.describe()

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100_000))
    def test_fusible_spans_match_legacy(self, seed):
        for plan in _random_plans(seed):
            assert fusible_spans(plan) == legacy_fusible_spans(plan), (
                plan.source.describe()
            )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 100_000))
    def test_can_transport_matches_legacy(self, seed):
        backend = ProcessBackend(max_workers=1)
        for plan in _random_plans(seed):
            assert backend.can_transport(plan) == legacy_can_transport(plan), (
                plan.source.describe()
            )

    def test_can_transport_rejects_lambda_primitives(self):
        f = SetMap(Primitive("shady", lambda v: v, INT, INT))
        plan = compile_plan(f)
        assert legacy_can_transport(plan) is False
        assert ProcessBackend(max_workers=1).can_transport(plan) is False
        assert plan_facts(plan).transportable is False

    def test_fused_plans_keep_equivalence(self):
        """The predicates agree on fused node arrays too (fuse_plan emits
        kids before parents, same as compile_plan)."""
        from repro.engine.passes import fuse_plan

        f = Compose(OrMu(), Compose(OrMap(plus()), SetToOr()))
        fused = fuse_plan(compile_plan(f))
        assert plan_profile(fused) == legacy_plan_profile(fused)
        assert plan_supports_symbolic(fused) == legacy_plan_supports_symbolic(fused)
        assert fusible_spans(fused) == legacy_fusible_spans(fused)


class TestFactSemantics:
    """The facts themselves mean what the docstrings say."""

    def test_symbolic_spine_is_supported(self):
        plan = compile_plan(Compose(OrMu(), Compose(OrMap(Normalize()), SetToOr())))
        facts = plan_facts(plan)
        assert facts.symbolic_ok
        assert facts.out_kind == "orset"
        assert facts.short_circuit

    def test_plain_map_breaks_symbolic_but_not_transport(self):
        doubler = unary_primitive("double", _double, INT, INT)
        plan = compile_plan(Compose(OrMap(doubler), SetToOr()))
        facts = plan_facts(plan)
        assert not facts.symbolic_ok
        assert facts.transportable
        assert facts.pure

    def test_lambda_body_is_impure(self):
        plan = compile_plan(OrMap(Primitive("shady", lambda v: v, INT, INT)))
        assert not plan_facts(plan).pure

    def test_set_output_has_no_short_circuit(self):
        plan = compile_plan(Compose(OrToSet(), OrMap(Id())))
        facts = plan_facts(plan)
        assert facts.out_kind == "set"
        assert not facts.short_circuit

    def test_leaf_out_kinds(self):
        for m, kind in [(OrEta(), "orset"), (SetMu(), "set"), (OrToSet(), "set")]:
            assert plan_facts(compile_plan(m)).out_kind == kind

    def test_facts_are_cached_on_the_plan(self):
        plan = compile_plan(Compose(OrMu(), OrMap(Normalize())))
        assert plan_facts(plan) is plan_facts(plan)
        assert plan_facts(plan) == compute_plan_facts(plan)

    def test_facts_never_pickle_with_the_plan(self):
        plan = compile_plan(Compose(OrMu(), OrMap(Normalize())))
        plan_facts(plan)
        clone = pickle.loads(pickle.dumps(plan))
        assert getattr(clone, "_facts", None) is None
        assert plan_facts(clone) == plan_facts(plan)

    def test_format_facts_line(self):
        plan = compile_plan(Compose(OrMu(), Compose(OrMap(Normalize()), SetToOr())))
        line = format_facts(plan_facts(plan))
        assert line.startswith("facts: symbolic=yes")
        assert "shape=orset" in line
        assert "short-circuit=yes" in line

    def test_engine_execution_unaffected_by_analysis(self):
        """Reading the facts does not perturb results (routing smoke test)."""
        eng = Engine()
        f = Compose(OrMu(), Compose(OrMap(Normalize()), SetToOr()))
        v = vset(vorset(1, 2), vorset(3))
        plan = eng.compile(f)
        plan_facts(plan)
        assert eng.run(f, v) == f(v)


def _double(v):
    return v.value * 2
