"""The rewrite verifier: seeded miscompiles must fail loudly, named.

Three deliberately broken optimizer passes are run through the standard
:class:`~repro.engine.passes.Pipeline` driver with verification on:

* a **type-changing** rule (``or_to_set -> set_to_or``) dies on the
  principal-type check without running anything;
* a **branch-dropping** rule (``cond(p, t, e) -> t``) survives the type
  check and dies on a differential probe;
* a **guard-reordering** rule (``cond(p, t, e) -> cond(p, e, t)``)
  likewise dies on a probe.

Every failure must carry the offending *pass and rule names* — the whole
point is that a miscompile reads ``pass 'broken-cond' rule
'drop_branch'`` instead of a distant conformance diff.  The structural
:func:`verify_plan` invariants and the environment gate are covered
here too.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.passes import CANONICALIZE, Pass, Pipeline, default_pipeline
from repro.engine.plan import Plan, PlanNode, compile_plan
from repro.engine.verify import (
    PassVerificationError,
    PlanVerificationError,
    clear_verify_cache,
    verification_enabled,
    verify_plan,
    verify_rewrite,
)
from repro.gen import random_orset_value
from repro.lang.morphisms import Compose, Cond, Id, Proj1
from repro.lang.orset_ops import OrMap, OrToSet, SetToOr
from repro.lang.primitives import predicate, unary_primitive
from repro.morphgen import random_lossless_morphism
from repro.types.kinds import INT
def _is_small(v):
    return v.value <= 1


def _double(v):
    return v.value * 2


def _cond_program():
    """``cond(x <= 1, x, 2 * x)`` over ``int`` — probes separate the
    branches (and any reordering of them)."""
    return Cond(
        predicate("le1", _is_small, INT),
        Id(),
        unary_primitive("double", _double, INT, INT),
    )


# -- the seeded miscompiles ----------------------------------------------------


def _rule_swap_coercion(m):
    # MISCOMPILE: or_to_set : {|a|} -> {a} becomes set_to_or : {a} -> {|a|}.
    if isinstance(m, OrToSet):
        return SetToOr()
    return None


def _rule_drop_branch(m):
    # MISCOMPILE: cond(p, t, e) -> t.
    if isinstance(m, Cond):
        return m.then
    return None


def _rule_swap_branches(m):
    # MISCOMPILE: cond(p, t, e) -> cond(p, e, t).
    if isinstance(m, Cond):
        return Cond(m.pred, m.orelse, m.then)
    return None


def _rule_pin_identity(m):
    # MISCOMPILE (of the quiet kind): id : a -> a is "rewritten" to the
    # or-set round trip {|a|} -> {|a|} — semantically id where it types,
    # but it narrows the program's domain.
    if isinstance(m, Id):
        return Compose(SetToOr(), OrToSet())
    return None


BROKEN_RETAG = Pass("broken-retag", (_rule_swap_coercion,), triggers=(OrToSet,))
BROKEN_COND_DROP = Pass("broken-cond", (_rule_drop_branch,), triggers=(Cond,))
BROKEN_COND_SWAP = Pass("broken-cond", (_rule_swap_branches,), triggers=(Cond,))
BROKEN_PIN = Pass("broken-pin", (_rule_pin_identity,), triggers=(Id,))


@pytest.fixture
def verify_on(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_PASSES", "1")
    clear_verify_cache()
    yield
    clear_verify_cache()


class TestSeededMiscompiles:
    def test_type_changing_rule_is_rejected(self, verify_on):
        with pytest.raises(PassVerificationError) as excinfo:
            Pipeline((BROKEN_RETAG,)).run(Compose(OrToSet(), OrMap(Id())))
        err = excinfo.value
        assert err.pass_name == "broken-retag"
        assert err.rule_name == "swap_coercion"
        assert "broke the program" in str(err)
        assert "principal type" in str(err)

    def test_branch_dropping_rule_is_rejected(self, verify_on):
        with pytest.raises(PassVerificationError) as excinfo:
            Pipeline((BROKEN_COND_DROP,)).run(_cond_program())
        err = excinfo.value
        assert err.pass_name == "broken-cond"
        assert err.rule_name == "drop_branch"
        assert "diverged" in str(err)

    def test_guard_reordering_rule_is_rejected(self, verify_on):
        with pytest.raises(PassVerificationError) as excinfo:
            Pipeline((BROKEN_COND_SWAP,)).run(_cond_program())
        err = excinfo.value
        assert err.pass_name == "broken-cond"
        assert err.rule_name == "swap_branches"
        assert "diverged" in str(err)

    def test_domain_narrowing_rule_is_rejected(self, verify_on):
        with pytest.raises(PassVerificationError) as excinfo:
            Pipeline((BROKEN_PIN,)).run(Compose(Id(), Proj1()))
        assert "specializes the principal type" in str(excinfo.value)

    def test_fixed_order_driver_verifies_too(self, verify_on):
        with pytest.raises(PassVerificationError) as excinfo:
            Pipeline((BROKEN_COND_DROP,)).run_fixed_order(_cond_program())
        assert excinfo.value.pass_name == "broken-cond"

    def test_miscompile_sails_through_with_verification_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PASSES", "0")
        clear_verify_cache()
        out = Pipeline((BROKEN_COND_DROP,)).run(_cond_program())
        assert out == Id()  # the miscompile went live, silently


class TestEnvironmentGate:
    def test_enabled_by_default_under_pytest(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PASSES", raising=False)
        assert verification_enabled()  # PYTEST_CURRENT_TEST is set

    def test_explicit_off_values(self, monkeypatch):
        for raw in ("0", "false", "no", "off", ""):
            monkeypatch.setenv("REPRO_VERIFY_PASSES", raw)
            assert not verification_enabled()

    def test_explicit_on_values(self, monkeypatch):
        for raw in ("1", "true", "yes", "on"):
            monkeypatch.setenv("REPRO_VERIFY_PASSES", raw)
            assert verification_enabled()

    def test_off_outside_pytest_and_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_PASSES", raising=False)
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        monkeypatch.delenv("CI", raising=False)
        assert not verification_enabled()


class TestRewriteMemo:
    def test_verified_rewrites_are_memoized(self):
        clear_verify_cache()
        # An honestly sound rewrite: cond with equal branches folds to id.
        before = Cond(predicate("le1", _is_small, INT), Id(), Id())
        after = Id()
        calls = []

        def counting_apply(m, v):
            calls.append(m)
            return m.apply(v)

        verify_rewrite(before, after, "memo-pass", "memo_rule", counting_apply)
        first = len(calls)
        assert first > 0  # probes actually ran
        verify_rewrite(before, after, "memo-pass", "memo_rule", counting_apply)
        assert len(calls) == first  # second time: one dict hit, no probes
        clear_verify_cache()
        verify_rewrite(before, after, "memo-pass", "memo_rule", counting_apply)
        assert len(calls) == 2 * first


class TestStructuralVerification:
    def test_compiled_plans_are_well_formed(self):
        plan = compile_plan(Compose(OrToSet(), OrMap(Id())))
        assert verify_plan(plan) is plan

    def test_fused_plans_are_well_formed(self):
        from repro.engine.passes import fuse_plan
        from repro.lang.orset_ops import OrMu, SetToOr

        plan = compile_plan(Compose(OrMu(), Compose(OrMap(Id()), SetToOr())))
        verify_plan(fuse_plan(plan), context="test")

    def test_root_out_of_range(self):
        plan = compile_plan(OrToSet())
        broken = Plan(nodes=plan.nodes, root=99, source=plan.source)
        with pytest.raises(PlanVerificationError, match="root"):
            verify_plan(broken)

    def test_kid_after_parent(self):
        src = OrMap(Id())
        nodes = [
            PlanNode(0, "map", (1,), src, kind="orset"),
            PlanNode(1, "id", (), Id()),
        ]
        with pytest.raises(PlanVerificationError, match="not emitted before"):
            verify_plan(Plan(nodes=nodes, root=0, source=src))

    def test_wrong_arity(self):
        src = OrMap(Id())
        nodes = [
            PlanNode(0, "id", (), Id()),
            PlanNode(1, "id", (), Id()),
            PlanNode(2, "map", (0, 1), src, kind="orset"),
        ]
        with pytest.raises(PlanVerificationError, match="expected 1 kid"):
            verify_plan(Plan(nodes=nodes, root=2, source=src))

    def test_composite_compiled_as_leaf(self):
        src = OrMap(Id())
        nodes = [PlanNode(0, "leaf", (), src)]
        with pytest.raises(PlanVerificationError, match="composite"):
            verify_plan(Plan(nodes=nodes, root=0, source=src))

    def test_unreachable_node(self):
        nodes = [
            PlanNode(0, "leaf", (), OrToSet()),
            PlanNode(1, "leaf", (), SetToOr()),
        ]
        with pytest.raises(PlanVerificationError, match="unreachable"):
            verify_plan(Plan(nodes=nodes, root=1, source=SetToOr()))

    def test_map_kind_mismatch(self):
        src = OrMap(Id())
        nodes = [
            PlanNode(0, "id", (), Id()),
            PlanNode(1, "map", (0,), src, kind="set"),
        ]
        with pytest.raises(PlanVerificationError, match="kind"):
            verify_plan(Plan(nodes=nodes, root=1, source=src))

    def test_context_appears_in_message(self):
        plan = compile_plan(OrToSet())
        broken = Plan(nodes=plan.nodes, root=99, source=plan.source)
        with pytest.raises(PlanVerificationError, match="compile-test"):
            verify_plan(broken, context="compile-test")


class TestVerifiedPipelinesStayConformant:
    """With verification on (the pytest default), the full default
    pipeline still agrees with the direct interpreter on random
    Theorem 5.1-eligible programs — the verifier neither rejects sound
    rewrites nor perturbs their results."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100_000))
    def test_default_pipeline_verified_and_conformant(self, seed):
        assert verification_enabled()
        rng = random.Random(seed)
        v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
        f, _ = random_lossless_morphism(t, rng, depth=4)
        opt = default_pipeline().run(f)
        assert opt(v) == f(v), (f.describe(), opt.describe())

    def test_verified_plan_survives_pickling(self):
        plan = verify_plan(compile_plan(Compose(OrToSet(), OrMap(Id()))))
        clone = pickle.loads(pickle.dumps(plan))
        verify_plan(clone)

    def test_probe_evaluator_sees_real_values(self):
        clear_verify_cache()
        seen = []

        def spy(m, v):
            seen.append(v)
            return m.apply(v)

        p = _cond_program()
        verify_rewrite(p, Cond(p.pred, Id(), p.orelse), "spy-pass", "spy", spy)
        assert seen and all(v.base == "int" for v in seen)
