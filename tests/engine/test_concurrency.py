"""Concurrent use of a shared engine: no corruption under thread hammering.

``DEFAULT_ENGINE`` is shared by the REPL, the I/O helpers and library
callers; ``run_many`` and the parallel backend hammer it from worker
threads.  These tests drive ``run``/``run_many``/``compile`` from many
threads at once and assert the interner stats stay coherent, the plan
cache converges to one plan per program, and every result equals the
single-threaded answer.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.normalize import Normalize
from repro.engine import Engine, Interner
from repro.lang.morphisms import Compose, Id, PairOf
from repro.lang.orset_ops import Alpha, OrMap
from repro.lang.primitives import plus
from repro.lang.set_ops import SetMap
from repro.values.values import vorset, vpair, vset

DOUBLE = Compose(plus(), PairOf(Id(), Id()))
QUERY = Compose(OrMap(SetMap(DOUBLE)), Alpha())

THREADS = 8
ROUNDS = 40


def _hammer(fn, threads: int = THREADS):
    """Run *fn(thread_index)* on every thread, re-raising the first error."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads)

    def wrapped(i: int) -> None:
        try:
            barrier.wait()
            fn(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    workers = [threading.Thread(target=wrapped, args=(i,)) for i in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    if errors:
        raise errors[0]


class TestConcurrentRun:
    def test_shared_engine_run_is_consistent(self):
        eng = Engine()
        inputs = [vset(vorset(1, 2), vorset(3 + i)) for i in range(THREADS)]
        expected = [QUERY(v) for v in inputs]

        def work(i: int) -> None:
            for _ in range(ROUNDS):
                assert eng.run(QUERY, inputs[i]) == expected[i]

        _hammer(work)
        stats = eng.interner.stats()
        assert stats["intern_hits"] + stats["intern_misses"] > 0

    def test_shared_engine_mixed_backends(self):
        eng = Engine()
        inputs = [vset(vorset(1, 2), vorset(3 + i)) for i in range(6)]
        backends = ["eager", "streaming", "parallel"]

        def work(i: int) -> None:
            for r in range(ROUNDS):
                v = inputs[(i + r) % len(inputs)]
                backend = backends[(i + r) % len(backends)]
                assert eng.run(QUERY, v, backend=backend) == QUERY(v)

        _hammer(work)

    def test_interned_results_stay_canonical_under_threads(self):
        eng = Engine()
        v = vpair(vset(vorset(1, 2), vorset(3)), vorset(1, 2))
        results: list = []

        def work(_i: int) -> None:
            local = [eng.run(Normalize(), v) for _ in range(ROUNDS)]
            results.extend(local)

        _hammer(work)
        # All threads converge on one canonical interned object.
        assert len({id(r) for r in results}) == 1
        stats = eng.interner.stats()
        assert stats["normalize_misses"] >= 1
        assert stats["normalize_hits"] >= THREADS * ROUNDS - THREADS

    def test_plan_cache_converges_to_one_plan(self):
        eng = Engine()
        plans: list = []

        def work(_i: int) -> None:
            plans.append(eng.compile(QUERY))

        _hammer(work)
        assert len({id(p) for p in plans}) == 1

    def test_plan_cache_lru_eviction_under_threads(self):
        eng = Engine(max_plans=4)

        def work(i: int) -> None:
            for r in range(ROUNDS):
                body = DOUBLE
                for _ in range((i + r) % 6):
                    body = Compose(DOUBLE, body)
                q = OrMap(body)
                assert eng.run(q, vorset(1, 2)) == q(vorset(1, 2))

        _hammer(work)
        assert len(eng._plans) <= 4


class TestConcurrentRunMany:
    def test_run_many_from_many_threads(self):
        eng = Engine()
        batch = [vset(vorset(1, 2), vorset(3 + i % 4)) for i in range(12)]
        expected = [QUERY(v) for v in batch]

        def work(_i: int) -> None:
            for _ in range(10):
                assert eng.run_many(QUERY, batch) == expected

        _hammer(work, threads=4)

    def test_run_many_matches_run_per_backend(self):
        eng = Engine()
        batch = [vset(vorset(i, i + 1)) for i in range(8)]
        for backend in ("eager", "streaming", "parallel"):
            many = eng.run_many(QUERY, batch, backend=backend)
            assert many == [eng.run(QUERY, v, backend=backend) for v in batch]

    def test_bounded_interner_hammered(self):
        eng = Engine(interner=Interner(max_size=64))

        def work(i: int) -> None:
            for r in range(ROUNDS):
                v = vset(vorset(100 * i + r, 100 * i + r + 1))
                assert eng.run(QUERY, v) == QUERY(v)

        _hammer(work)
        stats = eng.interner.stats()
        assert stats["evictions"] >= 1
        # The arena can overshoot by at most one value's node count
        # between threshold checks; it must never grow without bound.
        assert stats["arena_size"] <= 64 + 64


class TestConcurrentInterner:
    def test_intern_is_canonical_across_threads(self):
        interner = Interner()
        value = vpair(vset(vorset(1, 2), vorset(3)), vorset(1, 2))
        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            canons = list(pool.map(lambda _: interner.intern(value), range(64)))
        assert len({id(c) for c in canons}) == 1
        stats = interner.stats()
        assert stats["intern_misses"] >= 1
        assert stats["arena_size"] == len(interner)
