"""Pickle round-trip regressions for the process backend's transport.

The process backend ships compiled plans and values to worker processes
as pickles, which surfaced two latent gaps: bound closures cached on a
plan made the plan unpicklable after its first execution, and the
standard primitives were built from lambda-capturing local closures.
These tests pin the fixes: every compiled plan round-trips through
``pickle`` (before *and* after binding/annotation), every standard
primitive round-trips, and the round-tripped artifacts still execute to
structurally identical results.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.normalize import Normalize
from repro.engine import Engine, compile_program
from repro.engine.plan import compile_plan
from repro.gen import random_orset_value
from repro.lang.morphisms import Compose, Id, PairOf
from repro.lang.orset_ops import Alpha, OrMap, OrToSet
from repro.lang.parser import parse_morphism, parse_value
from repro.lang.primitives import (
    bool_and,
    bool_not,
    bool_or,
    int_le,
    int_lt,
    minus,
    plus,
    predicate,
    times,
    unary_primitive,
)
from repro.lang.set_ops import SetMap, SetMu
from repro.morphgen import random_lossless_morphism
from repro.types.kinds import INT
from repro.values.values import Atom, boolean, vorset, vpair, vset


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestPlanPickling:
    def test_fresh_plan_roundtrips(self):
        plan = compile_plan(Compose(OrMap(SetMap(Id())), Alpha()))
        clone = roundtrip(plan)
        assert len(clone) == len(plan)
        assert clone.root == plan.root
        assert clone.to_morphism() == plan.to_morphism()

    def test_bound_plan_roundtrips(self):
        # The regression: binding caches closures on the plan, which
        # used to make every executed plan unpicklable.
        plan = compile_plan(Compose(OrMap(SetMap(Id())), Alpha()))
        x = vset(vorset(1, 2), vorset(3))
        expected = plan.bind()(x)
        clone = roundtrip(plan)
        assert clone.bind()(x) == expected

    def test_annotated_plan_roundtrips(self):
        # Cost-model annotation and profiling set extra attributes;
        # neither may break transport.
        from repro.engine.cost_model import plan_profile

        plan = compile_plan(Normalize())
        x = vset(vorset(1, 2), vorset(3, 4))
        plan.annotate_estimates(x)
        plan_profile(plan)
        clone = roundtrip(plan)
        assert clone.bind()(x) == plan.bind()(x)

    def test_engine_cached_plan_roundtrips_after_run(self):
        eng = Engine()
        q = Compose(SetMu(), SetMap(OrToSet()))
        x = vset(vorset(1, 2), vorset(3))
        expected = eng.run(q, x, backend="eager")
        plan = eng.compile(q, True)
        assert roundtrip(plan).bind()(x) == expected

    def test_random_compiled_plans_roundtrip_and_execute(self):
        rng = random.Random(20260728)
        for _ in range(25):
            v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
            f, _ = random_lossless_morphism(t, rng, depth=4)
            plan = compile_program(f)
            expected = plan.bind()(v)
            assert roundtrip(plan).bind()(v) == expected, f.describe()

    def test_parsed_program_plans_roundtrip(self):
        plan = compile_program(parse_morphism("ormap(map(pi_1)) o alpha"))
        x = parse_value("{<(1, 2), (3, 4)>}")
        expected = plan.bind()(x)
        assert roundtrip(plan).bind()(x) == expected


class TestPrimitivePickling:
    @pytest.mark.parametrize(
        "factory", [plus, minus, times, int_le, int_lt, bool_and, bool_or, bool_not]
    )
    def test_standard_primitives_roundtrip(self, factory):
        prim = factory()
        clone = roundtrip(prim)
        assert clone == prim

    def test_arithmetic_survives_the_trip(self):
        assert roundtrip(plus())(vpair(2, 3)) == Atom("int", 5)
        assert roundtrip(times())(vpair(4, 5)) == Atom("int", 20)
        assert roundtrip(int_le())(vpair(2, 3)) == boolean(True)
        assert roundtrip(bool_not())(boolean(False)) == boolean(True)

    def test_plan_with_arithmetic_body_roundtrips(self):
        double = Compose(plus(), PairOf(Id(), Id()))
        plan = compile_plan(SetMap(double))
        xs = vset(*range(10))
        expected = plan.bind()(xs)
        assert roundtrip(plan).bind()(xs) == expected

    def test_module_level_user_primitive_roundtrips(self):
        prim = unary_primitive("neg", _negate, INT, INT)
        assert roundtrip(prim)(Atom("int", 3)) == Atom("int", -3)

    def test_lambda_user_primitive_still_fails_loudly(self):
        # Lambdas are inherently unpicklable; the engine handles that by
        # falling back (see test_process.py), not by pretending.
        prim = predicate("evil", lambda v: True, INT)
        with pytest.raises((pickle.PicklingError, AttributeError)):
            pickle.dumps(prim)


def _negate(v):
    return Atom("int", -int(v.value))
