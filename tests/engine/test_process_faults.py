"""Crash-path tests for the process backend, driven by fault injection.

Every scenario here pins the same contract from a different angle:
``backend="process"`` is *semantically safe under faults* — a broken
pool (a genuinely killed worker, an injected coordinator error) is
retried under the supervisor's bounded-restart policy and, exhausted,
degrades to a correct local evaluation.  The circuit breaker turns
repeated incidents into routing: ``healthy()`` goes false, the engine's
adaptive selector drops the backend, and a half-open probe heals it.

Faults come from :mod:`repro.engine.faults`: plans installed in the
coordinator are inherited by forked workers, so ``crash`` rules produce
*real* ``BrokenProcessPool`` conditions, not mocks.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    CircuitBreaker,
    Deadline,
    Engine,
    ProcessBackend,
    Supervisor,
    deadline_scope,
    faults,
)
from repro.engine.cost_model import WIDE_SPINE
from repro.engine.faults import FaultPlan, FaultRule, InjectedFault
from repro.engine.process import _worker_ping
from repro.errors import DeadlineExceeded
from repro.lang.morphisms import Compose, Id, PairOf
from repro.lang.orset_ops import OrToSet
from repro.lang.primitives import plus, predicate
from repro.lang.set_ops import SetMap, SetMu
from repro.types.kinds import INT
from repro.values.values import vset

DOUBLE = Compose(plus(), PairOf(Id(), Id()))


def fast_backend(**kwargs) -> ProcessBackend:
    """A 2-worker backend whose supervisor never really sleeps."""
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("min_shard", 4)
    kwargs.setdefault("supervisor", Supervisor(restarts=1, sleep=lambda _s: None))
    return ProcessBackend(**kwargs)


class TestWorkerCrashes:
    def test_crash_mid_batch_degrades_to_local(self):
        # Every fresh worker crashes on its first shard (the hit counter
        # is per-process), so all restarts fail and the shards re-run
        # locally — the caller still gets the right answer.  Both worker
        # entry points are armed: a single-map plan ships as fused arena
        # slices, not plan-subtree chunks.
        plan = FaultPlan(
            rules=(
                FaultRule("process.worker_chunk", "crash", times=1),
                FaultRule("process.worker_fused", "crash", times=1),
            )
        )
        backend = fast_backend()
        eng = Engine()
        eng.backends["process"] = backend
        xs = vset(*range(100))
        expected = eng.run(SetMap(DOUBLE), xs, backend="eager")
        try:
            with faults.active_plan(plan):
                assert eng.run(SetMap(DOUBLE), xs, backend="process") == expected
        finally:
            backend.close()
        assert backend.pool_restarts >= 1
        assert backend.pool_fallbacks >= 1

    def test_crash_during_warm_is_survived(self):
        plan = FaultPlan(rules=(FaultRule("process.worker_ping", "crash", times=1),))
        backend = fast_backend()
        eng = Engine()
        eng.backends["process"] = backend
        xs = vset(*range(100))
        try:
            with faults.active_plan(plan):
                backend.warm()  # must not raise, despite every ping crashing
            assert backend.pool_fallbacks >= 1
            # The ping rule does not touch the chunk entry point: a later
            # request rebuilds the pool and runs remotely again.
            before = backend.remote_chunks
            expected = eng.run(SetMap(DOUBLE), xs, backend="eager")
            assert eng.run(SetMap(DOUBLE), xs, backend="process") == expected
            assert backend.remote_chunks > before
        finally:
            backend.close()

    def test_unpicklable_plan_falls_back_even_under_faults(self):
        # The pickle guard fires before any pool traffic, so a fault
        # plan aimed at the workers never sees an unpicklable program.
        plan = FaultPlan(rules=(FaultRule("process.worker_chunk", "crash", times=1),))
        backend = fast_backend()
        eng = Engine()
        eng.backends["process"] = backend
        evil = SetMap(predicate("evil", lambda _v: True, INT))
        try:
            with faults.active_plan(plan):
                before = backend.pickle_fallbacks
                out = eng.run(evil, vset(*range(50)), backend="process")
                assert out == eng.run(evil, vset(*range(50)), backend="eager")
                assert backend.pickle_fallbacks > before
        finally:
            backend.close()


class TestSupervisedRecovery:
    def test_injected_coordinator_fault_is_retried_to_success(self):
        # `process.pool:error:1` fails exactly the first submission in
        # the coordinator — the retry finds a healthy pool and succeeds
        # *remotely* (no local fallback).
        plan = FaultPlan(rules=(FaultRule("process.pool", "error", times=1),))
        backend = fast_backend()
        eng = Engine()
        eng.backends["process"] = backend
        xs = vset(*range(100))
        expected = eng.run(SetMap(DOUBLE), xs, backend="eager")
        try:
            with faults.active_plan(plan):
                before = backend.remote_chunks
                assert eng.run(SetMap(DOUBLE), xs, backend="process") == expected
                assert backend.remote_chunks > before
        finally:
            backend.close()
        assert backend.pool_restarts == 1
        assert backend.pool_fallbacks == 0
        assert backend.breaker.state == "closed"

    def test_injected_fault_is_treated_like_a_broken_pool(self):
        backend = fast_backend()
        calls = {"n": 0}

        def attempt() -> list:
            calls["n"] += 1
            raise InjectedFault("synthetic")

        try:
            assert backend._supervised(attempt) is None
        finally:
            backend.close()
        assert calls["n"] == 2  # one attempt + one restart
        assert backend.pool_restarts == 1
        assert backend.pool_fallbacks == 1

    def test_deadline_exceeded_is_never_retried(self):
        backend = fast_backend()
        calls = {"n": 0}

        def attempt() -> list:
            calls["n"] += 1
            raise DeadlineExceeded("out of budget")

        try:
            with pytest.raises(DeadlineExceeded):
                backend._supervised(attempt)
        finally:
            backend.close()
        assert calls["n"] == 1

    def test_pool_map_enforces_deadlines_coordinator_side(self):
        backend = fast_backend()
        try:
            backend.warm()
            with deadline_scope(Deadline.after(0.0)):
                with pytest.raises(DeadlineExceeded):
                    backend._pool_map(backend._executor(), _worker_ping, range(2))
        finally:
            backend.close()


class TestCircuitBreaker:
    def test_open_breaker_demotes_the_backend_from_auto(self):
        from repro.core.costs import tight_family

        clock = FakeClock()
        backend = fast_backend(
            breaker=CircuitBreaker(threshold=1, reset_after=5.0, clock=clock)
        )
        eng = Engine()
        eng.backends["process"] = backend
        x, _t = tight_family(WIDE_SPINE + 8)
        program = Compose(SetMu(), SetMap(OrToSet()))
        try:
            assert eng.choose_backend(program, x).backend == "process"
            backend.breaker.record_failure()
            assert not backend.healthy()
            assert "process" not in eng._available()
            demoted = eng.choose_backend(program, x).backend
            assert demoted != "process"
            # ...and the demoted route still answers correctly.
            out = eng.run(program, x)
            assert out == eng.run(program, x, backend="eager")
            # After the reset window the half-open probe lets traffic
            # route back; a success closes the breaker for good.
            clock.advance(5.0)
            assert backend.healthy()
            assert eng.choose_backend(program, x).backend == "process"
            backend.breaker.record_success()
            assert backend.breaker.state == "closed"
        finally:
            backend.close()

    def test_open_breaker_skips_the_pool_entirely(self):
        backend = fast_backend(breaker=CircuitBreaker(threshold=1, reset_after=999.0))
        eng = Engine()
        eng.backends["process"] = backend
        backend.breaker.record_failure()
        xs = vset(*range(100))
        try:
            before = backend.remote_chunks
            out = eng.run(SetMap(DOUBLE), xs, backend="process")
            assert out == eng.run(SetMap(DOUBLE), xs, backend="eager")
            assert backend.remote_chunks == before  # no pool traffic
        finally:
            backend.close()

    def test_stats_surface_supervision(self):
        backend = fast_backend()
        try:
            stats = backend.stats()
        finally:
            backend.close()
        assert stats["pool_restarts"] == 0
        assert stats["breaker"] == "closed"


class TestFaultPlanSpec:
    def test_from_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "seed=42;process.worker_chunk:crash:1;serve.eval:slow:2:0.05"
        )
        assert plan.seed == 42
        assert plan.rules[0] == FaultRule("process.worker_chunk", "crash", times=1)
        assert plan.rules[1].kind == "slow"
        assert plan.rules[1].times == 2
        assert plan.rules[1].delay == 0.05

    def test_star_and_probability_entries(self):
        plan = FaultPlan.from_spec("serve.eval:error:*;serve.frame:malform:0.5")
        assert plan.rules[0].times is None and plan.rules[0].prob == 1.0
        assert plan.rules[1].times is None and plan.rules[1].prob == 0.5

    def test_malformed_entry_raises(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("not-a-rule")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            FaultRule("serve.eval", "explode")

    def test_counted_rule_fires_exactly_n_times(self):
        plan = FaultPlan(rules=(FaultRule("serve.eval", "error", times=2),))
        fired = [plan.match("serve.eval") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert plan.stats()["serve.eval"] == 5

    def test_probabilistic_rule_is_seed_deterministic(self):
        def schedule(seed: int) -> list[bool]:
            plan = FaultPlan(
                seed=seed,
                rules=(FaultRule("serve.eval", "error", times=None, prob=0.5),),
            )
            return [plan.match("serve.eval") is not None for _ in range(64)]

        a, b, other = schedule(42), schedule(42), schedule(43)
        assert a == b
        assert any(a) and not all(a)  # a real coin, not a constant
        assert a != other

    def test_env_spec_arms_lazily(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "serve.eval:error:1")
        faults.clear()  # forget the plan *and* the env check...
        faults._ENV_CHECKED = False  # ...then force a fresh env read
        try:
            plan = faults.active()
            assert plan is not None
            assert plan.rules[0].site == "serve.eval"
        finally:
            faults.clear()


class FakeClock:
    def __init__(self) -> None:
        self.now = 50.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now
