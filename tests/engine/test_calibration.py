"""Tests for the learned cost calibration (:mod:`repro.engine.cost_model`).

The calibration contract has three legs, each pinned here:

* **linearity** — ``estimate_morphism_cost`` is exactly the dot product
  of :func:`operator_features` with the active weight table, so a
  least-squares fit of measured latencies against features yields
  drop-in weights;
* **learning** — :func:`calibrate` recovers the ordering of synthetic
  ground-truth weights, and fixes a mix the hand-tuned table misranks;
* **soundness isolation** — installing a calibration changes scheduler
  costs only; the :class:`ShapeEstimate` bounds are untouched.
"""

from __future__ import annotations

import pytest

from repro.engine.cost_model import (
    OPERATOR_CLASSES,
    OPERATOR_COSTS,
    calibrate,
    calibration_scope,
    estimate_morphism_cost,
    estimate_value,
    get_calibration,
    operator_features,
    rank_error,
    set_calibration,
)
from repro.io import parsed_morphism
from repro.values.values import vorset, vset


def features_of(program: str, value=None):
    shape = estimate_value(value) if value is not None else None
    return operator_features(parsed_morphism(program), shape)


class TestFeaturesAndLinearity:
    def test_feature_classes_partition_the_operator_count(self):
        m = parsed_morphism("map(normalize) o alpha o mu")
        features = operator_features(m)
        assert set(features) == set(OPERATOR_CLASSES)
        assert features["expansion"] >= 1  # normalize
        assert features["alpha"] >= 1
        assert features["traversal"] >= 1  # map
        assert sum(features.values()) > 0

    def test_shape_scales_expansion_classes_only(self):
        wide = vorset(*range(64))
        flat = features_of("map(normalize) o alpha o mu")
        scaled = features_of("map(normalize) o alpha o mu", wide)
        bits = estimate_value(wide).worlds.bit_length()
        assert scaled["expansion"] == flat["expansion"] * bits
        assert scaled["alpha"] == flat["alpha"] * bits
        assert scaled["traversal"] == flat["traversal"]
        assert scaled["other"] == flat["other"]

    def test_cost_is_dot_product_of_features_and_table(self):
        for program in ("normalize", "map(id)", "map(normalize) o mu"):
            m = parsed_morphism(program)
            features = operator_features(m)
            dot = sum(features[k] * OPERATOR_COSTS[k] for k in OPERATOR_CLASSES)
            assert estimate_morphism_cost(m) == max(1, round(dot))

    def test_explicit_weights_override_table(self):
        m = parsed_morphism("normalize")
        cheap = estimate_morphism_cost(m, weights={"expansion": 1.0, "other": 1.0})
        assert cheap < estimate_morphism_cost(m)


class TestCalibrate:
    def test_recovers_synthetic_ground_truth_ordering(self):
        true = {"expansion": 4e-3, "alpha": 1e-3, "traversal": 2e-4, "other": 5e-5}
        mixes = [
            {"expansion": e, "alpha": a, "traversal": t, "other": o}
            for e in (0, 1, 3)
            for a in (0, 2, 5)
            for t in (1, 4)
            for o in (1, 6)
        ]
        samples = [
            (f, sum(f[k] * true[k] for k in OPERATOR_CLASSES)) for f in mixes
        ]
        learned = calibrate(samples)
        assert (
            learned["expansion"]
            > learned["alpha"]
            > learned["traversal"]
            > learned["other"]
        )
        # The cheapest class is normalized to cost 1.
        assert min(learned.values()) == pytest.approx(1.0)
        # Predictions under the learned table rank the samples perfectly.
        predicted = [
            sum(f[k] * learned[k] for k in OPERATOR_CLASSES) for f, _ in samples
        ]
        assert rank_error(predicted, [t for _, t in samples]) == 0.0

    def test_fixes_a_mix_the_hand_tuned_table_misranks(self):
        # Ground truth where traversals are *costlier* than the hand-tuned
        # table believes relative to alpha: long traversal chains actually
        # dominate a single alpha step.
        true = {"expansion": 1e-3, "alpha": 1e-4, "traversal": 8e-5, "other": 1e-6}
        mixes = [
            {"expansion": 0, "alpha": 1, "traversal": 0, "other": 1},
            {"expansion": 0, "alpha": 0, "traversal": 40, "other": 1},
            {"expansion": 1, "alpha": 0, "traversal": 2, "other": 1},
            {"expansion": 0, "alpha": 2, "traversal": 1, "other": 3},
            {"expansion": 2, "alpha": 1, "traversal": 10, "other": 2},
            {"expansion": 0, "alpha": 0, "traversal": 5, "other": 8},
        ]
        measured = [sum(f[k] * true[k] for k in OPERATOR_CLASSES) for f in mixes]
        hand = [
            sum(f[k] * OPERATOR_COSTS[k] for k in OPERATOR_CLASSES) for f in mixes
        ]
        learned_table = calibrate(list(zip(mixes, measured)))
        learned = [
            sum(f[k] * learned_table[k] for k in OPERATOR_CLASSES) for f in mixes
        ]
        assert rank_error(hand, measured) > 0.0  # the misrank exists
        assert rank_error(learned, measured) < rank_error(hand, measured)

    def test_degenerate_inputs_fall_back_to_hand_tuned(self):
        assert calibrate([]) == OPERATOR_COSTS
        # All-zero features are singular → fall back, don't crash.
        zeros = dict.fromkeys(OPERATOR_CLASSES, 0)
        assert calibrate([(zeros, 1.0), (zeros, 2.0)]) == OPERATOR_COSTS


class TestRankError:
    def test_perfect_reversed_and_tied(self):
        measured = [1.0, 2.0, 3.0, 4.0]
        assert rank_error([1, 2, 3, 4], measured) == 0.0
        assert rank_error([4, 3, 2, 1], measured) == 1.0
        # A constant prediction is half-wrong on every comparable pair.
        assert rank_error([7, 7, 7, 7], measured) == 0.5

    def test_measured_ties_are_not_comparable(self):
        assert rank_error([1, 2], [5.0, 5.0]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            rank_error([1], [1.0, 2.0])


class TestCalibrationScope:
    def test_scope_installs_and_restores(self):
        m = parsed_morphism("normalize")
        base = estimate_morphism_cost(m)
        table = {"expansion": 1000.0, "alpha": 1.0, "traversal": 1.0, "other": 1.0}
        assert get_calibration() is None
        with calibration_scope(table):
            assert get_calibration() == table
            assert estimate_morphism_cost(m) > base
        assert get_calibration() is None
        assert estimate_morphism_cost(m) == base

    def test_set_calibration_none_clears(self):
        set_calibration({"expansion": 2.0})
        try:
            assert get_calibration() == {"expansion": 2.0}
        finally:
            set_calibration(None)
        assert get_calibration() is None

    def test_soundness_bounds_are_independent_of_calibration(self):
        value = vset(vorset(1, 2, 3), vorset(4, 5))
        before = estimate_value(value)
        with calibration_scope({"expansion": 0.001, "alpha": 0.001}):
            during = estimate_value(value)
        assert during == before  # ShapeEstimate never consults the table