"""Differential conformance suite: every registered backend must agree.

This is the gate any future backend must pass.  The harness enumerates
the engine's backend registry *dynamically* — eager, streaming,
parallel, process and the adaptive ``"auto"`` today; anything registered
tomorrow is covered without editing this file — and drives every backend
over the same Hypothesis-generated programs and inputs, asserting

* structurally identical results (the direct interpreter ``f(v)`` is the
  ground truth, so a bug shared by all backends still fails);
* identical ``possibilities`` semantics: the same *set* of conceptual
  worlds, and a well-defined short-circuit prefix — taking one witness
  yields a member of that set without exhausting (or erroring on) the
  stream;
* identical error behavior on ill-typed program/input pairs.

The process backend runs with a forced 2-worker pool and a tiny
``min_shard`` so shards genuinely cross the process boundary even on
single-core CI runners.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BACKENDS, Backend, Engine, ProcessBackend
from repro.errors import OrNRATypeError
from repro.gen import random_orset_value
from repro.lang.morphisms import Compose, Id, PairOf
from repro.lang.orset_ops import OrMap, OrToSet, SetToOr
from repro.lang.primitives import plus
from repro.lang.set_ops import SetMap, SetMu
from repro.morphgen import random_lossless_morphism
from repro.values.values import vorset, vset

from tests.strategies import typed_orset_values

# One engine for the whole module so plan/interner caches and the
# process pool are shared across examples (workers start once).
ENGINE = Engine()
ENGINE.backends["process"] = ProcessBackend(max_workers=2, min_shard=2)

#: Every registered backend plus the adaptive selector.  Reading the
#: registry off the engine means a backend added to BACKENDS in any
#: imported module is automatically under test.
ALL_BACKENDS = sorted(ENGINE.backends) + ["auto"]

DOUBLE = Compose(plus(), PairOf(Id(), Id()))


def test_registry_is_complete():
    # The suite's premise: all the fixed engine backends are registered.
    for expected in (
        "eager", "streaming", "parallel", "process", "fused", "symbolic",
    ):
        assert expected in BACKENDS, f"backend {expected!r} lost from the registry"
        assert isinstance(BACKENDS[expected], Backend)


class TestResultConformance:
    @settings(max_examples=30, deadline=None)
    @given(
        typed_orset_values(max_depth=3, max_width=3, min_width=1),
        st.integers(0, 100_000),
    )
    def test_every_backend_matches_the_interpreter(self, pair, seed):
        value, t = pair
        f, _ = random_lossless_morphism(t, random.Random(seed), depth=4)
        reference = f(value)
        for name in ALL_BACKENDS:
            assert ENGINE.run(f, value, backend=name) == reference, (
                name,
                f.describe(),
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100_000))
    def test_morphgen_programs_agree(self, seed):
        rng = random.Random(seed)
        v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
        f, _ = random_lossless_morphism(t, rng, depth=5)
        reference = f(v)
        results = {name: ENGINE.run(f, v, backend=name) for name in ALL_BACKENDS}
        mismatched = {n for n, r in results.items() if r != reference}
        assert not mismatched, (sorted(mismatched), f.describe())

    def test_wide_sharded_spine_agrees(self):
        # Wide enough that both sharded backends genuinely chunk, with a
        # mu + map + arithmetic spine (the CPU-bound serving shape).
        q = Compose(SetMap(DOUBLE), Compose(SetMu(), SetMap(OrToSet())))
        x = vset(*(vorset(10 * i, 10 * i + 1) for i in range(64)))
        reference = q(x)
        for name in ALL_BACKENDS:
            assert ENGINE.run(q, x, backend=name) == reference, name

    def test_run_many_conformance(self):
        q = Compose(SetMu(), SetMap(OrToSet()))
        batch = [vset(vorset(i, i + 1), vorset(i + 2)) for i in range(6)] * 2
        reference = [q(v) for v in batch]
        for name in ALL_BACKENDS:
            assert ENGINE.run_many(q, batch, backend=name) == reference, name


class TestPossibilitiesConformance:
    @settings(max_examples=20, deadline=None)
    @given(
        typed_orset_values(max_depth=3, max_width=2, min_width=1),
        st.integers(0, 100_000),
    )
    def test_same_world_set_on_every_backend(self, pair, seed):
        value, t = pair
        f, _ = random_lossless_morphism(t, random.Random(seed), depth=3)
        expected = set(ENGINE.possibilities(f, value, backend="eager"))
        for name in ALL_BACKENDS:
            worlds = set(ENGINE.possibilities(f, value, backend=name))
            assert worlds == expected, (name, f.describe())

    def test_short_circuit_prefix_is_a_member_everywhere(self):
        # The existential consumer contract: taking one witness off the
        # stream must succeed and belong to the common world set, on
        # every backend (streaming does it lazily; the others after
        # materializing — the observable behavior is identical).
        q = Compose(OrMap(Id()), SetToOr())
        x = vset(*(vorset(2 * i, 2 * i + 1) for i in range(8)))
        expected = set(ENGINE.possibilities(q, x, backend="eager"))
        for name in ALL_BACKENDS:
            stream = ENGINE.possibilities(q, x, backend=name)
            first = next(iter(stream))
            assert first in expected, name


class TestErrorConformance:
    def test_type_errors_agree(self):
        # An ill-typed program/input pair raises OrNRATypeError on every
        # backend — including from inside process-pool workers.
        q = SetMap(plus())
        x = vset(*range(40))
        for name in ALL_BACKENDS:
            with pytest.raises(OrNRATypeError):
                ENGINE.run(q, x, backend=name)

    def test_kind_mismatch_agrees(self):
        q = SetMu()
        x = vorset(1, 2, 3)
        for name in ALL_BACKENDS:
            with pytest.raises(OrNRATypeError):
                ENGINE.run(q, x, backend=name)
