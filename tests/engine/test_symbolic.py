"""Tests for the symbolic backend (:mod:`repro.engine.symbolic`).

Three layers of differential evidence:

* :class:`ChoiceSpace` against the possible-worlds oracle
  (:func:`repro.core.worlds.worlds`) on random values — world sets,
  exact counts through both the certificate and the fallback path, and
  the certain/possible membership queries;
* the backend against eager enumeration on random programs — the same
  world sets *and* the same error types, whether the trace supports the
  plan or falls back;
* the engine entry points (``count_worlds``/``certain``/``possible``/
  ``exists``) against brute force, including the ``backend="auto"``
  routing that sends huge supported world queries symbolic.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import tight_family
from repro.core.normalize import Normalize
from repro.core.worlds import worlds
from repro.engine import BACKENDS, Engine
from repro.engine.symbolic import (
    ChoiceSpace,
    SymbolicBackend,
    SymbolicUnsupported,
    plan_supports_symbolic,
    trace_worlds,
)
from repro.errors import OrNRAError, OrNRAValueError
from repro.gen import random_orset_value
from repro.lang.morphisms import Compose
from repro.lang.orset_ops import OrMap, SetToOr
from repro.morphgen import random_lossless_morphism
from repro.values.values import SetValue, vorset, vset

from tests.strategies import typed_orset_values

ENGINE = Engine()

#: Whole-value normalization over the tight family: eager must build
#: all 3^k worlds, the choice space never builds one.
TIGHT_QUERY = Normalize()


def certain_of(world_set):
    out = None
    for w in world_set:
        elems = frozenset(w.elems)
        out = elems if out is None else out & elems
    return out


def possible_of(world_set):
    out = set()
    for w in world_set:
        out |= set(w.elems)
    return frozenset(out)


class TestChoiceSpaceOracle:
    @settings(max_examples=60, deadline=None)
    @given(typed_orset_values(max_depth=3, max_width=3, min_width=0))
    def test_world_set_matches_oracle(self, pair):
        value, _t = pair
        truth = frozenset(worlds(value))
        space = ChoiceSpace(value)
        assert frozenset(space.iter_worlds()) == truth  # CDCL route
        space.circuit()
        assert frozenset(space.iter_worlds()) == truth  # circuit route

    @settings(max_examples=60, deadline=None)
    @given(typed_orset_values(max_depth=3, max_width=3, min_width=0))
    def test_count_matches_oracle(self, pair):
        value, _t = pair
        assert ChoiceSpace(value).count_worlds() == len(worlds(value))

    def test_exact_count_without_enumeration(self):
        x, _t = tight_family(19)
        space = ChoiceSpace(x)
        assert space.exact
        assert space.count_worlds() == 3**19  # > 10^9, milliseconds

    def test_wide_orsite_stays_linear(self):
        # One 500-branch or-site: the binary encoding needs 9 bits and a
        # few range clauses, never a quadratic exactly-one ladder.
        v = vorset(*range(500))
        space = ChoiceSpace(v)
        assert space.cnf().n_vars == 9
        assert len(space.cnf().clauses) < 12
        assert space.count_worlds() == 500

    def test_nested_sites_under_canonical_branch_do_not_overcount(self):
        # Regression: the guard must be the whole path condition.  A
        # choice nested beneath the canonically-pinned first branch of
        # an unselected site is irrelevant and must not multiply the
        # count (this value has 5 worlds, not 6).
        v = vorset(vorset(vorset(1, 2), vorset(3, 4)), 5)
        assert ChoiceSpace(v).count_worlds() == len(worlds(v)) == 5

    def test_collision_value_falls_back_to_enumeration(self):
        # <1,2>,<2,3>,<1,3> can collapse two choice vectors into one
        # world; the certificate refuses and counting dedups.
        v = vset(vorset(1, 2), vorset(2, 3), vorset(1, 3))
        space = ChoiceSpace(v)
        assert not space.exact
        assert space.count_worlds() == len(worlds(v))

    def test_empty_orset_means_no_worlds(self):
        space = ChoiceSpace(vset(vorset()))
        assert not space.satisfiable()
        assert space.count_worlds() == 0

    @settings(max_examples=40, deadline=None)
    @given(typed_orset_values(max_depth=2, max_width=3, min_width=1))
    def test_membership_queries_match_oracle(self, pair):
        value, _t = pair
        if not isinstance(value, SetValue):
            return
        space = ChoiceSpace(value)
        try:
            got_certain = space.certain_members()
            got_possible = space.possible_members()
        except SymbolicUnsupported:
            return
        world_set = list(worlds(value))
        assert got_certain == certain_of(world_set)
        assert got_possible == possible_of(world_set)

    def test_certain_of_inconsistent_value_raises(self):
        with pytest.raises(OrNRAValueError):
            ChoiceSpace(vset(vorset(), vorset(1))).certain_members()


class TestBackendConformance:
    QUERIES = [
        Normalize(),
        Compose(OrMap(Normalize()), SetToOr()),
        Compose(Normalize(), SetToOr()),
    ]

    @settings(max_examples=40, deadline=None)
    @given(
        typed_orset_values(max_depth=3, max_width=3, min_width=0),
        st.integers(0, 2),
    )
    def test_world_sets_and_errors_match_eager(self, pair, which):
        value, _t = pair
        q = self.QUERIES[which]
        symbolic = BACKENDS["symbolic"]
        try:
            expected = frozenset(ENGINE.possibilities(q, value, backend="eager"))
            expected_error = None
        except OrNRAError as exc:
            expected, expected_error = None, type(exc)
        try:
            got = frozenset(ENGINE.possibilities(q, value, backend="symbolic"))
            got_error = None
        except OrNRAError as exc:
            got, got_error = None, type(exc)
        assert got == expected
        assert got_error == expected_error
        assert isinstance(symbolic, SymbolicBackend)

    @settings(max_examples=25, deadline=None)
    @given(
        typed_orset_values(max_depth=3, max_width=2, min_width=1),
        st.integers(0, 100_000),
    )
    def test_random_programs_agree_with_eager(self, pair, seed):
        # Arbitrary programs: the trace usually refuses and the backend
        # must fall back to an eager-conformant answer.
        value, t = pair
        f, _ = random_lossless_morphism(t, random.Random(seed), depth=4)
        expected = frozenset(ENGINE.possibilities(f, value, backend="eager"))
        got = frozenset(ENGINE.possibilities(f, value, backend="symbolic"))
        assert got == expected

    def test_execute_is_eager_conformant(self):
        x, _t = tight_family(5)
        assert ENGINE.run(TIGHT_QUERY, x, backend="symbolic") == ENGINE.run(
            TIGHT_QUERY, x, backend="eager"
        )


class TestEngineWorldQueries:
    @settings(max_examples=40, deadline=None)
    @given(typed_orset_values(max_depth=3, max_width=3, min_width=1))
    def test_count_matches_brute_force_on_all_routes(self, pair):
        value, _t = pair
        brute = len(set(ENGINE.possibilities(TIGHT_QUERY, value, backend="eager")))
        for backend in ("auto", "symbolic", "eager"):
            assert ENGINE.count_worlds(TIGHT_QUERY, value, backend=backend) == brute

    @settings(max_examples=30, deadline=None)
    @given(typed_orset_values(max_depth=2, max_width=3, min_width=1))
    def test_certain_and_possible_match_brute_force(self, pair):
        value, _t = pair
        if not isinstance(value, SetValue):
            return
        world_set = list(ENGINE.possibilities(TIGHT_QUERY, value, backend="eager"))
        if not all(isinstance(w, (SetValue,)) for w in world_set):
            return
        expected_certain = SetValue(certain_of(world_set))
        expected_possible = SetValue(possible_of(world_set))
        for backend in ("auto", "symbolic", "eager"):
            assert ENGINE.certain(TIGHT_QUERY, value, backend=backend) == expected_certain
            assert ENGINE.possible(TIGHT_QUERY, value, backend=backend) == expected_possible

    def test_exists_with_and_without_predicate(self):
        v = vset(vorset(1, 2), vorset(2, 3))
        two = ENGINE.run(Normalize(), vorset(2)).elems[0]
        assert ENGINE.exists(TIGHT_QUERY, v)
        assert ENGINE.exists(TIGHT_QUERY, v, lambda w: two in w.elems)
        assert not ENGINE.exists(TIGHT_QUERY, vset(vorset()))

    def test_auto_routes_huge_world_queries_symbolic(self):
        # The acceptance workload: >= 10^9 estimated worlds on a
        # supported spine goes symbolic and answers exactly.
        x, _t = tight_family(19)
        assert 3**19 >= 10**9
        choice = ENGINE.choose_backend(TIGHT_QUERY, x, world_query=True)
        assert choice.backend == "symbolic"
        assert ENGINE.count_worlds(TIGHT_QUERY, x) == 3**19
        assert ENGINE.exists(TIGHT_QUERY, x)
        assert ENGINE.certain(TIGHT_QUERY, x) == SetValue([])

    def test_small_inputs_answers_match_across_routing(self):
        # In-reach sizes: the auto route (symbolic) and the explicit
        # eager route agree on every query.
        for k in (2, 3, 5):
            x, _t = tight_family(k)
            assert ENGINE.count_worlds(TIGHT_QUERY, x) == len(
                set(ENGINE.possibilities(TIGHT_QUERY, x, backend="eager"))
            )

    def test_first_witness_routing_still_prefers_streaming(self):
        # possibilities() is a first-witness consumer: symbolic only
        # wins when the whole world set is quantified, so the
        # existential route keeps streaming.
        x, _t = tight_family(300)
        q = Compose(OrMap(Normalize()), SetToOr())
        assert ENGINE.choose_backend(q, x, existential=True).backend == "streaming"
        assert ENGINE.choose_backend(
            q, x, existential=True, world_query=True
        ).backend == "symbolic"

    def test_explain_reports_the_symbolic_route(self):
        x, _t = tight_family(19)
        text = ENGINE.explain(TIGHT_QUERY, value=x, existential=True)
        assert "symbolic" in text


class TestTrace:
    def test_supported_plans(self):
        for q in TestBackendConformance.QUERIES:
            assert plan_supports_symbolic(ENGINE.compile(q, True))

    def test_unsupported_plan_refuses(self):
        from repro.lang.set_ops import SetMap
        from repro.lang.morphisms import Id

        # optimize=False: the pipeline would rewrite map(id) to id,
        # which *is* supported.
        assert not plan_supports_symbolic(ENGINE.compile(SetMap(Id()), False))

    def test_trace_preserves_world_sets(self):
        rng = random.Random(11)
        q = Compose(OrMap(Normalize()), SetToOr())
        plan = ENGINE.compile(q, True)
        for _ in range(25):
            v, t = random_orset_value(rng, max_depth=2, max_width=3, min_width=1)
            try:
                surrogate = trace_worlds(plan, v)
            except (SymbolicUnsupported, OrNRAError):
                continue
            assert frozenset(worlds(surrogate)) == frozenset(
                ENGINE.possibilities(q, v, backend="eager")
            )
