"""The tutorial's code examples must actually run and print what they say."""

import doctest
import pathlib

TUTORIAL = pathlib.Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def test_tutorial_doctests():
    # Markdown code fences would otherwise be read as expected output;
    # blank them out and run the remaining >>> examples as one doctest
    # sharing a namespace (imports persist across blocks, like a session).
    text = "\n".join(
        "" if line.strip().startswith("```") else line
        for line in TUTORIAL.read_text().splitlines()
    )
    parser = doctest.DocTestParser()
    test = parser.get_doctest(text, {}, "TUTORIAL.md", str(TUTORIAL), 0)
    runner = doctest.DocTestRunner(
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS
    )
    runner.run(test)
    results = runner.summarize(verbose=False)
    assert results.attempted > 10
    assert results.failed == 0
