"""Property tests: Theorem 5.1 on randomly generated eligible morphisms."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preserve import check_lossless_eligible, verify_losslessness
from repro.gen import random_orset_value, random_value
from repro.morphgen import random_lossless_morphism
from repro.values.measure import has_empty_orset


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000))
def test_generated_morphisms_are_eligible(seed):
    rng = random.Random(seed)
    _v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
    f, out_t = random_lossless_morphism(t, rng, depth=3)
    # The generator's output must be in Theorem 5.1's class at t, and the
    # eligibility checker must agree on the output type.
    assert check_lossless_eligible(f, t) == out_t


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000))
def test_losslessness_on_random_programs(seed):
    """The Theorem 5.1 commuting square on random eligible programs."""
    rng = random.Random(seed)
    v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
    if has_empty_orset(v):
        return
    f, _out_t = random_lossless_morphism(t, rng, depth=3)
    assert verify_losslessness(f, v, t), (f.describe(), str(v), t)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100_000))
def test_losslessness_on_orset_free_inputs(seed):
    """The square also commutes trivially when nothing is disjunctive."""
    rng = random.Random(seed)
    from repro.gen import random_type

    t = random_type(rng, max_depth=3, allow_orset=False)
    v = random_value(t, rng, max_width=2, min_width=0)
    f, _ = random_lossless_morphism(t, rng, depth=3)
    assert verify_losslessness(f, v, t)
