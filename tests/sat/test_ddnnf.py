"""Tests for d-DNNF knowledge compilation (:mod:`repro.sat.ddnnf`)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF, all_assignments, random_cnf
from repro.sat.ddnnf import DAnd, DFalse, DLit, DOr, DTrue, compile_ddnnf
from repro.sat.dpll import count_models, dpll_sat


def brute_models(cnf: CNF) -> list[dict[int, bool]]:
    return [a for a in all_assignments(cnf.n_vars) if cnf.is_satisfied_by(a)]


@st.composite
def small_cnfs(draw):
    n = draw(st.integers(1, 5))
    m = draw(st.integers(0, 10))
    clauses = tuple(
        frozenset(
            draw(
                st.sets(
                    st.integers(1, n).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=1,
                    max_size=3,
                )
            )
        )
        for _ in range(m)
    )
    return CNF(n, clauses)


class TestCompilation:
    def test_empty_formula_is_true(self):
        d = compile_ddnnf(CNF(3, ()))
        assert isinstance(d.root, DTrue)
        assert d.model_count() == 8

    def test_contradiction_is_false(self):
        d = compile_ddnnf(CNF(2, (frozenset({1}), frozenset({-1}))))
        assert isinstance(d.root, DFalse)
        assert not d.satisfiable()
        assert d.model_count() == 0

    def test_unit_is_literal(self):
        d = compile_ddnnf(CNF(1, (frozenset({1}),)))
        assert isinstance(d.root, DLit)
        assert d.model_count() == 1

    def test_node_kinds_expose_vars(self):
        d = compile_ddnnf(
            CNF(3, (frozenset({1, 2}), frozenset({-1, 3})))
        )
        assert d.root.vars <= frozenset({1, 2, 3})

    @settings(max_examples=120, deadline=None)
    @given(small_cnfs())
    def test_decomposability_invariant(self, cnf):
        assert compile_ddnnf(cnf).is_decomposable()

    def test_component_sharing_keeps_circuits_small(self):
        # k independent 3-way one-hot sites: the circuit grows linearly
        # in k, never like the 3^k model count.
        def site(base):
            v = [base, base + 1, base + 2]
            return (
                frozenset(v),
                frozenset({-v[0], -v[1]}),
                frozenset({-v[0], -v[2]}),
                frozenset({-v[1], -v[2]}),
            )

        clauses = tuple(c for i in range(30) for c in site(3 * i + 1))
        d = compile_ddnnf(CNF(90, clauses))
        assert d.model_count() == 3**30
        assert d.node_count() < 90 * 12


class TestQueries:
    @settings(max_examples=120, deadline=None)
    @given(small_cnfs())
    def test_model_count_matches_brute_force(self, cnf):
        assert compile_ddnnf(cnf).model_count() == len(brute_models(cnf))

    @settings(max_examples=120, deadline=None)
    @given(small_cnfs())
    def test_satisfiable_matches_cdcl(self, cnf):
        assert compile_ddnnf(cnf).satisfiable() == dpll_sat(cnf)

    @settings(max_examples=80, deadline=None)
    @given(small_cnfs())
    def test_iter_models_is_exactly_the_model_set(self, cnf):
        d = compile_ddnnf(cnf)
        models = list(d.iter_models())
        # every yielded model satisfies, they are pairwise distinct, and
        # there are exactly model_count() of them
        keys = {tuple(sorted(m.items())) for m in models}
        assert len(keys) == len(models) == d.model_count()
        for m in models:
            assert cnf.is_satisfied_by(m)

    def test_iter_models_is_lazy(self):
        # 40 unconstrained variables: 2^40 models, first one instant.
        d = compile_ddnnf(CNF(40, ()))
        first = next(iter(d.iter_models()))
        assert len(first) == 40

    def test_partial_models_cover_paths_only(self):
        d = compile_ddnnf(CNF(3, (frozenset({1}),)))
        (partial,) = d.iter_models(partial=True)
        assert partial == {1: True}  # vars 2, 3 left free

    def test_counter_agrees_with_dpll_counter(self):
        rng = random.Random(5)
        for _ in range(40):
            cnf = random_cnf(5, rng.randint(1, 10), 2, rng)
            assert compile_ddnnf(cnf).model_count() == count_models(cnf)


class TestConditioning:
    @settings(max_examples=80, deadline=None)
    @given(small_cnfs(), st.data())
    def test_conditioning_counts_match_brute_force(self, cnf, data):
        var = data.draw(st.integers(1, cnf.n_vars))
        positive = data.draw(st.booleans())
        lit = var if positive else -var
        conditioned = compile_ddnnf(cnf).condition([lit])
        expected = sum(
            1
            for a in all_assignments(cnf.n_vars)
            if a[var] == positive and cnf.is_satisfied_by(a)
        )
        assert conditioned.model_count() == expected

    def test_condition_to_false(self):
        d = compile_ddnnf(CNF(1, (frozenset({1}),)))
        assert not d.condition([-1]).satisfiable()

    def test_condition_is_still_decomposable(self):
        cnf = CNF(4, (frozenset({1, 2}), frozenset({-2, 3}), frozenset({3, 4})))
        assert compile_ddnnf(cnf).condition([2]).is_decomposable()


class TestNodeStructure:
    def test_and_or_nodes_constructed(self):
        # (1|2) & (3|4): two independent components under one AND.
        d = compile_ddnnf(CNF(4, (frozenset({1, 2}), frozenset({3, 4}))))
        assert isinstance(d.root, DAnd)
        assert all(isinstance(k, DOr) for k in d.root.kids)
        assert d.model_count() == 9
