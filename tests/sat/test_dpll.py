"""Tests for the CDCL solver and the exact model counter."""

import random
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF, all_assignments, random_cnf
from repro.sat.dpll import count_models, dpll_sat, dpll_solve


def brute_force_sat(cnf: CNF) -> bool:
    return any(cnf.is_satisfied_by(a) for a in all_assignments(cnf.n_vars))


def brute_force_count(cnf: CNF) -> int:
    return sum(1 for a in all_assignments(cnf.n_vars) if cnf.is_satisfied_by(a))


@st.composite
def small_cnfs(draw):
    n = draw(st.integers(1, 5))
    m = draw(st.integers(0, 12))
    clauses = tuple(
        frozenset(
            draw(
                st.sets(
                    st.integers(1, n).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=1,
                    max_size=3,
                )
            )
        )
        for _ in range(m)
    )
    return CNF(n, clauses)


class TestBasics:
    def test_empty_formula_sat(self):
        assert dpll_sat(CNF(1, ()))

    def test_unit_clause(self):
        assert dpll_solve(CNF(1, (frozenset({1}),))) == {1: True}

    def test_contradiction(self):
        assert not dpll_sat(CNF(1, (frozenset({1}), frozenset({-1}))))

    def test_simple_3sat(self):
        cnf = CNF(3, (frozenset({1, 2}), frozenset({-1, 3}), frozenset({-2, -3})))
        model = dpll_solve(cnf)
        assert model is not None
        assert cnf.is_satisfied_by({v: model.get(v, False) for v in (1, 2, 3)})

    def test_unsat_pigeonhole_style(self):
        # x1..x? encode: (1)(−1∨2)(−2) is unsatisfiable.
        cnf = CNF(2, (frozenset({1}), frozenset({-1, 2}), frozenset({-2})))
        assert not dpll_sat(cnf)


class TestAgainstBruteForce:
    def test_random_instances(self):
        rng = random.Random(99)
        for _ in range(60):
            n = rng.randint(2, 5)
            m = rng.randint(1, 10)
            k = rng.randint(1, min(3, n))
            cnf = random_cnf(n, m, k, rng)
            assert dpll_sat(cnf) == brute_force_sat(cnf)

    def test_models_actually_satisfy(self):
        rng = random.Random(123)
        for _ in range(40):
            cnf = random_cnf(4, 6, 2, rng)
            model = dpll_solve(cnf)
            if model is not None:
                total = {v: model.get(v, False) for v in range(1, 5)}
                assert cnf.is_satisfied_by(total)

    @settings(max_examples=150, deadline=None)
    @given(small_cnfs())
    def test_sat_matches_brute_force(self, cnf):
        assert dpll_sat(cnf) == brute_force_sat(cnf)

    @settings(max_examples=150, deadline=None)
    @given(small_cnfs())
    def test_count_models_matches_brute_force(self, cnf):
        assert count_models(cnf) == brute_force_count(cnf)

    @settings(max_examples=100, deadline=None)
    @given(small_cnfs())
    def test_solutions_are_models(self, cnf):
        model = dpll_solve(cnf)
        if model is None:
            assert not brute_force_sat(cnf)
        else:
            total = {v: model.get(v, False) for v in range(1, cnf.n_vars + 1)}
            assert cnf.is_satisfied_by(total)


class TestIterativeSolver:
    def test_deep_implication_chain_needs_no_recursion(self):
        # The CDCL loop is an explicit trail, not Python recursion: a
        # 3000-variable unit-propagation chain must solve far below the
        # default recursion limit.  (The old recursive DPLL overflowed.)
        n = 3000
        clauses = [frozenset({1})]
        clauses += [frozenset({-i, i + 1}) for i in range(1, n)]
        cnf = CNF(n, tuple(clauses))
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(150)
            model = dpll_solve(cnf)
        finally:
            sys.setrecursionlimit(limit)
        assert model is not None
        assert all(model[i] for i in range(1, n + 1))

    def test_deep_chain_unsat(self):
        n = 2000
        clauses = [frozenset({1})]
        clauses += [frozenset({-i, i + 1}) for i in range(1, n)]
        clauses.append(frozenset({-n}))
        cnf = CNF(n, tuple(clauses))
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(150)
            assert not dpll_sat(cnf)
        finally:
            sys.setrecursionlimit(limit)

    def test_partial_model_contract(self):
        # Solutions are partial: variables not needed to satisfy every
        # clause stay unassigned (callers treat them as free).
        assert dpll_solve(CNF(5, (frozenset({1}),))) == {1: True}

    def test_conflict_learning_on_crossed_implications(self):
        # A formula where plain DPLL backtracks chronologically many
        # times; any solver must still answer UNSAT.
        clauses = (
            frozenset({1, 2}),
            frozenset({1, -2}),
            frozenset({-1, 3}),
            frozenset({-1, -3, 4}),
            frozenset({-4, 5}),
            frozenset({-4, -5}),
        )
        assert not dpll_sat(CNF(5, clauses))


class TestModelCounter:
    def test_empty_formula_counts_all_assignments(self):
        assert count_models(CNF(4, ())) == 16

    def test_unit_halves_the_space(self):
        assert count_models(CNF(4, (frozenset({2}),))) == 8

    def test_contradiction_counts_zero(self):
        assert count_models(CNF(3, (frozenset({1}), frozenset({-1})))) == 0

    def test_monotone_chain(self):
        # x1 -> x2 -> ... -> xn has n+1 models (the monotone prefixes).
        n = 12
        clauses = tuple(frozenset({-i, i + 1}) for i in range(1, n))
        assert count_models(CNF(n, clauses)) == n + 1

    def test_independent_components_multiply(self):
        # (x1 | x2) and (x3 | x4) are var-disjoint: 3 * 3 models.
        cnf = CNF(4, (frozenset({1, 2}), frozenset({3, 4})))
        assert count_models(cnf) == 9

    def test_free_variables_double_the_count(self):
        cnf = CNF(6, (frozenset({1, 2}),))  # vars 3..6 unconstrained
        assert count_models(cnf) == 3 * 16
