"""Tests for the baseline DPLL solver."""

import random

from repro.sat.cnf import CNF, all_assignments, random_cnf
from repro.sat.dpll import dpll_sat, dpll_solve


def brute_force_sat(cnf: CNF) -> bool:
    return any(cnf.is_satisfied_by(a) for a in all_assignments(cnf.n_vars))


class TestBasics:
    def test_empty_formula_sat(self):
        assert dpll_sat(CNF(1, ()))

    def test_unit_clause(self):
        assert dpll_solve(CNF(1, (frozenset({1}),))) == {1: True}

    def test_contradiction(self):
        assert not dpll_sat(CNF(1, (frozenset({1}), frozenset({-1}))))

    def test_simple_3sat(self):
        cnf = CNF(3, (frozenset({1, 2}), frozenset({-1, 3}), frozenset({-2, -3})))
        model = dpll_solve(cnf)
        assert model is not None
        assert cnf.is_satisfied_by({v: model.get(v, False) for v in (1, 2, 3)})

    def test_unsat_pigeonhole_style(self):
        # x1..x? encode: (1)(−1∨2)(−2) is unsatisfiable.
        cnf = CNF(2, (frozenset({1}), frozenset({-1, 2}), frozenset({-2})))
        assert not dpll_sat(cnf)


class TestAgainstBruteForce:
    def test_random_instances(self):
        rng = random.Random(99)
        for _ in range(60):
            n = rng.randint(2, 5)
            m = rng.randint(1, 10)
            k = rng.randint(1, min(3, n))
            cnf = random_cnf(n, m, k, rng)
            assert dpll_sat(cnf) == brute_force_sat(cnf)

    def test_models_actually_satisfy(self):
        rng = random.Random(123)
        for _ in range(40):
            cnf = random_cnf(4, 6, 2, rng)
            model = dpll_solve(cnf)
            if model is not None:
                total = {v: model.get(v, False) for v in range(1, 5)}
                assert cnf.is_satisfied_by(total)
