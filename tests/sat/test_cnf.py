"""Tests for the CNF encoding of Section 6's hardness result."""

import random

import pytest

from repro.errors import OrNRAValueError
from repro.sat.cnf import (
    CNF,
    all_assignments,
    assignment_satisfies,
    decode_choice,
    encode_cnf,
    encoded_type,
    fd_predicate,
    random_cnf,
    satisfies_fd,
)
from repro.types.parse import format_type
from repro.values.values import (
    FALSE,
    TRUE,
    Atom,
    OrSetValue,
    Pair,
    SetValue,
    boolean,
    check_type,
    vset,
)


def lit(v, pol):
    return Pair(Atom("var", v), boolean(pol))


class TestCNFModel:
    def test_clause_validation(self):
        with pytest.raises(OrNRAValueError):
            CNF(2, (frozenset({3}),))
        with pytest.raises(OrNRAValueError):
            CNF(2, (frozenset({0}),))

    def test_is_satisfied_by(self):
        cnf = CNF(2, (frozenset({1, -2}),))
        assert cnf.is_satisfied_by({1: True, 2: True})
        assert not cnf.is_satisfied_by({1: False, 2: True})

    def test_random_cnf_shape(self):
        rng = random.Random(1)
        cnf = random_cnf(5, 8, 3, rng)
        assert len(cnf) == 8
        assert all(len(c) == 3 for c in cnf)
        assert all(abs(l) <= 5 for c in cnf for l in c)

    def test_random_cnf_width_check(self):
        with pytest.raises(OrNRAValueError):
            random_cnf(2, 1, 3, random.Random(0))

    def test_random_cnf_seed_reproducibility(self):
        a = random_cnf(6, 10, 3, seed=42)
        b = random_cnf(6, 10, 3, seed=42)
        c = random_cnf(6, 10, 3, seed=43)
        assert a.clauses == b.clauses
        assert a.clauses != c.clauses

    def test_random_cnf_rejects_rng_and_seed_together(self):
        with pytest.raises(OrNRAValueError):
            random_cnf(3, 2, 2, random.Random(0), seed=1)


class TestEncoding:
    def test_encoded_type(self):
        assert format_type(encoded_type()) == "{<var * bool>}"

    def test_encoding_inhabits_type(self):
        cnf = random_cnf(4, 5, 2, random.Random(2))
        assert check_type(encode_cnf(cnf), encoded_type())

    def test_clause_becomes_orset(self):
        cnf = CNF(2, (frozenset({1, -2}),))
        encoded = encode_cnf(cnf)
        assert encoded == SetValue([OrSetValue([lit(1, True), lit(2, False)])])

    def test_duplicate_clauses_collapse_safely(self):
        cnf = CNF(1, (frozenset({1}), frozenset({1})))
        assert len(encode_cnf(cnf)) == 1  # same satisfiability


class TestFDPredicate:
    def test_consistent_choice(self):
        assert satisfies_fd(vset(lit(1, True), lit(2, False)))

    def test_violating_choice(self):
        assert not satisfies_fd(vset(lit(1, True), lit(1, False)))

    def test_morphism_form(self):
        p = fd_predicate()
        assert p(vset(lit(1, True))) == TRUE
        assert p(vset(lit(1, True), lit(1, False))) == FALSE

    def test_decode_choice(self):
        choice = vset(lit(1, True), lit(3, False))
        assert decode_choice(choice) == {1: True, 3: False}

    def test_decode_rejects_violations(self):
        with pytest.raises(OrNRAValueError):
            decode_choice(vset(lit(1, True), lit(1, False)))


class TestAssignments:
    def test_all_assignments_count(self):
        assert len(list(all_assignments(3))) == 8

    def test_all_assignments_is_lazy(self):
        # A generator, not a list: taking one assignment of 2^200 must
        # return immediately (materializing would never finish).
        stream = all_assignments(200)
        first = next(iter(stream))
        assert len(first) == 200 and not any(first.values())

    def test_assignment_satisfies_free_vars_default_false(self):
        cnf = CNF(2, (frozenset({-2}),))
        assert assignment_satisfies(cnf, {})  # var 2 defaults to False
