"""Tests for SAT as an existential query over normal forms (Section 6)."""

import random

import pytest

from repro.sat.cnf import CNF, assignment_satisfies, random_cnf
from repro.sat.dpll import dpll_sat
from repro.sat.via_normalization import sat_eager, sat_lazy, sat_witness


class TestReductionCorrectness:
    def test_satisfiable_example(self):
        cnf = CNF(2, (frozenset({1, 2}), frozenset({-1})))
        assert sat_lazy(cnf)
        assert sat_eager(cnf)

    def test_unsatisfiable_example(self):
        cnf = CNF(1, (frozenset({1}), frozenset({-1})))
        assert not sat_lazy(cnf)
        assert not sat_eager(cnf)

    def test_empty_clause_set(self):
        assert sat_lazy(CNF(1, ()))

    @pytest.mark.parametrize("seed", range(25))
    def test_agreement_with_dpll(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        cnf = random_cnf(n, rng.randint(1, 2 * n), min(3, n), rng)
        expected = dpll_sat(cnf)
        assert sat_lazy(cnf) == expected
        assert sat_eager(cnf) == expected


class TestWitnesses:
    def test_witness_satisfies(self):
        rng = random.Random(77)
        for _ in range(20):
            cnf = random_cnf(4, 5, 2, rng)
            model = sat_witness(cnf)
            if model is None:
                assert not dpll_sat(cnf)
            else:
                assert assignment_satisfies(cnf, model)

    def test_witness_none_when_unsat(self):
        cnf = CNF(1, (frozenset({1}), frozenset({-1})))
        assert sat_witness(cnf) is None


class TestHardnessShape:
    def test_normal_form_is_exponential_for_disjoint_clauses(self):
        """m(encode(psi)) = prod |clauses| — the source of hardness."""
        from repro.core.costs import m_value
        from repro.sat.cnf import encode_cnf, encoded_type

        # 3 disjoint 2-literal clauses -> 8 possibilities.
        cnf = CNF(
            6,
            (frozenset({1, 2}), frozenset({3, 4}), frozenset({5, 6})),
        )
        assert m_value(encode_cnf(cnf), encoded_type()) == 8
