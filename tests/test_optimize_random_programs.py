"""Optimizer soundness over randomly generated well-typed programs.

`tests/lang/test_optimize.py` checks each rule on hand-picked shapes;
here the program space is the random Theorem 5.1-eligible class from
:mod:`repro.morphgen` — arbitrary compositions of maps, monad operators
and the interaction combinators — so any unsound rule interaction shows
up as an output mismatch.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine
from repro.engine.passes import DEFAULT_PASSES, default_pipeline
from repro.gen import random_orset_value, random_value
from repro.lang.optimize import cost, optimize
from repro.morphgen import random_lossless_morphism


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 100_000))
def test_optimized_random_programs_agree(seed):
    rng = random.Random(seed)
    v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
    f, _ = random_lossless_morphism(t, rng, depth=4)
    opt = optimize(f)
    assert opt(v) == f(v), (f.describe(), opt.describe(), str(v))


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 100_000))
def test_optimize_never_grows_random_programs(seed):
    rng = random.Random(seed)
    _v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
    f, _ = random_lossless_morphism(t, rng, depth=4)
    assert cost(optimize(f)) <= cost(f)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_optimize_is_idempotent_on_random_programs(seed):
    rng = random.Random(seed)
    _v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
    f, _ = random_lossless_morphism(t, rng, depth=4)
    once = optimize(f)
    assert optimize(once) == once


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 100_000))
def test_every_pass_and_pipeline_preserve_semantics(seed):
    """Each optimizer pass alone — and the full default pipeline — agrees
    with the direct interpreter on random Theorem 5.1-eligible programs."""
    rng = random.Random(seed)
    v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
    f, _ = random_lossless_morphism(t, rng, depth=4)
    expected = f(v)
    for pipeline_pass in DEFAULT_PASSES:
        rewritten = pipeline_pass.run(f)
        assert rewritten(v) == expected, (pipeline_pass.name, f.describe())
    assert default_pipeline().run(f)(v) == expected


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_engine_run_agrees_with_direct_interpreter(seed):
    """engine.run (both backends, interned or not) matches direct p(v)."""
    rng = random.Random(seed)
    v, t = random_orset_value(rng, max_depth=3, max_width=2, min_width=1)
    f, _ = random_lossless_morphism(t, rng, depth=4)
    expected = f(v)
    eng = Engine()
    assert eng.run(f, v) == expected
    assert eng.run(f, v, backend="streaming") == expected
    assert eng.run(f, v, intern=False, optimize=False) == expected


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 100_000))
def test_optimized_programs_agree_on_orset_free_inputs(seed):
    from repro.gen import random_type

    rng = random.Random(seed)
    t = random_type(rng, max_depth=3, allow_orset=False)
    v = random_value(t, rng, max_width=2, min_width=0)
    f, _ = random_lossless_morphism(t, rng, depth=4)
    assert optimize(f)(v) == f(v)
