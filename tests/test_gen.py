"""Tests for the workload generators."""

import random

from repro.gen import random_atom, random_orset_value, random_type, random_value
from repro.types.kinds import BOOL, INT, contains_orset, type_height
from repro.values.values import check_type


class TestRandomType:
    def test_depth_bound(self, rng):
        for _ in range(50):
            t = random_type(rng, max_depth=3)
            assert type_height(t) <= 3

    def test_orset_suppression(self, rng):
        for _ in range(50):
            t = random_type(rng, max_depth=4, allow_orset=False)
            assert not contains_orset(t)


class TestRandomValue:
    def test_values_typecheck(self, rng):
        for _ in range(50):
            t = random_type(rng, max_depth=3)
            v = random_value(t, rng)
            assert check_type(v, t)

    def test_min_width_respected(self, rng):
        from repro.types.kinds import SetType

        for _ in range(20):
            v = random_value(SetType(INT), rng, max_width=3, min_width=1)
            assert len(v) >= 1

    def test_atoms(self, rng):
        assert random_atom(INT, rng).base == "int"
        assert random_atom(BOOL, rng).base == "bool"


class TestRandomOrsetValue:
    def test_always_contains_orsets(self, rng):
        for _ in range(30):
            value, t = random_orset_value(rng)
            assert contains_orset(t)
            assert check_type(value, t)

    def test_reproducible_from_seed(self):
        a = random_orset_value(random.Random(5))
        b = random_orset_value(random.Random(5))
        assert a == b
