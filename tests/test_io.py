"""Tests for serialization (Section 7's I/O facilities)."""

import pytest
from hypothesis import given

from repro.errors import OrNRAValueError
from repro.io import (
    dumps_type,
    dumps_value,
    loads_type,
    loads_value,
    value_from_json,
    value_from_text,
    value_to_json,
    value_to_text,
)
from repro.values.values import vbag, vorset, vpair, vset

from tests.strategies import object_types, typed_values


class TestJsonRoundTrip:
    @given(typed_values(max_depth=3, max_width=3))
    def test_round_trip(self, pair):
        value, _ = pair
        assert loads_value(dumps_value(value)) == value

    def test_json_shape(self):
        data = value_to_json(vpair(1, vorset(True)))
        assert data == {
            "pair": [
                {"atom": "int", "value": 1},
                {"orset": [{"atom": "bool", "value": True}]},
            ]
        }

    def test_bag_round_trip(self):
        assert value_from_json(value_to_json(vbag(1, 1))) == vbag(1, 1)

    def test_malformed_json_rejected(self):
        with pytest.raises(OrNRAValueError):
            value_from_json({"mystery": 1})
        with pytest.raises(OrNRAValueError):
            value_from_json(42)


class TestTextRoundTrip:
    @given(typed_values(max_depth=3, max_width=3))
    def test_round_trip(self, pair):
        value, _ = pair
        assert value_from_text(value_to_text(value)) == value

    def test_example(self):
        assert value_from_text("{<1, 2>}") == vset(vorset(1, 2))


class TestTypeRoundTrip:
    @given(object_types(max_depth=4))
    def test_round_trip(self, t):
        assert loads_type(dumps_type(t)) == t
