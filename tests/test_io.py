"""Tests for serialization (Section 7's I/O facilities)."""

import pytest
from hypothesis import given

from repro.errors import OrNRAValueError
from repro.io import (
    dumps_type,
    dumps_value,
    loads_type,
    loads_value,
    value_from_json,
    value_from_text,
    value_to_json,
    value_to_text,
)
from repro.values.values import vbag, vorset, vpair, vset

from tests.strategies import object_types, typed_values


class TestJsonRoundTrip:
    @given(typed_values(max_depth=3, max_width=3))
    def test_round_trip(self, pair):
        value, _ = pair
        assert loads_value(dumps_value(value)) == value

    def test_json_shape(self):
        data = value_to_json(vpair(1, vorset(True)))
        assert data == {
            "pair": [
                {"atom": "int", "value": 1},
                {"orset": [{"atom": "bool", "value": True}]},
            ]
        }

    def test_bag_round_trip(self):
        assert value_from_json(value_to_json(vbag(1, 1))) == vbag(1, 1)

    def test_malformed_json_rejected(self):
        with pytest.raises(OrNRAValueError):
            value_from_json({"mystery": 1})
        with pytest.raises(OrNRAValueError):
            value_from_json(42)


class TestMalformedFragments:
    """Regression: decode failures raise the domain error, never a bare
    ValueError/TypeError from the decoding plumbing."""

    def test_short_pair_rejected(self):
        with pytest.raises(OrNRAValueError, match="pair"):
            value_from_json({"pair": [{"atom": "int", "value": 1}]})

    def test_long_pair_rejected(self):
        one = {"atom": "int", "value": 1}
        with pytest.raises(OrNRAValueError, match="pair"):
            value_from_json({"pair": [one, one, one]})

    def test_non_list_pair_rejected(self):
        with pytest.raises(OrNRAValueError, match="pair"):
            value_from_json({"pair": {"left": 1}})

    @pytest.mark.parametrize("key", ["set", "orset", "bag"])
    def test_non_list_collection_rejected(self, key):
        with pytest.raises(OrNRAValueError, match=key):
            value_from_json({key: 7})

    @pytest.mark.parametrize("key", ["set", "orset", "bag"])
    def test_non_dict_element_rejected(self, key):
        with pytest.raises(OrNRAValueError):
            value_from_json({key: [3]})

    def test_atom_without_value_rejected(self):
        with pytest.raises(OrNRAValueError, match="atom"):
            value_from_json({"atom": "int"})

    def test_non_scalar_atom_value_rejected(self):
        with pytest.raises(OrNRAValueError, match="scalar"):
            value_from_json({"atom": "int", "value": [1, 2]})
        with pytest.raises(OrNRAValueError, match="scalar"):
            value_from_json({"set": [{"atom": "int", "value": {"x": 1}}]})
        with pytest.raises(OrNRAValueError, match="scalar"):
            value_from_json({"atom": "int", "value": None})

    def test_loads_value_wraps_decode_errors(self):
        from repro.io import loads_value

        with pytest.raises(OrNRAValueError, match="malformed"):
            loads_value("{not json")

    def test_error_names_offending_fragment(self):
        with pytest.raises(OrNRAValueError, match=r"\[1\]"):
            value_from_json({"pair": [1]})


class TestTextRoundTrip:
    @given(typed_values(max_depth=3, max_width=3))
    def test_round_trip(self, pair):
        value, _ = pair
        assert value_from_text(value_to_text(value)) == value

    def test_example(self):
        assert value_from_text("{<1, 2>}") == vset(vorset(1, 2))


class TestTypeRoundTrip:
    @given(object_types(max_depth=4))
    def test_round_trip(self, t):
        assert loads_type(dumps_type(t)) == t


class TestBatchedEndpoints:
    def test_run_json_many_matches_run_json(self):
        from repro.io import run_json, run_json_many

        query = "ormap(map(pi_1)) o alpha"
        batch = [
            value_to_json(vset(vorset(vpair(1, 10), vpair(2, 20)))),
            value_to_json(vset(vorset(vpair(3, 30)))),
        ]
        assert run_json_many(query, batch) == [run_json(query, v) for v in batch]

    def test_run_json_many_handles_duplicates_and_order(self):
        from repro.io import run_json, run_json_many

        a = value_to_json(vset(vorset(vpair(1, 10))))
        b = value_to_json(vset(vorset(vpair(2, 20))))
        batch = [a, b, a, a, b]
        query = "ormap(map(pi_1)) o alpha"
        assert run_json_many(query, batch) == [run_json(query, v) for v in batch]

    def test_run_json_many_empty_batch(self):
        from repro.io import run_json_many

        assert run_json_many("normalize", []) == []

    def test_run_json_many_pins_nothing_in_default_engine(self):
        from repro.engine import DEFAULT_ENGINE
        from repro.io import run_json_many

        before = len(DEFAULT_ENGINE.interner)
        run_json_many("normalize", [value_to_json(vset(vorset(7000, 7001)))])
        assert len(DEFAULT_ENGINE.interner) == before

    def test_run_text_many_matches_run_text(self):
        from repro.io import run_text, run_text_many

        query = "ormap(map(pi_1)) o alpha"
        texts = ["{<(1, 2), (3, 4)>}", "{<(5, 6)>}"]
        assert run_text_many(query, texts) == [run_text(query, t) for t in texts]

    def test_run_json_many_backend_selectable(self):
        from repro.io import run_json, run_json_many

        batch = [value_to_json(vset(vorset(vpair(1, 10), vpair(2, 20))))]
        query = "ormap(map(pi_1)) o alpha"
        for backend in ("eager", "streaming", "parallel"):
            assert run_json_many(query, batch, backend=backend) == [
                run_json(query, batch[0])
            ]
