"""Shared fixtures for the test suite."""

import os
import pathlib
import random
import sys

import pytest

# The example scripts run as subprocesses (tests/test_examples.py); make
# sure they can resolve `repro` even when the suite itself found it via
# pytest's `pythonpath` setting rather than an installed package or an
# exported PYTHONPATH.
_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_existing = os.environ.get("PYTHONPATH", "")
if _SRC not in _existing.split(os.pathsep):
    os.environ["PYTHONPATH"] = _SRC + (os.pathsep + _existing if _existing else "")


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; per-test reseeding keeps failures reproducible."""
    return random.Random(0xC0FFEE)
