"""Shared fixtures for the test suite."""

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; per-test reseeding keeps failures reproducible."""
    return random.Random(0xC0FFEE)
