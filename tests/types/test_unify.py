"""Tests for type unification (the Section 2 inference substrate)."""

import pytest

from repro.errors import OrNRATypeError
from repro.types.kinds import (
    BOOL,
    INT,
    FuncType,
    OrSetType,
    ProdType,
    SetType,
    TypeVar,
)
from repro.types.unify import (
    FreshVars,
    apply_subst,
    compose_subst,
    free_type_vars,
    rename_apart,
    unify,
    unify_many,
)

A, B, C = TypeVar("a"), TypeVar("b"), TypeVar("c")


class TestUnify:
    def test_identical_types(self):
        assert unify(SetType(INT), SetType(INT)) == {}

    def test_variable_binding(self):
        subst = unify(A, SetType(INT))
        assert apply_subst(subst, A) == SetType(INT)

    def test_symmetric_binding(self):
        subst = unify(SetType(INT), A)
        assert apply_subst(subst, A) == SetType(INT)

    def test_structural_descent(self):
        subst = unify(ProdType(A, B), ProdType(INT, SetType(BOOL)))
        assert apply_subst(subst, A) == INT
        assert apply_subst(subst, B) == SetType(BOOL)

    def test_chained_variables(self):
        subst = unify_many([(A, B), (B, INT)])
        assert apply_subst(subst, A) == INT

    def test_clash_raises(self):
        with pytest.raises(OrNRATypeError):
            unify(SetType(INT), OrSetType(INT))

    def test_base_clash_raises(self):
        with pytest.raises(OrNRATypeError):
            unify(INT, BOOL)

    def test_occurs_check(self):
        with pytest.raises(OrNRATypeError):
            unify(A, SetType(A))

    def test_function_types(self):
        subst = unify(FuncType(A, B), FuncType(INT, SetType(A)))
        assert apply_subst(subst, B) == SetType(INT)


class TestSubstitutions:
    def test_apply_subst_recursive(self):
        subst = {A: SetType(B), B: INT}
        assert apply_subst(subst, A) == SetType(INT)

    def test_compose_subst(self):
        inner = {A: B}
        outer = {B: INT}
        composed = compose_subst(outer, inner)
        assert apply_subst(composed, A) == INT

    def test_free_type_vars(self):
        assert free_type_vars(ProdType(A, SetType(B))) == {A, B}
        assert free_type_vars(INT) == set()


class TestFreshVars:
    def test_fresh_are_distinct(self):
        fresh = FreshVars()
        assert fresh.fresh() != fresh.fresh()

    def test_rename_apart_consistent(self):
        fresh = FreshVars("z")
        renamed = rename_apart(ProdType(A, A), fresh)
        assert isinstance(renamed, ProdType)
        assert renamed.left == renamed.right
        assert renamed.left != A
