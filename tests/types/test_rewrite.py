"""Tests for the type rewrite system — Proposition 4.1.

The proposition claims termination, Church–Rosserness and the closed form
``nf(t) = <strip(t)>``.  Confluence is verified *exhaustively* on random
small types by exploring the full rewrite graph.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NormalizationError
from repro.types.kinds import BOOL, INT, BagType, OrSetType, SetType, contains_orset
from repro.types.parse import parse_type
from repro.types.rewrite import (
    OR_FLATTEN,
    PAIR_LEFT,
    PAIR_RIGHT,
    SET_ALPHA,
    all_normal_forms,
    apply_rewrite,
    innermost_strategy,
    is_normal_type,
    nf_type,
    normalize_type,
    outermost_strategy,
    phi,
    random_strategy,
    redexes,
    replace_at,
    subtype_at,
)

from tests.strategies import object_types


class TestPositions:
    def test_subtype_at_root(self):
        t = parse_type("{<int>}")
        assert subtype_at(t, ()) == t

    def test_subtype_at_nested(self):
        t = parse_type("{<int>} * <bool>")
        assert subtype_at(t, (0, 0)) == OrSetType(INT)
        assert subtype_at(t, (1,)) == OrSetType(BOOL)

    def test_replace_at(self):
        t = parse_type("{<int>}")
        assert replace_at(t, (0,), BOOL) == SetType(BOOL)

    def test_invalid_position_raises(self):
        from repro.errors import OrNRATypeError

        with pytest.raises(OrNRATypeError):
            subtype_at(INT, (0,))


class TestRules:
    def test_pair_right(self):
        t = parse_type("int * <bool>")
        assert apply_rewrite(t, (), PAIR_RIGHT) == parse_type("<int * bool>")

    def test_pair_left(self):
        t = parse_type("<int> * bool")
        assert apply_rewrite(t, (), PAIR_LEFT) == parse_type("<int * bool>")

    def test_or_flatten(self):
        assert apply_rewrite(parse_type("<<int>>"), (), OR_FLATTEN) == parse_type(
            "<int>"
        )

    def test_set_alpha(self):
        assert apply_rewrite(parse_type("{<int>}"), (), SET_ALPHA) == parse_type(
            "<{int}>"
        )

    def test_set_alpha_on_bags(self):
        assert apply_rewrite(
            BagType(OrSetType(INT)), (), SET_ALPHA
        ) == OrSetType(BagType(INT))

    def test_rule_not_applicable_raises(self):
        with pytest.raises(NormalizationError):
            apply_rewrite(parse_type("{int}"), (), SET_ALPHA)

    def test_both_pair_rules_at_same_node(self):
        t = parse_type("<int> * <bool>")
        rules = {rule for pos, rule in redexes(t) if pos == ()}
        assert rules == {PAIR_LEFT, PAIR_RIGHT}


class TestNormalForms:
    @pytest.mark.parametrize(
        "src, expected",
        [
            ("int", "int"),
            ("{int * bool}", "{int * bool}"),
            ("<int>", "<int>"),
            ("{<int>}", "<{int}>"),
            ("{<int>} * <int>", "<{int} * int>"),
            ("<<{<bool * <int>>}>>", "<{bool * int}>"),
            ("{{<int>}}", "<{{int}}>"),
        ],
    )
    def test_closed_form_matches_rewriting(self, src, expected):
        t = parse_type(src)
        rewritten, _ = normalize_type(t)
        assert rewritten == parse_type(expected)
        assert nf_type(t) == parse_type(expected)

    def test_normal_form_shape(self):
        # Or-sets occur only as the outermost constructor (Prop 4.1).
        t = parse_type("{<int>} * (<bool> * {int})")
        nf, _ = normalize_type(t)
        assert isinstance(nf, OrSetType)
        assert not contains_orset(nf.elem)

    def test_is_normal_type(self):
        assert is_normal_type(parse_type("<{int} * bool>"))
        assert not is_normal_type(parse_type("{<int>}"))

    @given(object_types(max_depth=4))
    def test_closed_form_agrees_with_rewriting(self, t):
        assert normalize_type(t)[0] == nf_type(t)


class TestTermination:
    @given(object_types(max_depth=4))
    def test_phi_strictly_decreases(self, t):
        current = t
        previous = phi(current)
        for _ in range(200):
            options = redexes(current)
            if not options:
                break
            pos, rule = options[0]
            current = apply_rewrite(current, pos, rule)
            now = phi(current)
            assert now < previous
            previous = now
        else:
            pytest.fail("rewriting did not terminate within 200 steps")

    def test_phi_zero_iff_orset_free_or_outer(self):
        assert phi(parse_type("{int}")) == 0
        assert phi(parse_type("<int>")) == 1
        assert phi(parse_type("{<int>}")) == 2


class TestConfluence:
    @given(object_types(max_depth=3))
    @settings(max_examples=40, deadline=None)
    def test_all_paths_reach_unique_normal_form(self, t):
        forms = all_normal_forms(t, max_nodes=3000)
        assert forms == {nf_type(t)}

    def test_critical_pair_example(self):
        # ({<t>}) inside < > : two overlapping redexes.
        t = parse_type("<{<int>}>")
        assert all_normal_forms(t) == {parse_type("<{int}>")}

    @given(object_types(max_depth=4), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_strategies_agree(self, t, seed):
        inner, _ = normalize_type(t, innermost_strategy)
        outer, _ = normalize_type(t, outermost_strategy)
        rand, _ = normalize_type(t, random_strategy(random.Random(seed)))
        assert inner == outer == rand

    def test_trace_replays(self):
        t = parse_type("{<int>} * <bool>")
        nf, trace = normalize_type(t)
        current = t
        for pos, rule in trace:
            current = apply_rewrite(current, pos, rule)
        assert current == nf
