"""Tests for the type-expression parser and printer."""

import pytest
from hypothesis import given

from repro.errors import OrNRAParseError
from repro.types.kinds import (
    BOOL,
    INT,
    BagType,
    BaseType,
    FuncType,
    OrSetType,
    ProdType,
    SetType,
    TypeVar,
    UnitType,
)
from repro.types.parse import format_type, parse_type

from tests.strategies import object_types


class TestParse:
    def test_base_types(self):
        assert parse_type("int") == INT
        assert parse_type("bool") == BOOL
        assert parse_type("unit") == UnitType()

    def test_user_base_types(self):
        assert parse_type("module") == BaseType("module")

    def test_set_and_orset(self):
        assert parse_type("{int}") == SetType(INT)
        assert parse_type("<int>") == OrSetType(INT)
        assert parse_type("[|int|]") == BagType(INT)

    def test_product_right_associative(self):
        assert parse_type("int * bool * int") == ProdType(
            INT, ProdType(BOOL, INT)
        )

    def test_parens_override(self):
        assert parse_type("(int * bool) * int") == ProdType(
            ProdType(INT, BOOL), INT
        )

    def test_nested_paper_type(self):
        t = parse_type("{<int>} * <int>")
        assert t == ProdType(SetType(OrSetType(INT)), OrSetType(INT))

    def test_function_type(self):
        assert parse_type("{<int>} -> <{int}>") == FuncType(
            SetType(OrSetType(INT)), OrSetType(SetType(INT))
        )

    def test_type_variable(self):
        assert parse_type("<'a>") == OrSetType(TypeVar("a"))

    @pytest.mark.parametrize("bad", ["", "{int", "<>", "int *", "* int", "(int"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(OrNRAParseError):
            parse_type(bad)

    def test_rejects_trailing(self):
        with pytest.raises(OrNRAParseError):
            parse_type("int }")


class TestRoundTrip:
    @given(object_types(max_depth=4))
    def test_format_parse_round_trip(self, t):
        assert parse_type(format_type(t)) == t

    def test_format_examples(self):
        assert format_type(parse_type("{<int * bool>}")) == "{<int * bool>}"
        assert format_type(parse_type("(int*bool)*int")) == "(int * bool) * int"
