"""Tests for the type constructors and translations (Section 2/4)."""

import pytest

from repro.errors import OrNRATypeError
from repro.types.kinds import (
    BOOL,
    INT,
    STRING,
    UNIT,
    BagType,
    BaseType,
    FuncType,
    OrSetType,
    ProdType,
    SetType,
    TypeVar,
    bags_to_sets,
    contains_bag,
    contains_orset,
    contains_set,
    is_object_type,
    sets_to_bags,
    strip_orsets,
    subtypes,
    type_height,
)


class TestConstruction:
    def test_structural_equality(self):
        assert SetType(INT) == SetType(INT)
        assert OrSetType(INT) != SetType(INT)
        assert ProdType(INT, BOOL) == ProdType(INT, BOOL)
        assert ProdType(INT, BOOL) != ProdType(BOOL, INT)

    def test_types_are_hashable(self):
        seen = {SetType(INT), OrSetType(INT), SetType(INT)}
        assert len(seen) == 2

    def test_mul_operator_builds_products(self):
        assert INT * BOOL == ProdType(INT, BOOL)

    def test_base_types_distinct(self):
        assert len({BOOL, INT, STRING, UNIT}) == 4

    def test_unit_is_not_a_base_name(self):
        assert UNIT != BaseType("unit")


class TestPredicates:
    def test_contains_orset(self):
        assert contains_orset(SetType(OrSetType(INT)))
        assert contains_orset(OrSetType(INT))
        assert not contains_orset(SetType(ProdType(INT, BOOL)))

    def test_contains_set_and_bag(self):
        assert contains_set(ProdType(SetType(INT), BOOL))
        assert not contains_set(OrSetType(INT))
        assert contains_bag(BagType(INT))
        assert not contains_bag(SetType(INT))

    def test_is_object_type(self):
        assert is_object_type(SetType(OrSetType(ProdType(INT, BOOL))))
        assert not is_object_type(FuncType(INT, BOOL))
        assert not is_object_type(SetType(TypeVar("a")))

    def test_subtypes_preorder(self):
        t = ProdType(SetType(INT), OrSetType(BOOL))
        listed = list(subtypes(t))
        assert listed[0] == t
        assert SetType(INT) in listed
        assert INT in listed
        assert BOOL in listed
        assert len(listed) == 5

    def test_type_height(self):
        assert type_height(INT) == 1
        assert type_height(SetType(INT)) == 2
        assert type_height(ProdType(SetType(INT), BOOL)) == 3


class TestStripOrsets:
    def test_strip_simple(self):
        assert strip_orsets(OrSetType(INT)) == INT

    def test_strip_nested(self):
        t = SetType(OrSetType(ProdType(INT, OrSetType(BOOL))))
        assert strip_orsets(t) == SetType(ProdType(INT, BOOL))

    def test_strip_no_orsets_is_identity(self):
        t = SetType(ProdType(INT, BOOL))
        assert strip_orsets(t) == t

    def test_strip_keeps_bags(self):
        assert strip_orsets(BagType(OrSetType(INT))) == BagType(INT)

    def test_strip_rejects_function_types(self):
        with pytest.raises(OrNRATypeError):
            strip_orsets(FuncType(INT, BOOL))


class TestBagTranslations:
    def test_sets_to_bags(self):
        t = SetType(ProdType(INT, SetType(BOOL)))
        assert sets_to_bags(t) == BagType(ProdType(INT, BagType(BOOL)))

    def test_orsets_survive(self):
        t = OrSetType(SetType(INT))
        assert sets_to_bags(t) == OrSetType(BagType(INT))

    def test_round_trip(self):
        t = SetType(OrSetType(ProdType(INT, SetType(BOOL))))
        assert bags_to_sets(sets_to_bags(t)) == t

    def test_bags_to_sets_collapses(self):
        assert bags_to_sets(BagType(INT)) == SetType(INT)
