"""Type-rewrite tests for the variant extension (Section 7 + Prop 4.1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen import random_type
from repro.types.kinds import (
    BOOL,
    INT,
    OrSetType,
    SetType,
    VariantType,
    contains_orset,
    strip_orsets,
)
from repro.types.parse import parse_type
from repro.types.rewrite import (
    VARIANT_LEFT,
    VARIANT_RIGHT,
    all_normal_forms,
    apply_rewrite,
    nf_type,
    normalize_type,
    phi,
    redexes,
    rule_applicable,
)


class TestVariantRules:
    def test_variant_left_applies(self):
        t = VariantType(OrSetType(INT), BOOL)
        assert rule_applicable(t, VARIANT_LEFT)
        assert not rule_applicable(t, VARIANT_RIGHT)
        assert apply_rewrite(t, (), VARIANT_LEFT) == OrSetType(VariantType(INT, BOOL))

    def test_variant_right_applies(self):
        t = VariantType(INT, OrSetType(BOOL))
        assert rule_applicable(t, VARIANT_RIGHT)
        assert apply_rewrite(t, (), VARIANT_RIGHT) == OrSetType(VariantType(INT, BOOL))

    def test_both_sides_orset_critical_pair_joins(self):
        # <s> + <t> can fire either rule; both paths reach <s + t>.
        t = VariantType(OrSetType(INT), OrSetType(BOOL))
        assert all_normal_forms(t) == {OrSetType(VariantType(INT, BOOL))}

    def test_redexes_found_inside_variants(self):
        t = SetType(VariantType(OrSetType(INT), BOOL))
        found = redexes(t)
        assert ((0,), VARIANT_LEFT) in found

    def test_phi_decreases_under_variant_rules(self):
        t = VariantType(OrSetType(INT), OrSetType(BOOL))
        for pos, rule in redexes(t):
            assert phi(apply_rewrite(t, pos, rule)) < phi(t)

    def test_closed_form_with_variants(self):
        t = parse_type("{<int> + <bool>}")
        assert nf_type(t) == parse_type("<{int + bool}>")
        assert nf_type(parse_type("int + bool")) == parse_type("int + bool")

    def test_nested_variant_confluence_exhaustive(self):
        cases = [
            "(<int> + bool) * <string>",
            "<<int> + <bool>>",
            "{<int>} + <bool>",
            "(int + <bool>) + <string>",
        ]
        for text in cases:
            t = parse_type(text)
            assert all_normal_forms(t, 5000) == {nf_type(t)}


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000))
def test_random_variant_types_confluent(seed):
    rng = random.Random(seed)
    t = random_type(rng, max_depth=3, allow_variant=True)
    assert all_normal_forms(t, 5000) == {nf_type(t)}
    nf, trace = normalize_type(t)
    assert nf == nf_type(t)
    if contains_orset(t):
        assert nf == OrSetType(strip_orsets(t))
    else:
        assert nf == t and not trace
