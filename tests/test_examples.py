"""Smoke tests: every example script runs to completion and prints what
its docstring promises."""

import pathlib
import re
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _run(path: pathlib.Path) -> str:
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    out = _run(path)
    assert out.strip(), f"{path.name} printed nothing"


def test_quickstart_shows_normalization():
    out = _run(EXAMPLES_DIR / "quickstart.py")
    assert "<" in out and ">" in out


def test_query_optimization_reports_speedup():
    out = _run(EXAMPLES_DIR / "query_optimization.py")
    assert "equations fired" in out
    assert re.search(r"\d+\.\d+x", out), "no speedup column in output"


def test_approximate_answers_consistency():
    out = _run(EXAMPLES_DIR / "approximate_answers.py")
    assert "consistent=True" in out
    assert "consistent=False" in out
    assert "object order matches sandwich order: True" in out
