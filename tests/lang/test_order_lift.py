"""Tests for the linear-order lifting (Section 7, ref [26])."""

from hypothesis import given
from hypothesis import strategies as st

from repro.types.kinds import INT, OrSetType, ProdType, SetType
from repro.values.values import FALSE, TRUE, atom, vpair, vset

from repro.lang.order_lift import (
    lifted_le_primitive,
    linear_cmp,
    linear_le,
    sort_values,
)

from tests.strategies import value_of

NESTED = SetType(ProdType(INT, OrSetType(INT)))


class TestBaseRestriction:
    def test_restricts_to_int_order(self):
        assert linear_le(atom(1), atom(2))
        assert not linear_le(atom(2), atom(1))

    def test_bools_ordered(self):
        assert linear_le(atom(False), atom(True))


class TestLinearity:
    @given(value_of(NESTED, max_width=3), value_of(NESTED, max_width=3))
    def test_total(self, x, y):
        assert linear_le(x, y) or linear_le(y, x)

    @given(value_of(NESTED, max_width=3), value_of(NESTED, max_width=3))
    def test_antisymmetric(self, x, y):
        if linear_le(x, y) and linear_le(y, x):
            assert x == y

    @given(
        value_of(NESTED, max_width=2),
        value_of(NESTED, max_width=2),
        value_of(NESTED, max_width=2),
    )
    def test_transitive(self, x, y, z):
        if linear_le(x, y) and linear_le(y, z):
            assert linear_le(x, z)

    @given(value_of(NESTED, max_width=3))
    def test_reflexive(self, x):
        assert linear_cmp(x, x) == 0


class TestSorting:
    def test_sort_values(self):
        values = [vset(2), vset(1), vset()]
        ordered = sort_values(values)
        assert ordered[0] == vset()

    @given(st.lists(value_of(OrSetType(INT), max_width=3), max_size=5))
    def test_sort_is_idempotent(self, values):
        once = sort_values(values)
        assert sort_values(once) == once


class TestPrimitiveForm:
    def test_morphism_wrapper(self):
        leq = lifted_le_primitive(SetType(INT))
        assert leq(vpair(vset(1), vset(1, 2))) == TRUE
        assert leq(vpair(vset(9), vset(1, 2))) == FALSE

    def test_declared_type(self):
        leq = lifted_le_primitive(OrSetType(INT))
        assert leq.dom == ProdType(OrSetType(INT), OrSetType(INT))


class TestVariantLifting:
    """The lifted order extends to the Section 7 variant types."""

    def test_inl_before_inr(self):
        from repro.lang.order_lift import linear_le
        from repro.values.values import vinl, vinr

        assert linear_le(vinl(99), vinr(0))
        assert not linear_le(vinr(0), vinl(99))

    def test_same_side_compares_payload(self):
        from repro.lang.order_lift import linear_cmp
        from repro.values.values import vinl

        assert linear_cmp(vinl(1), vinl(2)) == -1
        assert linear_cmp(vinl(2), vinl(2)) == 0

    def test_linear_order_on_random_variant_values(self):
        import random

        from repro.gen import random_value
        from repro.lang.order_lift import linear_cmp, sort_values
        from repro.types.parse import parse_type

        rng = random.Random(3)
        t = parse_type("{int + bool * int}")
        values = [random_value(t, rng, max_width=3) for _ in range(12)]
        ordered = sort_values(values)
        # Totality + transitivity: the sorted sequence is monotone.
        for a, b in zip(ordered, ordered[1:], strict=False):
            assert linear_cmp(a, b) <= 0
        # Antisymmetry: cmp == 0 iff equal.
        for a in values:
            for b in values:
                assert (linear_cmp(a, b) == 0) == (a == b)
