"""Tests for the comprehension front end (the paper's opening query)."""

import pytest

from repro.errors import OrNRAParseError
from repro.types.kinds import INT
from repro.values.values import atom, vorset, vpair, vset

from repro.lang.comprehension import (
    capply,
    ceq,
    compile_comprehension,
    cpair,
    fst,
    gen,
    guard,
    lit,
    orcomp,
    setcomp,
    snd,
    var,
)
from repro.lang.primitives import plus, predicate


class TestVariables:
    def test_single_scope_is_identity(self):
        m = compile_comprehension(var("db"), "db")
        assert m(atom(7)) == atom(7)

    def test_unbound_variable(self):
        with pytest.raises(OrNRAParseError):
            compile_comprehension(var("nope"), "db")


class TestSetComprehensions:
    def test_identity_comprehension(self):
        q = setcomp(var("x"), [gen("x", var("db"))])
        m = compile_comprehension(q, "db")
        assert m(vset(1, 2, 3)) == vset(1, 2, 3)

    def test_projection(self):
        q = setcomp(fst(var("x")), [gen("x", var("db"))])
        m = compile_comprehension(q, "db")
        assert m(vset(vpair(1, True), vpair(2, False))) == vset(1, 2)

    def test_guard(self):
        small = predicate("small", lambda v: v.value < 3, INT)
        q = setcomp(var("x"), [gen("x", var("db")), guard(capply(small, var("x")))])
        m = compile_comprehension(q, "db")
        assert m(vset(1, 2, 3, 4)) == vset(1, 2)

    def test_cartesian_product_two_generators(self):
        q = setcomp(
            cpair(var("x"), var("y")),
            [gen("x", fst(var("db"))), gen("y", snd(var("db")))],
        )
        m = compile_comprehension(q, "db")
        out = m(vpair(vset(1, 2), vset(3)))
        assert out == vset(vpair(1, 3), vpair(2, 3))

    def test_join_with_equality_guard(self):
        q = setcomp(
            cpair(fst(var("r")), snd(var("s"))),
            [
                gen("r", fst(var("db"))),
                gen("s", snd(var("db"))),
                guard(ceq(snd(var("r")), fst(var("s")))),
            ],
        )
        m = compile_comprehension(q, "db")
        r = vset(vpair(1, 10), vpair(2, 20))
        s = vset(vpair(10, "a"), vpair(30, "c"))
        assert m(vpair(r, s)) == vset(vpair(1, "a"))

    def test_computed_head(self):
        q = setcomp(
            capply(plus(), cpair(var("x"), lit(1))), [gen("x", var("db"))]
        )
        m = compile_comprehension(q, "db")
        assert m(vset(1, 2)) == vset(2, 3)


class TestOrComprehensions:
    def test_paper_opening_query(self):
        """(x | x <- DB, ischeap(x)) — select cheap completed designs."""
        ischeap = predicate("ischeap", lambda v: v.value < 100, INT)
        q = orcomp(
            var("x"), [gen("x", var("db")), guard(capply(ischeap, var("x")))]
        )
        m = compile_comprehension(q, "db")
        assert m(vorset(50, 150, 70)) == vorset(50, 70)

    def test_or_generator_nesting(self):
        q = orcomp(
            cpair(var("x"), var("y")),
            [gen("x", fst(var("db"))), gen("y", snd(var("db")))],
        )
        m = compile_comprehension(q, "db")
        out = m(vpair(vorset(1, 2), vorset(3, 4)))
        assert out == vorset(vpair(1, 3), vpair(1, 4), vpair(2, 3), vpair(2, 4))

    def test_empty_or_generator_propagates(self):
        q = orcomp(var("x"), [gen("x", var("db"))])
        m = compile_comprehension(q, "db")
        assert m(vorset()) == vorset()

    def test_guard_can_empty_orset(self):
        never = predicate("never", lambda v: False, INT)
        q = orcomp(var("x"), [gen("x", var("db")), guard(capply(never, var("x")))])
        m = compile_comprehension(q, "db")
        assert m(vorset(1, 2)) == vorset()

    def test_kind_validation(self):
        from repro.errors import OrNRATypeError
        from repro.lang.comprehension import Comprehension

        with pytest.raises(OrNRATypeError):
            Comprehension(var("x"), (), "bag")


class TestScoping:
    def test_shadowing_inner_wins(self):
        q = setcomp(
            var("x"),
            [gen("x", var("db")), gen("x", fst(var("x")))],
        )
        m = compile_comprehension(q, "db")
        # db : {({1,2}-like, _)}; inner x ranges over fst of outer x.
        out = m(vset(vpair(vset(1, 2), True)))
        assert out == vset(1, 2)

    def test_three_level_scope(self):
        q = setcomp(
            cpair(var("x"), cpair(var("y"), var("z"))),
            [
                gen("x", var("db")),
                gen("y", var("db")),
                gen("z", var("db")),
            ],
        )
        m = compile_comprehension(q, "db")
        out = m(vset(1, 2))
        assert len(out) == 8
