"""Tests for type inference on Figure 1 — the FIG1 experiment's core."""

import pytest

from repro.errors import OrNRATypeError
from repro.types.kinds import INT, OrSetType, ProdType, SetType
from repro.types.parse import parse_type

from repro.lang.bag_ops import AlphaD, DMap
from repro.lang.morphisms import (
    Bang,
    Compose,
    Eq,
    Id,
    PairOf,
    Proj1,
    Proj2,
)
from repro.lang.orset_ops import (
    Alpha,
    KEmptyOrSet,
    OrEta,
    OrMap,
    OrMu,
    OrRho2,
    OrToSet,
    OrUnion,
    SetToOr,
)
from repro.lang.set_ops import (
    KEmptySet,
    SetEta,
    SetMap,
    SetMu,
    SetRho2,
    SetUnion,
)
from repro.lang.typecheck import (
    can_apply,
    check_value_against,
    elaborate,
    most_general_type,
    result_type,
)

FIG1_TABLE = [
    # (morphism, input type, output type) — the Figure 1 rules.
    (SetEta(), "int", "{int}"),
    (SetMu(), "{{int}}", "{int}"),
    (SetMap(Proj1()), "{int * bool}", "{int}"),
    (SetRho2(), "int * {bool}", "{int * bool}"),
    (SetUnion(), "{int} * {int}", "{int}"),
    (KEmptySet(), "unit", "{'a}"),
    (OrEta(), "int", "<int>"),
    (OrMu(), "<<int>>", "<int>"),
    (OrMap(Proj2()), "<int * bool>", "<bool>"),
    (OrRho2(), "int * <bool>", "<int * bool>"),
    (OrUnion(), "<int> * <int>", "<int>"),
    (KEmptyOrSet(), "unit", "<'a>"),
    (Alpha(), "{<int>}", "<{int}>"),
    (OrToSet(), "<int>", "{int}"),
    (SetToOr(), "{int}", "<int>"),
    (DMap(Id()), "[|int|]", "[|int|]"),
    (AlphaD(), "[|<int>|]", "<[|int|]>"),
    (Eq(), "int * int", "bool"),
    (Bang(), "{<int>}", "unit"),
]


class TestFigureOne:
    @pytest.mark.parametrize(
        "morphism, dom, cod", FIG1_TABLE, ids=[m.describe() for m, _, _ in FIG1_TABLE]
    )
    def test_operator_typing_rule(self, morphism, dom, cod):
        out = result_type(morphism, parse_type(dom))
        expected = parse_type(cod)
        # 'a in the table stands for "any type variable".
        from repro.types.kinds import TypeVar

        def matches(a, b):
            if isinstance(b, TypeVar):
                return True
            if type(a) is not type(b):
                return False
            return all(matches(x, y) for x, y in zip(a.children(), b.children(), strict=True)) and (
                a == b if not a.children() else True
            )

        assert matches(out, expected)


class TestInference:
    def test_most_general_type_of_query(self):
        # ormap(pi_1) o alpha : {<'a * 'b>} -> <{'a}>
        q = Compose(OrMap(SetMap(Proj1())), Alpha())
        sig = most_general_type(q)
        assert isinstance(sig.dom, SetType)
        assert isinstance(sig.dom.elem, OrSetType)
        assert isinstance(sig.cod, OrSetType)
        assert isinstance(sig.cod.elem, SetType)

    def test_can_apply(self):
        assert can_apply(Alpha(), parse_type("{<int>}"))
        assert not can_apply(Alpha(), parse_type("{int}"))

    def test_result_type_error(self):
        with pytest.raises(OrNRATypeError):
            result_type(OrMu(), parse_type("<int>"))

    def test_elaborate_pipeline(self):
        q = Compose(OrMu(), OrMap(OrEta()))
        stages = elaborate(q, parse_type("<int>"))
        assert [s[0] for s in stages] == ["ormap(or_eta)", "or_mu"]
        assert stages[-1][2] == parse_type("<int>")

    def test_elaborate_flags_bad_stage(self):
        q = Compose(SetMu(), OrEta())
        with pytest.raises(OrNRATypeError):
            elaborate(q, INT)

    def test_check_value_against(self):
        from repro.values.values import vorset

        check_value_against(vorset(1), OrSetType(INT))
        with pytest.raises(OrNRATypeError):
            check_value_against(vorset(1), SetType(INT))


class TestPolymorphism:
    def test_fresh_variables_independent(self):
        pair = PairOf(SetEta(), OrEta())
        sig = most_general_type(pair)
        assert isinstance(sig.cod, ProdType)
        assert isinstance(sig.cod.left, SetType)
        assert isinstance(sig.cod.right, OrSetType)
        assert sig.cod.left.elem == sig.cod.right.elem == sig.dom

    def test_normalize_is_not_polymorphic(self):
        from repro.core.normalize import Normalize

        with pytest.raises(OrNRATypeError):
            most_general_type(Normalize())

    def test_normalize_with_declared_type(self):
        from repro.core.normalize import Normalize

        n = Normalize(parse_type("{<int>}"))
        assert most_general_type(n).cod == parse_type("<{int}>")
