"""Tests for the Section 7 equational optimizer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen import random_value
from repro.lang.bag_ops import AlphaD, DMap, bag_eta, bag_mu
from repro.lang.morphisms import (
    Bang,
    Compose,
    Cond,
    Id,
    PairOf,
    Proj1,
    Proj2,
    always,
    compose,
    identity,
    pair_of,
)
from repro.lang.optimize import cost, equations_applied, optimize
from repro.lang.orset_ops import Alpha, OrEta, OrMap, OrMu, OrRho2, or_eta
from repro.lang.primitives import plus
from repro.lang.set_ops import SetEta, SetMap, SetMu, set_eta
from repro.lang.variant_ops import case, inl, inr
from repro.types.parse import parse_type


DOUBLE = Compose(plus(), PairOf(Id(), Id()))


class TestBasicRules:
    def test_identity_elimination(self):
        assert optimize(compose(identity(), plus(), identity())) == plus()

    def test_projection_of_pair(self):
        m = Compose(Proj1(), PairOf(DOUBLE, Bang()))
        assert optimize(m) == DOUBLE

    def test_pair_of_projections_is_id(self):
        assert optimize(PairOf(Proj1(), Proj2())) == Id()

    def test_bang_absorbs(self):
        assert optimize(Compose(Bang(), DOUBLE)) == Bang()

    def test_map_id_collapses(self):
        assert optimize(SetMap(Id())) == Id()
        assert optimize(OrMap(Compose(Id(), Id()))) == Id()

    def test_map_fusion(self):
        m = Compose(SetMap(DOUBLE), SetMap(DOUBLE))
        out = optimize(m)
        # Fused into one traversal (canonical right-nested composition).
        assert isinstance(out, SetMap)
        assert out == optimize(SetMap(Compose(DOUBLE, DOUBLE)))
        assert cost(out) < cost(m)

    def test_monad_unit_laws(self):
        assert optimize(Compose(SetMu(), SetEta())) == Id()
        assert optimize(Compose(SetMu(), SetMap(SetEta()))) == Id()
        assert optimize(Compose(OrMu(), OrEta())) == Id()
        assert optimize(Compose(bag_mu(), bag_eta())) == Id()

    def test_map_after_eta(self):
        out = optimize(Compose(OrMap(DOUBLE), OrEta()))
        assert out == Compose(OrEta(), DOUBLE)

    def test_cond_same_branches(self):
        m = Cond(always(True), DOUBLE, DOUBLE)
        assert optimize(m) == DOUBLE

    def test_case_of_injection(self):
        assert optimize(Compose(case(DOUBLE, Bang()), inl())) == DOUBLE
        assert optimize(Compose(case(DOUBLE, plus()), inr())) == plus()


class TestCoherenceDiagramRules:
    def test_alpha_push(self):
        m = Compose(OrMap(SetMap(DOUBLE)), Alpha())
        out = optimize(m)
        assert out == Compose(Alpha(), SetMap(OrMap(DOUBLE)))
        assert "alpha_diagram" in equations_applied(m)

    def test_alpha_d_push(self):
        m = Compose(OrMap(DMap(DOUBLE)), AlphaD())
        assert optimize(m) == Compose(AlphaD(), DMap(OrMap(DOUBLE)))

    def test_rho_square(self):
        body = PairOf(Compose(DOUBLE, Proj1()), Proj2())
        m = Compose(OrMap(body), OrRho2())
        out = optimize(m)
        assert isinstance(out, Compose) and isinstance(out.after, OrRho2)
        assert "or_mu_diagram" in equations_applied(m)

    def test_mu_naturality(self):
        m = Compose(OrMu(), OrMap(OrMap(DOUBLE)))
        assert optimize(m) == Compose(OrMap(DOUBLE), OrMu())

    def test_rho_eta_collapse(self):
        # or_rho_2 o (pi_1, or_eta o pi_2) is conceptually or_eta.
        m = Compose(OrRho2(), pair_of(Proj1(), Compose(or_eta(), Proj2())))
        assert optimize(m) == or_eta()
        from repro.lang.set_ops import SetRho2

        m2 = Compose(SetRho2(), pair_of(Proj1(), Compose(set_eta(), Proj2())))
        assert optimize(m2) == set_eta()


class TestSoundness:
    """optimize(m)(x) == m(x) on random inputs, for a suite of shapes."""

    SUITE = [
        (compose(identity(), SetMap(DOUBLE), SetMap(DOUBLE)), "{int}"),
        (Compose(SetMu(), SetMap(SetEta())), "{int}"),
        (Compose(OrMap(SetMap(DOUBLE)), Alpha()), "{<int>}"),
        (Compose(OrMu(), OrMap(OrMap(DOUBLE))), "<<int>>"),
        (Compose(OrMap(DOUBLE), OrEta()), "int"),
        (Compose(Proj1(), PairOf(DOUBLE, Bang())), "int"),
        (PairOf(Proj1(), Proj2()), "int * bool"),
        (Compose(Bang(), SetMap(DOUBLE)), "{int}"),
        (
            Compose(OrMap(PairOf(Compose(DOUBLE, Proj1()), Proj2())), OrRho2()),
            "int * <int>",
        ),
        (Compose(case(DOUBLE, Id()), inl()), "int"),
    ]

    @pytest.mark.parametrize("m,type_text", SUITE)
    def test_agreement(self, m, type_text):
        t = parse_type(type_text)
        rng = random.Random(11)
        opt = optimize(m)
        for _ in range(25):
            x = random_value(t, rng, max_width=3, min_width=0)
            assert opt(x) == m(x), (m.describe(), opt.describe(), str(x))

    @pytest.mark.parametrize("m,type_text", SUITE)
    def test_cost_never_increases(self, m, type_text):
        assert cost(optimize(m)) <= cost(m)

    @pytest.mark.parametrize("m,type_text", SUITE)
    def test_idempotent(self, m, type_text):
        once = optimize(m)
        assert optimize(once) == once


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 4))
def test_random_map_pipelines_sound(seed, k):
    """Chains of maps/eta/mu optimize soundly on random set inputs."""
    rng = random.Random(seed)
    parts = []
    for _ in range(k):
        parts.append(rng.choice([SetMap(DOUBLE), SetMap(Id()), Id()]))
    m = compose(*parts)
    opt = optimize(m)
    t = parse_type("{int}")
    for _ in range(5):
        x = random_value(t, rng, max_width=4, min_width=0)
        assert opt(x) == m(x)
