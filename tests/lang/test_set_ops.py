"""Tests for the NRA set fragment and the set-monad laws."""

import pytest
from hypothesis import given

from repro.errors import OrNRATypeError
from repro.types.kinds import INT, ProdType, SetType
from repro.values.values import atom, vpair, vset

from repro.lang.morphisms import Id, PairOf, Proj1, Proj2
from repro.lang.primitives import plus
from repro.lang.set_ops import (
    KEmptySet,
    SetEta,
    SetMap,
    SetMu,
    SetRho2,
    SetUnion,
    flatmap,
    set_cartesian,
    set_rho1,
)

from tests.strategies import value_of


class TestOperators:
    def test_eta(self):
        assert SetEta()(atom(1)) == vset(1)

    def test_mu(self):
        assert SetMu()(vset(vset(1, 2), vset(2, 3))) == vset(1, 2, 3)

    def test_mu_requires_nested(self):
        with pytest.raises(OrNRATypeError):
            SetMu()(vset(1))

    def test_map(self):
        first = SetMap(Proj1())
        assert first(vset(vpair(1, True), vpair(2, False))) == vset(1, 2)

    def test_map_with_arithmetic(self):
        double = SetMap(plus() @ PairOf(Id(), Id()))
        assert double(vset(1, 2, 3)) == vset(2, 4, 6)

    def test_map_collapses_duplicates(self):
        collapse = SetMap(Proj2())
        assert collapse(vset(vpair(1, 9), vpair(2, 9))) == vset(9)

    def test_rho2(self):
        assert SetRho2()(vpair(1, vset(2, 3))) == vset(vpair(1, 2), vpair(1, 3))

    def test_rho2_empty(self):
        assert SetRho2()(vpair(1, vset())) == vset()

    def test_rho1_derived(self):
        assert set_rho1()(vpair(vset(2, 3), 1)) == vset(vpair(2, 1), vpair(3, 1))

    def test_union(self):
        assert SetUnion()(vpair(vset(1), vset(2, 1))) == vset(1, 2)

    def test_empty(self):
        from repro.values.values import UNIT_VALUE

        assert KEmptySet()(UNIT_VALUE) == vset()


class TestDerivedForms:
    def test_flatmap(self):
        pairs = flatmap(SetRho2())
        out = pairs(vset(vpair(1, vset(2, 3)), vpair(4, vset(5))))
        assert out == vset(vpair(1, 2), vpair(1, 3), vpair(4, 5))

    def test_cartesian(self):
        out = set_cartesian()(vpair(vset(1, 2), vset(True, False)))
        assert out == vset(
            vpair(1, True), vpair(1, False), vpair(2, True), vpair(2, False)
        )

    def test_cartesian_with_empty(self):
        assert set_cartesian()(vpair(vset(1), vset())) == vset()


class TestMonadLaws:
    """The monad equations of [5] that or-NRA's design relies on."""

    @given(value_of(SetType(INT), max_width=4))
    def test_mu_eta_left_unit(self, xs):
        assert SetMu()(SetEta()(xs)) == xs

    @given(value_of(SetType(INT), max_width=4))
    def test_mu_map_eta_right_unit(self, xs):
        assert SetMu()(SetMap(SetEta())(xs)) == xs

    @given(value_of(SetType(SetType(SetType(INT))), max_width=3))
    def test_mu_associativity(self, xsss):
        assert SetMu()(SetMu()(xsss)) == SetMu()(SetMap(SetMu())(xsss))

    @given(value_of(SetType(ProdType(INT, INT)), max_width=3))
    def test_map_composition(self, xs):
        f, g = Proj1(), PairOf(Proj2(), Proj1())
        assert SetMap(f)(SetMap(g)(xs)) == SetMap(f @ g)(xs)


class TestSignatures:
    def test_types(self):
        from repro.lang.morphisms import infer_signature

        sig = infer_signature(SetMu())
        assert isinstance(sig.dom, SetType)
        assert isinstance(sig.dom.elem, SetType)
        assert sig.dom.elem == SetType(sig.cod.elem)  # type: ignore[union-attr]

    def test_rho2_signature(self):
        sig = SetRho2().output_type(ProdType(INT, SetType(INT)))
        assert sig == SetType(ProdType(INT, INT))
